//! Two-phase commit under a hostile network: messages dropped, duplicated,
//! and reordered, and guardians partitioned (§2.2 assumes only that
//! "eventually any two nodes can communicate"). The protocol's idempotent
//! acknowledgments and query path must keep every guardian consistent.

use argus::guardian::{NetFaults, RsKind, World};
use argus::sim::DetRng;
use argus::workload::{Banking, BankingConfig};

fn run(kind: RsKind, seed: u64) {
    let cfg = BankingConfig {
        guardians: 3,
        accounts_per_guardian: 6,
        initial: 100,
        zipf_theta: 0.5,
        cross_prob: 0.7,
        abort_prob: 0.05,
    };
    let mut world = World::fast();
    let bank = Banking::setup(&mut world, kind, cfg).unwrap();
    // Heavy fault injection from here on.
    world.enable_network_faults(seed, 0.3, 0.3);

    let mut rng = DetRng::new(seed ^ 0xABCD);
    let stats = bank.run(&mut world, &mut rng, 60).unwrap();
    assert!(
        stats.committed > 0,
        "{kind:?} seed {seed}: nothing committed"
    );

    // The injector must actually have fired.
    assert!(
        world.network().duplicated() > 0,
        "{kind:?} seed {seed}: no duplicates injected"
    );
    assert!(
        world.network().deferred() > 0,
        "{kind:?} seed {seed}: no deferrals injected"
    );

    // Settle any stragglers and audit.
    world.run_until_quiet().unwrap();
    world.requery_in_doubt().unwrap();
    assert_eq!(
        bank.total_balance(&world).unwrap(),
        bank.expected_total(),
        "{kind:?} seed {seed}: money not conserved under duplication/reordering"
    );

    // Crash-recovery still behaves under the faulty network.
    for &g in bank.guardians().to_vec().iter() {
        world.crash(g);
        world.restart(g).unwrap();
    }
    world.requery_in_doubt().unwrap();
    assert_eq!(bank.total_balance(&world).unwrap(), bank.expected_total());
}

#[test]
fn duplication_and_reordering_hybrid() {
    for seed in [3u64, 17, 99] {
        run(RsKind::Hybrid, seed);
    }
}

#[test]
fn duplication_and_reordering_simple() {
    run(RsKind::Simple, 5);
}

#[test]
fn duplication_and_reordering_shadow() {
    run(RsKind::Shadow, 7);
}

/// Lossy network on top of duplication and reordering: dropped mail is
/// recovered by the protocol's retry/query path, and the books still
/// balance.
fn run_with_drop(kind: RsKind, seed: u64) {
    let cfg = BankingConfig {
        guardians: 3,
        accounts_per_guardian: 6,
        initial: 100,
        zipf_theta: 0.5,
        cross_prob: 0.7,
        abort_prob: 0.05,
    };
    let mut world = World::fast();
    let bank = Banking::setup(&mut world, kind, cfg).unwrap();
    world.set_network_faults(Some(NetFaults::new(seed, 0.2, 0.2).with_drop(0.15)));

    let mut rng = DetRng::new(seed ^ 0x5EED);
    let stats = bank.run(&mut world, &mut rng, 60).unwrap();
    assert!(
        stats.committed > 0,
        "{kind:?} seed {seed}: nothing committed"
    );
    assert!(
        world.network().fault_dropped() > 0,
        "{kind:?} seed {seed}: no drops injected"
    );

    // Lift the faults (the §2.2 liveness assumption), settle, audit.
    world.set_network_faults(None);
    world.run_until_quiet().unwrap();
    world.requery_in_doubt().unwrap();
    assert_eq!(
        bank.total_balance(&world).unwrap(),
        bank.expected_total(),
        "{kind:?} seed {seed}: money not conserved under message loss"
    );
}

#[test]
fn message_loss_hybrid() {
    for seed in [2u64, 23] {
        run_with_drop(RsKind::Hybrid, seed);
    }
}

#[test]
fn message_loss_simple() {
    run_with_drop(RsKind::Simple, 11);
}

#[test]
fn message_loss_shadow() {
    run_with_drop(RsKind::Shadow, 13);
}

/// Partitions hold mail rather than dropping it: transfers run across a
/// partition, the cut heals, and every held message arrives — money is
/// conserved with no retry needed for the held leg.
fn run_with_partition(kind: RsKind, seed: u64) {
    let cfg = BankingConfig {
        guardians: 3,
        accounts_per_guardian: 6,
        initial: 100,
        zipf_theta: 0.5,
        cross_prob: 1.0,
        abort_prob: 0.0,
    };
    let mut world = World::fast();
    let bank = Banking::setup(&mut world, kind, cfg).unwrap();
    let gids = bank.guardians().to_vec();

    let mut rng = DetRng::new(seed);
    for round in 0..4 {
        let a = gids[round % gids.len()];
        let b = gids[(round + 1) % gids.len()];
        world.partition(a, b);
        bank.run(&mut world, &mut rng, 8).unwrap();
        world.heal_partition(a, b);
        bank.run(&mut world, &mut rng, 4).unwrap();
    }
    assert!(
        world.network().partitioned() > 0,
        "{kind:?} seed {seed}: no mail was ever held by a partition"
    );

    world.heal_all_partitions();
    world.run_until_quiet().unwrap();
    world.requery_in_doubt().unwrap();
    assert_eq!(
        bank.total_balance(&world).unwrap(),
        bank.expected_total(),
        "{kind:?} seed {seed}: money not conserved across partition/heal"
    );
}

#[test]
fn partition_and_heal_hybrid() {
    for seed in [4u64, 31] {
        run_with_partition(RsKind::Hybrid, seed);
    }
}

#[test]
fn partition_and_heal_simple() {
    run_with_partition(RsKind::Simple, 19);
}

#[test]
fn partition_and_heal_shadow() {
    run_with_partition(RsKind::Shadow, 29);
}

/// Regression: a message deferred by the reorder injector while its
/// recipient crashes must survive the outage (it is "still in the
/// network") and arrive after restart — it used to be silently dropped by
/// `mark_down`, which only the retry path papered over.
#[test]
fn deferred_mail_survives_recipient_crash() {
    let cfg = BankingConfig {
        guardians: 3,
        accounts_per_guardian: 6,
        initial: 100,
        zipf_theta: 0.5,
        cross_prob: 1.0,
        abort_prob: 0.0,
    };
    let mut world = World::fast();
    let bank = Banking::setup(&mut world, RsKind::Hybrid, cfg).unwrap();
    let gids = bank.guardians().to_vec();
    // Heavy deferral keeps mail parked in the network at all times.
    world.set_network_faults(Some(NetFaults::new(0xDEF, 0.0, 0.9)));

    let mut rng = DetRng::new(0xDEF ^ 1);
    for &victim in &gids {
        bank.run(&mut world, &mut rng, 10).unwrap();
        // Crash while deferred mail for the victim may be in flight.
        world.crash(victim);
        world.restart(victim).unwrap();
    }
    assert!(
        world.network().deferred() > 0,
        "no deferrals injected — the regression is not being exercised"
    );

    world.set_network_faults(None);
    world.run_until_quiet().unwrap();
    world.requery_in_doubt().unwrap();
    assert_eq!(
        bank.total_balance(&world).unwrap(),
        bank.expected_total(),
        "money not conserved when deferred mail spans a crash"
    );
}
