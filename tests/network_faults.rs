//! Two-phase commit under a hostile network: messages duplicated and
//! reordered (§2.2 assumes only that "eventually any two nodes can
//! communicate"). The protocol's idempotent acknowledgments and query path
//! must keep every guardian consistent.

use argus::guardian::{RsKind, World};
use argus::sim::DetRng;
use argus::workload::{Banking, BankingConfig};

fn run(kind: RsKind, seed: u64) {
    let cfg = BankingConfig {
        guardians: 3,
        accounts_per_guardian: 6,
        initial: 100,
        zipf_theta: 0.5,
        cross_prob: 0.7,
        abort_prob: 0.05,
    };
    let mut world = World::fast();
    let bank = Banking::setup(&mut world, kind, cfg).unwrap();
    // Heavy fault injection from here on.
    world.enable_network_faults(seed, 0.3, 0.3);

    let mut rng = DetRng::new(seed ^ 0xABCD);
    let stats = bank.run(&mut world, &mut rng, 60).unwrap();
    assert!(
        stats.committed > 0,
        "{kind:?} seed {seed}: nothing committed"
    );

    // The injector must actually have fired.
    assert!(
        world.network().duplicated() > 0,
        "{kind:?} seed {seed}: no duplicates injected"
    );
    assert!(
        world.network().deferred() > 0,
        "{kind:?} seed {seed}: no deferrals injected"
    );

    // Settle any stragglers and audit.
    world.run_until_quiet().unwrap();
    world.requery_in_doubt().unwrap();
    assert_eq!(
        bank.total_balance(&world).unwrap(),
        bank.expected_total(),
        "{kind:?} seed {seed}: money not conserved under duplication/reordering"
    );

    // Crash-recovery still behaves under the faulty network.
    for &g in bank.guardians().to_vec().iter() {
        world.crash(g);
        world.restart(g).unwrap();
    }
    world.requery_in_doubt().unwrap();
    assert_eq!(bank.total_balance(&world).unwrap(), bank.expected_total());
}

#[test]
fn duplication_and_reordering_hybrid() {
    for seed in [3u64, 17, 99] {
        run(RsKind::Hybrid, seed);
    }
}

#[test]
fn duplication_and_reordering_simple() {
    run(RsKind::Simple, 5);
}

#[test]
fn duplication_and_reordering_shadow() {
    run(RsKind::Shadow, 7);
}
