//! Randomized tests of the volatile heap: two-phase-locking invariants hold
//! under arbitrary interleavings of lock / write / commit / abort.
//!
//! Driven by the in-tree deterministic RNG (`argus::sim::DetRng`) with fixed
//! seeds, so every "random" case is exactly reproducible. Gated behind the
//! off-by-default `proptest` feature: `cargo test --features proptest`.

use argus::objects::{ActionId, GuardianId, Heap, HeapId, ObjectBody, Value};
use argus::sim::DetRng;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum HeapOp {
    AcquireRead { actor: u8, obj: u8 },
    AcquireWrite { actor: u8, obj: u8 },
    Write { actor: u8, obj: u8, v: i64 },
    Commit { actor: u8 },
    Abort { actor: u8 },
}

fn gen_op(rng: &mut DetRng) -> HeapOp {
    let actor = rng.gen_range(4) as u8;
    let obj = rng.gen_range(4) as u8;
    match rng.gen_range(5) {
        0 => HeapOp::AcquireRead { actor, obj },
        1 => HeapOp::AcquireWrite { actor, obj },
        2 => HeapOp::Write {
            actor,
            obj,
            v: rng.next_u64() as i64,
        },
        3 => HeapOp::Commit { actor },
        _ => HeapOp::Abort { actor },
    }
}

fn aid(n: u8) -> ActionId {
    ActionId::new(GuardianId(0), n as u64)
}

/// The serializability core: a committed value is only ever replaced by the
/// committing writer's own version; aborts always restore the last committed
/// value; lock invariants (≤1 writer, writer excludes other readers) hold
/// throughout.
#[test]
fn locking_model_invariants() {
    let mut rng = DetRng::new(0x4EA9);
    for case in 0..128 {
        let ops: Vec<HeapOp> = (0..rng.gen_between(1, 60))
            .map(|_| gen_op(&mut rng))
            .collect();
        let mut heap = Heap::new();
        let objs: Vec<HeapId> = (0..4)
            .map(|i| heap.alloc_atomic(Value::Int(i), None))
            .collect();
        // Model: committed value + the pending write per (actor, obj).
        let mut committed: HashMap<u8, i64> = (0..4u8).map(|i| (i, i as i64)).collect();
        let mut pending: HashMap<(u8, u8), i64> = HashMap::new();
        let mut holds_write: HashMap<u8, u8> = HashMap::new(); // obj -> actor

        for op in &ops {
            match *op {
                HeapOp::AcquireRead { actor, obj } => {
                    let allowed = holds_write.get(&obj).map(|w| *w == actor).unwrap_or(true);
                    let result = heap.acquire_read(objs[obj as usize], aid(actor));
                    assert_eq!(result.is_ok(), allowed, "case {case}: read lock {op:?}");
                }
                HeapOp::AcquireWrite { actor, obj } => {
                    let result = heap.acquire_write(objs[obj as usize], aid(actor));
                    if result.is_ok() {
                        // The heap granted it; record in the model. (Reader
                        // sets make exact grant prediction tedious — we
                        // check the *invariant* instead: no second writer.)
                        if let Some(existing) = holds_write.get(&obj) {
                            assert_eq!(*existing, actor, "case {case}: two writers on {obj}");
                        }
                        holds_write.insert(obj, actor);
                    } else if holds_write.get(&obj) == Some(&actor) {
                        panic!("case {case}: re-acquisition by the holder failed");
                    }
                }
                HeapOp::Write { actor, obj, v } => {
                    let result = heap
                        .write_value(objs[obj as usize], aid(actor), |val| *val = Value::Int(v));
                    let holds = holds_write.get(&obj) == Some(&actor);
                    assert_eq!(result.is_ok(), holds, "case {case}: write without lock");
                    if holds {
                        pending.insert((actor, obj), v);
                    }
                }
                HeapOp::Commit { actor } => {
                    heap.commit_action(aid(actor));
                    for obj in 0..4u8 {
                        if holds_write.get(&obj) == Some(&actor) {
                            if let Some(v) = pending.remove(&(actor, obj)) {
                                committed.insert(obj, v);
                            }
                            holds_write.remove(&obj);
                        }
                    }
                    pending.retain(|(a, _), _| *a != actor);
                }
                HeapOp::Abort { actor } => {
                    heap.abort_action(aid(actor));
                    holds_write.retain(|_, a| *a != actor);
                    pending.retain(|(a, _), _| *a != actor);
                }
            }
            // Global invariant: every object's committed (base) version
            // matches the model at every step.
            for obj in 0..4u8 {
                let base = match &heap.get(objs[obj as usize]).unwrap().body {
                    ObjectBody::Atomic(o) => o.base.clone(),
                    _ => unreachable!(),
                };
                assert_eq!(
                    base,
                    Value::Int(committed[&obj]),
                    "case {case}: committed value diverged after {op:?}"
                );
            }
        }
    }
}

/// Uids are never reused, even across interleaved allocation and
/// recovery-style insertion.
#[test]
fn uids_are_never_reused() {
    let mut rng = DetRng::new(0x01D5);
    for case in 0..64 {
        let allocs = rng.gen_between(1, 40) as usize;
        let preset = rng.gen_between(1, 200);
        let mut heap = Heap::new();
        heap.insert_with_uid(
            argus::objects::Uid(preset),
            ObjectBody::Atomic(argus::objects::AtomicObject::new(Value::Unit)),
        )
        .unwrap();
        let mut seen = std::collections::HashSet::new();
        seen.insert(preset);
        for _ in 0..allocs {
            let h = heap.alloc_atomic(Value::Unit, None);
            let uid = heap.uid_of(h).unwrap();
            assert!(seen.insert(uid.0), "case {case}: uid {uid} reused");
        }
    }
}
