//! The full stack over Lampson–Sturgis mirrored disks (§1.1): the hybrid
//! log running on fallible media with decay and torn writes, end to end.

use argus::core::providers::MirrorProvider;
use argus::core::{HybridLogRs, RecoverySystem};
use argus::objects::{ActionId, GuardianId, Heap, Value};
use argus::sim::{CostModel, SimClock};
use argus::stable::{FaultPlan, MirroredDisk, PageStore};

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

fn provider(plan: &FaultPlan) -> MirrorProvider {
    MirrorProvider {
        clock: SimClock::new(),
        model: CostModel::fast(),
        plan: plan.clone(),
    }
}

fn commit_value(rs: &mut HybridLogRs<MirrorProvider>, heap: &mut Heap, seq: u64, v: i64) {
    let a = aid(seq);
    let root = heap.stable_root().unwrap();
    heap.acquire_write(root, a).unwrap();
    heap.write_value(root, a, |val| *val = Value::Int(v))
        .unwrap();
    rs.prepare(a, &[root], heap).unwrap();
    rs.commit(a).unwrap();
    heap.commit_action(a);
}

#[test]
fn hybrid_log_runs_on_mirrored_disks() {
    let plan = FaultPlan::new();
    let mut rs = HybridLogRs::create(provider(&plan)).unwrap();
    let mut heap = Heap::with_stable_root();
    for i in 0..10 {
        commit_value(&mut rs, &mut heap, i + 1, i as i64);
    }
    rs.simulate_crash().unwrap();
    let mut heap2 = Heap::new();
    rs.recover(&mut heap2).unwrap();
    let root = heap2.stable_root().unwrap();
    assert_eq!(heap2.read_value(root, None).unwrap(), &Value::Int(9));
    // Two raw writes per logical write: mirroring really ran.
    assert!(rs.log_stats().device.writes() > 0);
}

#[test]
fn recovery_survives_single_copy_decay_of_every_page() {
    // Commit some history, then decay the A copy of EVERY page (and the B
    // copy of every other page, alternating): reads must repair from the
    // surviving twin and recovery must be unaffected.
    let plan = FaultPlan::new();
    let mut rs = HybridLogRs::create(provider(&plan)).unwrap();
    let mut heap = Heap::with_stable_root();
    for i in 0..8 {
        commit_value(&mut rs, &mut heap, i + 1, 100 + i as i64);
    }

    // Reach through to the medium and decay alternating copies.
    // dump_entries (a full read pass) afterwards must still succeed.
    {
        // Safety of the borrow dance: we only need &mut to the store.
        let stats_before = rs.log_stats();
        let _ = stats_before;
    }
    // Decay via a direct handle: rebuild the rs around the same disk.
    // HybridLogRs does not expose its store mutably, so exercise the decay
    // path at the device level with the same pattern instead.
    let clock = SimClock::new();
    let mut disk = MirroredDisk::new(plan.clone(), clock, CostModel::fast());
    for pno in 0..64 {
        disk.write_page(pno, &argus::stable::Page::from_bytes(&[pno as u8]))
            .unwrap();
    }
    for pno in 0..64 {
        if pno % 2 == 0 {
            disk.decay_a(pno);
        } else {
            disk.decay_b(pno);
        }
    }
    for pno in 0..64 {
        assert_eq!(
            disk.read_page(pno).unwrap(),
            argus::stable::Page::from_bytes(&[pno as u8]),
            "page {pno} lost despite one good copy"
        );
    }
}

#[test]
fn frontier_decay_after_a_torn_write_never_loses_both_copies() {
    // The crash may tear one leg of the in-flight page; the decay model must
    // then land on the *other* disk of some pair — never the last good copy
    // of the torn page. Sweep the crash through a commit, decay at the crash
    // frontier, and demand that recovery still reads every page.
    for budget in 0..60u64 {
        let plan = FaultPlan::new();
        let mut rs = HybridLogRs::create(provider(&plan)).unwrap();
        let mut heap = Heap::with_stable_root();
        commit_value(&mut rs, &mut heap, 1, 7);

        let a = aid(2);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(8)).unwrap();
        plan.arm_after_writes(budget);
        let crashed = rs
            .prepare(a, &[root], &heap)
            .and_then(|()| rs.commit(a))
            .is_err();
        plan.heal();
        plan.disarm();
        if !crashed {
            continue;
        }

        // Decay exactly where the crash interrupted the device.
        if let Some(pno) = plan.frontier_page() {
            rs.decay_page(pno);
        }

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2)
            .unwrap_or_else(|e| panic!("budget {budget}: recovery failed: {e}"));
        let root2 = heap2.stable_root().unwrap();
        let committed = heap2.read_value(root2, None).unwrap();
        assert!(
            committed == &Value::Int(7) || committed == &Value::Int(8),
            "budget {budget}: illegal committed value {committed:?}"
        );
    }
}

#[test]
fn torn_write_during_commit_is_atomic_on_mirrored_media() {
    // Crash exactly during the force of the committed record at every
    // feasible write budget: recovery must see the action as either fully
    // prepared (in doubt) or fully committed — and the superblock must
    // never be corrupt.
    for budget in 0..60u64 {
        let plan = FaultPlan::new();
        let mut rs = HybridLogRs::create(provider(&plan)).unwrap();
        let mut heap = Heap::with_stable_root();
        commit_value(&mut rs, &mut heap, 1, 1);

        let a = aid(2);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(2)).unwrap();
        plan.arm_after_writes(budget);
        let prepare_result = rs.prepare(a, &[root], &heap);
        let commit_result = prepare_result.and_then(|()| rs.commit(a));
        plan.heal();
        plan.disarm();

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        let root2 = heap2.stable_root().unwrap();
        let committed = heap2.read_value(root2, None).unwrap().clone();
        match out.pt.get(a) {
            Some(argus::core::PState::Committed) => {
                assert_eq!(committed, Value::Int(2), "budget {budget}");
            }
            Some(argus::core::PState::Prepared) => {
                assert_eq!(committed, Value::Int(1), "budget {budget}");
                assert_eq!(heap2.read_value(root2, Some(a)).unwrap(), &Value::Int(2));
            }
            None => {
                // Crashed before the prepared record: the action vanished.
                assert_eq!(committed, Value::Int(1), "budget {budget}");
            }
            other => panic!("budget {budget}: unexpected state {other:?}"),
        }
        let _ = commit_result;
    }
}
