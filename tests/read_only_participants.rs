//! Read-only participants: a guardian where an action only *read* must join
//! two-phase commit so its read locks are released with the action's
//! outcome — otherwise the locks would leak forever (no commit or abort
//! would ever reach that guardian).

use argus::guardian::{Outcome, RsKind, World};
use argus::objects::{ObjRef, Value};

const KINDS: [RsKind; 3] = [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow];

/// Sets up two guardians: g0 holds "data", g1 holds "config". Returns
/// (world, g0, g1).
fn setup(
    kind: RsKind,
) -> (
    World,
    argus::objects::GuardianId,
    argus::objects::GuardianId,
) {
    let mut w = World::fast();
    let g0 = w.add_guardian(kind).unwrap();
    let g1 = w.add_guardian(kind).unwrap();
    let a = w.begin(g0).unwrap();
    let data = w.create_atomic(g0, a, Value::Int(0)).unwrap();
    w.set_stable(g0, a, "data", Value::heap_ref(data)).unwrap();
    assert_eq!(w.commit(a).unwrap(), Outcome::Committed);
    let b = w.begin(g1).unwrap();
    let config = w.create_atomic(g1, b, Value::Int(10)).unwrap();
    w.set_stable(g1, b, "config", Value::heap_ref(config))
        .unwrap();
    assert_eq!(w.commit(b).unwrap(), Outcome::Committed);
    (w, g0, g1)
}

fn handle(w: &World, g: argus::objects::GuardianId, name: &str) -> argus::objects::HeapId {
    match w.guardian(g).unwrap().stable_value(name) {
        Some(Value::Ref(ObjRef::Heap(h))) => h,
        other => panic!("{name} unresolved: {other:?}"),
    }
}

#[test]
fn read_locks_are_released_on_commit() {
    for kind in KINDS {
        let (mut w, g0, g1) = setup(kind);
        // The action reads config at g1 and writes data at g0.
        let a = w.begin(g0).unwrap();
        let config = handle(&w, g1, "config");
        let factor = match w.read(g1, a, config).unwrap() {
            Value::Int(n) => n,
            other => panic!("{other}"),
        };
        let data = handle(&w, g0, "data");
        w.write_atomic(g0, a, data, move |v| *v = Value::Int(factor * 2))
            .unwrap();
        assert_eq!(w.commit(a).unwrap(), Outcome::Committed, "{kind:?}");

        // The read lock at g1 is gone: a new action can write-lock config.
        let b = w.begin(g1).unwrap();
        w.write_atomic(g1, b, config, |v| *v = Value::Int(11))
            .unwrap();
        assert_eq!(w.commit(b).unwrap(), Outcome::Committed, "{kind:?}");
        assert_eq!(handle(&w, g0, "data"), data);
        assert_eq!(
            w.guardian(g0).unwrap().heap.read_value(data, None).unwrap(),
            &Value::Int(20),
            "{kind:?}"
        );
    }
}

#[test]
fn read_locks_are_released_on_local_abort() {
    let (mut w, g0, g1) = setup(RsKind::Hybrid);
    let a = w.begin(g0).unwrap();
    let config = handle(&w, g1, "config");
    w.read(g1, a, config).unwrap();
    w.abort_local(a);

    let b = w.begin(g1).unwrap();
    w.write_atomic(g1, b, config, |v| *v = Value::Int(12))
        .unwrap();
    assert_eq!(w.commit(b).unwrap(), Outcome::Committed);
}

#[test]
fn crashed_read_only_participant_aborts_the_action() {
    // If the read-only participant loses its locks in a crash before the
    // prepare, the action must abort — the read it performed is no longer
    // protected.
    let (mut w, g0, g1) = setup(RsKind::Hybrid);
    let a = w.begin(g0).unwrap();
    let config = handle(&w, g1, "config");
    w.read(g1, a, config).unwrap();
    let data = handle(&w, g0, "data");
    w.write_atomic(g0, a, data, |v| *v = Value::Int(99))
        .unwrap();

    w.crash(g1);
    w.restart(g1).unwrap();
    assert_eq!(w.commit(a).unwrap(), Outcome::Aborted);
    assert_eq!(
        w.guardian(g0)
            .unwrap()
            .heap
            .read_value(handle(&w, g0, "data"), None)
            .unwrap(),
        &Value::Int(0)
    );
}
