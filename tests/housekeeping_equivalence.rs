//! S9: housekeeping preserves the recoverable state (ch. 5).
//!
//! Run a randomized workload, then compare the crash-recovered stable state
//! of (a) the untouched log, (b) the compacted log, (c) the snapshotted log
//! — all three must agree, including under traffic between the two
//! housekeeping stages and across repeated passes.

use argus::core::HousekeepingMode;
use argus::guardian::{RsKind, World};
use argus::objects::Value;
use argus::sim::DetRng;
use argus::workload::{Synth, SynthConfig};

mod common;

/// Runs `actions` randomized updates and returns the committed value of
/// every stable variable after a crash+restart, with volatile references
/// normalized to durable uids (heap addresses differ run to run).
fn stable_snapshot(world: &World, g: argus::objects::GuardianId, objects: usize) -> Vec<Value> {
    let guardian = world.guardian(g).unwrap();
    (0..objects)
        .map(|i| {
            let name = format!("obj{i}");
            match guardian.stable_value(&name) {
                Some(Value::Ref(argus::objects::ObjRef::Heap(h))) => {
                    let mut value = guardian.heap.read_value(h, None).unwrap().clone();
                    value.map_refs(&mut |r| match r {
                        argus::objects::ObjRef::Heap(hh) => {
                            argus::objects::ObjRef::Uid(guardian.heap.uid_of(hh).unwrap())
                        }
                        uid => uid,
                    });
                    value
                }
                other => panic!("{name} unresolved: {other:?}"),
            }
        })
        .collect()
}

fn run_workload(seed: u64, hk: Option<HousekeepingMode>, hk_every: u64) -> Vec<Value> {
    let objects = 24;
    let mut world = World::fast();
    let mut synth = Synth::setup(
        &mut world,
        RsKind::Hybrid,
        SynthConfig {
            objects,
            writes_per_action: 3,
            value_size: 16,
            new_object_prob: 0.1,
            zipf_theta: 0.5,
        },
    )
    .unwrap();
    let g = synth.guardian();
    let mut rng = DetRng::new(seed);
    for i in 0..60u64 {
        synth.action(&mut world, &mut rng, false).unwrap();
        if let Some(mode) = hk {
            if i % hk_every == hk_every - 1 {
                world.housekeep(g, mode).unwrap();
            }
        }
    }
    world.crash(g);
    world.restart(g).unwrap();
    common::lint_world(&mut world);
    stable_snapshot(&world, g, objects)
}

#[test]
fn compaction_preserves_recovered_state() {
    let baseline = run_workload(42, None, 0);
    let compacted = run_workload(42, Some(HousekeepingMode::Compaction), 20);
    assert_eq!(baseline, compacted);
}

#[test]
fn snapshot_preserves_recovered_state() {
    let baseline = run_workload(42, None, 0);
    let snapshotted = run_workload(42, Some(HousekeepingMode::Snapshot), 20);
    assert_eq!(baseline, snapshotted);
}

#[test]
fn frequent_housekeeping_is_still_correct() {
    for mode in [HousekeepingMode::Compaction, HousekeepingMode::Snapshot] {
        let baseline = run_workload(7, None, 0);
        let frequent = run_workload(7, Some(mode), 5);
        assert_eq!(baseline, frequent, "{mode:?}");
    }
}

#[test]
fn housekeeping_bounds_recovery_cost() {
    // The point of ch. 5: after housekeeping, recovery examines a bounded
    // number of entries regardless of history length.
    let mut world = World::fast();
    let mut synth = Synth::setup(
        &mut world,
        RsKind::Hybrid,
        SynthConfig {
            objects: 16,
            writes_per_action: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let g = synth.guardian();
    let mut rng = DetRng::new(9);
    synth.run(&mut world, &mut rng, 100).unwrap();

    world.crash(g);
    let unbounded = world.restart(g).unwrap();
    common::lint_world(&mut world);

    // Re-run the same history but housekeep at the end.
    let mut world = World::fast();
    let mut synth = Synth::setup(
        &mut world,
        RsKind::Hybrid,
        SynthConfig {
            objects: 16,
            writes_per_action: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let g = synth.guardian();
    let mut rng = DetRng::new(9);
    synth.run(&mut world, &mut rng, 100).unwrap();
    world.housekeep(g, HousekeepingMode::Snapshot).unwrap();
    world.crash(g);
    let bounded = world.restart(g).unwrap();
    common::lint_world(&mut world);

    assert!(
        bounded.entries_examined * 4 < unbounded.entries_examined,
        "housekeeping did not bound recovery: {} vs {}",
        bounded.entries_examined,
        unbounded.entries_examined
    );
}

#[test]
fn interleaved_traffic_between_stages() {
    // begin_housekeeping … more commits … finish_housekeeping, repeated, via
    // the world's guardian — exercised at the recovery-system level in the
    // core crate; here end-to-end with crash+restart after each pass.
    let mut world = World::fast();
    let g = world.add_guardian(RsKind::Hybrid).unwrap();
    for round in 0..3i64 {
        for i in 0..10i64 {
            let a = world.begin(g).unwrap();
            world
                .set_stable(g, a, "v", Value::Int(round * 100 + i))
                .unwrap();
            world.commit(a).unwrap();
        }
        world.housekeep(g, HousekeepingMode::Compaction).unwrap();
        world.crash(g);
        world.restart(g).unwrap();
        assert_eq!(
            world.guardian(g).unwrap().stable_value("v"),
            Some(Value::Int(round * 100 + 9)),
            "round {round}"
        );
        common::lint_world(&mut world);
    }
}
