//! Scenario 4 (Figure 3-10): recovery of a guardian that acted both as a
//! participant and as the coordinator of action T2.
//!
//! Log, oldest first:
//!
//! `bc(O1,V1b) · data(O1,at,V1c,T1) · bc(O2,V2b) · prepared(T1) ·
//!  committed(T1) · data(O2,at,V2c,T2) · prepared(T2) ·
//!  committing(T2,[P1,P2,P3]) · committed(T2) · done(T2)`
//!
//! The thesis notes the ordering "prepared, committing, committed, done"
//! that holds when the top-level action commits successfully. Final tables:
//! PT = {T1 committed, T2 committed}; CT = {T2 done}; both objects restored
//! — "Since the table contains no action identifier whose state is
//! committing then no coordinator needs to be restarted."

use argus::core::providers::MemProvider;
use argus::core::{CState, LogEntry, ObjState, PState, RecoverySystem, SimpleLogRs};
use argus::objects::{ActionId, GuardianId, Heap, ObjKind, Uid, Value};

mod common;

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

fn build_log(with_done: bool) -> SimpleLogRs<MemProvider> {
    let (t1, t2) = (aid(1), aid(2));
    let (o1, o2) = (Uid(1), Uid(2));
    let gids = vec![GuardianId(1), GuardianId(2), GuardianId(3)];

    let mut rs = SimpleLogRs::create(MemProvider::fast()).unwrap();
    rs.append_raw(
        &LogEntry::BaseCommitted {
            uid: o1,
            value: Value::Int(10),
            prev: None,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Data {
            uid: o1,
            kind: ObjKind::Atomic,
            value: Value::Int(11),
            aid: t1,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::BaseCommitted {
            uid: o2,
            value: Value::Int(20),
            prev: None,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t1,
            pairs: vec![],
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Committed {
            aid: t1,
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Data {
            uid: o2,
            kind: ObjKind::Atomic,
            value: Value::Int(22),
            aid: t2,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t2,
            pairs: vec![],
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Committing {
            aid: t2,
            gids,
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Committed {
            aid: t2,
            prev: None,
        },
        true,
    )
    .unwrap();
    if with_done {
        rs.append_raw(
            &LogEntry::Done {
                aid: t2,
                prev: None,
            },
            true,
        )
        .unwrap();
    }
    rs
}

#[test]
fn figure_3_10_recovery() {
    let (t1, t2) = (aid(1), aid(2));
    let (o1, o2) = (Uid(1), Uid(2));
    let mut rs = build_log(true);

    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();

    // PT: both actions committed as participants.
    assert_eq!(out.pt.get(t1), Some(PState::Committed));
    assert_eq!(out.pt.get(t2), Some(PState::Committed));
    // CT: T2 done — no coordinator restart needed.
    assert_eq!(out.ct.get(t2), Some(&CState::Done));
    assert!(out.ct.committing_actions().is_empty());

    // OT: both restored to their committed versions.
    assert_eq!(out.ot.get(o1).unwrap().state, ObjState::Restored);
    assert_eq!(out.ot.get(o2).unwrap().state, ObjState::Restored);
    let h1 = out.ot.get(o1).unwrap().heap;
    let h2 = out.ot.get(o2).unwrap().heap;
    assert_eq!(heap.read_value(h1, None).unwrap(), &Value::Int(11));
    assert_eq!(heap.read_value(h2, None).unwrap(), &Value::Int(22));

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn crash_before_done_restarts_the_coordinator() {
    // The §2.2.3 variant: the coordinator crashed after `committing` but
    // before `done` — "upon recovery the action is still committing."
    let t2 = aid(2);
    let mut rs = build_log(false);
    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();
    assert_eq!(
        out.ct.committing_actions(),
        vec![(t2, vec![GuardianId(1), GuardianId(2), GuardianId(3)])]
    );

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn bounded_crash_sweep_of_this_organization_is_clean() {
    // Beyond the figure's scripted crash point: sweep the first few crash
    // points of every victim across the simple log's configuration cells.
    common::bounded_sweep(argus::guardian::RsKind::Simple);
}
