//! Crashes *during* housekeeping and *during* recovery: until the atomic
//! switch, the old log is the truth; a crash at any point of a housekeeping
//! pass must recover the same state as if the pass had never started, and a
//! crash at any device operation of recovery itself must leave a state from
//! which the next recovery converges to the very same tables and heap.

use argus::core::providers::MemProvider;
use argus::core::{HousekeepingMode, HybridLogRs, RecoverySystem, RedoRs, SimpleLogRs};
use argus::guardian::RsKind;
use argus::objects::{ActionId, GuardianId, Heap, Value};
use argus::shadow::ShadowRs;
use argus::sim::{CostModel, SimClock};
use argus::stable::FaultPlan;

mod common;

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

/// Builds a recovery system of the given organization whose whole storage
/// stack shares `plan`.
fn rs_with_plan(kind: RsKind, plan: FaultPlan) -> Box<dyn RecoverySystem> {
    let provider = MemProvider {
        clock: SimClock::new(),
        model: CostModel::fast(),
        plan: Some(plan),
    };
    match kind {
        RsKind::Simple => Box::new(SimpleLogRs::create(provider).unwrap()),
        RsKind::Hybrid => Box::new(HybridLogRs::create(provider).unwrap()),
        RsKind::Shadow => Box::new(ShadowRs::create(provider).unwrap()),
        RsKind::Redo => Box::new(RedoRs::create(provider).unwrap()),
    }
}

/// The housekeeping modes each organization supports (§5.2: the simple log
/// has no map to snapshot from).
fn supported_modes(kind: RsKind) -> &'static [HousekeepingMode] {
    match kind {
        RsKind::Simple | RsKind::Redo => &[HousekeepingMode::Compaction],
        RsKind::Hybrid | RsKind::Shadow => {
            &[HousekeepingMode::Snapshot, HousekeepingMode::Compaction]
        }
    }
}

/// Commits `n` root updates through any recovery system.
fn build_history(
    rs: &mut dyn RecoverySystem,
    heap: &mut Heap,
    n: u64,
) -> Result<(), argus::core::RsError> {
    for i in 0..n {
        let a = aid(i + 1);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a)?;
        heap.write_value(root, a, |v| *v = Value::Int(i as i64))?;
        rs.prepare(a, &[root], heap)?;
        rs.commit(a)?;
        heap.commit_action(a);
    }
    Ok(())
}

/// Recovers and lints, returning the committed root value.
fn recover_and_lint(rs: &mut dyn RecoverySystem) -> Value {
    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();
    if let Some(entries) = rs.dump_log().unwrap() {
        common::lint_entries_against(entries, &out);
    }
    let root = heap.stable_root().unwrap();
    heap.read_value(root, None).unwrap().clone()
}

#[test]
fn crash_mid_housekeeping_recovers_from_the_old_log() {
    // Sweep the crash point through the whole housekeeping pass, for every
    // organization and every mode it supports.
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow, RsKind::Redo] {
        for &mode in supported_modes(kind) {
            let mut fired = 0;
            for budget in 0..400u64 {
                let plan = FaultPlan::new();
                let mut rs = rs_with_plan(kind, plan.clone());
                let mut heap = Heap::with_stable_root();
                build_history(rs.as_mut(), &mut heap, 40).unwrap();

                plan.arm_after_writes(budget);
                let result = rs.housekeeping(&heap, mode);
                plan.heal();
                plan.disarm();
                if result.is_ok() {
                    // Crash fired after the pass (or not at all): covered by
                    // the success-path tests.
                    continue;
                }
                fired += 1;
                assert_eq!(
                    recover_and_lint(rs.as_mut()),
                    Value::Int(39),
                    "{kind:?}/{mode:?} budget={budget}"
                );
            }
            // The new log is written buffered and forced once, and the whole
            // history folds into a couple of pages, so the distinct
            // write-level crash points are few — but each one (new
            // superblock, data pages, final publish) is exercised.
            assert!(
                fired >= 3,
                "{kind:?}/{mode:?}: housekeeping crash injection fired only {fired} times"
            );
        }
    }
}

#[test]
fn crash_between_stages_recovers_from_the_old_log() {
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow, RsKind::Redo] {
        for &mode in supported_modes(kind) {
            let mut rs = rs_with_plan(kind, FaultPlan::new());
            let mut heap = Heap::with_stable_root();
            build_history(rs.as_mut(), &mut heap, 10).unwrap();

            rs.begin_housekeeping(&heap, mode).unwrap();
            // Activity during the window…
            let a = aid(100);
            let root = heap.stable_root().unwrap();
            heap.acquire_write(root, a).unwrap();
            heap.write_value(root, a, |v| *v = Value::Int(777)).unwrap();
            rs.prepare(a, &[root], &heap).unwrap();
            rs.commit(a).unwrap();
            heap.commit_action(a);

            // …then the node dies before finish_housekeeping: the old log
            // (which has the 777 commit) is still the active one.
            assert_eq!(
                recover_and_lint(rs.as_mut()),
                Value::Int(777),
                "{kind:?}/{mode:?}"
            );

            // And a later housekeeping pass over the recovered system works.
            rs.simulate_crash().unwrap();
            let mut heap2 = Heap::new();
            rs.recover(&mut heap2).unwrap();
            rs.housekeeping(&heap2, mode).unwrap();
            assert_eq!(
                recover_and_lint(rs.as_mut()),
                Value::Int(777),
                "{kind:?}/{mode:?} after post-recovery housekeeping"
            );
        }
    }
}

#[test]
fn recovery_is_idempotent() {
    // Recover, then crash immediately (no new work) and recover again: the
    // second recovery must produce the identical stable state and tables —
    // for every organization.
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow, RsKind::Redo] {
        let mut rs = rs_with_plan(kind, FaultPlan::new());
        let mut heap = Heap::with_stable_root();
        build_history(rs.as_mut(), &mut heap, 12).unwrap();
        // Leave one action in doubt, too.
        let a = aid(50);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(-1)).unwrap();
        rs.prepare(a, &[root], &heap).unwrap();

        rs.simulate_crash().unwrap();
        let mut heap1 = Heap::new();
        let out1 = rs.recover(&mut heap1).unwrap();

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out2 = rs.recover(&mut heap2).unwrap();

        assert_eq!(out1.entries_examined, out2.entries_examined, "{kind:?}");
        assert_eq!(out1.data_entries_read, out2.data_entries_read, "{kind:?}");
        assert_eq!(
            out1.pt.prepared_actions(),
            out2.pt.prepared_actions(),
            "{kind:?}"
        );
        assert_eq!(out1.ot.len(), out2.ot.len(), "{kind:?}");
        let r1 = heap1.stable_root().unwrap();
        let r2 = heap2.stable_root().unwrap();
        assert_eq!(
            heap1.read_value(r1, None).unwrap(),
            heap2.read_value(r2, None).unwrap(),
            "{kind:?}"
        );
        assert_eq!(
            heap1.read_value(r1, Some(a)).unwrap(),
            heap2.read_value(r2, Some(a)).unwrap(),
            "{kind:?}"
        );

        if let Some(entries) = rs.dump_log().unwrap() {
            common::lint_entries_against(entries, &out2);
        }
    }
}

#[test]
fn recovery_survives_a_crash_at_every_device_op() {
    // Crash *inside* recovery — at every device operation it performs, reads
    // included — then recover again: the re-run must converge to the same
    // state a never-interrupted recovery produces. Recovery reads through
    // the fault plan, so `arm_after_ops` can land the crash in the middle of
    // the backward scan.
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow, RsKind::Redo] {
        let plan = FaultPlan::new();
        let mut rs = rs_with_plan(kind, plan.clone());
        let mut heap = Heap::with_stable_root();
        build_history(rs.as_mut(), &mut heap, 12).unwrap();
        // An in-doubt prepare keeps the PT non-trivial across recoveries.
        let a = aid(50);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(-1)).unwrap();
        rs.prepare(a, &[root], &heap).unwrap();

        // Reference: an untroubled recovery, and its device-op budget.
        let before = plan.op_counts();
        let reference = recover_and_lint(rs.as_mut());
        let ops = plan.op_counts().since(&before).total();
        assert!(ops > 0, "{kind:?}: recovery must touch the device");

        let mut fired = 0;
        for j in 0..ops {
            plan.arm_after_ops(j);
            let result = rs.simulate_crash().and_then(|()| {
                let mut h = Heap::new();
                rs.recover(&mut h).map(|_| ())
            });
            plan.heal();
            plan.disarm();
            if result.is_err() {
                fired += 1;
            }
            // Whether or not the armed crash fired, the next recovery must
            // reach the reference state.
            assert_eq!(
                recover_and_lint(rs.as_mut()),
                reference,
                "{kind:?}: recovery diverged after a crash at device op {j}"
            );
        }
        assert!(
            fired > 0,
            "{kind:?}: no mid-recovery crash fired in {ops} ops"
        );
    }
}
