//! Crashes *during* housekeeping: until the atomic switch, the old log is
//! the truth; a crash at any point of the pass must recover the same state
//! as if housekeeping had never started.

use argus::core::providers::MemProvider;
use argus::core::{HousekeepingMode, HybridLogRs, RecoverySystem};
use argus::objects::{ActionId, GuardianId, Heap, Value};
use argus::sim::{CostModel, SimClock};
use argus::stable::FaultPlan;

mod common;

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

fn build_history(
    rs: &mut HybridLogRs<MemProvider>,
    heap: &mut Heap,
    n: u64,
) -> Result<(), argus::core::RsError> {
    for i in 0..n {
        let a = aid(i + 1);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a)?;
        heap.write_value(root, a, |v| *v = Value::Int(i as i64))?;
        rs.prepare(a, &[root], heap)?;
        rs.commit(a)?;
        heap.commit_action(a);
    }
    Ok(())
}

#[test]
fn crash_mid_housekeeping_recovers_from_the_old_log() {
    for mode in [HousekeepingMode::Compaction, HousekeepingMode::Snapshot] {
        // Sweep the crash point through the whole housekeeping pass.
        let mut fired = 0;
        for budget in 0..400u64 {
            let plan = FaultPlan::new();
            let provider = MemProvider {
                clock: SimClock::new(),
                model: CostModel::fast(),
                plan: Some(plan.clone()),
            };
            let mut rs = HybridLogRs::create(provider).unwrap();
            let mut heap = Heap::with_stable_root();
            build_history(&mut rs, &mut heap, 40).unwrap();

            plan.arm_after_writes(budget);
            let result = rs.housekeeping(&heap, mode);
            plan.heal();
            plan.disarm();
            if result.is_ok() {
                // Crash fired after the pass (or not at all): covered by
                // the success-path tests.
                continue;
            }
            fired += 1;
            rs.simulate_crash().unwrap();
            let mut heap2 = Heap::new();
            let out = rs.recover(&mut heap2).unwrap();
            let root = heap2.stable_root().unwrap();
            assert_eq!(
                heap2.read_value(root, None).unwrap(),
                &Value::Int(39),
                "{mode:?} budget={budget}"
            );
            common::lint_entries_against(rs.dump_entries().unwrap(), &out);
        }
        // The new log is written buffered and forced once, and the whole
        // history folds into a couple of pages, so the distinct write-level
        // crash points are few — but each one (new superblock, data pages,
        // final publish) is exercised.
        assert!(
            fired >= 3,
            "{mode:?}: housekeeping crash injection fired only {fired} times"
        );
    }
}

#[test]
fn crash_between_stages_recovers_from_the_old_log() {
    for mode in [HousekeepingMode::Compaction, HousekeepingMode::Snapshot] {
        let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
        let mut heap = Heap::with_stable_root();
        build_history(&mut rs, &mut heap, 10).unwrap();

        rs.begin_housekeeping(&heap, mode).unwrap();
        // Activity during the window…
        let a = aid(100);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(777)).unwrap();
        rs.prepare(a, &[root], &heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);

        // …then the node dies before finish_housekeeping: the old log (which
        // has the 777 commit) is still the active one.
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out2 = rs.recover(&mut heap2).unwrap();
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(
            heap2.read_value(root2, None).unwrap(),
            &Value::Int(777),
            "{mode:?}"
        );
        common::lint_entries_against(rs.dump_entries().unwrap(), &out2);

        // And a later housekeeping pass over the recovered system works.
        rs.housekeeping(&heap2, mode).unwrap();
        rs.simulate_crash().unwrap();
        let mut heap3 = Heap::new();
        let out3 = rs.recover(&mut heap3).unwrap();
        let root3 = heap3.stable_root().unwrap();
        assert_eq!(
            heap3.read_value(root3, None).unwrap(),
            &Value::Int(777),
            "{mode:?}"
        );
        common::lint_entries_against(rs.dump_entries().unwrap(), &out3);
    }
}

#[test]
fn recovery_is_idempotent() {
    // Recover, then crash immediately (no new work) and recover again: the
    // second recovery must produce the identical stable state and tables.
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let mut heap = Heap::with_stable_root();
    build_history(&mut rs, &mut heap, 12).unwrap();
    // Leave one action in doubt, too.
    let a = aid(50);
    let root = heap.stable_root().unwrap();
    heap.acquire_write(root, a).unwrap();
    heap.write_value(root, a, |v| *v = Value::Int(-1)).unwrap();
    rs.prepare(a, &[root], &heap).unwrap();

    rs.simulate_crash().unwrap();
    let mut heap1 = Heap::new();
    let out1 = rs.recover(&mut heap1).unwrap();

    rs.simulate_crash().unwrap();
    let mut heap2 = Heap::new();
    let out2 = rs.recover(&mut heap2).unwrap();

    assert_eq!(out1.entries_examined, out2.entries_examined);
    assert_eq!(out1.data_entries_read, out2.data_entries_read);
    assert_eq!(out1.pt.prepared_actions(), out2.pt.prepared_actions());
    assert_eq!(out1.ot.len(), out2.ot.len());
    let r1 = heap1.stable_root().unwrap();
    let r2 = heap2.stable_root().unwrap();
    assert_eq!(
        heap1.read_value(r1, None).unwrap(),
        heap2.read_value(r2, None).unwrap()
    );
    assert_eq!(
        heap1.read_value(r1, Some(a)).unwrap(),
        heap2.read_value(r2, Some(a)).unwrap()
    );

    common::lint_entries_against(rs.dump_entries().unwrap(), &out2);
}
