//! The automatic housekeeping policy: "Whenever the Argus system has
//! determined that enough old information has accumulated on stable storage
//! at a guardian, it calls the housekeeping operation" (§2.3).

use argus::core::HousekeepingMode;
use argus::guardian::{RsKind, World};
use argus::objects::Value;

#[test]
fn policy_keeps_the_log_bounded() {
    let mut world = World::fast();
    let g = world.add_guardian(RsKind::Hybrid).unwrap();
    world
        .set_housekeeping_policy(g, 60, HousekeepingMode::Snapshot)
        .unwrap();

    let mut max_entries = 0;
    for i in 0..200i64 {
        let a = world.begin(g).unwrap();
        world.set_stable(g, a, "v", Value::Int(i)).unwrap();
        world.commit(a).unwrap();
        max_entries = max_entries.max(world.guardian(g).unwrap().log_stats().entries);
    }
    // The log never grows far past the threshold (one commit's worth of
    // slack between checks).
    assert!(
        max_entries < 90,
        "log reached {max_entries} entries despite the policy"
    );

    // And the state is still correct after a crash.
    world.crash(g);
    let outcome = world.restart(g).unwrap();
    assert_eq!(
        world.guardian(g).unwrap().stable_value("v"),
        Some(Value::Int(199))
    );
    // Recovery is bounded too.
    assert!(
        outcome.entries_examined < 200,
        "recovery examined {}",
        outcome.entries_examined
    );
}

#[test]
fn policy_is_per_guardian() {
    let mut world = World::fast();
    let managed = world.add_guardian(RsKind::Hybrid).unwrap();
    let unmanaged = world.add_guardian(RsKind::Hybrid).unwrap();
    world
        .set_housekeeping_policy(managed, 40, HousekeepingMode::Compaction)
        .unwrap();

    for i in 0..80i64 {
        for g in [managed, unmanaged] {
            let a = world.begin(g).unwrap();
            world.set_stable(g, a, "v", Value::Int(i)).unwrap();
            world.commit(a).unwrap();
        }
    }
    let managed_entries = world.guardian(managed).unwrap().log_stats().entries;
    let unmanaged_entries = world.guardian(unmanaged).unwrap().log_stats().entries;
    assert!(
        managed_entries * 3 < unmanaged_entries,
        "policy had no effect: {managed_entries} vs {unmanaged_entries}"
    );
    assert_eq!(
        world.guardian(managed).unwrap().stable_value("v"),
        Some(Value::Int(79))
    );
    assert_eq!(
        world.guardian(unmanaged).unwrap().stable_value("v"),
        Some(Value::Int(79))
    );
}
