//! Soak test: a three-branch bank under sustained traffic with randomly
//! interleaved crashes, restarts, and housekeeping — the "realistic
//! application" run the thesis's ch. 6 calls for, with the global money
//! invariant audited continuously.

use argus::core::HousekeepingMode;
use argus::guardian::{RsKind, World};
use argus::sim::DetRng;
use argus::workload::{Banking, BankingConfig};

fn soak(kind: RsKind, seed: u64) {
    let cfg = BankingConfig {
        guardians: 3,
        accounts_per_guardian: 10,
        initial: 1_000,
        zipf_theta: 0.8,
        cross_prob: 0.5,
        abort_prob: 0.1,
    };
    let mut world = World::fast();
    let bank = Banking::setup(&mut world, kind, cfg).unwrap();
    let expected = bank.expected_total();
    let mut rng = DetRng::new(seed);

    for round in 0..25u64 {
        bank.run(&mut world, &mut rng, 8).unwrap();

        // Random disturbance.
        match rng.gen_range(5) {
            0 => {
                let victim = bank.guardians()[rng.gen_range(3) as usize];
                world.crash(victim);
                world.restart(victim).unwrap();
            }
            1 if kind == RsKind::Hybrid => {
                let g = bank.guardians()[rng.gen_range(3) as usize];
                let mode = if rng.gen_bool(0.5) {
                    HousekeepingMode::Compaction
                } else {
                    HousekeepingMode::Snapshot
                };
                world.housekeep(g, mode).unwrap();
            }
            _ => {}
        }

        // Continuous audit: committed balances always conserve the total.
        assert_eq!(
            bank.total_balance(&world).unwrap(),
            expected,
            "{kind:?} seed {seed} round {round}: money not conserved"
        );
    }

    // Final full-cluster outage and audit.
    for &g in bank.guardians().to_vec().iter() {
        world.crash(g);
    }
    for &g in bank.guardians().to_vec().iter() {
        world.restart(g).unwrap();
    }
    world.run_until_quiet().unwrap();
    world.requery_in_doubt().unwrap();
    assert_eq!(
        bank.total_balance(&world).unwrap(),
        expected,
        "{kind:?} seed {seed}: final audit"
    );
}

#[test]
fn soak_hybrid() {
    for seed in [1u64, 42, 1983] {
        soak(RsKind::Hybrid, seed);
    }
}

#[test]
fn soak_simple() {
    for seed in [1u64, 42] {
        soak(RsKind::Simple, seed);
    }
}

#[test]
fn soak_shadow() {
    for seed in [1u64, 42] {
        soak(RsKind::Shadow, seed);
    }
}
