//! Real-process-restart tests on the durable file backend: commit, drop the
//! recovery system entirely (the "process" exits), reopen the on-disk store
//! in a fresh one, recover, and lint the on-disk log image against the
//! invariant catalogue — for every storage organization.
//!
//! The same flow runs at world level on `MediaKind::File`, where a crash of
//! a guardian is a real loss of unsynced writes rather than a simulated
//! page-state rollback.

mod common;

use argus::core::providers::FileProvider;
use argus::core::{HybridLogRs, RecoveryMode, RecoverySystem, RedoRs, SimpleLogRs};
use argus::guardian::{MediaKind, Outcome, RsKind, World, WorldConfig};
use argus::objects::{ActionId, GuardianId, Heap, Value};
use argus::shadow::ShadowRs;
use argus::sim::CostModel;
use std::path::PathBuf;

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("argus-restart-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Commits `n` root updates (plus one prepared-but-undecided action left
/// in doubt) through any recovery system, returning the heap.
fn build_history(rs: &mut dyn RecoverySystem, n: u64) -> Heap {
    let mut heap = Heap::with_stable_root();
    for i in 0..n {
        let a = aid(i + 1);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(i as i64))
            .unwrap();
        rs.prepare(a, &[root], &heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);
    }
    // One action prepared but not decided: it must come back in doubt.
    let b = aid(1000);
    let root = heap.stable_root().unwrap();
    heap.acquire_write(root, b).unwrap();
    heap.write_value(root, b, |v| *v = Value::from("in-doubt"))
        .unwrap();
    rs.prepare(b, &[root], &heap).unwrap();
    heap
}

/// Recovers in a fresh heap and checks the committed root value plus the
/// in-doubt action's restored lock, then returns the recovery outcome.
fn check_recovered(rs: &mut dyn RecoverySystem, n: u64) -> argus::core::RecoveryOutcome {
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();
    let root = heap.stable_root().unwrap();
    assert_eq!(
        heap.read_value(root, None).unwrap(),
        &Value::Int(n as i64 - 1),
        "committed base value must survive the restart"
    );
    let b = aid(1000);
    assert!(rs.is_prepared(b), "prepared action must come back in doubt");
    assert_eq!(
        heap.read_value(root, Some(b)).unwrap(),
        &Value::from("in-doubt"),
        "the in-doubt action's prepared version must be restored under its lock"
    );
    out
}

#[test]
fn simple_log_reopens_from_disk_and_lints() {
    let dir = temp_dir("simple");
    {
        let provider = FileProvider::new(&dir).unwrap();
        let mut rs = SimpleLogRs::create(provider).unwrap();
        build_history(&mut rs, 6);
        // rs dropped: the process "exits" with the in-doubt prepare forced.
    }
    let mut provider = FileProvider::new(&dir).unwrap();
    let generation = provider.active_generation().unwrap();
    let store = provider.open_store(generation).unwrap();
    let mut rs = SimpleLogRs::open(provider, store).unwrap();
    let out = check_recovered(&mut rs, 6);
    let entries = rs.dump_log().unwrap().expect("simple log keeps a log");
    common::lint_entries_against(entries, &out);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hybrid_log_reopens_from_disk_and_lints() {
    let dir = temp_dir("hybrid");
    {
        let provider = FileProvider::new(&dir).unwrap();
        let mut rs = HybridLogRs::create(provider).unwrap();
        build_history(&mut rs, 6);
    }
    let mut provider = FileProvider::new(&dir).unwrap();
    let generation = provider.active_generation().unwrap();
    let store = provider.open_store(generation).unwrap();
    let mut rs = HybridLogRs::open(provider, store).unwrap();
    let out = check_recovered(&mut rs, 6);
    let entries = rs.dump_log().unwrap().expect("hybrid log keeps a log");
    common::lint_entries_against(entries, &out);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shadowing_reopens_from_disk() {
    // Shadowing keeps a map log of its own record format (no LogEntry
    // image to lint), but the restart contract is the same: drop, reopen,
    // recover committed state and in-doubt intents from disk.
    let dir = temp_dir("shadow");
    {
        let provider = FileProvider::new(&dir).unwrap();
        let mut rs = ShadowRs::create(provider).unwrap();
        build_history(&mut rs, 6);
    }
    let mut provider = FileProvider::new(&dir).unwrap();
    let generation = provider.active_generation().unwrap();
    let store = provider.open_store(generation).unwrap();
    let mut rs = ShadowRs::open(provider, store).unwrap();
    check_recovered(&mut rs, 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn redo_log_reopens_from_disk_in_every_mode_and_lints() {
    // The redo organization restarts from disk in all three recovery modes.
    // On-demand leaves most objects on the log, but this history only ever
    // touches the stable root, which is restored eagerly in every mode, so
    // the same recovered-state checks apply across the modes.
    for mode in [
        RecoveryMode::Full,
        RecoveryMode::Parallel(4),
        RecoveryMode::OnDemand,
    ] {
        let dir = temp_dir(&format!("redo-{mode:?}"));
        {
            let provider = FileProvider::new(&dir).unwrap();
            let mut rs = RedoRs::create(provider).unwrap();
            build_history(&mut rs, 6);
        }
        let mut provider = FileProvider::new(&dir).unwrap();
        let generation = provider.active_generation().unwrap();
        let store = provider.open_store(generation).unwrap();
        let mut rs = RedoRs::open(provider, store).unwrap();
        assert!(rs.set_recovery_mode(mode), "redo supports {mode:?}");
        let out = check_recovered(&mut rs, 6);
        let entries = rs.dump_entries().unwrap();
        common::lint_entries_against(entries, &out);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn world_on_file_media_commits_crashes_and_restarts() {
    // A mixed-organization world on real files: a distributed action across
    // all four organizations commits via 2PC, every guardian crashes (real
    // loss of volatile state), restarts, and the logs still lint clean.
    let cfg = WorldConfig {
        media: MediaKind::File { dir: None },
        ..WorldConfig::default()
    };
    let mut world = World::with_config(CostModel::fast(), cfg);
    let g0 = world.add_guardian(RsKind::Simple).unwrap();
    let g1 = world.add_guardian(RsKind::Hybrid).unwrap();
    let g2 = world.add_guardian(RsKind::Shadow).unwrap();
    let g3 = world.add_guardian(RsKind::Redo).unwrap();

    let action = world.begin(g0).unwrap();
    world.set_stable(g0, action, "left", Value::Int(1)).unwrap();
    world
        .set_stable(g1, action, "middle", Value::Int(2))
        .unwrap();
    world
        .set_stable(g2, action, "right", Value::Int(3))
        .unwrap();
    world.set_stable(g3, action, "redo", Value::Int(4)).unwrap();
    assert_eq!(world.commit(action).unwrap(), Outcome::Committed);

    // An uncommitted write staged after the commit: the crash must drop it.
    let doomed = world.begin(g1).unwrap();
    world
        .set_stable(g1, doomed, "middle", Value::Int(99))
        .unwrap();

    for g in [g0, g1, g2, g3] {
        world.crash(g);
        world.restart(g).unwrap();
    }
    assert_eq!(
        world.guardian(g0).unwrap().stable_value("left"),
        Some(Value::Int(1))
    );
    assert_eq!(
        world.guardian(g1).unwrap().stable_value("middle"),
        Some(Value::Int(2)),
        "the uncommitted overwrite must not survive the crash"
    );
    assert_eq!(
        world.guardian(g2).unwrap().stable_value("right"),
        Some(Value::Int(3))
    );
    assert_eq!(
        world.guardian(g3).unwrap().stable_value("redo"),
        Some(Value::Int(4))
    );
    common::lint_world(&mut world);
}
