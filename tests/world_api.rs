//! World API contract tests: error paths and misuse.

use argus::guardian::{Outcome, RsKind, World, WorldError};
use argus::objects::{GuardianId, Value};

#[test]
fn operations_on_a_down_guardian_are_refused() {
    let mut w = World::fast();
    let g = w.add_guardian(RsKind::Hybrid).unwrap();
    let a = w.begin(g).unwrap();
    w.set_stable(g, a, "x", Value::Int(1)).unwrap();
    w.commit(a).unwrap();

    w.crash(g);
    assert!(matches!(w.begin(g), Err(WorldError::Down(_))));
    let stale = a;
    assert!(matches!(
        w.set_stable(g, stale, "x", Value::Int(2)),
        Err(WorldError::Down(_))
    ));
    assert!(matches!(
        w.create_mutex(g, Value::Unit),
        Err(WorldError::Down(_))
    ));
    // Committing at a down coordinator is Down too.
    assert!(matches!(w.commit(stale), Err(WorldError::Down(_))));

    w.restart(g).unwrap();
    assert_eq!(
        w.guardian(g).unwrap().stable_value("x"),
        Some(Value::Int(1))
    );
}

#[test]
fn unknown_guardians_are_reported() {
    let mut w = World::fast();
    let ghost = GuardianId(42);
    assert!(matches!(w.guardian(ghost), Err(WorldError::NoGuardian(_))));
    assert!(matches!(w.begin(ghost), Err(WorldError::NoGuardian(_))));
    assert!(matches!(
        w.crash_restart_roundtrip(ghost),
        Err(WorldError::NoGuardian(_))
    ));
}

// Helper used above, defined as an extension through a local trait to keep
// the test self-contained.
trait RoundTrip {
    fn crash_restart_roundtrip(&mut self, g: GuardianId) -> argus::guardian::WorldResult<()>;
}

impl RoundTrip for World {
    fn crash_restart_roundtrip(&mut self, g: GuardianId) -> argus::guardian::WorldResult<()> {
        self.guardian(g)?;
        self.crash(g);
        self.restart(g)?;
        Ok(())
    }
}

#[test]
fn lock_conflicts_surface_to_the_caller() {
    let mut w = World::fast();
    let g = w.add_guardian(RsKind::Hybrid).unwrap();
    let a1 = w.begin(g).unwrap();
    let obj = w.create_atomic(g, a1, Value::Int(0)).unwrap();
    w.set_stable(g, a1, "o", Value::heap_ref(obj)).unwrap();
    w.commit(a1).unwrap();

    let obj = match w.guardian(g).unwrap().stable_value("o") {
        Some(Value::Ref(argus::objects::ObjRef::Heap(h))) => h,
        other => panic!("{other:?}"),
    };
    let a2 = w.begin(g).unwrap();
    let a3 = w.begin(g).unwrap();
    w.write_atomic(g, a2, obj, |v| *v = Value::Int(2)).unwrap();
    // a3 cannot write-lock the same object while a2 holds it.
    let denied = w.write_atomic(g, a3, obj, |v| *v = Value::Int(3));
    assert!(matches!(denied, Err(WorldError::Heap(_))));
    // a2 commits; a3 retries and wins.
    assert_eq!(w.commit(a2).unwrap(), Outcome::Committed);
    w.write_atomic(g, a3, obj, |v| *v = Value::Int(3)).unwrap();
    assert_eq!(w.commit(a3).unwrap(), Outcome::Committed);

    let guardian = w.guardian(g).unwrap();
    assert_eq!(guardian.heap.read_value(obj, None).unwrap(), &Value::Int(3));
}

#[test]
fn commit_of_an_empty_action_succeeds() {
    // An action that modified nothing still runs two-phase commit with the
    // coordinator as sole participant (empty MOS prepare).
    let mut w = World::fast();
    let g = w.add_guardian(RsKind::Hybrid).unwrap();
    let a = w.begin(g).unwrap();
    assert_eq!(w.commit(a).unwrap(), Outcome::Committed);
}

#[test]
fn verdicts_are_recorded() {
    let mut w = World::fast();
    let g = w.add_guardian(RsKind::Simple).unwrap();
    let a = w.begin(g).unwrap();
    w.set_stable(g, a, "k", Value::Int(1)).unwrap();
    assert_eq!(w.verdict(a), None);
    w.commit(a).unwrap();
    assert_eq!(w.verdict(a), Some(true));

    let b = w.begin(g).unwrap();
    w.set_stable(g, b, "k", Value::Int(2)).unwrap();
    w.abort_local(b);
    assert_eq!(w.verdict(b), Some(false));
}

#[test]
fn stable_values_are_isolated_until_commit() {
    let mut w = World::fast();
    let g = w.add_guardian(RsKind::Hybrid).unwrap();
    let a = w.begin(g).unwrap();
    w.set_stable(g, a, "k", Value::Int(1)).unwrap();
    w.commit(a).unwrap();

    let b = w.begin(g).unwrap();
    w.set_stable(g, b, "k", Value::Int(2)).unwrap();
    let guardian = w.guardian(g).unwrap();
    // The committed view still shows 1; b's view shows 2.
    assert_eq!(guardian.stable_value("k"), Some(Value::Int(1)));
    assert_eq!(guardian.stable_value_as("k", Some(b)), Some(Value::Int(2)));
    w.commit(b).unwrap();
    assert_eq!(
        w.guardian(g).unwrap().stable_value("k"),
        Some(Value::Int(2))
    );
}
