//! Shared test support: every scenario and housekeeping test ends by
//! linting the log(s) it produced against the invariant catalogue I1–I10 —
//! every up guardian's heap against the stale-lock invariant I11 — and the
//! world's trace against the structural trace invariant I12 — so a
//! regression that leaves a structurally broken log, a leaked lock, or an
//! inconsistent trace fails loudly even when the test's own assertions
//! still pass.

// Each integration-test binary uses a subset of these helpers.
#![allow(dead_code)]

use argus::check::sweep::{sweep, SweepConfig};
use argus::check::{
    assert_heap_quiesced, assert_trace_consistent, lint_log, lint_log_against, LogImage,
};
use argus::core::{LogEntry, RecoveryOutcome};
use argus::guardian::{RsKind, World};
use argus::slog::LogAddress;

/// Lints dumped log entries; panics with the violation report if any
/// invariant is broken.
#[track_caller]
pub fn lint_entries(entries: Vec<(LogAddress, LogEntry)>) {
    lint_log(&LogImage::from_entries(entries)).assert_clean();
}

/// Lints dumped log entries against the tables an actual recovery produced
/// (adds the I10 agreement check).
#[track_caller]
pub fn lint_entries_against(entries: Vec<(LogAddress, LogEntry)>, out: &RecoveryOutcome) {
    lint_log_against(&LogImage::from_entries(entries), out).assert_clean();
}

/// Lints the log of every guardian in `world` that keeps one, and the heap
/// of every guardian that is up against I11 (no stale locks): a lock or
/// buffered current version still owned by a finished action is a leak the
/// scenario's own assertions would never notice.
/// Runs a bounded, deterministic slice of the crash-schedule sweeper for
/// one organization: the first few crash points of every victim, across all
/// of that organization's housekeeping/cache/media cells. Scenario figure
/// tests call this so the organization they exercise is also swept — with
/// crashes at arbitrary write indices, not just the figure's chosen one —
/// on every test run. The full matrix lives in `argus-lint sweep`.
#[track_caller]
pub fn bounded_sweep(kind: RsKind) {
    for mut cfg in SweepConfig::matrix(false, 1) {
        if cfg.kind != kind {
            continue;
        }
        cfg.max_points_per_victim = Some(3);
        sweep(&cfg).assert_clean();
    }
}

#[track_caller]
pub fn lint_world(world: &mut World) {
    let live = world.live_actions();
    for g in world.guardian_ids() {
        if let Some(entries) = world.dump_log(g).unwrap() {
            lint_log(&LogImage::from_entries(entries)).assert_clean();
        }
        if world.is_up(g) {
            assert_heap_quiesced(&world.guardian(g).unwrap().heap, &live);
        }
    }
    // I12: the trace this world recorded is structurally consistent —
    // every opened span closed, per-guardian completion times are
    // monotone, and every resolved flow edge has its start.
    assert_trace_consistent(world.tracer());
}
