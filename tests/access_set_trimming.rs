//! §3.3.3.2 — trimming the accessibility set.
//!
//! "As actions execute… they may make recoverable objects that were once
//! accessible from the stable variables inaccessible. Their uids continue to
//! remain in the accessibility set and so the set grows larger over time…
//! If the set grows too large, then the set should be trimmed."

use argus::core::providers::MemProvider;
use argus::core::{HybridLogRs, RecoverySystem, SimpleLogRs};
use argus::objects::{ActionId, GuardianId, Heap, Value};

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

/// Commits a root update pointing at a fresh object, returning its uid.
fn link_new_object(rs: &mut dyn RecoverySystem, heap: &mut Heap, seq: u64) -> argus::objects::Uid {
    let a = aid(seq);
    let obj = heap.alloc_atomic(Value::Int(seq as i64), Some(a));
    let uid = heap.uid_of(obj).unwrap();
    let root = heap.stable_root().unwrap();
    heap.acquire_write(root, a).unwrap();
    heap.write_value(root, a, |v| *v = Value::heap_ref(obj))
        .unwrap();
    rs.prepare(a, &[root], heap).unwrap();
    rs.commit(a).unwrap();
    heap.commit_action(a);
    uid
}

#[test]
fn trimming_drops_unreachable_uids_hybrid() {
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let mut heap = Heap::with_stable_root();
    // Each update replaces the root's single reference, orphaning the
    // previous object — the AS keeps growing anyway.
    let uids: Vec<_> = (1..=8)
        .map(|i| link_new_object(&mut rs, &mut heap, i))
        .collect();
    for uid in &uids {
        assert!(rs.access_set().contains(uid));
    }

    rs.trim_access_set(&heap);
    // Only the last object is still reachable.
    for uid in &uids[..7] {
        assert!(!rs.access_set().contains(uid), "{uid} should be trimmed");
    }
    assert!(rs.access_set().contains(&uids[7]));
    assert!(rs.access_set().contains(&argus::objects::Uid::STABLE_ROOT));
}

#[test]
fn trimming_preserves_correct_recovery() {
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let mut heap = Heap::with_stable_root();
    for i in 1..=5 {
        link_new_object(&mut rs, &mut heap, i);
    }
    rs.trim_access_set(&heap);

    // A trimmed-away object that becomes reachable again is treated as
    // newly accessible (written with base_committed) — still correct.
    let last = link_new_object(&mut rs, &mut heap, 6);
    rs.simulate_crash().unwrap();
    let mut heap2 = Heap::new();
    rs.recover(&mut heap2).unwrap();
    let h = heap2.lookup(last).unwrap();
    assert_eq!(heap2.read_value(h, None).unwrap(), &Value::Int(6));
    let root = heap2.stable_root().unwrap();
    assert_eq!(heap2.read_value(root, None).unwrap(), &Value::heap_ref(h));
}

#[test]
fn trimming_works_on_the_simple_log_too() {
    let mut rs = SimpleLogRs::create(MemProvider::fast()).unwrap();
    let mut heap = Heap::with_stable_root();
    let uids: Vec<_> = (1..=4)
        .map(|i| link_new_object(&mut rs, &mut heap, i))
        .collect();
    rs.trim_access_set(&heap);
    assert!(!rs.access_set().contains(&uids[0]));
    assert!(rs.access_set().contains(&uids[3]));
}

#[test]
fn trimming_never_admits_new_uids() {
    // The intersection rule: an object reachable in the heap but never
    // written to the log (newly accessible, unprepared) must NOT enter the
    // AS through trimming.
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let mut heap = Heap::with_stable_root();
    link_new_object(&mut rs, &mut heap, 1);

    // An in-progress action links a brand-new object but has not prepared.
    let a = aid(99);
    let fresh = heap.alloc_atomic(Value::Int(0), Some(a));
    let fresh_uid = heap.uid_of(fresh).unwrap();
    let root = heap.stable_root().unwrap();
    heap.acquire_write(root, a).unwrap();
    heap.write_value(root, a, |v| *v = Value::heap_ref(fresh))
        .unwrap();

    rs.trim_access_set(&heap);
    assert!(
        !rs.access_set().contains(&fresh_uid),
        "unprepared newly-accessible object leaked into the AS"
    );
    // When the action finally prepares, the object is handled through the
    // NAOS path and gets its base_committed entry.
    rs.prepare(a, &[root], &heap).unwrap();
    assert!(rs.access_set().contains(&fresh_uid));
}
