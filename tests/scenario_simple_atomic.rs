//! Scenario 1 (Figure 3-7): simple-log recovery of atomic objects.
//!
//! The log, oldest entry first:
//!
//! `bc(O1,V1) · bc(O2,V2) · data(O2,atomic,V2c,T1) · prepared(T1) ·
//!  committed(T1) · data(O1,atomic,V1c,T2) · prepared(T2)` — then a crash.
//!
//! T1 committed; T2 prepared and is in doubt. Expected tables (thesis):
//! PT = {T1: committed, T2: prepared}; OT = {O1 restored, O2 restored}; O1
//! carries T2's current version under T2's write lock with the
//! base-committed V1 as its base.

use argus::core::providers::MemProvider;
use argus::core::{LogEntry, ObjState, PState, RecoverySystem, SimpleLogRs};
use argus::objects::{ActionId, GuardianId, Heap, ObjKind, ObjectBody, Uid, Value};

mod common;

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

#[test]
fn figure_3_7_recovery() {
    let t1 = aid(1);
    let t2 = aid(2);
    let o1 = Uid(1);
    let o2 = Uid(2);

    let mut rs = SimpleLogRs::create(MemProvider::fast()).unwrap();
    rs.append_raw(
        &LogEntry::BaseCommitted {
            uid: o1,
            value: Value::Int(1),
            prev: None,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::BaseCommitted {
            uid: o2,
            value: Value::Int(2),
            prev: None,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Data {
            uid: o2,
            kind: ObjKind::Atomic,
            value: Value::Int(22),
            aid: t1,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t1,
            pairs: vec![],
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Committed {
            aid: t1,
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Data {
            uid: o1,
            kind: ObjKind::Atomic,
            value: Value::Int(11),
            aid: t2,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t2,
            pairs: vec![],
            prev: None,
        },
        true,
    )
    .unwrap();

    // Crash and recover.
    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();

    // PT exactly as in the thesis's closing table.
    assert_eq!(out.pt.get(t1), Some(PState::Committed));
    assert_eq!(out.pt.get(t2), Some(PState::Prepared));
    assert_eq!(out.pt.len(), 2);

    // OT: both objects restored.
    assert_eq!(out.ot.get(o1).unwrap().state, ObjState::Restored);
    assert_eq!(out.ot.get(o2).unwrap().state, ObjState::Restored);
    assert_eq!(out.ot.len(), 2);

    // O1: base = bc version V1; current = T2's prepared version, write-locked.
    let h1 = out.ot.get(o1).unwrap().heap;
    match &heap.get(h1).unwrap().body {
        ObjectBody::Atomic(obj) => {
            assert_eq!(obj.base, Value::Int(1));
            assert_eq!(obj.current, Some(Value::Int(11)));
            assert_eq!(obj.writer, Some(t2));
        }
        _ => panic!("O1 must be atomic"),
    }
    // O2: T1 committed → its version is the base; the older bc(V2) ignored.
    let h2 = out.ot.get(o2).unwrap().heap;
    match &heap.get(h2).unwrap().body {
        ObjectBody::Atomic(obj) => {
            assert_eq!(obj.base, Value::Int(22));
            assert_eq!(obj.current, None);
        }
        _ => panic!("O2 must be atomic"),
    }

    // T2 remains in the PAT after recovery: it must await the verdict.
    assert!(rs.is_prepared(t2));
    assert!(!rs.is_prepared(t1));

    // The stable counter is reset past the largest restored uid (§3.2).
    assert!(heap.next_uid() > 2);

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn figure_3_7_all_entries_are_examined_by_the_simple_scan() {
    // The defining inefficiency of the simple log: every one of the 7
    // entries is read.
    let t1 = aid(1);
    let mut rs = SimpleLogRs::create(MemProvider::fast()).unwrap();
    for _ in 0..3 {
        rs.append_raw(
            &LogEntry::Data {
                uid: Uid(1),
                kind: ObjKind::Atomic,
                value: Value::Int(0),
                aid: t1,
            },
            false,
        )
        .unwrap();
    }
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t1,
            pairs: vec![],
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Committed {
            aid: t1,
            prev: None,
        },
        true,
    )
    .unwrap();

    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();
    assert_eq!(out.entries_examined, 5);
    assert_eq!(out.data_entries_read, 3);

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn bounded_crash_sweep_of_this_organization_is_clean() {
    // Beyond the figure's scripted crash point: sweep the first few crash
    // points of every victim across the simple log's configuration cells.
    common::bounded_sweep(argus::guardian::RsKind::Simple);
}
