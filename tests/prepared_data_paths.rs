//! End-to-end coverage of the `prepared_data` special entry (§3.3.3.2):
//! action B modifies an object that is inaccessible, prepares (so the object
//! is not on the log), and then action A makes that object newly accessible.
//! A's prepare must write both the base version (`base_committed`, needed if
//! B aborts) and B's current version (`prepared_data`, needed if B commits).

use argus::core::providers::MemProvider;
use argus::core::{HousekeepingMode, HybridLogRs, PState, RecoverySystem, SimpleLogRs};
use argus::objects::{ActionId, GuardianId, Heap, ObjectBody, Uid, Value};

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

/// Builds the §3.3.3.2 situation on `rs` and returns (heap, x_uid, b).
///
/// History: X exists but is unreachable. B write-locks X, modifies it, and
/// prepares (X is inaccessible, so nothing about X reaches the log). A then
/// links X into the root and prepares; A commits. Crash.
fn build(rs: &mut dyn RecoverySystem) -> (Heap, Uid, ActionId) {
    let mut heap = Heap::with_stable_root();
    let b = aid(2);
    let a = aid(3);

    // X: allocated and committed earlier by some action but never linked
    // from the stable variables — i.e. inaccessible.
    let x = heap.alloc_atomic(Value::Int(10), None);
    let x_uid = heap.uid_of(x).unwrap();

    // B modifies X and prepares. The MOS contains X but X is inaccessible:
    // nothing is written for it; B's prepare record still lands.
    heap.acquire_write(x, b).unwrap();
    heap.write_value(x, b, |v| *v = Value::Int(20)).unwrap();
    rs.prepare(b, &[x], &heap).unwrap();

    // A makes X newly accessible and prepares, then commits.
    let root = heap.stable_root().unwrap();
    heap.acquire_write(root, a).unwrap();
    heap.write_value(root, a, |v| *v = Value::heap_ref(x))
        .unwrap();
    rs.prepare(a, &[root], &heap).unwrap();
    rs.commit(a).unwrap();
    heap.commit_action(a);

    (heap, x_uid, b)
}

fn check_in_doubt(rs: &mut dyn RecoverySystem, x_uid: Uid, b: ActionId) {
    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();
    // B is still in doubt; X carries both versions under B's write lock.
    assert_eq!(out.pt.get(b), Some(PState::Prepared));
    let h = heap.lookup(x_uid).unwrap();
    match &heap.get(h).unwrap().body {
        ObjectBody::Atomic(obj) => {
            assert_eq!(obj.base, Value::Int(10), "base from base_committed");
            assert_eq!(
                obj.current,
                Some(Value::Int(20)),
                "current from prepared_data"
            );
            assert_eq!(obj.writer, Some(b));
        }
        _ => panic!("X must be atomic"),
    }
}

#[test]
fn in_doubt_writer_simple_log() {
    let mut rs = SimpleLogRs::create(MemProvider::fast()).unwrap();
    let (_heap, x_uid, b) = build(&mut rs);
    check_in_doubt(&mut rs, x_uid, b);
}

#[test]
fn in_doubt_writer_hybrid_log() {
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let (_heap, x_uid, b) = build(&mut rs);
    check_in_doubt(&mut rs, x_uid, b);
}

#[test]
fn committed_writer_installs_the_prepared_data_version() {
    for use_hybrid in [false, true] {
        let mut simple;
        let mut hybrid;
        let rs: &mut dyn RecoverySystem = if use_hybrid {
            hybrid = HybridLogRs::create(MemProvider::fast()).unwrap();
            &mut hybrid
        } else {
            simple = SimpleLogRs::create(MemProvider::fast()).unwrap();
            &mut simple
        };
        let (mut heap, x_uid, b) = build(rs);
        // B commits before the crash.
        rs.commit(b).unwrap();
        heap.commit_action(b);

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(
            out.pt.get(b),
            Some(PState::Committed),
            "hybrid={use_hybrid}"
        );
        let h = heap2.lookup(x_uid).unwrap();
        // The prepared_data version is now the committed state of X.
        assert_eq!(
            heap2.read_value(h, None).unwrap(),
            &Value::Int(20),
            "hybrid={use_hybrid}"
        );
    }
}

#[test]
fn aborted_writer_falls_back_to_the_base_committed_version() {
    for use_hybrid in [false, true] {
        let mut simple;
        let mut hybrid;
        let rs: &mut dyn RecoverySystem = if use_hybrid {
            hybrid = HybridLogRs::create(MemProvider::fast()).unwrap();
            &mut hybrid
        } else {
            simple = SimpleLogRs::create(MemProvider::fast()).unwrap();
            &mut simple
        };
        let (mut heap, x_uid, b) = build(rs);
        rs.abort(b).unwrap();
        heap.abort_action(b);

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.pt.get(b), Some(PState::Aborted), "hybrid={use_hybrid}");
        let h = heap2.lookup(x_uid).unwrap();
        // B's modification is gone; the base survives — "the base version is
        // needed in case B aborts".
        assert_eq!(
            heap2.read_value(h, None).unwrap(),
            &Value::Int(10),
            "hybrid={use_hybrid}"
        );
        match &heap2.get(h).unwrap().body {
            ObjectBody::Atomic(obj) => assert!(obj.current.is_none() && obj.writer.is_none()),
            _ => panic!("X must be atomic"),
        }
    }
}

#[test]
fn prepared_data_survives_compaction_while_in_doubt() {
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let (heap, x_uid, b) = build(&mut rs);
    // Compact while B is still in doubt: the pd entry must be preserved.
    rs.housekeeping(&heap, HousekeepingMode::Compaction)
        .unwrap();
    check_in_doubt(&mut rs, x_uid, b);
}

#[test]
fn prepared_data_survives_snapshot_while_in_doubt() {
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let (heap, x_uid, b) = build(&mut rs);
    rs.housekeeping(&heap, HousekeepingMode::Snapshot).unwrap();
    check_in_doubt(&mut rs, x_uid, b);
}

#[test]
fn compaction_folds_committed_prepared_data_into_the_checkpoint() {
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let (mut heap, x_uid, b) = build(&mut rs);
    rs.commit(b).unwrap();
    heap.commit_action(b);
    rs.housekeeping(&heap, HousekeepingMode::Compaction)
        .unwrap();

    rs.simulate_crash().unwrap();
    let mut heap2 = Heap::new();
    rs.recover(&mut heap2).unwrap();
    let h = heap2.lookup(x_uid).unwrap();
    assert_eq!(heap2.read_value(h, None).unwrap(), &Value::Int(20));
}
