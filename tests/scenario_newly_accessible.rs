//! Scenario S1 (Figure 3-5 / Figure 3-6): the *writing* side of newly
//! accessible objects — what actually lands on the log when actions make
//! objects reachable from the stable variables.

use argus::core::providers::MemProvider;
use argus::core::{HybridLogRs, LogEntry, RecoverySystem, SimpleLogRs};
use argus::objects::{ActionId, GuardianId, Heap, ObjKind, Uid, Value};

mod common;

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

/// Builds the Figure 3-6 heap: X → O1 → O2; T1 write-locks O2 and points it
/// at a freshly created O3 (read-locked by T1). Returns (heap, o2, uids).
fn figure_3_6_heap(t1: ActionId) -> (Heap, argus::objects::HeapId, Uid, Uid) {
    let mut heap = Heap::new();
    let o3 = heap.alloc_atomic(Value::Int(3), Some(t1));
    let o2 = heap.alloc_atomic(Value::Unit, None);
    heap.acquire_write(o2, t1).unwrap();
    heap.write_value(o2, t1, |v| *v = Value::heap_ref(o3))
        .unwrap();
    let uid2 = heap.uid_of(o2).unwrap();
    let uid3 = heap.uid_of(o3).unwrap();
    (heap, o2, uid2, uid3)
}

#[test]
fn figure_3_6_simple_log_entries() {
    let t1 = aid(1);
    let (heap, o2, _uid2, _uid3) = figure_3_6_heap(t1);

    let mut rs = SimpleLogRs::create(MemProvider::fast()).unwrap();
    // Make O2 previously accessible: pretend an earlier epoch wrote it by
    // seeding the AS through a first prepare of O2 alone... the cleanest way
    // is to run the scenario exactly: O2 accessible, O3 not. Achieve it by
    // preparing a no-op action that writes O2 while it is reachable from
    // the root.
    // Simpler: drive the real prepare and check the emitted entries.
    // Our AS starts with only the stable root, so bind O2 into the AS first.
    // (The writer unit tests cover the pure-AS variant; here we check the
    // log bytes end to end.)
    let t0 = aid(0);
    let mut setup_heap = Heap::with_stable_root();
    let s_o3 = setup_heap.alloc_atomic(Value::Int(3), Some(t1));
    let s_o2 = setup_heap.alloc_atomic(Value::Unit, None);
    let root = setup_heap.stable_root().unwrap();
    setup_heap.acquire_write(root, t0).unwrap();
    setup_heap
        .write_value(root, t0, |v| *v = Value::heap_ref(s_o2))
        .unwrap();
    rs.prepare(t0, &[root], &setup_heap).unwrap();
    rs.commit(t0).unwrap();
    setup_heap.commit_action(t0);

    // Now T1 modifies O2 to point at the new O3 and prepares.
    setup_heap.acquire_write(s_o2, t1).unwrap();
    setup_heap
        .write_value(s_o2, t1, |v| *v = Value::heap_ref(s_o3))
        .unwrap();
    let uid2 = setup_heap.uid_of(s_o2).unwrap();
    let uid3 = setup_heap.uid_of(s_o3).unwrap();
    rs.prepare(t1, &[s_o2], &setup_heap).unwrap();

    // The T1 section of the log must be: data(O2,…,T1) · bc(O3) ·
    // prepared(T1) — the §3.3.3.2 walkthrough's steps 4, 5 and 6.
    let entries: Vec<LogEntry> = rs
        .dump_entries()
        .unwrap()
        .into_iter()
        .map(|(_, e)| e)
        .collect();
    let t1_section: Vec<&LogEntry> = entries
        .iter()
        .filter(|e| match e {
            LogEntry::Data { aid, .. } => *aid == t1,
            LogEntry::BaseCommitted { uid, .. } => *uid == uid3,
            LogEntry::Prepared { aid, .. } => *aid == t1,
            _ => false,
        })
        .collect();
    assert_eq!(t1_section.len(), 3);
    match t1_section[0] {
        LogEntry::Data {
            uid,
            kind: ObjKind::Atomic,
            value,
            aid,
        } => {
            assert_eq!(*uid, uid2);
            assert_eq!(*aid, t1);
            // The copied version references O3 by uid (flattened form).
            assert_eq!(value, &Value::uid_ref(uid3));
        }
        other => panic!("expected the O2 data entry, got {other:?}"),
    }
    match t1_section[1] {
        LogEntry::BaseCommitted { uid, value, .. } => {
            assert_eq!(*uid, uid3);
            assert_eq!(value, &Value::Int(3));
        }
        other => panic!("expected bc(O3), got {other:?}"),
    }
    assert!(matches!(t1_section[2], LogEntry::Prepared { .. }));

    // Step 7: "The AS now consists of object uids O1, O2, O3" — here root,
    // O2, O3.
    assert!(rs.access_set().contains(&Uid::STABLE_ROOT));
    assert!(rs.access_set().contains(&uid2));
    assert!(rs.access_set().contains(&uid3));

    // Silence unused warnings from the illustrative first construction.
    let _ = (heap, o2, uid2, uid3);

    common::lint_entries(rs.dump_entries().unwrap());
}

#[test]
fn figure_3_6_hybrid_log_entries() {
    // Same history on the hybrid log: the data entry is anonymous, the bc
    // is chained, and the prepared entry carries the (uid, address) pair.
    let (t0, t1) = (aid(0), aid(1));
    let mut heap = Heap::with_stable_root();
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();

    let o3 = heap.alloc_atomic(Value::Int(3), Some(t1));
    let o2 = heap.alloc_atomic(Value::Unit, None);
    let root = heap.stable_root().unwrap();
    heap.acquire_write(root, t0).unwrap();
    heap.write_value(root, t0, |v| *v = Value::heap_ref(o2))
        .unwrap();
    rs.prepare(t0, &[root], &heap).unwrap();
    rs.commit(t0).unwrap();
    heap.commit_action(t0);

    heap.acquire_write(o2, t1).unwrap();
    heap.write_value(o2, t1, |v| *v = Value::heap_ref(o3))
        .unwrap();
    let uid2 = heap.uid_of(o2).unwrap();
    let uid3 = heap.uid_of(o3).unwrap();
    rs.prepare(t1, &[o2], &heap).unwrap();

    let entries = rs.dump_entries().unwrap();
    // Find T1's prepared entry and check its map fragment names O2 and the
    // address of a DataH entry holding the flattened version.
    let (_, prepared) = entries
        .iter()
        .find(|(_, e)| matches!(e, LogEntry::Prepared { aid, .. } if *aid == t1))
        .expect("prepared(T1) on the log");
    let pairs = match prepared {
        LogEntry::Prepared { pairs, .. } => pairs.clone(),
        _ => unreachable!(),
    };
    assert_eq!(pairs.len(), 1);
    assert_eq!(pairs[0].0, uid2);
    let data_addr = pairs[0].1;
    let (_, data) = entries
        .iter()
        .find(|(a, _)| *a == data_addr)
        .expect("pair resolves");
    match data {
        LogEntry::DataH {
            kind: ObjKind::Atomic,
            value,
        } => {
            assert_eq!(value, &Value::uid_ref(uid3));
        }
        other => panic!("expected DataH, got {other:?}"),
    }
    // The bc for O3 is a chained outcome entry.
    assert!(entries.iter().any(
        |(_, e)| matches!(e, LogEntry::BaseCommitted { uid, value, .. } if *uid == uid3 && value == &Value::Int(3))
    ));

    common::lint_entries(entries);
}
