//! End-to-end tests of the causal tracing stack (`argus-trace`):
//!
//! * **Determinism** — the same seed yields byte-identical Chrome trace
//!   exports and identical obs-journal snapshots, for both the distributed
//!   banking mix and E16's contended 3-guardian 2PC mix. Determinism is
//!   what makes a trace diffable: a perf or scheduling regression shows up
//!   as a trace diff, not a shrug.
//! * **I12** — the structural trace lint is green over real workloads
//!   (`common::lint_world` runs it, like I1–I11).
//! * **Flight recorder** — a dump round-trips the export byte for byte and
//!   lands where the violation text says it does.

mod common;

use argus::guardian::{CcPolicy, RsKind, World, WorldConfig};
use argus::sim::{CostModel, DetRng};
use argus::workload::{Banking, BankingConfig, Contended, ContendedConfig};

/// Runs the distributed banking mix under a fresh registry + tracer scope;
/// returns the Chrome trace bytes and the journal snapshot (as text).
fn traced_banking(seed: u64) -> (String, String) {
    let reg = argus::obs::Registry::new();
    let _scope = reg.enter();
    let tracer = argus::trace::current();
    tracer.set_detail(argus::trace::Detail::Device);
    let mut world = World::new(CostModel::default());
    let bank = Banking::setup(
        &mut world,
        RsKind::Hybrid,
        BankingConfig {
            guardians: 3,
            cross_prob: 1.0,
            abort_prob: 0.1,
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = DetRng::new(seed);
    bank.run(&mut world, &mut rng, 30).unwrap();
    assert_eq!(bank.total_balance(&world).unwrap(), bank.expected_total());
    common::lint_world(&mut world);
    (
        argus::trace::to_chrome_json(&tracer.events()),
        format!("{:?}", reg.journal().snapshot()),
    )
}

/// Runs the lock-contended single-guardian mix under the blocking policy;
/// its trace carries real `cc` lock-wait spans naming the holder.
fn traced_contended(seed: u64) -> (String, String) {
    let reg = argus::obs::Registry::new();
    let _scope = reg.enter();
    let tracer = argus::trace::current();
    let mut world = World::with_config(
        CostModel::default(),
        WorldConfig::with_cc(CcPolicy::Blocking),
    );
    let mix = Contended::setup(
        &mut world,
        RsKind::Hybrid,
        ContendedConfig {
            concurrency: 6,
            transfers_per_slot: 5,
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = DetRng::new(seed);
    let stats = mix.run(&mut world, &mut rng).unwrap();
    assert!(stats.committed > 0);
    common::lint_world(&mut world);
    (
        argus::trace::to_chrome_json(&tracer.events()),
        format!("{:?}", reg.journal().snapshot()),
    )
}

#[test]
fn same_seed_banking_runs_are_byte_identical() {
    let (t1, j1) = traced_banking(42);
    let (t2, j2) = traced_banking(42);
    assert_eq!(j1, j2, "journal snapshots must be identical");
    assert_eq!(t1, t2, "trace bytes must be identical");
    assert!(t1.contains("\"traceEvents\""));
}

#[test]
fn same_seed_contended_runs_are_byte_identical() {
    let (t1, j1) = traced_contended(9);
    let (t2, j2) = traced_contended(9);
    assert_eq!(j1, j2, "journal snapshots must be identical");
    assert_eq!(t1, t2, "trace bytes must be identical");
    // Real contention reached the trace: some action waited on a lock.
    assert!(t1.contains("\"lock_wait\""), "no lock_wait span recorded");
}

#[test]
fn different_seeds_produce_different_traces() {
    let (t1, _) = traced_banking(1);
    let (t2, _) = traced_banking(2);
    assert_ne!(t1, t2, "seed must steer the schedule");
}

#[test]
fn e16_mix_trace_is_deterministic_and_fully_attributed() {
    let run = || {
        let reg = argus::obs::Registry::new();
        let _scope = reg.enter();
        let (lats, start) = argus_bench::e16_run(RsKind::Hybrid, 3);
        // e16_run asserts segment_sum == total per action; re-check the
        // committed measured set is non-trivial here.
        assert!(lats.iter().any(|a| a.committed && a.start >= start));
        (
            argus::trace::to_chrome_json(&argus::trace::current().events()),
            format!("{:?}", reg.journal().snapshot()),
        )
    };
    let (t1, j1) = run();
    let (t2, j2) = run();
    assert_eq!(j1, j2, "journal snapshots must be identical");
    assert_eq!(t1, t2, "trace bytes must be identical");
}

#[test]
fn flight_dump_round_trips_the_export() {
    let reg = argus::obs::Registry::new();
    let _scope = reg.enter();
    let tracer = argus::trace::current();
    let mut world = World::new(CostModel::default());
    let bank = Banking::setup(&mut world, RsKind::Hybrid, BankingConfig::default()).unwrap();
    let mut rng = DetRng::new(3);
    bank.run(&mut world, &mut rng, 10).unwrap();
    let events = tracer.events();
    assert!(!events.is_empty());
    let json = argus::trace::to_chrome_json(&events);

    let path = argus::trace::flight::dump("trace-observability-roundtrip", &events).unwrap();
    assert!(path.exists());
    let round = std::fs::read_to_string(&path).unwrap();
    assert_eq!(round, json, "flight dump must be the exact export");
    assert_eq!(
        round.matches('{').count(),
        round.matches('}').count(),
        "dump must be balanced JSON"
    );
    std::fs::remove_file(path).unwrap();
}
