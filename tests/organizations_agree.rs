//! Cross-organization equivalence: the simple log, the hybrid log, the
//! shadowing baseline, and the redo log must recover identical stable
//! states from identical histories — the organizations differ in cost,
//! never in meaning.

use argus::guardian::{RsKind, World};
use argus::objects::{ObjRef, Value};
use argus::sim::DetRng;
use argus::workload::{Banking, BankingConfig, Reservations, ReservationsConfig};

fn bank_balances(seed: u64, kind: RsKind) -> Vec<i64> {
    let mut world = World::fast();
    let cfg = BankingConfig {
        guardians: 2,
        accounts_per_guardian: 8,
        initial: 500,
        zipf_theta: 0.4,
        cross_prob: 0.5,
        abort_prob: 0.1,
    };
    let bank = Banking::setup(&mut world, kind, cfg).unwrap();
    let mut rng = DetRng::new(seed);
    bank.run(&mut world, &mut rng, 60).unwrap();
    for &g in bank.guardians().to_vec().iter() {
        world.crash(g);
        world.restart(g).unwrap();
    }
    let mut balances = Vec::new();
    for &g in bank.guardians() {
        let guardian = world.guardian(g).unwrap();
        for i in 0..8 {
            match guardian.stable_value(&format!("acct{i}")) {
                Some(Value::Ref(ObjRef::Heap(h))) => {
                    match guardian.heap.read_value(h, None).unwrap() {
                        Value::Int(b) => balances.push(*b),
                        other => panic!("{other:?}"),
                    }
                }
                other => panic!("{other:?}"),
            }
        }
    }
    balances
}

#[test]
fn banking_histories_recover_identically() {
    for seed in [1u64, 2, 3] {
        let simple = bank_balances(seed, RsKind::Simple);
        let hybrid = bank_balances(seed, RsKind::Hybrid);
        let shadow = bank_balances(seed, RsKind::Shadow);
        let redo = bank_balances(seed, RsKind::Redo);
        assert_eq!(simple, hybrid, "seed {seed}: simple vs hybrid");
        assert_eq!(hybrid, shadow, "seed {seed}: hybrid vs shadow");
        assert_eq!(shadow, redo, "seed {seed}: shadow vs redo");
        // And the invariant holds.
        assert_eq!(simple.iter().sum::<i64>(), 2 * 8 * 500, "seed {seed}");
    }
}

#[test]
fn reservations_recover_identically() {
    let mut results = Vec::new();
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow, RsKind::Redo] {
        let mut world = World::fast();
        let resv = Reservations::setup(
            &mut world,
            kind,
            ReservationsConfig {
                flights: 3,
                seats: 10,
            },
        )
        .unwrap();
        let mut rng = DetRng::new(77);
        let stats = resv.run(&mut world, &mut rng, 25).unwrap();
        world.crash(resv.guardian());
        world.restart(resv.guardian()).unwrap();
        results.push((
            stats,
            resv.booked_seats(&world).unwrap(),
            resv.audit_len(&world).unwrap(),
        ));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
    assert_eq!(results[2], results[3]);
    // Seats and audit trail agree with each other.
    let (stats, seats, audit) = results[0];
    assert_eq!(stats.booked, seats);
    assert_eq!(seats, audit);
}
