//! Group-commit equivalence properties: a world whose guardians batch log
//! forces behaves — observably and on stable storage — exactly like one
//! that forces every entry immediately.
//!
//! Driven by the in-tree deterministic RNG (`argus_sim::DetRng`) with fixed
//! seeds; the identical op sequence is replayed against a batched and an
//! unbatched world, so any divergence is a real semantic difference
//! introduced by the force scheduler, not workload noise.

mod common;

use argus::core::{CState, PState};
use argus::guardian::{Outcome, RsKind, World, WorldConfig};
use argus::objects::{ActionId, GuardianId, HeapId, ObjRef, Value};
use argus::sim::{CostModel, DetRng};
use std::collections::BTreeMap;

const OBJECTS: usize = 16;

fn obj_name(i: usize) -> String {
    format!("obj{i}")
}

/// One guardian with `OBJECTS` committed atomic objects bound to stable
/// names.
fn setup(kind: RsKind, cfg: WorldConfig) -> (World, GuardianId, Vec<HeapId>) {
    let mut world = World::with_config(CostModel::fast(), cfg);
    let g = world.add_guardian(kind).expect("guardian");
    let aid = world.begin(g).expect("begin");
    let mut objs = Vec::new();
    for i in 0..OBJECTS {
        let h = world.create_atomic(g, aid, Value::Int(0)).expect("create");
        world
            .set_stable(g, aid, &obj_name(i), Value::heap_ref(h))
            .expect("bind");
        objs.push(h);
    }
    assert_eq!(world.commit(aid).expect("setup"), Outcome::Committed);
    (world, g, objs)
}

/// Replays a deterministic workload of rounds of concurrent actions
/// (disjoint object sets, launched together so batched worlds coalesce
/// their forces) plus occasional local aborts. Returns the committed
/// action ids.
fn run_workload(
    world: &mut World,
    g: GuardianId,
    objs: &[HeapId],
    seed: u64,
    rounds: usize,
) -> Vec<ActionId> {
    let mut rng = DetRng::new(seed);
    let mut committed = Vec::new();
    for _ in 0..rounds {
        let group = rng.gen_between(1, 4) as usize;
        // Partition the object space so concurrent actions never contend.
        let per = OBJECTS / 4;
        let aids: Vec<ActionId> = (0..group).map(|_| world.begin(g).expect("begin")).collect();
        for (i, &aid) in aids.iter().enumerate() {
            for j in 0..rng.gen_between(1, per as u64) as usize {
                let h = objs[i * per + j];
                let v = rng.next_u64() as i64;
                world
                    .write_atomic(g, aid, h, move |slot| *slot = Value::Int(v))
                    .expect("write");
            }
        }
        // Occasionally abandon the last action before two-phase commit.
        let abort_last = group > 1 && rng.gen_bool(0.2);
        let committing = if abort_last {
            let (last, rest) = aids.split_last().expect("group nonempty");
            world.abort_local(*last);
            rest
        } else {
            &aids[..]
        };
        for &aid in committing {
            world.commit_start(aid).expect("start");
        }
        for &aid in committing {
            assert_eq!(
                world.commit_settle(aid).expect("settle"),
                Outcome::Committed
            );
            committed.push(aid);
        }
    }
    committed
}

/// The observable stable state: every stable name's resolved integer value.
fn stable_image(world: &World, g: GuardianId) -> BTreeMap<String, i64> {
    let guardian = world.guardian(g).expect("guardian");
    (0..OBJECTS)
        .map(|i| {
            let name = obj_name(i);
            let h = match guardian.stable_value(&name) {
                Some(Value::Ref(ObjRef::Heap(h))) => h,
                other => panic!("{name} unresolved: {other:?}"),
            };
            let v = match guardian.heap.read_value(h, None) {
                Ok(Value::Int(v)) => *v,
                other => panic!("{name} bad value: {other:?}"),
            };
            (name, v)
        })
        .collect()
}

/// Batched and unbatched worlds running the identical workload commit the
/// same actions, keep lint-clean logs (I1–I9), and — after a crash — recover
/// byte-identical participant/coordinator tables and stable values, with
/// the recovered tables agreeing with the log (I10).
#[test]
fn batched_world_recovers_identically_to_unbatched() {
    for kind in [RsKind::Simple, RsKind::Hybrid] {
        for seed in 0..8u64 {
            let mut images = Vec::new();
            for cfg in [WorldConfig::unbatched(), WorldConfig::default()] {
                let (mut world, g, objs) = setup(kind, cfg);
                let committed = run_workload(&mut world, g, &objs, seed, 12);
                common::lint_world(&mut world);

                world.crash(g);
                let outcome = world.restart(g).expect("recover");
                let entries = world.dump_log(g).expect("dump").expect("log organization");
                common::lint_entries_against(entries, &outcome);

                let pt: BTreeMap<ActionId, PState> =
                    outcome.pt.iter().map(|(a, s)| (*a, *s)).collect();
                let ct: BTreeMap<ActionId, CState> =
                    outcome.ct.iter().map(|(a, s)| (*a, s.clone())).collect();
                for aid in &committed {
                    assert_eq!(
                        pt.get(aid),
                        Some(&PState::Committed),
                        "{kind:?} seed {seed}: {aid:?} not committed after recovery"
                    );
                }
                images.push((committed.clone(), pt, ct, stable_image(&world, g)));
            }
            let (unbatched, batched) = (&images[0], &images[1]);
            assert_eq!(
                unbatched.0, batched.0,
                "{kind:?} seed {seed}: commit sets differ"
            );
            assert_eq!(unbatched.1, batched.1, "{kind:?} seed {seed}: PT differs");
            assert_eq!(unbatched.2, batched.2, "{kind:?} seed {seed}: CT differs");
            assert_eq!(
                unbatched.3, batched.3,
                "{kind:?} seed {seed}: stable values differ"
            );
        }
    }
}

/// Batching strictly reduces (never increases) device forces for the same
/// workload, while committing the same actions.
#[test]
fn batching_never_adds_forces() {
    for kind in [RsKind::Simple, RsKind::Hybrid] {
        let mut forces = Vec::new();
        for cfg in [WorldConfig::unbatched(), WorldConfig::default()] {
            let (mut world, g, objs) = setup(kind, cfg);
            let before = world.guardian(g).expect("guardian").log_stats().device;
            run_workload(&mut world, g, &objs, 99, 10);
            let delta = world
                .guardian(g)
                .expect("guardian")
                .log_stats()
                .device
                .since(&before);
            forces.push(delta.forces);
        }
        assert!(
            forces[1] <= forces[0],
            "{kind:?}: batching increased forces ({} > {})",
            forces[1],
            forces[0]
        );
    }
}
