//! S10: the lock manager under the `World` — FIFO blocking and wake-up,
//! shared grants, upgrade bypass, deadlock victim selection, lock-wait
//! timeout, crash draining, in-doubt lock re-grant after recovery, and
//! same-seed determinism of the contended mix. Every scenario ends with the
//! I1–I11 lint hook.

mod common;

use argus::guardian::{CcFate, CcOutcome, CcPolicy, Outcome, RsKind, World, WorldConfig};
use argus::objects::{GuardianId, HeapId, ObjRef, Value};
use argus::sim::{CostModel, DetRng};
use argus::workload::{Contended, ContendedConfig};

fn world(policy: CcPolicy) -> World {
    World::with_config(CostModel::fast(), WorldConfig::with_cc(policy))
}

/// One guardian with one committed `Seq([])` object every test can write.
fn seq_setup(policy: CcPolicy) -> (World, GuardianId, HeapId) {
    let mut w = world(policy);
    let g = w.add_guardian(RsKind::Hybrid).unwrap();
    let setup = w.begin(g).unwrap();
    let h = w.create_atomic(g, setup, Value::Seq(vec![])).unwrap();
    w.set_stable(g, setup, "obj", Value::heap_ref(h)).unwrap();
    assert_eq!(w.commit(setup).unwrap(), Outcome::Committed);
    (w, g, h)
}

fn push(k: i64) -> impl FnOnce(&mut Value) + 'static {
    move |v| {
        if let Value::Seq(items) = v {
            items.push(Value::Int(k));
        }
    }
}

fn seq_of(w: &World, g: GuardianId, h: HeapId) -> Vec<i64> {
    match w.guardian(g).unwrap().heap.read_value(h, None).unwrap() {
        Value::Seq(items) => items
            .iter()
            .map(|v| match v {
                Value::Int(n) => *n,
                other => panic!("non-int item {other:?}"),
            })
            .collect(),
        other => panic!("not a seq: {other:?}"),
    }
}

#[test]
fn blocked_writers_wake_in_fifo_order() {
    let (mut w, g, h) = seq_setup(CcPolicy::Blocking);
    let a1 = w.begin(g).unwrap();
    let a2 = w.begin(g).unwrap();
    let a3 = w.begin(g).unwrap();
    assert_eq!(
        w.submit_write_atomic(g, a1, h, push(1)).unwrap(),
        CcOutcome::Done
    );
    assert_eq!(
        w.submit_write_atomic(g, a2, h, push(2)).unwrap(),
        CcOutcome::Parked
    );
    assert_eq!(
        w.submit_write_atomic(g, a3, h, push(3)).unwrap(),
        CcOutcome::Parked
    );
    assert_eq!(w.cc_waiter_count(), 2);

    // a1's commit releases the write lock; exactly the queue head wakes.
    assert_eq!(w.commit(a1).unwrap(), Outcome::Committed);
    assert!(!w.cc_blocked(a2), "queue head not granted on release");
    assert!(w.cc_blocked(a3), "second waiter overtook the FIFO queue");
    assert_eq!(w.commit(a2).unwrap(), Outcome::Committed);
    assert!(!w.cc_blocked(a3));
    assert_eq!(w.commit(a3).unwrap(), Outcome::Committed);

    // The buffered writes ran in grant order.
    assert_eq!(seq_of(&w, g, h), vec![1, 2, 3]);
    common::lint_world(&mut w);
}

#[test]
fn compatible_readers_wake_together() {
    let (mut w, g, h) = seq_setup(CcPolicy::Blocking);
    let writer = w.begin(g).unwrap();
    let r1 = w.begin(g).unwrap();
    let r2 = w.begin(g).unwrap();
    assert_eq!(
        w.submit_write_atomic(g, writer, h, push(1)).unwrap(),
        CcOutcome::Done
    );
    assert_eq!(w.submit_read(g, r1, h).unwrap(), CcOutcome::Parked);
    assert_eq!(w.submit_read(g, r2, h).unwrap(), CcOutcome::Parked);

    // Both shared requests are compatible: one release wakes them both.
    assert_eq!(w.commit(writer).unwrap(), Outcome::Committed);
    assert!(!w.cc_blocked(r1) && !w.cc_blocked(r2));
    // The grant is the read lock; the re-issued read sees the committed
    // value (read-only participants still commit to release their locks).
    assert_eq!(w.read(g, r1, h).unwrap(), Value::Seq(vec![Value::Int(1)]));
    assert_eq!(w.commit(r1).unwrap(), Outcome::Committed);
    assert_eq!(w.commit(r2).unwrap(), Outcome::Committed);
    common::lint_world(&mut w);
}

#[test]
fn upgrade_bypasses_the_queue() {
    let (mut w, g, h) = seq_setup(CcPolicy::Blocking);
    let reader = w.begin(g).unwrap();
    let other = w.begin(g).unwrap();
    assert_eq!(w.submit_read(g, reader, h).unwrap(), CcOutcome::Done);
    assert_eq!(
        w.submit_write_atomic(g, other, h, push(9)).unwrap(),
        CcOutcome::Parked
    );
    // The sole reader upgrades in place rather than queueing behind the
    // parked writer — queueing would deadlock against its own read lock.
    assert_eq!(
        w.submit_write_atomic(g, reader, h, push(1)).unwrap(),
        CcOutcome::Done
    );
    assert_eq!(w.commit(reader).unwrap(), Outcome::Committed);
    assert!(!w.cc_blocked(other));
    assert_eq!(w.commit(other).unwrap(), Outcome::Committed);
    assert_eq!(seq_of(&w, g, h), vec![1, 9]);
    common::lint_world(&mut w);
}

#[test]
fn deadlock_breaks_with_the_youngest_as_victim() {
    let (mut w, g, x) = seq_setup(CcPolicy::Blocking);
    let setup = w.begin(g).unwrap();
    let y = w.create_atomic(g, setup, Value::Seq(vec![])).unwrap();
    w.set_stable(g, setup, "obj2", Value::heap_ref(y)).unwrap();
    assert_eq!(w.commit(setup).unwrap(), Outcome::Committed);

    let a1 = w.begin(g).unwrap();
    let a2 = w.begin(g).unwrap();
    assert_eq!(
        w.submit_write_atomic(g, a1, x, push(1)).unwrap(),
        CcOutcome::Done
    );
    assert_eq!(
        w.submit_write_atomic(g, a2, y, push(2)).unwrap(),
        CcOutcome::Done
    );
    assert_eq!(
        w.submit_write_atomic(g, a1, y, push(1)).unwrap(),
        CcOutcome::Parked
    );
    // a2 → x closes the cycle; the youngest action (a2) is the victim and
    // its abort unblocks a1 immediately.
    assert_eq!(
        w.submit_write_atomic(g, a2, x, push(2)).unwrap(),
        CcOutcome::Parked
    );
    assert_eq!(w.cc_fate(a2), Some(CcFate::Victim));
    assert!(w.cc_fate(a1).is_none());
    assert!(
        !w.cc_blocked(a1),
        "survivor still parked after victim abort"
    );

    let reports = w.cc_deadlock_reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].victim, a2);
    assert!(reports[0].cycle.contains(&a1) && reports[0].cycle.contains(&a2));

    assert_eq!(w.commit(a1).unwrap(), Outcome::Committed);
    assert_eq!(seq_of(&w, g, x), vec![1]);
    assert_eq!(seq_of(&w, g, y), vec![1]);
    common::lint_world(&mut w);
}

#[test]
fn lock_wait_expires_at_the_deadline() {
    let (mut w, g, h) = seq_setup(CcPolicy::Timeout);
    let holder = w.begin(g).unwrap();
    let waiter = w.begin(g).unwrap();
    assert_eq!(
        w.submit_write_atomic(g, holder, h, push(1)).unwrap(),
        CcOutcome::Done
    );
    assert_eq!(
        w.submit_write_atomic(g, waiter, h, push(2)).unwrap(),
        CcOutcome::Parked
    );
    let deadline = w.cc_next_deadline().expect("parked wait has a deadline");
    assert!(deadline > w.clock.now());

    // Nothing expires before the deadline…
    assert!(!w.cc_tick());
    assert!(w.cc_blocked(waiter));
    // …and exactly the due waiter expires at it.
    w.clock.advance_to(deadline);
    assert!(w.cc_tick());
    assert_eq!(w.cc_fate(waiter), Some(CcFate::TimedOut));
    assert!(!w.cc_blocked(waiter));

    assert_eq!(w.commit(holder).unwrap(), Outcome::Committed);
    assert_eq!(seq_of(&w, g, h), vec![1]);
    common::lint_world(&mut w);
}

#[test]
fn crash_drains_waiters_parked_on_the_dead_heap() {
    let mut w = world(CcPolicy::Blocking);
    let g0 = w.add_guardian(RsKind::Hybrid).unwrap();
    let g1 = w.add_guardian(RsKind::Hybrid).unwrap();
    let setup = w.begin(g1).unwrap();
    let h = w.create_atomic(g1, setup, Value::Seq(vec![])).unwrap();
    w.set_stable(g1, setup, "obj", Value::heap_ref(h)).unwrap();
    assert_eq!(w.commit(setup).unwrap(), Outcome::Committed);

    let holder = w.begin(g0).unwrap();
    let waiter = w.begin(g0).unwrap();
    assert_eq!(
        w.submit_write_atomic(g1, holder, h, push(1)).unwrap(),
        CcOutcome::Done
    );
    assert_eq!(
        w.submit_write_atomic(g1, waiter, h, push(2)).unwrap(),
        CcOutcome::Parked
    );

    // The guardian holding the contested object dies: the lock (and the
    // whole volatile heap) is gone, so the parked request must not hang.
    w.crash(g1);
    assert!(!w.cc_blocked(waiter), "waiter still parked on a dead heap");
    assert_eq!(w.cc_fate(waiter), Some(CcFate::CrashDrained));
    assert_eq!(w.cc_waiter_count(), 0);

    // The holder's in-flight action cannot commit its g1 write any more;
    // abort it and bring the guardian back.
    w.abort_local(holder);
    w.restart(g1).unwrap();
    assert_eq!(seq_of(&w, g1, h), Vec::<i64>::new());
    common::lint_world(&mut w);
}

/// Crash both sides of a distributed transfer after the participant logged
/// `prepared` but before it learned the verdict; restart only the
/// participant. Recovery must re-grant the in-doubt action's write lock, a
/// new writer must queue behind it, and the coordinator's return must
/// resolve the action, release the lock, and wake the waiter.
fn in_doubt_regrant(kind: RsKind) {
    let mut witnessed = false;
    for budget in 0..150u64 {
        let mut w = world(CcPolicy::Blocking);
        let g0 = w.add_guardian(kind).unwrap();
        let g1 = w.add_guardian(kind).unwrap();
        for (g, name) in [(g0, "a0"), (g1, "a1")] {
            let setup = w.begin(g).unwrap();
            let h = w.create_atomic(g, setup, Value::Int(100)).unwrap();
            w.set_stable(g, setup, name, Value::heap_ref(h)).unwrap();
            assert_eq!(w.commit(setup).unwrap(), Outcome::Committed);
        }
        let resolve = |w: &World, g: GuardianId, name: &str| -> HeapId {
            match w.guardian(g).unwrap().stable_value(name) {
                Some(Value::Ref(ObjRef::Heap(h))) => h,
                other => panic!("unresolved {name}: {other:?}"),
            }
        };

        let a = w.begin(g0).unwrap();
        let h0 = resolve(&w, g0, "a0");
        let h1 = resolve(&w, g1, "a1");
        w.write_atomic(g0, a, h0, |v| {
            if let Value::Int(n) = v {
                *n -= 30;
            }
        })
        .unwrap();
        w.write_atomic(g1, a, h1, |v| {
            if let Value::Int(n) = v {
                *n += 30;
            }
        })
        .unwrap();
        w.arm_crash_after_writes(g1, budget).unwrap();
        let _ = w.commit(a).unwrap();
        if w.is_up(g1) {
            continue; // the budget outlived the whole commit
        }
        w.crash(g1);
        w.crash(g0); // verdict source gone: the participant stays in doubt
        w.restart(g1).unwrap();
        w.run_until_quiet().unwrap();

        let h1 = resolve(&w, g1, "a1");
        if !w.guardian(g1).unwrap().heap.holds_lock(h1, a) {
            continue; // crashed outside the prepared-but-unresolved window
        }
        witnessed = true;

        // The in-doubt action holds the re-granted write lock; a new writer
        // queues behind it instead of seizing the object.
        let b = w.begin(g1).unwrap();
        assert_eq!(
            w.submit_write_atomic(g1, b, h1, |v| {
                if let Value::Int(n) = v {
                    *n += 1;
                }
            })
            .unwrap(),
            CcOutcome::Parked,
            "{kind:?} budget {budget}: new writer did not queue behind the in-doubt holder"
        );

        // The coordinator returns; two-phase commit resolves the in-doubt
        // action either way, releasing its locks and waking the waiter.
        w.restart(g0).unwrap();
        w.run_until_quiet().unwrap();
        w.requery_in_doubt().unwrap();
        assert!(
            !w.cc_blocked(b),
            "{kind:?} budget {budget}: waiter still parked after resolution"
        );
        assert!(w.cc_fate(b).is_none());
        assert_eq!(w.commit(b).unwrap(), Outcome::Committed);
        let balance = match w.guardian(g1).unwrap().heap.read_value(h1, None).unwrap() {
            Value::Int(n) => *n,
            other => panic!("bad balance {other:?}"),
        };
        assert!(
            balance == 131 || balance == 101,
            "{kind:?} budget {budget}: split balance {balance}"
        );
        common::lint_world(&mut w);
    }
    assert!(
        witnessed,
        "{kind:?}: no crash budget produced an in-doubt participant"
    );
}

#[test]
fn in_doubt_holder_keeps_its_lock_after_recovery_simple() {
    in_doubt_regrant(RsKind::Simple);
}

#[test]
fn in_doubt_holder_keeps_its_lock_after_recovery_hybrid() {
    in_doubt_regrant(RsKind::Hybrid);
}

#[test]
fn contended_mix_is_deterministic_across_runs() {
    for policy in [
        CcPolicy::ConflictAbort,
        CcPolicy::Blocking,
        CcPolicy::Timeout,
    ] {
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut w = world(policy);
            let mix = Contended::setup(&mut w, RsKind::Hybrid, ContendedConfig::default()).unwrap();
            let mut rng = DetRng::new(99);
            let stats = mix.run(&mut w, &mut rng).unwrap();
            assert_eq!(mix.total_balance(&w).unwrap(), mix.expected_total());
            let balances: Vec<Value> = (0..8)
                .map(|i| {
                    let h = match w
                        .guardian(mix.guardian())
                        .unwrap()
                        .stable_value(&format!("hot{i}"))
                    {
                        Some(Value::Ref(ObjRef::Heap(h))) => h,
                        other => panic!("unresolved hot{i}: {other:?}"),
                    };
                    w.guardian(mix.guardian())
                        .unwrap()
                        .heap
                        .read_value(h, None)
                        .unwrap()
                        .clone()
                })
                .collect();
            common::lint_world(&mut w);
            runs.push((stats, balances));
        }
        // Same seed ⇒ identical schedule (commit order), abort set, and
        // final tables (per-account balances).
        assert_eq!(runs[0], runs[1], "{policy:?}");
    }
}
