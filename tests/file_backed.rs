//! The hybrid log over real files: the `FileProvider` allocates a numbered
//! store file per log generation, so housekeeping's "new log supplants the
//! old" happens across actual files on disk.

use argus::core::providers::FileProvider;
use argus::core::{HousekeepingMode, HybridLogRs, RecoverySystem};
use argus::objects::{ActionId, GuardianId, Heap, Value};
use std::path::PathBuf;

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("argus-filetest-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn commits_and_recovery_on_real_files() {
    let dir = temp_dir("basic");
    let provider = FileProvider::new(&dir).unwrap();
    let mut rs = HybridLogRs::create(provider).unwrap();
    let mut heap = Heap::with_stable_root();
    for i in 0..5 {
        let a = aid(i + 1);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(i as i64))
            .unwrap();
        rs.prepare(a, &[root], &heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);
    }

    rs.simulate_crash().unwrap();
    let mut heap2 = Heap::new();
    rs.recover(&mut heap2).unwrap();
    let root = heap2.stable_root().unwrap();
    assert_eq!(heap2.read_value(root, None).unwrap(), &Value::Int(4));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn housekeeping_switches_to_a_new_file() {
    let dir = temp_dir("housekeeping");
    let provider = FileProvider::new(&dir).unwrap();
    let mut rs = HybridLogRs::create(provider).unwrap();
    let mut heap = Heap::with_stable_root();
    for i in 0..20 {
        let a = aid(i + 1);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(i as i64))
            .unwrap();
        rs.prepare(a, &[root], &heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);
    }
    let before = rs.log().stable_bytes();
    rs.housekeeping(&heap, HousekeepingMode::Snapshot).unwrap();
    assert!(rs.log().stable_bytes() < before / 3);

    // Two generations on disk.
    let files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        files.len() >= 2,
        "expected two log generations, found {files:?}"
    );

    rs.simulate_crash().unwrap();
    let mut heap2 = Heap::new();
    rs.recover(&mut heap2).unwrap();
    let root = heap2.stable_root().unwrap();
    assert_eq!(heap2.read_value(root, None).unwrap(), &Value::Int(19));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopen_from_file_in_a_new_recovery_system() {
    // Full "new process" flow: create, commit, drop the rs entirely, then
    // open the same store file in a fresh recovery system.
    let dir = temp_dir("reopen");
    {
        let provider = FileProvider::new(&dir).unwrap();
        let mut rs = HybridLogRs::create(provider).unwrap();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::from("durable"))
            .unwrap();
        rs.prepare(a, &[root], &heap).unwrap();
        rs.commit(a).unwrap();
        // rs dropped here: the process "exits".
    }
    {
        let mut provider = FileProvider::new(&dir).unwrap();
        let generation = provider.active_generation().unwrap();
        let store = provider.open_store(generation).unwrap();
        let mut rs = HybridLogRs::open(provider, store).unwrap();
        let mut heap = Heap::new();
        rs.recover(&mut heap).unwrap();
        let root = heap.stable_root().unwrap();
        assert_eq!(
            heap.read_value(root, None).unwrap(),
            &Value::from("durable")
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn log_root_names_the_active_generation_across_restarts() {
    // Commit, housekeep twice (two generation switches), "exit the
    // process", and reopen purely through the stable root file.
    let dir = temp_dir("root-switch");
    {
        let provider = FileProvider::new(&dir).unwrap();
        let mut rs = HybridLogRs::create(provider).unwrap();
        let mut heap = Heap::with_stable_root();
        for i in 0..8 {
            let a = aid(i + 1);
            let root = heap.stable_root().unwrap();
            heap.acquire_write(root, a).unwrap();
            heap.write_value(root, a, |v| *v = Value::Int(i as i64))
                .unwrap();
            rs.prepare(a, &[root], &heap).unwrap();
            rs.commit(a).unwrap();
            heap.commit_action(a);
        }
        rs.housekeeping(&heap, HousekeepingMode::Snapshot).unwrap();
        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
    }
    {
        let mut provider = FileProvider::new(&dir).unwrap();
        let generation = provider.active_generation().unwrap();
        assert_eq!(generation, 2, "two housekeeping passes → generation 2");
        let store = provider.open_store(generation).unwrap();
        let mut rs = HybridLogRs::open(provider, store).unwrap();
        let mut heap = Heap::new();
        rs.recover(&mut heap).unwrap();
        let root = heap.stable_root().unwrap();
        assert_eq!(heap.read_value(root, None).unwrap(), &Value::Int(7));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
