//! Seeded-corruption tests for the argus-check linter: each test
//! hand-builds a structurally broken log and asserts that `lint_log`
//! reports exactly the violated invariant — no more, no less. The last
//! tests drive the same corruptions through the `argus-lint` CLI on a
//! file-backed log.

use argus::check::{detect_flavor, lint_log, Flavor, Invariant, LintReport, LogImage};
use argus::core::{encode_entry, LogEntry};
use argus::objects::{ActionId, GuardianId, ObjKind, Uid, Value};
use argus::sim::{CostModel, SimClock};
use argus::slog::{LogAddress, StableLog};
use argus::stable::{MemStore, PageStore};

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

fn mem_log() -> StableLog<MemStore> {
    StableLog::create(MemStore::new(SimClock::new(), CostModel::fast())).unwrap()
}

fn force<S: PageStore>(log: &mut StableLog<S>, entry: &LogEntry) -> LogAddress {
    log.force_write(&encode_entry(entry).unwrap()).unwrap()
}

fn lint<S: PageStore>(log: &mut StableLog<S>) -> LintReport {
    lint_log(&LogImage::from_log(log))
}

/// Asserts the report flags `invariant` and nothing else.
#[track_caller]
fn assert_only(report: &LintReport, invariant: Invariant) {
    assert!(
        report.has(invariant),
        "expected a {} violation, got:\n{report}",
        invariant.code()
    );
    assert!(
        report.violations.iter().all(|v| v.invariant == invariant),
        "expected only {} violations, got:\n{report}",
        invariant.code()
    );
}

// ---- I1: well-formedness --------------------------------------------------

#[test]
fn undecodable_record_trips_i1() {
    let mut log = mem_log();
    force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![],
            prev: None,
        },
    );
    log.force_write(b"\xff\xffnot a log entry").unwrap();
    let report = lint(&mut log);
    assert_only(&report, Invariant::I1WellFormed);
}

// ---- I2: the backward chain must terminate --------------------------------

#[test]
fn truncated_outcome_chain_trips_i2() {
    // The chain head's prev points below the oldest surviving record — the
    // tail of the chain was truncated away.
    let mut log = mem_log();
    force(
        &mut log,
        &LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Int(1),
        },
    );
    force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![],
            prev: Some(LogAddress(3)),
        },
    );
    let report = lint(&mut log);
    assert_eq!(detect_flavor(&LogImage::from_log(&mut log)), Flavor::Hybrid);
    assert_only(&report, Invariant::I2ChainTerminates);
}

#[test]
fn non_decreasing_chain_pointer_trips_i2() {
    // A prev pointer at or above its own entry would loop recovery forever.
    let mut log = mem_log();
    let d = force(
        &mut log,
        &LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Int(1),
        },
    );
    let p = force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![(Uid(1), d)],
            prev: None,
        },
    );
    force(
        &mut log,
        &LogEntry::Committed {
            aid: aid(1),
            // Points at itself-or-later instead of back at the prepare.
            prev: Some(LogAddress(p.offset() + 10_000)),
        },
    );
    let report = lint(&mut log);
    assert!(report.has(Invariant::I2ChainTerminates), "{report}");
}

// ---- I3: the chain must hold exactly the outcome entries ------------------

#[test]
fn outcome_entry_off_the_chain_trips_i3() {
    // committed(T1) never links the older prepared(T1): recovery would walk
    // straight past the prepare and T1's versions would be lost.
    let mut log = mem_log();
    let d = force(
        &mut log,
        &LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Int(1),
        },
    );
    force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![(Uid(1), d)],
            prev: None,
        },
    );
    force(
        &mut log,
        &LogEntry::Committed {
            aid: aid(1),
            prev: None, // should be Some(prepared's address)
        },
    );
    let report = lint(&mut log);
    assert!(report.has(Invariant::I3ChainComplete), "{report}");
}

// ---- I4 / I5 / I6: outcome pairing ----------------------------------------

#[test]
fn verdict_without_prepare_trips_i4() {
    let mut log = mem_log();
    let p = force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![],
            prev: None,
        },
    );
    // committed(T2) — but only T1 ever prepared here.
    force(
        &mut log,
        &LogEntry::Committed {
            aid: aid(2),
            prev: Some(p),
        },
    );
    let report = lint(&mut log);
    assert_only(&report, Invariant::I4OutcomeMatched);
}

#[test]
fn both_verdicts_trip_i5() {
    let mut log = mem_log();
    let p = force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![],
            prev: None,
        },
    );
    let c = force(
        &mut log,
        &LogEntry::Committed {
            aid: aid(1),
            prev: Some(p),
        },
    );
    force(
        &mut log,
        &LogEntry::Aborted {
            aid: aid(1),
            prev: Some(c),
        },
    );
    let report = lint(&mut log);
    assert_only(&report, Invariant::I5VerdictConsistent);
}

#[test]
fn done_without_committing_trips_i6() {
    let mut log = mem_log();
    force(
        &mut log,
        &LogEntry::Done {
            aid: aid(1),
            prev: None,
        },
    );
    let report = lint(&mut log);
    assert_only(&report, Invariant::I6CoordinatorPaired);
}

// ---- I7: the shadow map must resolve --------------------------------------

#[test]
fn dangling_shadow_pair_trips_i7() {
    // The prepared entry's pair points below itself, but no entry lives
    // there — the version it shadows is gone.
    let mut log = mem_log();
    force(
        &mut log,
        &LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Int(1),
        },
    );
    force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![(Uid(1), LogAddress(5))],
            prev: None,
        },
    );
    let report = lint(&mut log);
    assert_only(&report, Invariant::I7ShadowResolves);
}

#[test]
fn forward_shadow_pair_trips_i7() {
    // A pair pointing at or above its own prepared entry can never have
    // been written by the real writer (data entries go out first, §4.2).
    let mut log = mem_log();
    let d = force(
        &mut log,
        &LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Int(1),
        },
    );
    force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![(Uid(1), LogAddress(d.offset() + 10_000))],
            prev: None,
        },
    );
    let report = lint(&mut log);
    assert_only(&report, Invariant::I7ShadowResolves);
}

#[test]
fn shadow_pair_at_non_data_entry_trips_i7() {
    let mut log = mem_log();
    let p0 = force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![],
            prev: None,
        },
    );
    force(
        &mut log,
        &LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Int(1),
        },
    );
    // The pair resolves to the older *prepared* entry, not a data entry.
    force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(2),
            pairs: vec![(Uid(1), p0)],
            prev: Some(p0),
        },
    );
    let report = lint(&mut log);
    assert_only(&report, Invariant::I7ShadowResolves);
}

#[test]
fn corrupted_redo_backlink_trips_i7() {
    // A redo record's backlink must point strictly below itself at an older
    // record of the same object; a forward link can never have been written
    // by the real sink (the chain head is stamped from the previous head).
    let mut log = mem_log();
    let d1 = force(
        &mut log,
        &LogEntry::DataR {
            uid: Uid(1),
            kind: ObjKind::Atomic,
            aid: aid(1),
            back: None,
            value: Value::Int(1),
        },
    );
    force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![],
            prev: None,
        },
    );
    force(
        &mut log,
        &LogEntry::Committed {
            aid: aid(1),
            prev: None,
        },
    );
    force(
        &mut log,
        &LogEntry::DataR {
            uid: Uid(1),
            kind: ObjKind::Atomic,
            aid: aid(2),
            back: Some(LogAddress(d1.offset() + 10_000)),
            value: Value::Int(2),
        },
    );
    force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(2),
            pairs: vec![],
            prev: None,
        },
    );
    force(
        &mut log,
        &LogEntry::Committed {
            aid: aid(2),
            prev: None,
        },
    );
    let image = LogImage::from_log(&mut log);
    assert_eq!(detect_flavor(&image), Flavor::Redo);
    let report = lint_log(&image);
    assert_only(&report, Invariant::I7ShadowResolves);
}

#[test]
fn redo_backlink_to_wrong_object_trips_i7() {
    // The backlink resolves to a record, but for a different object: the
    // chain would replay another object's version on a chain hop.
    let mut log = mem_log();
    let other = force(
        &mut log,
        &LogEntry::DataR {
            uid: Uid(2),
            kind: ObjKind::Atomic,
            aid: aid(1),
            back: None,
            value: Value::Int(9),
        },
    );
    force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![],
            prev: None,
        },
    );
    force(
        &mut log,
        &LogEntry::Committed {
            aid: aid(1),
            prev: None,
        },
    );
    force(
        &mut log,
        &LogEntry::DataR {
            uid: Uid(1),
            kind: ObjKind::Atomic,
            aid: aid(2),
            back: Some(other),
            value: Value::Int(2),
        },
    );
    force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(2),
            pairs: vec![],
            prev: None,
        },
    );
    force(
        &mut log,
        &LogEntry::Committed {
            aid: aid(2),
            prev: None,
        },
    );
    let report = lint(&mut log);
    assert_only(&report, Invariant::I7ShadowResolves);
}

// ---- I8: one version per object per pair list -----------------------------

#[test]
fn duplicate_uid_trips_i8() {
    let mut log = mem_log();
    let d1 = force(
        &mut log,
        &LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Int(1),
        },
    );
    let d2 = force(
        &mut log,
        &LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Int(2),
        },
    );
    force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![(Uid(1), d1), (Uid(1), d2)],
            prev: None,
        },
    );
    let report = lint(&mut log);
    assert_only(&report, Invariant::I8UidsUnique);
}

// ---- I9: accessibility closure --------------------------------------------

#[test]
fn unclosed_accessibility_set_trips_i9() {
    // O1's committed version references O2, but no entry in the log can
    // restore O2: the restorable set is not closed (§3.3.3.2).
    let mut log = mem_log();
    force(
        &mut log,
        &LogEntry::BaseCommitted {
            uid: Uid(1),
            value: Value::uid_ref(Uid(2)),
            prev: None,
        },
    );
    let report = lint(&mut log);
    assert_only(&report, Invariant::I9AccessClosed);
}

#[test]
fn closed_accessibility_set_is_clean() {
    // The same shape with the reference target present lint-cleanly.
    let mut log = mem_log();
    let bc2 = force(
        &mut log,
        &LogEntry::BaseCommitted {
            uid: Uid(2),
            value: Value::Int(2),
            prev: None,
        },
    );
    force(
        &mut log,
        &LogEntry::BaseCommitted {
            uid: Uid(1),
            value: Value::uid_ref(Uid(2)),
            prev: Some(bc2),
        },
    );
    lint(&mut log).assert_clean();
}

// ---- the argus-lint CLI on file-backed logs -------------------------------

/// Runs the real `argus-lint` binary on `path`, returning (exit code,
/// stdout).
fn run_cli(path: &std::path::Path) -> (i32, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_argus-lint"))
        .arg(path)
        .output()
        .expect("argus-lint runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn file_log(name: &str) -> (std::path::PathBuf, StableLog<argus::stable::FileStore>) {
    let path = std::env::temp_dir().join(format!("argus-check-violations-{name}.log"));
    let _ = std::fs::remove_file(&path);
    let store = argus::stable::FileStore::open(&path, SimClock::new(), CostModel::fast()).unwrap();
    (path.clone(), StableLog::create(store).unwrap())
}

#[test]
fn cli_detects_each_seeded_corruption() {
    // (name, expected invariant code, log builder)
    type Case = (
        &'static str,
        &'static str,
        fn(&mut StableLog<argus::stable::FileStore>),
    );
    let cases: Vec<Case> = vec![
        ("truncated-chain", "I2", |log| {
            force(
                log,
                &LogEntry::DataH {
                    kind: ObjKind::Atomic,
                    value: Value::Int(1),
                },
            );
            force(
                log,
                &LogEntry::Prepared {
                    aid: aid(1),
                    pairs: vec![],
                    prev: Some(LogAddress(3)),
                },
            );
        }),
        ("dangling-shadow", "I7", |log| {
            force(
                log,
                &LogEntry::DataH {
                    kind: ObjKind::Atomic,
                    value: Value::Int(1),
                },
            );
            force(
                log,
                &LogEntry::Prepared {
                    aid: aid(1),
                    pairs: vec![(Uid(1), LogAddress(5))],
                    prev: None,
                },
            );
        }),
        ("duplicate-uid", "I8", |log| {
            let d = force(
                log,
                &LogEntry::DataH {
                    kind: ObjKind::Atomic,
                    value: Value::Int(1),
                },
            );
            force(
                log,
                &LogEntry::Prepared {
                    aid: aid(1),
                    pairs: vec![(Uid(1), d), (Uid(1), d)],
                    prev: None,
                },
            );
        }),
        ("corrupt-redo-backlink", "I7", |log| {
            let d1 = force(
                log,
                &LogEntry::DataR {
                    uid: Uid(1),
                    kind: ObjKind::Atomic,
                    aid: aid(1),
                    back: None,
                    value: Value::Int(1),
                },
            );
            force(
                log,
                &LogEntry::Prepared {
                    aid: aid(1),
                    pairs: vec![],
                    prev: None,
                },
            );
            force(
                log,
                &LogEntry::Committed {
                    aid: aid(1),
                    prev: None,
                },
            );
            force(
                log,
                &LogEntry::DataR {
                    uid: Uid(1),
                    kind: ObjKind::Atomic,
                    aid: aid(2),
                    back: Some(LogAddress(d1.offset() + 10_000)),
                    value: Value::Int(2),
                },
            );
            force(
                log,
                &LogEntry::Prepared {
                    aid: aid(2),
                    pairs: vec![],
                    prev: None,
                },
            );
            force(
                log,
                &LogEntry::Committed {
                    aid: aid(2),
                    prev: None,
                },
            );
        }),
        ("unclosed-as", "I9", |log| {
            force(
                log,
                &LogEntry::BaseCommitted {
                    uid: Uid(1),
                    value: Value::uid_ref(Uid(2)),
                    prev: None,
                },
            );
        }),
    ];
    for (name, code, build) in cases {
        let (path, mut log) = file_log(name);
        build(&mut log);
        drop(log);
        let (status, stdout) = run_cli(&path);
        assert_eq!(status, 1, "{name}: expected exit 1, stdout:\n{stdout}");
        assert!(
            stdout.contains(code),
            "{name}: expected {code} in the report, got:\n{stdout}"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn cli_reports_a_clean_log_with_exit_zero() {
    let (path, mut log) = file_log("clean");
    let d = force(
        &mut log,
        &LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Int(7),
        },
    );
    let p = force(
        &mut log,
        &LogEntry::Prepared {
            aid: aid(1),
            pairs: vec![(Uid(1), d)],
            prev: None,
        },
    );
    force(
        &mut log,
        &LogEntry::Committed {
            aid: aid(1),
            prev: Some(p),
        },
    );
    drop(log);
    let (status, stdout) = run_cli(&path);
    assert_eq!(status, 0, "stdout:\n{stdout}");
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cli_exits_two_on_a_missing_file() {
    let path = std::env::temp_dir().join("argus-check-violations-no-such-file.log");
    let _ = std::fs::remove_file(&path);
    let (status, _) = run_cli(&path);
    assert_eq!(status, 2);
}

// ---- I11: no stale locks in a quiesced heap -------------------------------

#[test]
fn stale_locks_trip_i11() {
    use argus::check::lint_heap_quiesced;
    use argus::objects::Heap;
    use std::collections::BTreeSet;

    let mut heap = Heap::new();
    let a = heap.alloc_atomic(Value::Int(1), None);
    let b = heap.alloc_atomic(Value::Int(2), None);
    let m = heap.alloc_mutex(Value::Int(3));
    heap.acquire_write(a, aid(1)).unwrap();
    heap.write_value(a, aid(1), |v| *v = Value::Int(10))
        .unwrap();
    heap.acquire_read(b, aid(2)).unwrap();
    heap.seize(m, aid(3)).unwrap();

    // With every holder live the heap is quiescent-clean.
    let live: BTreeSet<ActionId> = [aid(1), aid(2), aid(3)].into();
    assert!(lint_heap_quiesced(&heap, &live).is_empty());

    // Forget the writer: its write lock and buffered current version leak.
    let live: BTreeSet<ActionId> = [aid(2), aid(3)].into();
    let violations = lint_heap_quiesced(&heap, &live);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(violations
        .iter()
        .all(|v| v.invariant == Invariant::I11NoStaleLocks));

    // Forget everyone: the read lock and the mutex seizure leak too.
    let violations = lint_heap_quiesced(&heap, &BTreeSet::new());
    assert_eq!(violations.len(), 3, "{violations:?}");
}
