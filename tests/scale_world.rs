//! The sharded many-guardian world at scale: a 64-shard zipfian
//! cross-shard mix that must quiesce clean under the full I1–I12 lint, plus
//! the two regression tests for the O(G) world-step bugs this world
//! surfaced — scheduler work must track *active* guardians, not the world's
//! size, and a participant that both reads and writes at one guardian must
//! get exactly one prepare.

mod common;

use argus::cc::CcPolicy;
use argus::guardian::{Outcome, RsKind, World, WorldConfig};
use argus::objects::Value;
use argus::obs::Registry;
use argus::sim::{CostModel, DetRng};
use argus::workload::{Sharded, ShardedConfig};

/// The `--scale` tier's smoke, in test form: 64 shard guardians, 10k+
/// zipfian users, the cross-shard transfer/reservation mix, then quiesce
/// and hold the whole world to the invariant catalogue — I1–I10 on every
/// shard's log, I11 heap quiescence on every shard, I12 trace consistency —
/// plus the mix's legal-outcomes oracle (conserved balance; seats account
/// exactly for the committed reservations).
#[test]
fn sixty_four_shard_mix_quiesces_clean_under_full_lint() {
    let reg = Registry::new();
    let _scope = reg.enter();
    let mut world = World::with_config(CostModel::fast(), WorldConfig::with_cc(CcPolicy::Blocking));
    let cfg = ShardedConfig {
        shards: 64,
        users: 10_240,
        concurrency: 64,
        actions: 384,
        ..Default::default()
    };
    let mix = Sharded::setup(&mut world, RsKind::Hybrid, cfg).unwrap();
    let mut rng = DetRng::new(64);
    let stats = mix.run(&mut world, &mut rng).unwrap();
    assert_eq!(stats.committed, cfg.actions);
    assert!(stats.cross_shard > 0, "no distributed 2PC ran");
    assert!(
        stats.coordinating_shards() >= cfg.shards / 2,
        "coordination piled up: {:?}",
        stats.per_shard_commits
    );
    assert_eq!(mix.total_balance(&world).unwrap(), mix.expected_total());
    assert_eq!(mix.total_seats(&world).unwrap(), mix.expected_seats(&stats));
    world.run_until_quiet().unwrap();
    common::lint_world(&mut world);
}

/// Runs the same 8-shard mix in a world padded with `idle` extra guardians
/// that never see an action, and reports the world scheduler's poll count.
fn sched_polls_with_idle_guardians(idle: usize) -> u64 {
    let reg = Registry::new();
    {
        let _scope = reg.enter();
        let mut world =
            World::with_config(CostModel::fast(), WorldConfig::with_cc(CcPolicy::Blocking));
        let cfg = ShardedConfig {
            shards: 8,
            actions: 128,
            ..Default::default()
        };
        let mix = Sharded::setup(&mut world, RsKind::Hybrid, cfg).unwrap();
        for _ in 0..idle {
            world.add_guardian(RsKind::Hybrid).unwrap();
        }
        let mut rng = DetRng::new(5);
        let stats = mix.run(&mut world, &mut rng).unwrap();
        assert_eq!(stats.committed, cfg.actions);
        world.run_until_quiet().unwrap();
        reg.counter("world.sched.polls").get()
    }
}

/// Regression for the O(G) world-step scans: `run_until_quiet` used to
/// rebuild its staged/force view by walking every guardian on every step,
/// so an identical workload did G× more work in a bigger world. The
/// scheduler now keeps a ready set and a force-deadline heap, so padding
/// the world from 8 to 256 guardians must not change its poll count at all.
#[test]
fn world_step_work_tracks_active_not_total_guardians() {
    let small = sched_polls_with_idle_guardians(0);
    let big = sched_polls_with_idle_guardians(248);
    assert!(small > 0, "the mix never staged a group-commit batch");
    assert_eq!(
        small, big,
        "scheduler polls grew with idle guardians: {small} at 8 guardians, {big} at 256"
    );
}

/// Regression for duplicate participant entries: an action that both reads
/// and writes at the same remote guardian must engage it as *one*
/// participant — exactly one prepare per guardian, and a pinned 2PC message
/// count (prepare + vote for the remote, nothing duplicated).
#[test]
fn read_and_write_at_one_guardian_prepares_it_once() {
    let reg = Registry::new();
    let _scope = reg.enter();
    let mut world = World::fast();
    let coord = world.add_guardian(RsKind::Hybrid).unwrap();
    let remote = world.add_guardian(RsKind::Hybrid).unwrap();

    let setup = world.begin(remote).unwrap();
    let h = world.create_atomic(remote, setup, Value::Int(1)).unwrap();
    assert_eq!(world.commit(setup).unwrap(), Outcome::Committed);

    let delivered_before = world.network().delivered();
    let prepares_before = reg.counter("twopc.part.prepares").get();
    let aid = world.begin(coord).unwrap();
    // Read then write the same remote object: the guardian lands in both
    // the touched-read and touched sets.
    assert_eq!(world.read(remote, aid, h).unwrap(), Value::Int(1));
    world
        .write_atomic(remote, aid, h, |v| {
            if let Value::Int(n) = v {
                *n += 1;
            }
        })
        .unwrap();
    assert_eq!(world.commit(aid).unwrap(), Outcome::Committed);

    // One prepare per participant: the coordinator's own plus the remote's.
    assert_eq!(
        reg.counter("twopc.part.prepares").get() - prepares_before,
        2,
        "a read+write participant was prepared more than once"
    );
    // Each participant's conversation is exactly prepare → vote → commit →
    // ack (the coordinator mails itself through the network like anyone
    // else), so two participants pin eight deliveries; a duplicated
    // participant entry would add four more.
    assert_eq!(world.network().delivered() - delivered_before, 8);
}
