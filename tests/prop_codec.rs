//! Property-based tests of the on-log codecs: any value and any entry must
//! roundtrip exactly, and arbitrary bytes must never panic the decoder.

use argus::core::{decode_entry, encode_entry, LogEntry};
use argus::objects::{ActionId, GuardianId, ObjKind, Uid, Value};
use argus::slog::LogAddress;
use proptest::prelude::*;

/// Flattened values only: references are uids (heap refs never reach a log).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        ".{0,24}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(Value::Bytes),
        (0u64..1000).prop_map(|u| Value::uid_ref(Uid(u))),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        proptest::collection::vec(inner, 0..8).prop_map(Value::Seq)
    })
}

fn aid_strategy() -> impl Strategy<Value = ActionId> {
    (0u32..16, 0u64..10_000).prop_map(|(g, s)| ActionId::new(GuardianId(g), s))
}

fn pairs_strategy() -> impl Strategy<Value = Vec<(Uid, LogAddress)>> {
    proptest::collection::vec(
        (
            (0u64..1000).prop_map(Uid),
            (512u64..1_000_000).prop_map(LogAddress),
        ),
        0..12,
    )
}

fn kind_strategy() -> impl Strategy<Value = ObjKind> {
    prop_oneof![Just(ObjKind::Atomic), Just(ObjKind::Mutex)]
}

fn prev_strategy() -> impl Strategy<Value = Option<LogAddress>> {
    proptest::option::of((512u64..1_000_000).prop_map(LogAddress))
}

fn entry_strategy() -> impl Strategy<Value = LogEntry> {
    prop_oneof![
        (
            0u64..1000,
            kind_strategy(),
            value_strategy(),
            aid_strategy()
        )
            .prop_map(|(u, kind, value, aid)| LogEntry::Data {
                uid: Uid(u),
                kind,
                value,
                aid
            }),
        (kind_strategy(), value_strategy())
            .prop_map(|(kind, value)| LogEntry::DataH { kind, value }),
        (aid_strategy(), pairs_strategy(), prev_strategy())
            .prop_map(|(aid, pairs, prev)| LogEntry::Prepared { aid, pairs, prev }),
        (aid_strategy(), prev_strategy()).prop_map(|(aid, prev)| LogEntry::Committed { aid, prev }),
        (aid_strategy(), prev_strategy()).prop_map(|(aid, prev)| LogEntry::Aborted { aid, prev }),
        (0u64..1000, value_strategy(), prev_strategy()).prop_map(|(u, value, prev)| {
            LogEntry::BaseCommitted {
                uid: Uid(u),
                value,
                prev,
            }
        }),
        (
            0u64..1000,
            value_strategy(),
            aid_strategy(),
            prev_strategy()
        )
            .prop_map(|(u, value, aid, prev)| LogEntry::PreparedData {
                uid: Uid(u),
                value,
                aid,
                prev
            }),
        (
            aid_strategy(),
            proptest::collection::vec(0u32..64, 0..8),
            prev_strategy()
        )
            .prop_map(|(aid, gs, prev)| LogEntry::Committing {
                aid,
                gids: gs.into_iter().map(GuardianId).collect(),
                prev,
            }),
        (aid_strategy(), prev_strategy()).prop_map(|(aid, prev)| LogEntry::Done { aid, prev }),
        (pairs_strategy(), prev_strategy())
            .prop_map(|(cssl, prev)| LogEntry::CommittedSs { cssl, prev }),
    ]
}

proptest! {
    #[test]
    fn entries_roundtrip(entry in entry_strategy()) {
        let bytes = encode_entry(&entry).unwrap();
        prop_assert_eq!(decode_entry(&bytes).unwrap(), entry);
    }

    #[test]
    fn decoder_never_panics_on_junk(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_entry(&bytes); // must return, never panic
    }

    #[test]
    fn decoder_rejects_truncations(entry in entry_strategy()) {
        let bytes = encode_entry(&entry).unwrap();
        // Every strict prefix either fails or (rarely) decodes to something
        // *different* — never to a spurious copy of the original with
        // trailing data silently dropped.
        for cut in 0..bytes.len() {
            if let Ok(decoded) = decode_entry(&bytes[..cut]) {
                prop_assert_ne!(decoded, entry.clone(), "prefix {} decoded to the original", cut);
            }
        }
    }

    #[test]
    fn bitflips_are_detected_or_change_the_entry(
        entry in entry_strategy(),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let bytes = encode_entry(&entry).unwrap();
        prop_assume!(!bytes.is_empty());
        let mut corrupted = bytes.clone();
        let i = flip_byte.index(corrupted.len());
        corrupted[i] ^= 1 << flip_bit;
        if let Ok(decoded) = decode_entry(&corrupted) {
            prop_assert_ne!(decoded, entry, "bit flip at {}:{} went unnoticed", i, flip_bit);
        }
    }
}
