//! Randomized tests of the on-log codecs: any value and any entry must
//! roundtrip exactly, and arbitrary bytes must never panic the decoder.
//!
//! Driven by the in-tree deterministic RNG (`argus::sim::DetRng`) with fixed
//! seeds, so every "random" case is exactly reproducible. Gated behind the
//! off-by-default `proptest` feature: `cargo test --features proptest`.

use argus::core::{decode_entry, encode_entry, LogEntry};
use argus::objects::{ActionId, GuardianId, ObjKind, Uid, Value};
use argus::sim::DetRng;
use argus::slog::LogAddress;

/// Flattened values only: references are uids (heap refs never reach a log).
fn gen_value(rng: &mut DetRng, depth: u32) -> Value {
    let choices = if depth == 0 { 6 } else { 7 };
    match rng.gen_range(choices) {
        0 => Value::Unit,
        1 => Value::Int(rng.next_u64() as i64),
        2 => Value::Bool(rng.gen_bool(0.5)),
        3 => {
            let len = rng.gen_range(25) as usize;
            Value::Str(
                (0..len)
                    .map(|_| (rng.gen_between(32, 127) as u8) as char)
                    .collect(),
            )
        }
        4 => {
            let len = rng.gen_range(48) as usize;
            Value::Bytes((0..len).map(|_| rng.next_u64() as u8).collect())
        }
        5 => Value::uid_ref(Uid(rng.gen_range(1000))),
        _ => {
            let len = rng.gen_range(8) as usize;
            Value::Seq((0..len).map(|_| gen_value(rng, depth - 1)).collect())
        }
    }
}

fn gen_aid(rng: &mut DetRng) -> ActionId {
    ActionId::new(GuardianId(rng.gen_range(16) as u32), rng.gen_range(10_000))
}

fn gen_pairs(rng: &mut DetRng) -> Vec<(Uid, LogAddress)> {
    let len = rng.gen_range(12) as usize;
    (0..len)
        .map(|_| {
            (
                Uid(rng.gen_range(1000)),
                LogAddress(rng.gen_between(512, 1_000_000)),
            )
        })
        .collect()
}

fn gen_kind(rng: &mut DetRng) -> ObjKind {
    if rng.gen_bool(0.5) {
        ObjKind::Atomic
    } else {
        ObjKind::Mutex
    }
}

fn gen_prev(rng: &mut DetRng) -> Option<LogAddress> {
    rng.gen_bool(0.5)
        .then(|| LogAddress(rng.gen_between(512, 1_000_000)))
}

fn gen_entry(rng: &mut DetRng) -> LogEntry {
    match rng.gen_range(10) {
        0 => LogEntry::Data {
            uid: Uid(rng.gen_range(1000)),
            kind: gen_kind(rng),
            value: gen_value(rng, 3),
            aid: gen_aid(rng),
        },
        1 => LogEntry::DataH {
            kind: gen_kind(rng),
            value: gen_value(rng, 3),
        },
        2 => LogEntry::Prepared {
            aid: gen_aid(rng),
            pairs: gen_pairs(rng),
            prev: gen_prev(rng),
        },
        3 => LogEntry::Committed {
            aid: gen_aid(rng),
            prev: gen_prev(rng),
        },
        4 => LogEntry::Aborted {
            aid: gen_aid(rng),
            prev: gen_prev(rng),
        },
        5 => LogEntry::BaseCommitted {
            uid: Uid(rng.gen_range(1000)),
            value: gen_value(rng, 3),
            prev: gen_prev(rng),
        },
        6 => LogEntry::PreparedData {
            uid: Uid(rng.gen_range(1000)),
            value: gen_value(rng, 3),
            aid: gen_aid(rng),
            prev: gen_prev(rng),
        },
        7 => LogEntry::Committing {
            aid: gen_aid(rng),
            gids: {
                let len = rng.gen_range(8) as usize;
                (0..len)
                    .map(|_| GuardianId(rng.gen_range(64) as u32))
                    .collect()
            },
            prev: gen_prev(rng),
        },
        8 => LogEntry::Done {
            aid: gen_aid(rng),
            prev: gen_prev(rng),
        },
        _ => LogEntry::CommittedSs {
            cssl: gen_pairs(rng),
            prev: gen_prev(rng),
        },
    }
}

#[test]
fn entries_roundtrip() {
    let mut rng = DetRng::new(0xC0DEC);
    for case in 0..256 {
        let entry = gen_entry(&mut rng);
        let bytes = encode_entry(&entry).unwrap();
        assert_eq!(
            decode_entry(&bytes).unwrap(),
            entry,
            "case {case} failed to roundtrip"
        );
    }
}

#[test]
fn decoder_never_panics_on_junk() {
    let mut rng = DetRng::new(0x1A2B);
    for _ in 0..512 {
        let len = rng.gen_range(256) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = decode_entry(&bytes); // must return, never panic
    }
}

#[test]
fn decoder_rejects_truncations() {
    let mut rng = DetRng::new(0x7EC);
    for _ in 0..64 {
        let entry = gen_entry(&mut rng);
        let bytes = encode_entry(&entry).unwrap();
        // Every strict prefix either fails or (rarely) decodes to something
        // *different* — never to a spurious copy of the original with
        // trailing data silently dropped.
        for cut in 0..bytes.len() {
            if let Ok(decoded) = decode_entry(&bytes[..cut]) {
                assert_ne!(decoded, entry, "prefix {cut} decoded to the original");
            }
        }
    }
}

#[test]
fn bitflips_are_detected_or_change_the_entry() {
    let mut rng = DetRng::new(0xF11B);
    for _ in 0..128 {
        let entry = gen_entry(&mut rng);
        let bytes = encode_entry(&entry).unwrap();
        if bytes.is_empty() {
            continue;
        }
        let mut corrupted = bytes.clone();
        let i = rng.gen_range(corrupted.len() as u64) as usize;
        let bit = rng.gen_range(8) as u8;
        corrupted[i] ^= 1 << bit;
        if let Ok(decoded) = decode_entry(&corrupted) {
            assert_ne!(decoded, entry, "bit flip at {i}:{bit} went unnoticed");
        }
    }
}
