//! Randomized tests of the core invariant: for any history of committed and
//! aborted actions, crash recovery reproduces exactly the state a crash-free
//! in-memory model would hold.
//!
//! Driven by the in-tree deterministic RNG (`argus::sim::DetRng`) with fixed
//! seeds, so every "random" case is exactly reproducible. Gated behind the
//! off-by-default `proptest` feature: `cargo test --features proptest`.

use argus::guardian::{Outcome, RsKind, World};
use argus::objects::{ObjRef, Value};
use argus::sim::DetRng;

/// One scripted operation against a small key space.
#[derive(Debug, Clone)]
enum Op {
    /// Set key `k` to `v` and commit.
    Commit { k: u8, v: i64 },
    /// Set key `k` to `v`, then abort locally.
    Abort { k: u8, v: i64 },
    /// Crash and restart the guardian.
    CrashRestart,
    /// Run housekeeping (hybrid only; ignored elsewhere).
    Housekeep(bool),
}

/// Weighted draw: commits 5, aborts 2, crash-restarts 1, housekeeping 1.
fn gen_op(rng: &mut DetRng) -> Op {
    match rng.gen_range(9) {
        0..=4 => Op::Commit {
            k: rng.gen_range(6) as u8,
            v: rng.next_u64() as i64,
        },
        5 | 6 => Op::Abort {
            k: rng.gen_range(6) as u8,
            v: rng.next_u64() as i64,
        },
        7 => Op::CrashRestart,
        _ => Op::Housekeep(rng.gen_bool(0.5)),
    }
}

fn run_history(kind: RsKind, ops: &[Op]) {
    let mut world = World::fast();
    let g = world.add_guardian(kind).unwrap();
    let mut model: std::collections::HashMap<u8, i64> = std::collections::HashMap::new();

    for op in ops {
        match op {
            Op::Commit { k, v } => {
                let a = world.begin(g).unwrap();
                world
                    .set_stable(g, a, &format!("k{k}"), Value::Int(*v))
                    .unwrap();
                assert_eq!(world.commit(a).unwrap(), Outcome::Committed);
                model.insert(*k, *v);
            }
            Op::Abort { k, v } => {
                let a = world.begin(g).unwrap();
                world
                    .set_stable(g, a, &format!("k{k}"), Value::Int(*v))
                    .unwrap();
                world.abort_local(a);
            }
            Op::CrashRestart => {
                world.crash(g);
                world.restart(g).unwrap();
            }
            Op::Housekeep(snapshot) => {
                if kind == RsKind::Hybrid {
                    let mode = if *snapshot {
                        argus::core::HousekeepingMode::Snapshot
                    } else {
                        argus::core::HousekeepingMode::Compaction
                    };
                    world.housekeep(g, mode).unwrap();
                }
            }
        }
        // The committed view always matches the model, mid-history included.
        for (k, v) in &model {
            assert_eq!(
                world.guardian(g).unwrap().stable_value(&format!("k{k}")),
                Some(Value::Int(*v)),
                "{kind:?}: key {k} diverged after {op:?}"
            );
        }
    }

    // Final crash + recovery must reproduce the model exactly.
    world.crash(g);
    world.restart(g).unwrap();
    for (k, v) in &model {
        assert_eq!(
            world.guardian(g).unwrap().stable_value(&format!("k{k}")),
            Some(Value::Int(*v)),
            "{kind:?}: key {k} lost at final recovery"
        );
    }
}

fn check_kind(kind: RsKind, seed: u64) {
    let mut rng = DetRng::new(seed);
    for _ in 0..48 {
        let ops: Vec<Op> = (0..rng.gen_between(1, 24))
            .map(|_| gen_op(&mut rng))
            .collect();
        run_history(kind, &ops);
    }
}

#[test]
fn hybrid_log_matches_the_model() {
    check_kind(RsKind::Hybrid, 0x4B1D);
}

#[test]
fn simple_log_matches_the_model() {
    check_kind(RsKind::Simple, 0x5109);
}

#[test]
fn shadowing_matches_the_model() {
    check_kind(RsKind::Shadow, 0x54AD);
}

/// Object-graph property: a committed linked list of arbitrary length is
/// fully reconstructed (every link resolved back to a pointer).
#[test]
fn linked_lists_recover_completely() {
    let mut rng = DetRng::new(0x115);
    for case in 0..32 {
        let len = rng.gen_between(1, 20) as usize;
        let payloads: Vec<i64> = (0..20).map(|_| rng.next_u64() as i64).collect();

        let mut world = World::fast();
        let g = world.add_guardian(RsKind::Hybrid).unwrap();
        let a = world.begin(g).unwrap();
        let mut next = Value::Unit;
        for payload in payloads.iter().take(len) {
            let node = world
                .create_atomic(g, a, Value::Seq(vec![Value::Int(*payload), next.clone()]))
                .unwrap();
            next = Value::heap_ref(node);
        }
        world.set_stable(g, a, "list", next).unwrap();
        assert_eq!(world.commit(a).unwrap(), Outcome::Committed);

        world.crash(g);
        world.restart(g).unwrap();
        let guardian = world.guardian(g).unwrap();
        let mut cursor = guardian.stable_value("list").unwrap();
        let mut seen = Vec::new();
        while let Value::Ref(ObjRef::Heap(h)) = cursor {
            match guardian.heap.read_value(h, None).unwrap() {
                Value::Seq(fields) => match fields.as_slice() {
                    [Value::Int(p), rest] => {
                        seen.push(*p);
                        cursor = rest.clone();
                    }
                    other => panic!("case {case}: bad node {other:?}"),
                },
                other => panic!("case {case}: bad node {other}"),
            }
        }
        assert_eq!(seen.len(), len, "case {case}");
        let expected: Vec<i64> = (0..len).rev().map(|i| payloads[i]).collect();
        assert_eq!(seen, expected, "case {case}");
    }
}
