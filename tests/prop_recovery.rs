//! Property-based tests of the core invariant: for any history of committed
//! and aborted actions, crash recovery reproduces exactly the state a
//! crash-free in-memory model would hold.

use argus::guardian::{Outcome, RsKind, World};
use argus::objects::{ObjRef, Value};
use proptest::prelude::*;

/// One scripted operation against a small key space.
#[derive(Debug, Clone)]
enum Op {
    /// Set key `k` to `v` and commit.
    Commit { k: u8, v: i64 },
    /// Set key `k` to `v`, then abort locally.
    Abort { k: u8, v: i64 },
    /// Crash and restart the guardian.
    CrashRestart,
    /// Run housekeeping (hybrid only; ignored elsewhere).
    Housekeep(bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u8..6, any::<i64>()).prop_map(|(k, v)| Op::Commit { k, v }),
        2 => (0u8..6, any::<i64>()).prop_map(|(k, v)| Op::Abort { k, v }),
        1 => Just(Op::CrashRestart),
        1 => any::<bool>().prop_map(Op::Housekeep),
    ]
}

fn run_history(kind: RsKind, ops: &[Op]) {
    let mut world = World::fast();
    let g = world.add_guardian(kind).unwrap();
    let mut model: std::collections::HashMap<u8, i64> = std::collections::HashMap::new();

    for op in ops {
        match op {
            Op::Commit { k, v } => {
                let a = world.begin(g).unwrap();
                world
                    .set_stable(g, a, &format!("k{k}"), Value::Int(*v))
                    .unwrap();
                assert_eq!(world.commit(a).unwrap(), Outcome::Committed);
                model.insert(*k, *v);
            }
            Op::Abort { k, v } => {
                let a = world.begin(g).unwrap();
                world
                    .set_stable(g, a, &format!("k{k}"), Value::Int(*v))
                    .unwrap();
                world.abort_local(a);
            }
            Op::CrashRestart => {
                world.crash(g);
                world.restart(g).unwrap();
            }
            Op::Housekeep(snapshot) => {
                if kind == RsKind::Hybrid {
                    let mode = if *snapshot {
                        argus::core::HousekeepingMode::Snapshot
                    } else {
                        argus::core::HousekeepingMode::Compaction
                    };
                    world.housekeep(g, mode).unwrap();
                }
            }
        }
        // The committed view always matches the model, mid-history included.
        for (k, v) in &model {
            assert_eq!(
                world.guardian(g).unwrap().stable_value(&format!("k{k}")),
                Some(Value::Int(*v)),
                "{kind:?}: key {k} diverged after {op:?}"
            );
        }
    }

    // Final crash + recovery must reproduce the model exactly.
    world.crash(g);
    world.restart(g).unwrap();
    for (k, v) in &model {
        assert_eq!(
            world.guardian(g).unwrap().stable_value(&format!("k{k}")),
            Some(Value::Int(*v)),
            "{kind:?}: key {k} lost at final recovery"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn hybrid_log_matches_the_model(ops in proptest::collection::vec(op_strategy(), 1..24)) {
        run_history(RsKind::Hybrid, &ops);
    }

    #[test]
    fn simple_log_matches_the_model(ops in proptest::collection::vec(op_strategy(), 1..24)) {
        run_history(RsKind::Simple, &ops);
    }

    #[test]
    fn shadowing_matches_the_model(ops in proptest::collection::vec(op_strategy(), 1..24)) {
        run_history(RsKind::Shadow, &ops);
    }

    /// Object-graph property: a committed linked list of arbitrary length is
    /// fully reconstructed (every link resolved back to a pointer).
    #[test]
    fn linked_lists_recover_completely(len in 1usize..20, payloads in proptest::collection::vec(any::<i64>(), 20)) {
        let mut world = World::fast();
        let g = world.add_guardian(RsKind::Hybrid).unwrap();
        let a = world.begin(g).unwrap();
        let mut next = Value::Unit;
        for payload in payloads.iter().take(len) {
            let node = world
                .create_atomic(g, a, Value::Seq(vec![Value::Int(*payload), next.clone()]))
                .unwrap();
            next = Value::heap_ref(node);
        }
        world.set_stable(g, a, "list", next).unwrap();
        prop_assert_eq!(world.commit(a).unwrap(), Outcome::Committed);

        world.crash(g);
        world.restart(g).unwrap();
        let guardian = world.guardian(g).unwrap();
        let mut cursor = guardian.stable_value("list").unwrap();
        let mut seen = Vec::new();
        while let Value::Ref(ObjRef::Heap(h)) = cursor {
            match guardian.heap.read_value(h, None).unwrap() {
                Value::Seq(fields) => {
                    match fields.as_slice() {
                        [Value::Int(p), rest] => {
                            seen.push(*p);
                            cursor = rest.clone();
                        }
                        other => prop_assert!(false, "bad node {:?}", other),
                    }
                }
                other => prop_assert!(false, "bad node {}", other),
            }
        }
        prop_assert_eq!(seen.len(), len);
        let expected: Vec<i64> = (0..len).rev().map(|i| payloads[i]).collect();
        prop_assert_eq!(seen, expected);
    }
}
