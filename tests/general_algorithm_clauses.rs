//! The general recovery algorithm of §3.4.4, clause by clause: each test
//! fabricates the smallest log that exercises one clause of the thesis's
//! pseudocode and asserts exactly the prescribed table/heap effect.

use argus::core::providers::MemProvider;
use argus::core::{LogEntry, ObjState, PState, RecoverySystem, SimpleLogRs};
use argus::objects::{ActionId, GuardianId, Heap, ObjKind, ObjectBody, Uid, Value};

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

fn rs() -> SimpleLogRs<MemProvider> {
    SimpleLogRs::create(MemProvider::fast()).unwrap()
}

fn recover(rs: &mut SimpleLogRs<MemProvider>) -> (Heap, argus::core::RecoveryOutcome) {
    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();
    (heap, out)
}

fn data(uid: Uid, kind: ObjKind, v: i64, a: ActionId) -> LogEntry {
    LogEntry::Data {
        uid,
        kind,
        value: Value::Int(v),
        aid: a,
    }
}

fn prepared(a: ActionId) -> LogEntry {
    LogEntry::Prepared {
        aid: a,
        pairs: vec![],
        prev: None,
    }
}

/// 2.a — "prepared outcome entry. If aid ∈ PT then ignore the entry."
/// A newer `committed` is scanned first; the older `prepared` must not
/// demote it.
#[test]
fn clause_2a_prepared_does_not_demote_known_state() {
    let t = aid(1);
    let mut rs = rs();
    rs.append_raw(&prepared(t), true).unwrap();
    rs.append_raw(&LogEntry::Committed { aid: t, prev: None }, true)
        .unwrap();
    let (_, out) = recover(&mut rs);
    assert_eq!(out.pt.get(t), Some(PState::Committed));
    assert_eq!(out.pt.len(), 1);
}

/// 2.b / 2.c — committed and aborted entries populate the PT.
#[test]
fn clauses_2b_2c_committed_and_aborted_enter_pt() {
    let (t1, t2) = (aid(1), aid(2));
    let mut rs = rs();
    rs.append_raw(&prepared(t1), true).unwrap();
    rs.append_raw(
        &LogEntry::Committed {
            aid: t1,
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(&prepared(t2), true).unwrap();
    rs.append_raw(
        &LogEntry::Aborted {
            aid: t2,
            prev: None,
        },
        true,
    )
    .unwrap();
    let (_, out) = recover(&mut rs);
    assert_eq!(out.pt.get(t1), Some(PState::Committed));
    assert_eq!(out.pt.get(t2), Some(PState::Aborted));
}

/// 2.d — base_committed with uid ∈ OT in `prepared` state: "copy the object
/// version to volatile memory as the base version, and set the object state
/// to restored."
#[test]
fn clause_2d_bc_fills_the_base_of_a_prepared_object() {
    let t = aid(1);
    let o = Uid(1);
    let mut rs = rs();
    rs.append_raw(
        &LogEntry::BaseCommitted {
            uid: o,
            value: Value::Int(5),
            prev: None,
        },
        false,
    )
    .unwrap();
    rs.append_raw(&data(o, ObjKind::Atomic, 9, t), false)
        .unwrap();
    rs.append_raw(&prepared(t), true).unwrap();
    let (heap, out) = recover(&mut rs);
    let entry = out.ot.get(o).unwrap();
    assert_eq!(entry.state, ObjState::Restored);
    match &heap.get(entry.heap).unwrap().body {
        ObjectBody::Atomic(obj) => {
            assert_eq!(obj.base, Value::Int(5));
            assert_eq!(obj.current, Some(Value::Int(9)));
            assert_eq!(obj.writer, Some(t));
        }
        _ => panic!("atomic expected"),
    }
}

/// 2.d — base_committed with uid ∉ OT: insert restored.
#[test]
fn clause_2d_bc_alone_restores_the_object() {
    let o = Uid(1);
    let mut rs = rs();
    rs.append_raw(
        &LogEntry::BaseCommitted {
            uid: o,
            value: Value::Int(5),
            prev: None,
        },
        true,
    )
    .unwrap();
    let (heap, out) = recover(&mut rs);
    let entry = out.ot.get(o).unwrap();
    assert_eq!(entry.state, ObjState::Restored);
    assert_eq!(heap.read_value(entry.heap, None).unwrap(), &Value::Int(5));
}

/// 2.e.i — prepared_data whose action is known aborted: ignored.
#[test]
fn clause_2e_pd_of_aborted_action_is_ignored() {
    let t = aid(1);
    let o = Uid(1);
    let mut rs = rs();
    rs.append_raw(
        &LogEntry::PreparedData {
            uid: o,
            value: Value::Int(9),
            aid: t,
            prev: None,
        },
        false,
    )
    .unwrap();
    rs.append_raw(&prepared(t), true).unwrap();
    rs.append_raw(&LogEntry::Aborted { aid: t, prev: None }, true)
        .unwrap();
    let (heap, out) = recover(&mut rs);
    assert!(out.ot.get(o).is_none());
    assert!(heap.is_empty());
}

/// 2.e.i — prepared_data whose action committed: the version is restored
/// as committed state.
#[test]
fn clause_2e_pd_of_committed_action_restores() {
    let t = aid(1);
    let o = Uid(1);
    let mut rs = rs();
    rs.append_raw(
        &LogEntry::PreparedData {
            uid: o,
            value: Value::Int(9),
            aid: t,
            prev: None,
        },
        false,
    )
    .unwrap();
    rs.append_raw(&prepared(t), true).unwrap();
    rs.append_raw(&LogEntry::Committed { aid: t, prev: None }, true)
        .unwrap();
    let (heap, out) = recover(&mut rs);
    let entry = out.ot.get(o).unwrap();
    assert_eq!(heap.read_value(entry.heap, None).unwrap(), &Value::Int(9));
}

/// 2.e.ii — prepared_data with aid ∉ PT: "the action must have prepared…
/// <aid, prepared state> is entered into the PT", the version becomes the
/// current version under the aid's write lock.
#[test]
fn clause_2e_pd_of_unknown_action_enters_pt_as_prepared() {
    let t = aid(1);
    let o = Uid(1);
    let mut rs = rs();
    // Only the pd entry is on the log (its real prepared entry would be
    // earlier — here the log begins with the pd).
    rs.append_raw(
        &LogEntry::PreparedData {
            uid: o,
            value: Value::Int(9),
            aid: t,
            prev: None,
        },
        true,
    )
    .unwrap();
    let (heap, out) = recover(&mut rs);
    assert_eq!(out.pt.get(t), Some(PState::Prepared));
    let entry = out.ot.get(o).unwrap();
    assert_eq!(entry.state, ObjState::Prepared);
    match &heap.get(entry.heap).unwrap().body {
        ObjectBody::Atomic(obj) => {
            assert_eq!(obj.current, Some(Value::Int(9)));
            assert_eq!(obj.writer, Some(t));
        }
        _ => panic!("atomic expected"),
    }
}

/// 2.f — committing with aid ∈ CT (done seen first): ignored.
#[test]
fn clause_2f_committing_after_done_is_ignored() {
    let t = aid(1);
    let mut rs = rs();
    rs.append_raw(
        &LogEntry::Committing {
            aid: t,
            gids: vec![GuardianId(1)],
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(&LogEntry::Done { aid: t, prev: None }, true)
        .unwrap();
    let (_, out) = recover(&mut rs);
    assert!(out.ct.committing_actions().is_empty());
}

/// 2.f — committing with aid ∉ CT: entered with its participant list.
#[test]
fn clause_2f_committing_without_done_restarts_the_coordinator() {
    let t = aid(1);
    let gids = vec![GuardianId(1), GuardianId(2)];
    let mut rs = rs();
    rs.append_raw(
        &LogEntry::Committing {
            aid: t,
            gids: gids.clone(),
            prev: None,
        },
        true,
    )
    .unwrap();
    let (_, out) = recover(&mut rs);
    assert_eq!(out.ct.committing_actions(), vec![(t, gids)]);
}

/// 2.h.i — data entry of a committed action with uid ∈ OT in restored
/// state: ignored (a newer version was already copied).
#[test]
fn clause_2h_older_committed_versions_are_ignored() {
    let (t1, t2) = (aid(1), aid(2));
    let o = Uid(1);
    let mut rs = rs();
    rs.append_raw(&data(o, ObjKind::Atomic, 1, t1), false)
        .unwrap();
    rs.append_raw(&prepared(t1), true).unwrap();
    rs.append_raw(
        &LogEntry::Committed {
            aid: t1,
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(&data(o, ObjKind::Atomic, 2, t2), false)
        .unwrap();
    rs.append_raw(&prepared(t2), true).unwrap();
    rs.append_raw(
        &LogEntry::Committed {
            aid: t2,
            prev: None,
        },
        true,
    )
    .unwrap();
    let (heap, out) = recover(&mut rs);
    let entry = out.ot.get(o).unwrap();
    // t2's version (scanned first) wins; t1's older version was ignored.
    assert_eq!(heap.read_value(entry.heap, None).unwrap(), &Value::Int(2));
}

/// 2.h.ii — data entry of an in-doubt action, mutex object: copied as the
/// current version with state restored (no lock is granted for mutex).
#[test]
fn clause_2h_in_doubt_mutex_is_restored_without_a_lock() {
    let t = aid(1);
    let o = Uid(1);
    let mut rs = rs();
    rs.append_raw(&data(o, ObjKind::Mutex, 7, t), false)
        .unwrap();
    rs.append_raw(&prepared(t), true).unwrap();
    let (heap, out) = recover(&mut rs);
    let entry = out.ot.get(o).unwrap();
    assert_eq!(entry.state, ObjState::Restored);
    match &heap.get(entry.heap).unwrap().body {
        ObjectBody::Mutex(obj) => {
            assert_eq!(obj.value, Value::Int(7));
            assert_eq!(obj.seized_by, None);
        }
        _ => panic!("mutex expected"),
    }
}

/// Step 3 — "The stable counter (used to generate uids) is reset to the
/// largest uid stored in the OT."
#[test]
fn step_3_stable_counter_resets_past_the_largest_uid() {
    let t = aid(1);
    let mut rs = rs();
    rs.append_raw(
        &LogEntry::BaseCommitted {
            uid: Uid(41),
            value: Value::Unit,
            prev: None,
        },
        false,
    )
    .unwrap();
    rs.append_raw(&data(Uid(77), ObjKind::Atomic, 0, t), false)
        .unwrap();
    rs.append_raw(&prepared(t), true).unwrap();
    rs.append_raw(&LogEntry::Committed { aid: t, prev: None }, true)
        .unwrap();
    let (mut heap, _) = recover(&mut rs);
    let fresh = heap.fresh_uid();
    assert!(fresh.0 > 77, "fresh uid {fresh} would collide");
}
