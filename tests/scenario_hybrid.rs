//! The hybrid-log scenario of Figure 4-2/§4.3.2: recovery walks the backward
//! chain of outcome entries and follows `(uid, log address)` pairs to data
//! entries only when a version must actually be copied.
//!
//! Log, oldest first (O1 atomic, O2 mutex):
//!
//! `bc(O1,V1b | prev=nil) · d(V1,T1)@L1 · d(V2,T1)@L2 ·
//!  prepared(T1,[(O1,L1),(O2,L2)] | prev=bc) · committed(T1 | prev) ·
//!  d(V1',T2)@L1' · d(V2',T2)@L2' · prepared(T2,[(O1,L1'),(O2,L2')] | prev)`

use argus::core::providers::MemProvider;
use argus::core::{HybridLogRs, LogEntry, ObjState, PState, RecoverySystem};
use argus::objects::{ActionId, GuardianId, Heap, ObjKind, ObjectBody, Uid, Value};

mod common;

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

#[test]
fn figure_4_2_recovery() {
    let (t1, t2) = (aid(1), aid(2));
    let (o1, o2) = (Uid(1), Uid(2));
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();

    let bc = rs
        .append_raw(
            &LogEntry::BaseCommitted {
                uid: o1,
                value: Value::Int(10),
                prev: None,
            },
            false,
        )
        .unwrap();
    let l1 = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Atomic,
                value: Value::Int(11),
            },
            false,
        )
        .unwrap();
    let l2 = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Mutex,
                value: Value::Int(21),
            },
            false,
        )
        .unwrap();
    let p1 = rs
        .append_raw(
            &LogEntry::Prepared {
                aid: t1,
                pairs: vec![(o1, l1), (o2, l2)],
                prev: Some(bc),
            },
            true,
        )
        .unwrap();
    let c1 = rs
        .append_raw(
            &LogEntry::Committed {
                aid: t1,
                prev: Some(p1),
            },
            true,
        )
        .unwrap();
    let l1p = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Atomic,
                value: Value::Int(12),
            },
            false,
        )
        .unwrap();
    let l2p = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Mutex,
                value: Value::Int(22),
            },
            false,
        )
        .unwrap();
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t2,
            pairs: vec![(o1, l1p), (o2, l2p)],
            prev: Some(c1),
        },
        true,
    )
    .unwrap();

    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();

    // Thesis closing tables.
    assert_eq!(out.pt.get(t1), Some(PState::Committed));
    assert_eq!(out.pt.get(t2), Some(PState::Prepared));
    assert_eq!(out.ot.get(o1).unwrap().state, ObjState::Restored);
    assert_eq!(out.ot.get(o2).unwrap().state, ObjState::Restored);

    // O1: T2's current version under its write lock, T1's committed version
    // as the base ("Since the action also committed, this is the latest
    // committed version… copies the object version V1 to volatile memory as
    // the base version of O1").
    let h1 = out.ot.get(o1).unwrap().heap;
    match &heap.get(h1).unwrap().body {
        ObjectBody::Atomic(obj) => {
            assert_eq!(obj.base, Value::Int(11));
            assert_eq!(obj.current, Some(Value::Int(12)));
            assert_eq!(obj.writer, Some(t2));
        }
        _ => panic!("O1 must be atomic"),
    }
    // O2 (mutex): T2's version — "the object version has already been
    // copied" when T1's pair is reached.
    let h2 = out.ot.get(o2).unwrap().heap;
    assert_eq!(heap.read_value(h2, None).unwrap(), &Value::Int(22));

    // The hybrid win: exactly 3 data entries were read (O1 twice — current
    // then base — O2 once); the bc entry carried its value inline.
    assert_eq!(out.data_entries_read, 3);

    // T2 stays in the PAT; the MT points at T2's mutex data entry.
    assert!(rs.is_prepared(t2));
    assert_eq!(rs.mutex_table().get(&o2), Some(&l2p));

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn chain_walk_skips_unneeded_history() {
    // 50 committed updates to one object: the chain is walked (100 outcome
    // entries) but only ONE data entry is ever read.
    let o = Uid(1);
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let mut prev = None;
    for i in 0..50u64 {
        let t = aid(i + 1);
        let d = rs
            .append_raw(
                &LogEntry::DataH {
                    kind: ObjKind::Atomic,
                    value: Value::Int(i as i64),
                },
                false,
            )
            .unwrap();
        let p = rs
            .append_raw(
                &LogEntry::Prepared {
                    aid: t,
                    pairs: vec![(o, d)],
                    prev,
                },
                true,
            )
            .unwrap();
        let c = rs
            .append_raw(
                &LogEntry::Committed {
                    aid: t,
                    prev: Some(p),
                },
                true,
            )
            .unwrap();
        prev = Some(c);
    }
    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();
    assert_eq!(out.data_entries_read, 1);
    let h = out.ot.get(o).unwrap().heap;
    assert_eq!(heap.read_value(h, None).unwrap(), &Value::Int(49));

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn recovery_steps_over_a_data_entry_at_the_log_top() {
    // A housekeeping-time force can leave flushed data entries as the
    // newest durable records; the chain walk must step back over them to
    // the newest outcome entry.
    let o = Uid(1);
    let t = aid(1);
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let d = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Atomic,
                value: Value::Int(5),
            },
            false,
        )
        .unwrap();
    let p = rs
        .append_raw(
            &LogEntry::Prepared {
                aid: t,
                pairs: vec![(o, d)],
                prev: None,
            },
            true,
        )
        .unwrap();
    rs.append_raw(
        &LogEntry::Committed {
            aid: t,
            prev: Some(p),
        },
        true,
    )
    .unwrap();
    // Two orphaned data entries flushed after the last outcome entry.
    rs.append_raw(
        &LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Int(99),
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::DataH {
            kind: ObjKind::Mutex,
            value: Value::Int(98),
        },
        true,
    )
    .unwrap();

    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();
    assert_eq!(out.pt.get(t), Some(PState::Committed));
    let h = out.ot.get(o).unwrap().heap;
    assert_eq!(heap.read_value(h, None).unwrap(), &Value::Int(5));
    // The orphaned entries were stepped over, not restored.
    assert_eq!(out.ot.len(), 1);

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn bounded_crash_sweep_of_this_organization_is_clean() {
    // Beyond the figure's scripted crash point: sweep the first few crash
    // points of every victim across the hybrid log's configuration cells.
    common::bounded_sweep(argus::guardian::RsKind::Hybrid);
}
