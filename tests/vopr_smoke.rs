//! The VOPR smoke batch: seeded randomized fault composition over every
//! recovery organization must come back clean, the batch must actually
//! compose every fault kind (proved by the per-kind tallies and the
//! `vopr.fault.*` counters), and a seed must replay byte for byte.

use argus::check::{vopr, FaultTally, VoprConfig};
use argus::guardian::RsKind;

/// 32 seeds across the four organizations: no violations anywhere, and
/// every fault kind — drop, duplicate, defer, partition, heal, pause,
/// skew, decay, crash, restart — fired somewhere in the batch.
#[test]
fn smoke_batch_is_clean_and_composes_every_fault() {
    let reg = argus::obs::Registry::new();
    let _scope = reg.enter();

    let mut tally = FaultTally::default();
    for seed in 1..=32u64 {
        let mut cfg = VoprConfig::new(seed, 48);
        cfg.kind = match seed % 4 {
            0 => RsKind::Simple,
            1 => RsKind::Hybrid,
            2 => RsKind::Shadow,
            _ => RsKind::Redo,
        };
        let summary = vopr(&cfg);
        summary.assert_clean();
        tally.absorb(&summary.faults);
    }
    assert!(
        tally.all_kinds_fired(),
        "some fault kind never fired across the batch: {tally}"
    );

    // The ambient obs registry saw the same composition: every per-kind
    // counter is the external proof the batch exercised that fault.
    for key in [
        "vopr.fault.drop",
        "vopr.fault.duplicate",
        "vopr.fault.defer",
        "vopr.fault.partition",
        "vopr.fault.heal",
        "vopr.fault.pause",
        "vopr.fault.skew",
        "vopr.fault.decay",
        "vopr.fault.crash",
        "vopr.fault.restart",
    ] {
        assert!(reg.counter(key).get() > 0, "{key} never fired in the batch");
    }
    assert!(reg.counter("vopr.checks").get() > 0);
    assert_eq!(reg.counter("vopr.violations").get(), 0);
}

/// The explorer at sharded-world scale: 8- and 16-guardian worlds under
/// the full fault composition, across the organizations. The 3-guardian
/// default had left multi-guardian code paths (coordinator fan-out,
/// partition healing, many-participant 2PC) underexplored — this is the
/// world size that exposed the multi-cycle deadlock-detection bug the
/// sharded workload found.
#[test]
fn many_guardian_worlds_stay_clean() {
    let reg = argus::obs::Registry::new();
    let _scope = reg.enter();
    let mut tally = FaultTally::default();
    for (guardians, seeds) in [(8u32, 1..=8u64), (16, 9..=12)] {
        for seed in seeds {
            let mut cfg = VoprConfig::new(seed, 48);
            cfg.guardians = guardians;
            cfg.kind = match seed % 4 {
                0 => RsKind::Simple,
                1 => RsKind::Hybrid,
                2 => RsKind::Shadow,
                _ => RsKind::Redo,
            };
            let summary = vopr(&cfg);
            summary.assert_clean();
            tally.absorb(&summary.faults);
        }
    }
    assert!(
        tally.all_kinds_fired(),
        "some fault kind never fired across the many-guardian batch: {tally}"
    );
}

/// The replay contract: the same seed reproduces the same summary line,
/// byte for byte, for each organization.
#[test]
fn same_seed_replays_byte_for_byte() {
    let reg = argus::obs::Registry::new();
    let _scope = reg.enter();
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow, RsKind::Redo] {
        let mut cfg = VoprConfig::new(77, 48);
        cfg.kind = kind;
        let a = vopr(&cfg);
        let b = vopr(&cfg);
        assert_eq!(a.line(), b.line(), "{kind:?} diverged");
        assert_eq!(a.violations, b.violations, "{kind:?} violations diverged");
    }
}

/// The detection path end to end: a planted impossible oracle expectation
/// must be caught, must replay identically, and must dump the schedule
/// through the flight recorder.
#[test]
fn planted_violation_is_caught_and_dumped() {
    let reg = argus::obs::Registry::new();
    let _scope = reg.enter();
    let dir = std::env::temp_dir().join("argus-vopr-smoke-selftest");
    std::env::set_var("ARGUS_FLIGHT_DIR", &dir);
    let mut cfg = VoprConfig::new(9, 24);
    cfg.break_oracle = true;
    let a = vopr(&cfg);
    let b = vopr(&cfg);
    std::env::remove_var("ARGUS_FLIGHT_DIR");

    assert!(!a.is_clean(), "the planted violation went undetected");
    assert_eq!(a.line(), b.line(), "the violating run must replay");
    assert_eq!(a.violations, b.violations);
    assert!(!a.flight.is_empty(), "no flight dump for a violating run");
    for p in &a.flight {
        assert!(std::path::Path::new(p).exists(), "missing flight dump {p}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
