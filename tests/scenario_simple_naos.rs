//! Scenario 3 (Figure 3-9): recovery with newly accessible objects — the
//! crash follows the history of Figure 3-5.
//!
//! History: T1 committed O1 and O2. T2 write-locked O1, created O3, pointed
//! O1 at it, modified O3, and prepared. T3 write-locked O2, pointed it at
//! O3, and prepared. T2 aborted; T3 committed; crash.
//!
//! Log, oldest first:
//!
//! `bc(O1,V1) · bc(O2,V2) · prepared(T1) · committed(T1) ·
//!  data(O1,at,V1',T2) · bc(O3,V3b) · data(O3,at,V3c,T2) · prepared(T2) ·
//!  data(O2,at,V2',T3) · prepared(T3) · aborted(T2) · committed(T3)`
//!
//! Expected final state = Figure 3-5 step 8: O1 back to V1 (T2 aborted), O2
//! pointing at O3 (T3 committed), O3 alive with its base version — "Even
//! though T2 aborted, object O3 must be recovered after a crash because it
//! is needed for T3."

use argus::core::providers::MemProvider;
use argus::core::{LogEntry, ObjState, PState, RecoverySystem, SimpleLogRs};
use argus::objects::{ActionId, GuardianId, Heap, ObjKind, ObjectBody, Uid, Value};

mod common;

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

#[test]
fn figure_3_9_recovery() {
    let (t1, t2, t3) = (aid(1), aid(2), aid(3));
    let (o1, o2, o3) = (Uid(1), Uid(2), Uid(3));

    let mut rs = SimpleLogRs::create(MemProvider::fast()).unwrap();
    rs.append_raw(
        &LogEntry::BaseCommitted {
            uid: o1,
            value: Value::Int(1),
            prev: None,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::BaseCommitted {
            uid: o2,
            value: Value::Int(2),
            prev: None,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t1,
            pairs: vec![],
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Committed {
            aid: t1,
            prev: None,
        },
        true,
    )
    .unwrap();
    // T2 prepares: its current version of O1 points at the new O3.
    rs.append_raw(
        &LogEntry::Data {
            uid: o1,
            kind: ObjKind::Atomic,
            value: Value::uid_ref(o3),
            aid: t2,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::BaseCommitted {
            uid: o3,
            value: Value::Int(30),
            prev: None,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Data {
            uid: o3,
            kind: ObjKind::Atomic,
            value: Value::Int(33),
            aid: t2,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t2,
            pairs: vec![],
            prev: None,
        },
        true,
    )
    .unwrap();
    // T3 prepares: its current version of O2 also points at O3.
    rs.append_raw(
        &LogEntry::Data {
            uid: o2,
            kind: ObjKind::Atomic,
            value: Value::uid_ref(o3),
            aid: t3,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t3,
            pairs: vec![],
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Aborted {
            aid: t2,
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Committed {
            aid: t3,
            prev: None,
        },
        true,
    )
    .unwrap();

    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();

    // Thesis closing tables.
    assert_eq!(out.pt.get(t1), Some(PState::Committed));
    assert_eq!(out.pt.get(t2), Some(PState::Aborted));
    assert_eq!(out.pt.get(t3), Some(PState::Committed));
    for uid in [o1, o2, o3] {
        assert_eq!(out.ot.get(uid).unwrap().state, ObjState::Restored, "{uid}");
    }
    assert_eq!(out.ot.len(), 3);

    // O1 = V1: T2's version discarded.
    let h1 = out.ot.get(o1).unwrap().heap;
    assert_eq!(heap.read_value(h1, None).unwrap(), &Value::Int(1));
    // O3 = base version 30: T2's modification (33) discarded, but the object
    // itself survives because T3 needs it.
    let h3 = out.ot.get(o3).unwrap().heap;
    assert_eq!(heap.read_value(h3, None).unwrap(), &Value::Int(30));
    // O2 = T3's committed version: a pointer to O3, resolved from the uid to
    // the volatile address by the final pass (§3.4.3).
    let h2 = out.ot.get(o2).unwrap().heap;
    assert_eq!(heap.read_value(h2, None).unwrap(), &Value::heap_ref(h3));
    match &heap.get(h2).unwrap().body {
        ObjectBody::Atomic(obj) => assert!(obj.writer.is_none() && obj.current.is_none()),
        _ => panic!("O2 must be atomic"),
    }

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn bounded_crash_sweep_of_this_organization_is_clean() {
    // Beyond the figure's scripted crash point: sweep the first few crash
    // points of every victim across the simple log's configuration cells.
    common::bounded_sweep(argus::guardian::RsKind::Simple);
}
