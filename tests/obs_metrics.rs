//! Integration tests of the observability layer: the metrics the
//! instrumented recovery path records must agree with what recovery itself
//! reports (`RecoveryOutcome`) and with the device-level `DeviceStats`.

use argus::core::providers::MemProvider;
use argus::core::{HybridLogRs, LogEntry, RecoverySystem};
use argus::guardian::{Outcome, RsKind, World};
use argus::objects::{ActionId, GuardianId, Heap, ObjKind, Uid, Value};
use argus::obs::{Event, Registry};

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

/// The Figure 4-2/§4.3.2 scenario (see tests/scenario_hybrid.rs): the
/// registry's recovery counters and the journal's `recovery_pass` event must
/// match the `RecoveryOutcome` field for field.
#[test]
fn figure_4_2_metrics_agree_with_recovery_outcome() {
    let reg = Registry::new();
    let _scope = reg.enter();

    let (t1, t2) = (aid(1), aid(2));
    let (o1, o2) = (Uid(1), Uid(2));
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();

    let bc = rs
        .append_raw(
            &LogEntry::BaseCommitted {
                uid: o1,
                value: Value::Int(10),
                prev: None,
            },
            false,
        )
        .unwrap();
    let l1 = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Atomic,
                value: Value::Int(11),
            },
            false,
        )
        .unwrap();
    let l2 = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Mutex,
                value: Value::Int(21),
            },
            false,
        )
        .unwrap();
    let p1 = rs
        .append_raw(
            &LogEntry::Prepared {
                aid: t1,
                pairs: vec![(o1, l1), (o2, l2)],
                prev: Some(bc),
            },
            true,
        )
        .unwrap();
    let c1 = rs
        .append_raw(
            &LogEntry::Committed {
                aid: t1,
                prev: Some(p1),
            },
            true,
        )
        .unwrap();
    let l1p = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Atomic,
                value: Value::Int(12),
            },
            false,
        )
        .unwrap();
    let l2p = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Mutex,
                value: Value::Int(22),
            },
            false,
        )
        .unwrap();
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t2,
            pairs: vec![(o1, l1p), (o2, l2p)],
            prev: Some(c1),
        },
        true,
    )
    .unwrap();

    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();

    // The thesis's exact figures: 3 data entries read; the backward chain is
    // prepared(T2) → committed(T1) → prepared(T1) → bc, i.e. 4 hops.
    assert_eq!(out.data_entries_read, 3);
    assert_eq!(out.chain_hops, 4);

    // Counters mirror the outcome exactly.
    assert_eq!(reg.counter("core.recoveries").get(), 1);
    assert_eq!(
        reg.counter("core.recover.entries_examined").get(),
        out.entries_examined
    );
    assert_eq!(
        reg.counter("core.recover.data_entries_read").get(),
        out.data_entries_read
    );
    assert_eq!(reg.counter("core.recover.chain_hops").get(), out.chain_hops);

    // The journal's recovery_pass event carries the same figures, plus the
    // rebuilt table sizes.
    let report = reg.report();
    let pass = report
        .events
        .iter()
        .rev()
        .find_map(|r| match r.event {
            Event::RecoveryPass {
                entries_examined,
                data_entries_read,
                chain_hops,
                pt_size,
                ot_size,
                ..
            } => Some((
                entries_examined,
                data_entries_read,
                chain_hops,
                pt_size,
                ot_size,
            )),
            _ => None,
        })
        .expect("a recovery_pass event was journaled");
    assert_eq!(pass.0, out.entries_examined);
    assert_eq!(pass.1, out.data_entries_read);
    assert_eq!(pass.2, out.chain_hops);
    assert_eq!(pass.3, out.pt.len() as u64);
    assert_eq!(pass.4, out.ot.len() as u64);
    // One chain_hop event per hop, one recovery_data_read per data entry.
    let hops = report
        .events
        .iter()
        .filter(|r| matches!(r.event, Event::ChainHop { .. }))
        .count() as u64;
    let data_reads = report
        .events
        .iter()
        .filter(|r| matches!(r.event, Event::RecoveryDataRead { .. }))
        .count() as u64;
    assert_eq!(hops, out.chain_hops);
    assert_eq!(data_reads, out.data_entries_read);
}

/// A whole-world crash/restart: recovery counters must agree with the
/// `RecoveryOutcome`, with the stable-log's own read counter, and with the
/// device-level `DeviceStats` page tallies.
#[test]
fn world_recovery_metrics_agree_with_device_stats() {
    let reg = Registry::new();
    let _scope = reg.enter();

    let mut world = World::fast();
    let g = world.add_guardian(RsKind::Hybrid).unwrap();
    for i in 0..20i64 {
        let a = world.begin(g).unwrap();
        world
            .set_stable(g, a, &format!("k{}", i % 5), Value::Int(i))
            .unwrap();
        assert_eq!(world.commit(a).unwrap(), Outcome::Committed);
    }
    let a = world.begin(g).unwrap();
    world.set_stable(g, a, "doomed", Value::Int(-1)).unwrap();
    world.abort_local(a);

    // Snapshot counters and device stats just before the crash so only the
    // recovery pass is measured.
    let entry_reads_before = reg.counter("slog.entry_reads").get();
    let device_before = world.guardian(g).unwrap().log_stats().device;

    world.crash(g);
    let outcome = world.restart(g).unwrap();
    let device = world
        .guardian(g)
        .unwrap()
        .log_stats()
        .device
        .since(&device_before);

    // The hybrid log walked a real backward chain.
    assert!(outcome.chain_hops > 0);
    assert!(outcome.entries_examined >= outcome.chain_hops);

    // Registry counters mirror the outcome.
    assert_eq!(reg.counter("core.recoveries").get(), 1);
    assert_eq!(
        reg.counter("core.recover.entries_examined").get(),
        outcome.entries_examined
    );
    assert_eq!(
        reg.counter("core.recover.chain_hops").get(),
        outcome.chain_hops
    );
    assert_eq!(
        reg.counter("core.recover.data_entries_read").get(),
        outcome.data_entries_read
    );

    // Every examined entry is one stable-log read: the slog layer's
    // independent counter must agree with the recovery layer's.
    let entry_reads = reg.counter("slog.entry_reads").get() - entry_reads_before;
    assert_eq!(entry_reads, outcome.entries_examined);

    // And the device really ran: recovery cost page reads, but never more
    // than one per examined entry (several small entries share a page).
    let page_reads = device.seq_reads + device.rand_reads;
    assert!(page_reads > 0, "recovery read no pages");
    assert!(
        page_reads <= outcome.entries_examined,
        "{page_reads} page reads > {} entries examined",
        outcome.entries_examined
    );
    assert!(device.busy_us > 0);

    // The phase timer measured the recovery pass on the simulated clock.
    let recover_us = reg.histogram("core.recover_us").snapshot();
    assert_eq!(recover_us.count, 1);
    assert!(recover_us.sum > 0);

    // World-level counters saw the crash and the restart.
    assert_eq!(reg.counter("world.crashes").get(), 1);
    assert_eq!(reg.counter("world.restarts").get(), 1);
}
