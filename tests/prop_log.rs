//! Randomized tests of the stable-log substrate: arbitrary write / force /
//! crash sequences against a reference model.
//!
//! Driven by the in-tree deterministic RNG (`argus::sim::DetRng`) with fixed
//! seeds, so every "random" case is exactly reproducible. Gated behind the
//! off-by-default `proptest` feature: `cargo test --features proptest`.

use argus::sim::{CostModel, DetRng, SimClock};
use argus::slog::StableLog;
use argus::stable::{FaultPlan, MemStore};

#[derive(Debug, Clone)]
enum LogOp {
    /// Buffer an entry of the given content length.
    Write(u16),
    /// Force the buffer.
    Force,
    /// Crash (drop buffered entries) and reopen.
    Crash,
}

/// Weighted draw: writes 6, forces 2, crashes 1 (of 9).
fn gen_op(rng: &mut DetRng) -> LogOp {
    match rng.gen_range(9) {
        0..=5 => LogOp::Write(rng.gen_range(2000) as u16),
        6 | 7 => LogOp::Force,
        _ => LogOp::Crash,
    }
}

fn payload(i: usize, len: u16) -> Vec<u8> {
    let mut bytes = vec![0u8; len as usize];
    for (j, b) in bytes.iter_mut().enumerate() {
        *b = (i.wrapping_mul(31).wrapping_add(j)) as u8;
    }
    bytes
}

/// After any sequence of writes, forces, and crashes, the log contains
/// exactly the forced prefix, in order, readable both forwards (by address)
/// and backwards (by iteration).
#[test]
fn log_equals_forced_prefix() {
    let mut rng = DetRng::new(0x5106);
    for case in 0..64 {
        let ops: Vec<LogOp> = (0..rng.gen_between(1, 40)).map(|_| gen_op(&mut rng)).collect();
        let mut log =
            StableLog::create(MemStore::new(SimClock::new(), CostModel::fast())).unwrap();
        let mut durable: Vec<(argus::slog::LogAddress, Vec<u8>)> = Vec::new();
        let mut buffered: Vec<(argus::slog::LogAddress, Vec<u8>)> = Vec::new();
        let mut counter = 0usize;

        for op in &ops {
            match op {
                LogOp::Write(len) => {
                    let bytes = payload(counter, *len);
                    counter += 1;
                    let addr = log.write(&bytes);
                    buffered.push((addr, bytes));
                }
                LogOp::Force => {
                    log.force().unwrap();
                    durable.append(&mut buffered);
                }
                LogOp::Crash => {
                    log.reopen().unwrap();
                    buffered.clear();
                }
            }
        }
        log.force().unwrap();
        durable.append(&mut buffered);

        assert_eq!(log.stable_count(), durable.len() as u64, "case {case}");
        // Forward reads by address.
        for (addr, bytes) in &durable {
            let (_seq, got) = log.read(*addr).unwrap();
            assert_eq!(&got, bytes, "case {case}");
        }
        // Backward iteration covers exactly the durable entries, newest
        // first.
        let walked: Vec<Vec<u8>> = log.read_backward(None).map(|r| r.unwrap().2).collect();
        let expected: Vec<Vec<u8>> = durable.iter().rev().map(|(_, b)| b.clone()).collect();
        assert_eq!(walked, expected, "case {case}");
    }
}

/// A crash at ANY point inside a force leaves the log equal to either the
/// pre-force or the post-force state — never something in between.
#[test]
fn force_is_atomic_under_crashes() {
    let mut rng = DetRng::new(0xA70_FC);
    for case in 0..64 {
        let entries: Vec<u16> = (0..rng.gen_between(1, 6))
            .map(|_| rng.gen_range(600) as u16)
            .collect();
        let crash_after = rng.gen_range(40);

        let plan = FaultPlan::new();
        let store = MemStore::with_fault_plan(plan.clone(), SimClock::new(), CostModel::fast());
        let mut log = StableLog::create(store).unwrap();
        // A durable sentinel first.
        log.force_write(b"sentinel").unwrap();

        for (i, len) in entries.iter().enumerate() {
            log.write(&payload(i, *len));
        }
        plan.arm_after_writes(crash_after);
        let result = log.force();
        plan.heal();
        plan.disarm();
        log.reopen().unwrap();

        let count = log.stable_count();
        match result {
            Ok(()) => assert_eq!(count, 1 + entries.len() as u64, "case {case}"),
            Err(_) => assert!(
                count == 1 || count == 1 + entries.len() as u64,
                "case {case}: partial force became visible: {count} entries"
            ),
        }
        // Whatever survived is internally consistent.
        for item in log.read_backward(None) {
            item.unwrap();
        }
    }
}
