//! Property-based tests of the stable-log substrate: arbitrary write /
//! force / crash sequences against a reference model.

use argus::sim::{CostModel, SimClock};
use argus::slog::StableLog;
use argus::stable::{FaultPlan, MemStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum LogOp {
    /// Buffer an entry of the given content length.
    Write(u16),
    /// Force the buffer.
    Force,
    /// Crash (drop buffered entries) and reopen.
    Crash,
}

fn logop_strategy() -> impl Strategy<Value = LogOp> {
    prop_oneof![
        6 => (0u16..2000).prop_map(LogOp::Write),
        2 => Just(LogOp::Force),
        1 => Just(LogOp::Crash),
    ]
}

fn payload(i: usize, len: u16) -> Vec<u8> {
    let mut bytes = vec![0u8; len as usize];
    for (j, b) in bytes.iter_mut().enumerate() {
        *b = (i.wrapping_mul(31).wrapping_add(j)) as u8;
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// After any sequence of writes, forces, and crashes, the log contains
    /// exactly the forced prefix, in order, readable both forwards (by
    /// address) and backwards (by iteration).
    #[test]
    fn log_equals_forced_prefix(ops in proptest::collection::vec(logop_strategy(), 1..40)) {
        let mut log =
            StableLog::create(MemStore::new(SimClock::new(), CostModel::fast())).unwrap();
        let mut durable: Vec<(argus::slog::LogAddress, Vec<u8>)> = Vec::new();
        let mut buffered: Vec<(argus::slog::LogAddress, Vec<u8>)> = Vec::new();
        let mut counter = 0usize;

        for op in &ops {
            match op {
                LogOp::Write(len) => {
                    let bytes = payload(counter, *len);
                    counter += 1;
                    let addr = log.write(&bytes);
                    buffered.push((addr, bytes));
                }
                LogOp::Force => {
                    log.force().unwrap();
                    durable.append(&mut buffered);
                }
                LogOp::Crash => {
                    log.reopen().unwrap();
                    buffered.clear();
                }
            }
        }
        log.force().unwrap();
        durable.append(&mut buffered);

        prop_assert_eq!(log.stable_count(), durable.len() as u64);
        // Forward reads by address.
        for (addr, bytes) in &durable {
            let (_seq, got) = log.read(*addr).unwrap();
            prop_assert_eq!(&got, bytes);
        }
        // Backward iteration covers exactly the durable entries, newest
        // first.
        let walked: Vec<Vec<u8>> =
            log.read_backward(None).map(|r| r.unwrap().2).collect();
        let expected: Vec<Vec<u8>> =
            durable.iter().rev().map(|(_, b)| b.clone()).collect();
        prop_assert_eq!(walked, expected);
    }

    /// A crash at ANY point inside a force leaves the log equal to either
    /// the pre-force or the post-force state — never something in between.
    #[test]
    fn force_is_atomic_under_crashes(
        entries in proptest::collection::vec(0u16..600, 1..6),
        crash_after in 0u64..40,
    ) {
        let plan = FaultPlan::new();
        let store = MemStore::with_fault_plan(plan.clone(), SimClock::new(), CostModel::fast());
        let mut log = StableLog::create(store).unwrap();
        // A durable sentinel first.
        log.force_write(b"sentinel").unwrap();

        for (i, len) in entries.iter().enumerate() {
            log.write(&payload(i, *len));
        }
        plan.arm_after_writes(crash_after);
        let result = log.force();
        plan.heal();
        plan.disarm();
        log.reopen().unwrap();

        let count = log.stable_count();
        match result {
            Ok(()) => prop_assert_eq!(count, 1 + entries.len() as u64),
            Err(_) => prop_assert!(
                count == 1 || count == 1 + entries.len() as u64,
                "partial force became visible: {} entries", count
            ),
        }
        // Whatever survived is internally consistent.
        for item in log.read_backward(None) {
            item.unwrap();
        }
    }
}
