//! Randomized tests of the stable-log substrate: arbitrary write / force /
//! crash sequences against a reference model.
//!
//! Driven by the in-tree deterministic RNG (`argus::sim::DetRng`) with fixed
//! seeds, so every "random" case is exactly reproducible. Gated behind the
//! off-by-default `proptest` feature: `cargo test --features proptest`.

use argus::check::lint_log;
use argus::check::LogImage;
use argus::core::{encode_entry, LogEntry};
use argus::guardian::{RsKind, World};
use argus::objects::{ActionId, GuardianId, ObjKind, Uid, Value};
use argus::sim::{CostModel, DetRng, SimClock};
use argus::slog::{LogAddress, StableLog};
use argus::stable::{FaultPlan, MemStore};
use argus::workload::{Synth, SynthConfig};
use std::collections::HashMap;

mod common;

#[derive(Debug, Clone)]
enum LogOp {
    /// Buffer an entry of the given content length.
    Write(u16),
    /// Force the buffer.
    Force,
    /// Crash (drop buffered entries) and reopen.
    Crash,
}

/// Weighted draw: writes 6, forces 2, crashes 1 (of 9).
fn gen_op(rng: &mut DetRng) -> LogOp {
    match rng.gen_range(9) {
        0..=5 => LogOp::Write(rng.gen_range(2000) as u16),
        6 | 7 => LogOp::Force,
        _ => LogOp::Crash,
    }
}

fn payload(i: usize, len: u16) -> Vec<u8> {
    let mut bytes = vec![0u8; len as usize];
    for (j, b) in bytes.iter_mut().enumerate() {
        *b = (i.wrapping_mul(31).wrapping_add(j)) as u8;
    }
    bytes
}

/// After any sequence of writes, forces, and crashes, the log contains
/// exactly the forced prefix, in order, readable both forwards (by address)
/// and backwards (by iteration).
#[test]
fn log_equals_forced_prefix() {
    let mut rng = DetRng::new(0x5106);
    for case in 0..64 {
        let ops: Vec<LogOp> = (0..rng.gen_between(1, 40))
            .map(|_| gen_op(&mut rng))
            .collect();
        let mut log = StableLog::create(MemStore::new(SimClock::new(), CostModel::fast())).unwrap();
        let mut durable: Vec<(argus::slog::LogAddress, Vec<u8>)> = Vec::new();
        let mut buffered: Vec<(argus::slog::LogAddress, Vec<u8>)> = Vec::new();
        let mut counter = 0usize;

        for op in &ops {
            match op {
                LogOp::Write(len) => {
                    let bytes = payload(counter, *len);
                    counter += 1;
                    let addr = log.write(&bytes);
                    buffered.push((addr, bytes));
                }
                LogOp::Force => {
                    log.force().unwrap();
                    durable.append(&mut buffered);
                }
                LogOp::Crash => {
                    log.reopen().unwrap();
                    buffered.clear();
                }
            }
        }
        log.force().unwrap();
        durable.append(&mut buffered);

        assert_eq!(log.stable_count(), durable.len() as u64, "case {case}");
        // Forward reads by address.
        for (addr, bytes) in &durable {
            let (_seq, got) = log.read(*addr).unwrap();
            assert_eq!(&got, bytes, "case {case}");
        }
        // Backward iteration covers exactly the durable entries, newest
        // first.
        let walked: Vec<Vec<u8>> = log.read_backward(None).map(|r| r.unwrap().2).collect();
        let expected: Vec<Vec<u8>> = durable.iter().rev().map(|(_, b)| b.clone()).collect();
        assert_eq!(walked, expected, "case {case}");
    }
}

/// A crash at ANY point inside a force leaves the log equal to either the
/// pre-force or the post-force state — never something in between.
#[test]
fn force_is_atomic_under_crashes() {
    let mut rng = DetRng::new(0xA70F);
    for case in 0..64 {
        let entries: Vec<u16> = (0..rng.gen_between(1, 6))
            .map(|_| rng.gen_range(600) as u16)
            .collect();
        let crash_after = rng.gen_range(40);

        let plan = FaultPlan::new();
        let store = MemStore::with_fault_plan(plan.clone(), SimClock::new(), CostModel::fast());
        let mut log = StableLog::create(store).unwrap();
        // A durable sentinel first.
        log.force_write(b"sentinel").unwrap();

        for (i, len) in entries.iter().enumerate() {
            log.write(&payload(i, *len));
        }
        plan.arm_after_writes(crash_after);
        let result = log.force();
        plan.heal();
        plan.disarm();
        log.reopen().unwrap();

        let count = log.stable_count();
        match result {
            Ok(()) => assert_eq!(count, 1 + entries.len() as u64, "case {case}"),
            Err(_) => assert!(
                count == 1 || count == 1 + entries.len() as u64,
                "case {case}: partial force became visible: {count} entries"
            ),
        }
        // Whatever survived is internally consistent.
        for item in log.read_backward(None) {
            item.unwrap();
        }
    }
}

/// Generates a random hybrid log that follows the writer's discipline —
/// data entries below their prepared entry, chained outcomes, verdicts only
/// for prepared actions, references only to base-committed objects — and
/// asserts the argus-check linter accepts every one of them (I1–I9).
#[test]
fn random_well_formed_logs_lint_clean() {
    let mut rng = DetRng::new(0xC4EC);
    for case in 0..48u32 {
        let mut log = StableLog::create(MemStore::new(SimClock::new(), CostModel::fast())).unwrap();
        let mut force = |entry: &LogEntry| -> LogAddress {
            log.force_write(&encode_entry(entry).unwrap()).unwrap()
        };

        let mut prev: Option<LogAddress> = None;
        // Objects with a base_committed entry: safe targets for references.
        let mut based: Vec<Uid> = Vec::new();
        let mut kinds: HashMap<Uid, ObjKind> = HashMap::new();
        let mut next_uid = 1u64;

        for seq in 0..rng.gen_between(1, 10) {
            let aid = ActionId::new(GuardianId(0), seq);

            // Sometimes introduce a fresh base-committed object first.
            if rng.gen_range(3) == 0 {
                let uid = Uid(next_uid);
                next_uid += 1;
                kinds.insert(uid, ObjKind::Atomic);
                let a = force(&LogEntry::BaseCommitted {
                    uid,
                    value: Value::Int(seq as i64),
                    prev,
                });
                prev = Some(a);
                based.push(uid);
            }

            // The action's data entries, then its prepared entry.
            let mut pairs: Vec<(Uid, LogAddress)> = Vec::new();
            for _ in 0..rng.gen_range(3) {
                let uid = if !based.is_empty() && rng.gen_range(2) == 0 {
                    based[rng.gen_range(based.len() as u64) as usize]
                } else {
                    let uid = Uid(next_uid);
                    next_uid += 1;
                    uid
                };
                if pairs.iter().any(|(u, _)| *u == uid) {
                    continue;
                }
                let kind = *kinds.entry(uid).or_insert(if rng.gen_range(2) == 0 {
                    ObjKind::Atomic
                } else {
                    ObjKind::Mutex
                });
                // Reference only base-committed objects so the restorable
                // set stays closed whatever verdict this action draws.
                let value = if !based.is_empty() && rng.gen_range(3) == 0 {
                    Value::uid_ref(based[rng.gen_range(based.len() as u64) as usize])
                } else {
                    Value::Int(rng.gen_range(1000) as i64)
                };
                let d = force(&LogEntry::DataH { kind, value });
                pairs.push((uid, d));
            }
            let p = force(&LogEntry::Prepared { aid, pairs, prev });
            prev = Some(p);

            // Verdict: commit, abort, or stay in doubt.
            match rng.gen_range(4) {
                0 | 1 => {
                    let c = force(&LogEntry::Committed { aid, prev });
                    prev = Some(c);
                    // Coordinated actions log committing (+ sometimes done).
                    if rng.gen_range(3) == 0 {
                        let cg = force(&LogEntry::Committing {
                            aid,
                            gids: vec![GuardianId(1)],
                            prev,
                        });
                        prev = Some(cg);
                        if rng.gen_range(2) == 0 {
                            let d = force(&LogEntry::Done { aid, prev });
                            prev = Some(d);
                        }
                    }
                }
                2 => {
                    let a = force(&LogEntry::Aborted { aid, prev });
                    prev = Some(a);
                }
                _ => {}
            }
        }

        let report = lint_log(&LogImage::from_log(&mut log));
        assert!(
            report.is_clean(),
            "case {case}: generated log failed lint:\n{report}"
        );
    }
}

/// Any log the real system produces — randomized workload with periodic
/// housekeeping, then a crash/restart — lints clean.
#[test]
fn real_workload_logs_lint_clean() {
    for seed in [1u64, 7, 42] {
        let mut world = World::fast();
        let mut synth = Synth::setup(
            &mut world,
            RsKind::Hybrid,
            SynthConfig {
                objects: 12,
                writes_per_action: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let g = synth.guardian();
        let mut rng = DetRng::new(seed);
        for i in 0..40u64 {
            synth.action(&mut world, &mut rng, false).unwrap();
            if i % 17 == 16 {
                world
                    .housekeep(g, argus::core::HousekeepingMode::Compaction)
                    .unwrap();
            }
        }
        world.crash(g);
        world.restart(g).unwrap();
        common::lint_world(&mut world);
    }
}
