//! The early-prepare scenario of Figure 4-3/§4.4: data entries of different
//! actions interleave, and the recovery system must compare *log addresses*
//! to keep the latest mutex version.
//!
//! History: T1 early-prepares mutex O1 (d1). T2 then seizes O1, writes d2,
//! plus two more objects (d3, d4), and prepares. T1 writes d5 for another
//! object and prepares, then commits. Crash.
//!
//! "On recovery we see that the earlier version, rather than the latest
//! version, of O1 gets copied to volatile memory, which is wrong. To solve
//! this problem we need to keep some extra information in the OT for mutex
//! objects, namely, the log address of the 'latest' data entry…"

use argus::core::providers::MemProvider;
use argus::core::{HybridLogRs, LogEntry, PState, RecoverySystem};
use argus::objects::{ActionId, GuardianId, Heap, ObjKind, ObjectBody, Uid, Value};

mod common;

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

#[test]
fn figure_4_3_mutex_recency() {
    let (t1, t2) = (aid(1), aid(2));
    let (o1, o2, o3, o4) = (Uid(1), Uid(2), Uid(3), Uid(4));
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();

    // Step 1: T1's early-prepared version of mutex O1.
    let d1 = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Mutex,
                value: Value::Str("old".into()),
            },
            false,
        )
        .unwrap();
    // Steps 2–3: T2's newer version of O1 plus two more data entries.
    let d2 = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Mutex,
                value: Value::Str("new".into()),
            },
            false,
        )
        .unwrap();
    let d3 = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Atomic,
                value: Value::Int(3),
            },
            false,
        )
        .unwrap();
    let d4 = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Atomic,
                value: Value::Int(4),
            },
            false,
        )
        .unwrap();
    // Step 4: T2 prepares.
    let p2 = rs
        .append_raw(
            &LogEntry::Prepared {
                aid: t2,
                pairs: vec![(o1, d2), (o2, d3), (o3, d4)],
                prev: None,
            },
            true,
        )
        .unwrap();
    // Step 5: one more data entry for T1.
    let d5 = rs
        .append_raw(
            &LogEntry::DataH {
                kind: ObjKind::Atomic,
                value: Value::Int(5),
            },
            false,
        )
        .unwrap();
    // Step 6: T1 prepares — its pair for O1 points at the OLDER d1.
    let p1 = rs
        .append_raw(
            &LogEntry::Prepared {
                aid: t1,
                pairs: vec![(o1, d1), (o4, d5)],
                prev: Some(p2),
            },
            true,
        )
        .unwrap();
    // Step 7: T1 commits. Step 8: crash.
    rs.append_raw(
        &LogEntry::Committed {
            aid: t1,
            prev: Some(p1),
        },
        true,
    )
    .unwrap();

    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();

    assert_eq!(out.pt.get(t1), Some(PState::Committed));
    assert_eq!(out.pt.get(t2), Some(PState::Prepared));

    // The crux: O1 recovers to T2's later version even though the committed
    // T1's pair is processed first during the backward walk.
    let h1 = out.ot.get(o1).unwrap().heap;
    assert_eq!(
        heap.read_value(h1, None).unwrap(),
        &Value::Str("new".into())
    );
    // And the OT remembers the winning address.
    assert_eq!(out.ot.get(o1).unwrap().mutex_addr, Some(d2));

    // T2's atomic objects are restored as prepared currents under its lock.
    for (uid, expect) in [(o2, 3i64), (o3, 4)] {
        let h = out.ot.get(uid).unwrap().heap;
        match &heap.get(h).unwrap().body {
            ObjectBody::Atomic(obj) => {
                assert_eq!(obj.current, Some(Value::Int(expect)));
                assert_eq!(obj.writer, Some(t2));
            }
            _ => panic!("{uid} must be atomic"),
        }
    }
    // T1's committed O4.
    let h4 = out.ot.get(o4).unwrap().heap;
    assert_eq!(heap.read_value(h4, None).unwrap(), &Value::Int(5));

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn end_to_end_early_prepare_matches_figure_4_3() {
    // The same interleaving produced by the real writer: T1 early-prepares
    // a mutex, T2 modifies it and prepares, T1 prepares later and commits.
    let mut heap = Heap::with_stable_root();
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let (t0, t1, t2) = (aid(10), aid(11), aid(12));

    // Set up a committed mutex reachable from the root.
    let m = heap.alloc_mutex(Value::Int(0));
    let m_uid = heap.uid_of(m).unwrap();
    let root = heap.stable_root().unwrap();
    heap.acquire_write(root, t0).unwrap();
    heap.write_value(root, t0, |v| *v = Value::heap_ref(m))
        .unwrap();
    rs.prepare(t0, &[root], &heap).unwrap();
    rs.commit(t0).unwrap();
    heap.commit_action(t0);

    // T1 mutates the mutex and early-prepares.
    heap.seize(m, t1).unwrap();
    heap.mutate_mutex(m, t1, |v| *v = Value::Int(1)).unwrap();
    heap.release(m, t1).unwrap();
    let leftover = rs.write_entry(t1, &[m], &heap).unwrap();
    assert!(leftover.is_empty());

    // T2 mutates it afterwards and fully prepares.
    heap.seize(m, t2).unwrap();
    heap.mutate_mutex(m, t2, |v| *v = Value::Int(2)).unwrap();
    heap.release(m, t2).unwrap();
    rs.prepare(t2, &[m], &heap).unwrap();

    // T1 prepares (its early-prepared pair points at the older entry) and
    // commits.
    rs.prepare(t1, &[], &heap).unwrap();
    rs.commit(t1).unwrap();
    heap.commit_action(t1);

    rs.simulate_crash().unwrap();
    let mut heap2 = Heap::new();
    let out = rs.recover(&mut heap2).unwrap();
    let h = heap2.lookup(m_uid).unwrap();
    // T2's version is the latest prepared one and must win.
    assert_eq!(heap2.read_value(h, None).unwrap(), &Value::Int(2));

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn early_prepared_then_aborted_action_leaves_no_trace() {
    // §4.4: "if it aborts then extra work has been done, but that is not a
    // problem" — the early-prepared data entries must be inert without a
    // prepared record.
    let mut heap = Heap::with_stable_root();
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let (t0, t1) = (aid(20), aid(21));

    let root = heap.stable_root().unwrap();
    heap.acquire_write(root, t0).unwrap();
    heap.write_value(root, t0, |v| *v = Value::Int(1)).unwrap();
    rs.prepare(t0, &[root], &heap).unwrap();
    rs.commit(t0).unwrap();
    heap.commit_action(t0);

    // T1 modifies the root, early-prepares, then aborts locally (no 2PC
    // records at all). Force something else so the early-prepared data is
    // actually durable on the device.
    heap.acquire_write(root, t1).unwrap();
    heap.write_value(root, t1, |v| *v = Value::Int(666))
        .unwrap();
    let leftover = rs.write_entry(t1, &[root], &heap).unwrap();
    assert!(leftover.is_empty());
    heap.abort_action(t1);

    rs.simulate_crash().unwrap();
    let mut heap2 = Heap::new();
    let out = rs.recover(&mut heap2).unwrap();
    let root2 = heap2.stable_root().unwrap();
    assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(1));

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn discard_drops_early_prepare_bookkeeping() {
    // Without discard, a locally-aborted early-prepared action's pending
    // pairs would be rewritten into every future housekept log.
    let mut heap = Heap::with_stable_root();
    let mut rs = HybridLogRs::create(MemProvider::fast()).unwrap();
    let (t0, t1) = (aid(30), aid(31));

    let root = heap.stable_root().unwrap();
    heap.acquire_write(root, t0).unwrap();
    heap.write_value(root, t0, |v| *v = Value::Int(1)).unwrap();
    rs.prepare(t0, &[root], &heap).unwrap();
    rs.commit(t0).unwrap();
    heap.commit_action(t0);

    heap.acquire_write(root, t1).unwrap();
    heap.write_value(root, t1, |v| *v = Value::Int(2)).unwrap();
    rs.write_entry(t1, &[root], &heap).unwrap();
    heap.abort_action(t1);
    rs.discard(t1);

    // Housekeeping must not resurrect t1's data entries; the compacted log
    // holds only the committed state.
    rs.housekeeping(&heap, argus::core::HousekeepingMode::Snapshot)
        .unwrap();
    rs.simulate_crash().unwrap();
    let mut heap2 = Heap::new();
    let out = rs.recover(&mut heap2).unwrap();
    assert!(out.pt.get(t1).is_none());
    let root2 = heap2.stable_root().unwrap();
    assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(1));

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn bounded_crash_sweep_of_this_organization_is_clean() {
    // Beyond the figure's scripted crash point: sweep the first few crash
    // points of every victim across the hybrid log's configuration cells.
    common::bounded_sweep(argus::guardian::RsKind::Hybrid);
}
