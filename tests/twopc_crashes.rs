//! S8: the §2.2.3 crash matrix, driven exhaustively by fault injection.
//!
//! For every crash budget (the number of low-level page writes a node is
//! allowed before it dies) and for both the participant and the coordinator
//! side, run a distributed transfer, crash, restart, reconverge — and check
//! the all-or-nothing invariant: the two balances always sum to the same
//! total, and the two guardians agree on whether the transfer happened.

use argus::guardian::{Outcome, RsKind, World};
use argus::objects::{ObjRef, Value};

const KINDS: [RsKind; 3] = [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow];

/// Sets up two guardians each holding one account with 100 units.
/// Returns (world, g0, g1).
fn setup(
    kind: RsKind,
) -> (
    World,
    argus::objects::GuardianId,
    argus::objects::GuardianId,
) {
    let mut w = World::fast();
    let g0 = w.add_guardian(kind).unwrap();
    let g1 = w.add_guardian(kind).unwrap();
    for g in [g0, g1] {
        let a = w.begin(g).unwrap();
        let account = w.create_atomic(g, a, Value::Int(100)).unwrap();
        w.set_stable(g, a, "acct", Value::heap_ref(account))
            .unwrap();
        assert_eq!(w.commit(a).unwrap(), Outcome::Committed);
    }
    (w, g0, g1)
}

fn balance(w: &World, g: argus::objects::GuardianId) -> i64 {
    let guardian = w.guardian(g).unwrap();
    match guardian.stable_value("acct") {
        Some(Value::Ref(ObjRef::Heap(h))) => match guardian.heap.read_value(h, None) {
            Ok(Value::Int(b)) => *b,
            other => panic!("bad balance: {other:?}"),
        },
        other => panic!("unresolved account: {other:?}"),
    }
}

/// Runs a 30-unit transfer g0→g1 with a crash armed at `victim` after
/// `budget` writes, restarts everything, and checks consistency. Returns
/// whether the armed crash actually fired.
fn run_case(kind: RsKind, victim_is_coordinator: bool, budget: u64) -> bool {
    let (mut w, g0, g1) = setup(kind);
    let victim = if victim_is_coordinator { g0 } else { g1 };

    let a = w.begin(g0).unwrap();
    let from = {
        let guardian = w.guardian(g0).unwrap();
        match guardian.stable_value("acct") {
            Some(Value::Ref(ObjRef::Heap(h))) => h,
            _ => unreachable!(),
        }
    };
    let to = {
        let guardian = w.guardian(g1).unwrap();
        match guardian.stable_value("acct") {
            Some(Value::Ref(ObjRef::Heap(h))) => h,
            _ => unreachable!(),
        }
    };
    w.write_atomic(g0, a, from, |v| {
        if let Value::Int(b) = v {
            *b -= 30;
        }
    })
    .unwrap();
    w.write_atomic(g1, a, to, |v| {
        if let Value::Int(b) = v {
            *b += 30;
        }
    })
    .unwrap();

    w.arm_crash_after_writes(victim, budget).unwrap();
    let outcome = w.commit(a).unwrap();
    let crashed = !w.is_up(victim);
    if crashed {
        w.crash(victim); // ensure marked down before restart
        w.restart(victim).unwrap();
        w.run_until_quiet().unwrap();
        w.requery_in_doubt().unwrap();
    } else {
        // Disarm for the rest of the run.
        let _ = outcome;
    }

    // Invariant 1: money is conserved.
    let b0 = balance(&w, g0);
    let b1 = balance(&w, g1);
    assert_eq!(
        b0 + b1,
        200,
        "{kind:?} victim_coord={victim_is_coordinator} budget={budget}"
    );
    // Invariant 2: all-or-nothing — either both sides moved or neither did.
    assert!(
        (b0, b1) == (70, 130) || (b0, b1) == (100, 100),
        "{kind:?} victim_coord={victim_is_coordinator} budget={budget}: split ({b0},{b1})"
    );
    // Invariant 3: if the coordinator reported Committed, the transfer must
    // be visible after every restart.
    if outcome == Outcome::Committed {
        assert_eq!(
            (b0, b1),
            (70, 130),
            "{kind:?} budget={budget}: lost a committed action"
        );
    }
    crashed
}

#[test]
fn participant_crash_matrix() {
    for kind in KINDS {
        let mut fired = 0;
        for budget in 0..120 {
            if run_case(kind, false, budget) {
                fired += 1;
            }
        }
        // Every budget below the protocol's actual write count is a
        // distinct crash point; organizations differ in how many writes the
        // window contains (the simple log's is the smallest).
        assert!(
            fired >= 2,
            "{kind:?}: crash injection barely fired ({fired})"
        );
    }
}

#[test]
fn coordinator_crash_matrix() {
    for kind in KINDS {
        let mut fired = 0;
        for budget in 0..120 {
            if run_case(kind, true, budget) {
                fired += 1;
            }
        }
        assert!(
            fired >= 2,
            "{kind:?}: crash injection barely fired ({fired})"
        );
    }
}

#[test]
fn double_crash_and_recovery() {
    // Crash the participant mid-protocol AND the coordinator right after,
    // then restart both: the system must still converge consistently.
    for kind in KINDS {
        for budget in [5u64, 20, 50, 80] {
            let (mut w, g0, g1) = setup(kind);
            let a = w.begin(g0).unwrap();
            for (g, delta) in [(g0, -30i64), (g1, 30)] {
                let h = match w.guardian(g).unwrap().stable_value("acct") {
                    Some(Value::Ref(ObjRef::Heap(h))) => h,
                    _ => unreachable!(),
                };
                w.write_atomic(g, a, h, move |v| {
                    if let Value::Int(b) = v {
                        *b += delta;
                    }
                })
                .unwrap();
            }
            w.arm_crash_after_writes(g1, budget).unwrap();
            let _ = w.commit(a).unwrap();
            w.crash(g0);
            if !w.is_up(g1) {
                w.restart(g1).unwrap();
            }
            w.restart(g0).unwrap();
            w.run_until_quiet().unwrap();
            w.requery_in_doubt().unwrap();
            let (b0, b1) = (balance(&w, g0), balance(&w, g1));
            assert_eq!(b0 + b1, 200, "{kind:?} budget={budget}");
            assert!(
                (b0, b1) == (70, 130) || (b0, b1) == (100, 100),
                "{kind:?} budget={budget}: split ({b0},{b1})"
            );
        }
    }
}
