//! Scenario 2 (Figure 3-8): simple-log recovery of mutex objects.
//!
//! The log, oldest first:
//!
//! `data(O1,mx,V1,T1) · data(O2,mx,V2,T1) · prepared(T1) · committed(T1) ·
//!  data(O1,mx,V3,T2) · prepared(T2) · aborted(T2)` — then a crash.
//!
//! "On recovery the current version of a mutex object is the last data entry
//! written in the log by an action that prepared successfully… regardless of
//! whether said action later aborted or committed." So O1 recovers to V3
//! (T2's version, even though T2 aborted) and O2 to V2.

use argus::core::providers::MemProvider;
use argus::core::{LogEntry, ObjState, PState, RecoverySystem, SimpleLogRs};
use argus::objects::{ActionId, GuardianId, Heap, ObjKind, Uid, Value};

mod common;

fn aid(n: u64) -> ActionId {
    ActionId::new(GuardianId(0), n)
}

#[test]
fn figure_3_8_recovery() {
    let t1 = aid(1);
    let t2 = aid(2);
    let o1 = Uid(1);
    let o2 = Uid(2);

    let mut rs = SimpleLogRs::create(MemProvider::fast()).unwrap();
    rs.append_raw(
        &LogEntry::Data {
            uid: o1,
            kind: ObjKind::Mutex,
            value: Value::Int(1),
            aid: t1,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Data {
            uid: o2,
            kind: ObjKind::Mutex,
            value: Value::Int(2),
            aid: t1,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t1,
            pairs: vec![],
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Committed {
            aid: t1,
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Data {
            uid: o1,
            kind: ObjKind::Mutex,
            value: Value::Int(3),
            aid: t2,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t2,
            pairs: vec![],
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Aborted {
            aid: t2,
            prev: None,
        },
        true,
    )
    .unwrap();

    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();

    // Thesis closing tables: PT = {T1 committed, T2 aborted};
    // OT = {O1 restored, O2 restored}.
    assert_eq!(out.pt.get(t1), Some(PState::Committed));
    assert_eq!(out.pt.get(t2), Some(PState::Aborted));
    assert_eq!(out.ot.get(o1).unwrap().state, ObjState::Restored);
    assert_eq!(out.ot.get(o2).unwrap().state, ObjState::Restored);

    // O1 = V3: the aborted-but-prepared T2's version wins (§2.4.2).
    let h1 = out.ot.get(o1).unwrap().heap;
    assert_eq!(heap.read_value(h1, None).unwrap(), &Value::Int(3));
    // O2 = V2 from the committed T1.
    let h2 = out.ot.get(o2).unwrap().heap;
    assert_eq!(heap.read_value(h2, None).unwrap(), &Value::Int(2));

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn mutex_of_never_prepared_action_is_discarded() {
    // Contrast case: a mutex data entry whose action has *no* outcome entry
    // at all (wiped out before preparing) must not be restored.
    let t1 = aid(1);
    let t2 = aid(2);
    let o1 = Uid(1);

    let mut rs = SimpleLogRs::create(MemProvider::fast()).unwrap();
    rs.append_raw(
        &LogEntry::Data {
            uid: o1,
            kind: ObjKind::Mutex,
            value: Value::Int(1),
            aid: t1,
        },
        false,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Prepared {
            aid: t1,
            pairs: vec![],
            prev: None,
        },
        true,
    )
    .unwrap();
    rs.append_raw(
        &LogEntry::Committed {
            aid: t1,
            prev: None,
        },
        true,
    )
    .unwrap();
    // T2's data entry was flushed by a later force, but T2 never prepared.
    rs.append_raw(
        &LogEntry::Data {
            uid: o1,
            kind: ObjKind::Mutex,
            value: Value::Int(99),
            aid: t2,
        },
        true,
    )
    .unwrap();

    rs.simulate_crash().unwrap();
    let mut heap = Heap::new();
    let out = rs.recover(&mut heap).unwrap();
    assert_eq!(out.pt.get(t2), None);
    let h1 = out.ot.get(o1).unwrap().heap;
    assert_eq!(heap.read_value(h1, None).unwrap(), &Value::Int(1));

    common::lint_entries_against(rs.dump_entries().unwrap(), &out);
}

#[test]
fn bounded_crash_sweep_of_this_organization_is_clean() {
    // Beyond the figure's scripted crash point: sweep the first few crash
    // points of every victim across the simple log's configuration cells.
    common::bounded_sweep(argus::guardian::RsKind::Simple);
}
