//! Banking: distributed transfers over two-phase commit, with crashes.
//!
//! Three bank branches (guardians), each holding accounts as atomic objects.
//! Transfers move money inside and across branches; every cross-branch
//! transfer runs the full two-phase commit of §2.2. Branches crash and
//! recover mid-stream; the conserved total balance is the consistency
//! invariant.
//!
//! ```sh
//! cargo run --example banking
//! ```

use argus::guardian::{RsKind, World};
use argus::sim::DetRng;
use argus::workload::{Banking, BankingConfig};

fn main() {
    let cfg = BankingConfig {
        guardians: 3,
        accounts_per_guardian: 12,
        initial: 1_000,
        zipf_theta: 0.7,
        cross_prob: 0.4,
        abort_prob: 0.08,
    };
    let expected_total = cfg.guardians as i64 * cfg.accounts_per_guardian as i64 * cfg.initial;

    let mut world = World::fast();
    let bank = Banking::setup(&mut world, RsKind::Hybrid, cfg).expect("setup");
    let mut rng = DetRng::new(2024);
    println!(
        "three branches, {} accounts, total = {}",
        3 * 12,
        expected_total
    );

    // Five rounds of traffic; after each round one branch crashes and
    // recovers.
    for round in 0..5 {
        let stats = bank.run(&mut world, &mut rng, 40).expect("traffic");
        let victim = bank.guardians()[round % bank.guardians().len()];
        world.crash(victim);
        let recovery = world.restart(victim).expect("recovery");
        let total = bank.total_balance(&world).expect("audit");
        println!(
            "round {round}: {} committed / {} aborted; crashed {victim}, \
             recovery examined {} entries; total = {total}",
            stats.committed, stats.aborted, recovery.entries_examined
        );
        assert_eq!(total, expected_total, "money was created or destroyed!");
    }

    // Final audit across a full-cluster outage.
    for &g in bank.guardians().to_vec().iter() {
        world.crash(g);
    }
    for &g in bank.guardians().to_vec().iter() {
        world.restart(g).expect("recovery");
    }
    world.run_until_quiet().expect("quiesce");
    let total = bank.total_balance(&world).expect("audit");
    println!("\nafter a full-cluster outage: total = {total}");
    assert_eq!(total, expected_total);
    println!("invariant held: every transfer was all-or-nothing.");
}
