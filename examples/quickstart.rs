//! Quickstart: one guardian, a few atomic actions, a crash, and a recovery.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use argus::core::HousekeepingMode;
use argus::guardian::{Outcome, RsKind, World};
use argus::objects::Value;

fn main() {
    // A deterministic world with realistic early-80s disk costs.
    let mut world = World::new(argus::sim::CostModel::default());
    let g = world.add_guardian(RsKind::Hybrid).expect("spawn guardian");
    println!("spawned guardian {g} on a hybrid log");

    // Action 1: bind some stable variables and commit.
    let a1 = world.begin(g).expect("begin");
    world
        .set_stable(g, a1, "motto", Value::from("all or nothing"))
        .expect("set");
    world
        .set_stable(g, a1, "count", Value::Int(1))
        .expect("set");
    let outcome = world.commit(a1).expect("commit");
    println!("action {a1} → {outcome:?}");
    assert_eq!(outcome, Outcome::Committed);

    // Action 2: an update that the client aborts — it must leave no trace.
    let a2 = world.begin(g).expect("begin");
    world
        .set_stable(g, a2, "count", Value::Int(999))
        .expect("set");
    world.abort_local(a2);
    println!("action {a2} → aborted locally");

    // Action 3: a committed update over an object graph.
    let a3 = world.begin(g).expect("begin");
    let leaf = world
        .create_atomic(g, a3, Value::from("leaf data"))
        .expect("create");
    let node = world
        .create_atomic(
            g,
            a3,
            Value::Seq(vec![Value::Int(7), Value::heap_ref(leaf)]),
        )
        .expect("create");
    world
        .set_stable(g, a3, "tree", Value::heap_ref(node))
        .expect("set");
    world
        .set_stable(g, a3, "count", Value::Int(2))
        .expect("set");
    world.commit(a3).expect("commit");

    let stats = world.guardian(g).expect("guardian").log_stats();
    println!(
        "log before crash: {} entries, {} bytes, device: {}",
        stats.entries, stats.bytes, stats.device
    );

    // The node crashes: every volatile structure is gone.
    println!("\n*** crash ***\n");
    world.crash(g);
    let recovery = world.restart(g).expect("recover");
    println!(
        "recovery examined {} log entries ({} data entries read)",
        recovery.entries_examined, recovery.data_entries_read
    );

    // The stable state is back: committed values present, aborted ones gone.
    let guardian = world.guardian(g).expect("guardian");
    println!("motto  = {:?}", guardian.stable_value("motto"));
    println!("count  = {:?}", guardian.stable_value("count"));
    println!("tree   = {:?}", guardian.stable_value("tree"));
    assert_eq!(
        guardian.stable_value("motto"),
        Some(Value::from("all or nothing"))
    );
    assert_eq!(guardian.stable_value("count"), Some(Value::Int(2)));

    // Housekeeping (ch. 5) bounds future recoveries.
    world
        .housekeep(g, HousekeepingMode::Snapshot)
        .expect("housekeeping");
    world.crash(g);
    let recovery = world.restart(g).expect("recover");
    println!(
        "\nafter a snapshot, recovery examined only {} entries",
        recovery.entries_examined
    );
    println!(
        "count  = {:?}",
        world.guardian(g).expect("guardian").stable_value("count")
    );
}
