//! Persistence across *real* process runs: a simple-log guardian state on a
//! file-backed store.
//!
//! Run it twice (or more):
//!
//! ```sh
//! cargo run --example persistent        # run 1: creates, run N: increments
//! cargo run --example persistent -- reset
//! ```
//!
//! Each run opens the same on-disk log, recovers the stable state a previous
//! process committed, increments a counter, appends to a history list, and
//! exits — a real restart rather than a simulated one.

use argus::core::providers::FileProvider;
use argus::core::{RecoverySystem, SimpleLogRs};
use argus::objects::{ActionId, GuardianId, Heap, ObjRef, Value};
use std::path::PathBuf;

fn state_dir() -> PathBuf {
    std::env::temp_dir().join("argus-persistent-demo")
}

fn main() {
    let dir = state_dir();
    if std::env::args().any(|a| a == "reset") {
        let _ = std::fs::remove_dir_all(&dir);
        println!("state at {} removed", dir.display());
        return;
    }

    let fresh = !dir.join("root.argus").exists();
    let mut heap;
    let mut rs;
    let run: i64;

    if fresh {
        println!("no state at {}; formatting a fresh log", dir.display());
        let provider = FileProvider::new(&dir).expect("provider");
        rs = SimpleLogRs::create(provider).expect("format");
        heap = Heap::with_stable_root();
        run = 1;
    } else {
        let mut provider = FileProvider::new(&dir).expect("provider");
        let generation = provider.active_generation().expect("read root");
        let store = provider.open_store(generation).expect("open store");
        rs = SimpleLogRs::open(provider, store).expect("open log");
        heap = Heap::new();
        let outcome = rs.recover(&mut heap).expect("recover");
        println!(
            "recovered {} objects from {} (examined {} entries)",
            outcome.ot.len(),
            dir.display(),
            outcome.entries_examined
        );
        run = match find(&heap, "runs") {
            Some(Value::Int(n)) => n + 1,
            _ => 1,
        };
    }

    // One atomic action: bump the counter and append to the history.
    let aid = ActionId::new(GuardianId(0), run as u64);
    let root = heap.stable_root().expect("root");
    heap.acquire_write(root, aid).expect("lock root");
    let mut history = match find(&heap, "history") {
        Some(Value::Seq(items)) => items,
        _ => Vec::new(),
    };
    history.push(Value::Str(format!(
        "run #{run} by pid {}",
        std::process::id()
    )));
    set(&mut heap, aid, "runs", Value::Int(run));
    set(&mut heap, aid, "history", Value::Seq(history.clone()));
    rs.prepare(aid, &[root], &heap).expect("prepare");
    rs.commit(aid).expect("commit");
    heap.commit_action(aid);

    println!("committed run #{run}; history now:");
    for entry in &history {
        println!("  {entry}");
    }
    println!("run it again — the state survives this process.");
}

/// Reads a stable variable from the root's committed version.
fn find(heap: &Heap, name: &str) -> Option<Value> {
    let root = heap.stable_root()?;
    if let Ok(Value::Seq(pairs)) = heap.read_value(root, None) {
        for pair in pairs {
            if let Value::Seq(kv) = pair {
                if let [Value::Str(n), v] = kv.as_slice() {
                    if n == name {
                        return Some(v.clone());
                    }
                }
            }
        }
    }
    None
}

/// Binds a stable variable in the root's current version (the caller holds
/// the write lock).
fn set(heap: &mut Heap, aid: ActionId, name: &str, value: Value) {
    let root = heap.stable_root().expect("root");
    let name = name.to_owned();
    heap.write_value(root, aid, move |v| {
        let pairs = match v {
            Value::Seq(pairs) => pairs,
            other => {
                *other = Value::Seq(Vec::new());
                match other {
                    Value::Seq(pairs) => pairs,
                    _ => unreachable!(),
                }
            }
        };
        for pair in pairs.iter_mut() {
            if let Value::Seq(kv) = pair {
                if let [Value::Str(n), slot] = kv.as_mut_slice() {
                    if *n == name {
                        *slot = value;
                        return;
                    }
                }
            }
        }
        pairs.push(Value::Seq(vec![Value::Str(name), value]));
    })
    .expect("bind");
}

// Quiet the unused-import lint when the example is checked without running:
// ObjRef is used in pattern positions through `Value`.
#[allow(unused)]
fn _uses(_: ObjRef) {}
