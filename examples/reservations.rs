//! Reservations: seat booking with an audit trail, under periodic
//! housekeeping.
//!
//! Flights are atomic objects (seat vectors); the audit trail is a *mutex*
//! object appended under `seize` — the second recoverable-object flavor of
//! §2.4, with its own recovery semantics. The log is periodically
//! housekept; the example prints how log size and recovery cost stay
//! bounded while bookings accumulate.
//!
//! ```sh
//! cargo run --example reservations
//! ```

use argus::core::HousekeepingMode;
use argus::guardian::{RsKind, World};
use argus::sim::DetRng;
use argus::workload::{Reservations, ReservationsConfig};

fn main() {
    let mut world = World::fast();
    let resv = Reservations::setup(
        &mut world,
        RsKind::Hybrid,
        ReservationsConfig {
            flights: 6,
            seats: 30,
        },
    )
    .expect("setup");
    let g = resv.guardian();
    let mut rng = DetRng::new(99);

    println!("round | booked(total) | log entries | recovery examined");
    let mut total_booked = 0;
    for round in 0..6 {
        let stats = resv.run(&mut world, &mut rng, 30).expect("bookings");
        total_booked += stats.booked;

        // Housekeep every other round: the thesis's answer to unbounded
        // logs (ch. 5).
        if round % 2 == 1 {
            world
                .housekeep(g, HousekeepingMode::Snapshot)
                .expect("housekeeping");
        }

        world.crash(g);
        let recovery = world.restart(g).expect("recovery");
        let log = world.guardian(g).expect("guardian").log_stats();
        println!(
            "{round:>5} | {total_booked:>13} | {:>11} | {:>17}",
            log.entries, recovery.entries_examined
        );

        // Seats and audit trail must agree exactly after every recovery.
        let seats = resv.booked_seats(&world).expect("seats");
        let audit = resv.audit_len(&world).expect("audit");
        assert_eq!(seats, total_booked);
        assert_eq!(audit, total_booked);
    }
    println!("\nseat map and audit trail agreed after every crash.");
}
