//! Crash torture: exhaustive fault injection against all three storage
//! organizations (the data behind experiment E8).
//!
//! Every run executes a two-guardian transfer with a crash armed at a
//! specific low-level page write; the victim alternates between the
//! participant and the coordinator. After restart and reconvergence, the
//! run checks that money was conserved and the transfer was all-or-nothing.
//!
//! ```sh
//! cargo run --example crash_torture
//! ```

use argus::guardian::{Outcome, RsKind, World};
use argus::objects::{GuardianId, ObjRef, Value};

fn balance(w: &World, g: GuardianId) -> i64 {
    let guardian = w.guardian(g).expect("guardian");
    match guardian.stable_value("acct") {
        Some(Value::Ref(ObjRef::Heap(h))) => match guardian.heap.read_value(h, None) {
            Ok(Value::Int(b)) => *b,
            other => panic!("bad balance: {other:?}"),
        },
        other => panic!("unresolved account: {other:?}"),
    }
}

/// Returns (crashed, consistent, committed_and_durable).
fn run_case(kind: RsKind, victim_is_coordinator: bool, budget: u64) -> (bool, bool, bool) {
    let mut w = World::fast();
    let g0 = w.add_guardian(kind).expect("g0");
    let g1 = w.add_guardian(kind).expect("g1");
    for g in [g0, g1] {
        let a = w.begin(g).expect("begin");
        let account = w.create_atomic(g, a, Value::Int(100)).expect("create");
        w.set_stable(g, a, "acct", Value::heap_ref(account))
            .expect("bind");
        assert_eq!(w.commit(a).expect("commit"), Outcome::Committed);
    }

    let a = w.begin(g0).expect("begin");
    for (g, delta) in [(g0, -30i64), (g1, 30)] {
        let h = match w.guardian(g).expect("guardian").stable_value("acct") {
            Some(Value::Ref(ObjRef::Heap(h))) => h,
            _ => unreachable!(),
        };
        w.write_atomic(g, a, h, move |v| {
            if let Value::Int(b) = v {
                *b += delta;
            }
        })
        .expect("write");
    }

    let victim = if victim_is_coordinator { g0 } else { g1 };
    w.arm_crash_after_writes(victim, budget).expect("arm");
    let outcome = w.commit(a).expect("drive 2pc");
    let crashed = !w.is_up(victim);
    if crashed {
        w.crash(victim);
        w.restart(victim).expect("restart");
        w.run_until_quiet().expect("quiesce");
        w.requery_in_doubt().expect("requery");
    }

    let (b0, b1) = (balance(&w, g0), balance(&w, g1));
    let conserved = b0 + b1 == 200;
    let all_or_nothing = (b0, b1) == (70, 130) || (b0, b1) == (100, 100);
    let durable = outcome != Outcome::Committed || (b0, b1) == (70, 130);
    (crashed, conserved && all_or_nothing, durable)
}

fn main() {
    println!("organization | side        | crash points | consistent | durable commits");
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow] {
        for coordinator in [false, true] {
            let mut fired = 0u64;
            let mut consistent = 0u64;
            let mut durable = 0u64;
            for budget in 0..150 {
                let (crashed, ok, dur) = run_case(kind, coordinator, budget);
                if crashed {
                    fired += 1;
                    if ok {
                        consistent += 1;
                    }
                    if dur {
                        durable += 1;
                    }
                }
            }
            println!(
                "{:<12} | {:<11} | {fired:>12} | {consistent:>6}/{fired:<3} | {durable:>6}/{fired}",
                format!("{kind:?}"),
                if coordinator {
                    "coordinator"
                } else {
                    "participant"
                },
            );
            assert_eq!(consistent, fired, "inconsistent recovery detected!");
            assert_eq!(durable, fired, "a committed action was lost!");
        }
    }
    println!("\nevery injected crash recovered to a consistent, all-or-nothing state.");
}
