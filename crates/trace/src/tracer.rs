//! The recorder: a deterministic, bounded event sink bound to the
//! simulated clock.
//!
//! ## Scoped or per-thread
//!
//! Instrumented code records into [`current()`]: the tracer installed on
//! the calling thread via [`Tracer::enter`], falling back to a per-thread
//! default. Unlike `argus_obs`, the fallback is per-thread rather than
//! process-wide: a trace is an ordered history, and interleaving events
//! from concurrently running tests (each with its own simulated clock)
//! would destroy the per-guardian monotonicity that lint I12 checks.
//!
//! ## Determinism
//!
//! Events are appended in program order; span and flow ids are sequence
//! numbers from this tracer's generation. The world resets the current
//! tracer when it is built, so one seed yields one event vector — and the
//! Chrome exporter serializes that vector verbatim, which is what makes
//! same-seed traces byte-identical.

use crate::event::{args, Gid, Key, Ph, TraceEvent};
use argus_sim::SimClock;
use std::cell::RefCell;
use std::sync::{Arc, Mutex};

/// Hard cap on buffered events. When a run exceeds it, recording stops and
/// the overflow is counted in [`Tracer::dropped`]; lint I12 skips the
/// completeness checks for truncated traces. 2^18 events cover every
/// scenario test and sweep point with room to spare.
pub const EVENT_CAP: usize = 1 << 18;

/// How much the instrumentation records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detail {
    /// Actions, locks, forces, 2PC phases, network flows, recovery.
    Normal,
    /// Additionally every storage-device operation and cache miss. Enabled
    /// by the trace CLI, experiment E16, and the determinism tests; left
    /// off elsewhere to bound trace volume in long bench runs.
    Device,
}

#[derive(Debug)]
struct Inner {
    clock: Mutex<SimClock>,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    events: Vec<TraceEvent>,
    dropped: u64,
    next_span: u64,
    next_flow: u64,
    detail: Detail,
}

impl State {
    fn new() -> Self {
        Self {
            events: Vec::new(),
            dropped: 0,
            next_span: 0,
            next_flow: 0,
            detail: Detail::Normal,
        }
    }
}

/// A handle to one trace buffer. Cloning shares the buffer.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates an empty tracer at [`Detail::Normal`] on a fresh clock.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                clock: Mutex::new(SimClock::new()),
                state: Mutex::new(State::new()),
            }),
        }
    }

    /// Installs this tracer as the calling thread's current tracer until
    /// the returned guard drops.
    #[must_use = "the tracer is current only while the guard lives"]
    pub fn enter(&self) -> ScopedTracer {
        CURRENT.with(|stack| stack.borrow_mut().push(self.clone()));
        ScopedTracer { _priv: () }
    }

    /// Binds the simulated clock events are stamped against.
    pub fn set_clock(&self, clock: SimClock) {
        *self.inner.clock.lock().unwrap() = clock;
    }

    /// Current time on the bound clock, microseconds.
    pub fn now(&self) -> u64 {
        self.inner.clock.lock().unwrap().now()
    }

    /// Sets the recording detail level.
    pub fn set_detail(&self, detail: Detail) {
        self.inner.state.lock().unwrap().detail = detail;
    }

    /// Whether device-level events are being recorded.
    pub fn device_detail(&self) -> bool {
        self.inner.state.lock().unwrap().detail == Detail::Device
    }

    /// Clears the buffer and restarts the span/flow id generations. The
    /// detail level is kept: it is a property of the observer, not the run.
    pub fn reset(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.events.clear();
        st.dropped = 0;
        st.next_span = 0;
        st.next_flow = 0;
    }

    /// Snapshot of every buffered event, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.state.lock().unwrap().events.clone()
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events lost to the [`EVENT_CAP`].
    pub fn dropped(&self) -> u64 {
        self.inner.state.lock().unwrap().dropped
    }

    fn push(&self, event: TraceEvent) {
        let mut st = self.inner.state.lock().unwrap();
        if st.events.len() >= EVENT_CAP {
            st.dropped += 1;
            return;
        }
        st.events.push(event);
    }

    /// Records a point event.
    pub fn instant(
        &self,
        cat: &'static str,
        name: &'static str,
        gid: Gid,
        key: Option<Key>,
        a: &[(&'static str, u64)],
    ) {
        let ts = self.now();
        self.push(TraceEvent {
            cat,
            name,
            ph: Ph::Instant,
            ts,
            gid,
            key,
            args: args(a),
        });
    }

    /// Records a complete span that started at `start_ts` and ends now.
    /// The retroactive form is what the lock-grant, force, and
    /// action-resolution paths use: a crash before the end simply records
    /// nothing, so no span can dangle.
    pub fn complete(
        &self,
        cat: &'static str,
        name: &'static str,
        gid: Gid,
        key: Option<Key>,
        start_ts: u64,
        a: &[(&'static str, u64)],
    ) {
        let now = self.now();
        self.complete_at(
            cat,
            name,
            gid,
            key,
            start_ts,
            now.saturating_sub(start_ts),
            a,
        );
    }

    /// Records a complete span with an explicit start and duration.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_at(
        &self,
        cat: &'static str,
        name: &'static str,
        gid: Gid,
        key: Option<Key>,
        ts: u64,
        dur: u64,
        a: &[(&'static str, u64)],
    ) {
        self.push(TraceEvent {
            cat,
            name,
            ph: Ph::Complete { dur },
            ts,
            gid,
            key,
            args: args(a),
        });
    }

    /// Opens a scoped span; the returned guard closes it on drop. Used
    /// only on linear code paths (restart) that cannot leak the guard.
    #[must_use = "dropping the guard closes the span"]
    pub fn begin(
        &self,
        cat: &'static str,
        name: &'static str,
        gid: Gid,
        key: Option<Key>,
    ) -> SpanGuard {
        let span = {
            let mut st = self.inner.state.lock().unwrap();
            let id = st.next_span;
            st.next_span += 1;
            id
        };
        let ts = self.now();
        self.push(TraceEvent {
            cat,
            name,
            ph: Ph::Begin { span },
            ts,
            gid,
            key,
            args: args(&[]),
        });
        SpanGuard {
            tracer: self.clone(),
            cat,
            name,
            gid,
            key,
            span,
        }
    }

    /// Records the start of a causal edge and returns its flow id.
    pub fn flow_start(
        &self,
        cat: &'static str,
        name: &'static str,
        gid: Gid,
        key: Option<Key>,
    ) -> u64 {
        let flow = {
            let mut st = self.inner.state.lock().unwrap();
            let id = st.next_flow;
            st.next_flow += 1;
            id
        };
        let ts = self.now();
        self.push(TraceEvent {
            cat,
            name,
            ph: Ph::FlowStart { flow },
            ts,
            gid,
            key,
            args: args(&[]),
        });
        flow
    }

    /// Records the arrival of a causal edge.
    pub fn flow_end(
        &self,
        cat: &'static str,
        name: &'static str,
        gid: Gid,
        key: Option<Key>,
        flow: u64,
    ) {
        let ts = self.now();
        self.push(TraceEvent {
            cat,
            name,
            ph: Ph::FlowEnd { flow },
            ts,
            gid,
            key,
            args: args(&[]),
        });
    }
}

/// Guard for a [`Tracer::begin`] span: records the matching end on drop.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    cat: &'static str,
    name: &'static str,
    gid: Gid,
    key: Option<Key>,
    span: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ts = self.tracer.now();
        self.tracer.push(TraceEvent {
            cat: self.cat,
            name: self.name,
            ph: Ph::End { span: self.span },
            ts,
            gid: self.gid,
            key: self.key,
            args: args(&[]),
        });
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Tracer>> = const { RefCell::new(Vec::new()) };
    static DEFAULT: Tracer = Tracer::new();
}

/// The calling thread's tracer: the innermost [`Tracer::enter`] scope, or
/// the thread's default tracer.
pub fn current() -> Tracer {
    if let Some(t) = CURRENT.with(|stack| stack.borrow().last().cloned()) {
        return t;
    }
    DEFAULT.with(Clone::clone)
}

/// Scope guard from [`Tracer::enter`].
#[derive(Debug)]
pub struct ScopedTracer {
    _priv: (),
}

impl Drop for ScopedTracer {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_tracer_wins_over_default() {
        let t = Tracer::new();
        {
            let _scope = t.enter();
            current().instant("test", "hello", 0, None, &[]);
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].name, "hello");
    }

    #[test]
    fn events_are_stamped_with_the_bound_clock() {
        let t = Tracer::new();
        let clock = SimClock::new();
        t.set_clock(clock.clone());
        clock.advance(42);
        t.instant("test", "tick", 1, Some(Key::new(1, 7)), &[("n", 3)]);
        let events = t.events();
        assert_eq!(events[0].ts, 42);
        assert_eq!(events[0].key, Some(Key::new(1, 7)));
        assert_eq!(events[0].args[0], Some(("n", 3)));
    }

    #[test]
    fn retroactive_complete_measures_elapsed_time() {
        let t = Tracer::new();
        let clock = SimClock::new();
        t.set_clock(clock.clone());
        clock.advance(10);
        let start = t.now();
        clock.advance(25);
        t.complete("cc", "lock_wait", 0, None, start, &[]);
        assert_eq!(t.events()[0].ph, Ph::Complete { dur: 25 });
        assert_eq!(t.events()[0].ts, 10);
    }

    #[test]
    fn span_guard_closes_on_drop_with_matching_id() {
        let t = Tracer::new();
        {
            let _span = t.begin("recovery", "restart", 2, None);
            t.instant("test", "inside", 2, None, &[]);
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        let (Ph::Begin { span: b }, Ph::End { span: e }) = (events[0].ph, events[2].ph) else {
            panic!("expected begin/end bracketing, got {events:?}");
        };
        assert_eq!(b, e);
    }

    #[test]
    fn flow_ids_are_sequential_and_reset_restarts_them() {
        let t = Tracer::new();
        assert_eq!(t.flow_start("net", "Prepare", 0, None), 0);
        assert_eq!(t.flow_start("net", "Prepare", 0, None), 1);
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.flow_start("net", "Prepare", 0, None), 0);
    }

    #[test]
    fn cap_stops_recording_and_counts_drops() {
        let t = Tracer::new();
        for _ in 0..EVENT_CAP + 5 {
            t.instant("test", "e", 0, None, &[]);
        }
        assert_eq!(t.len(), EVENT_CAP);
        assert_eq!(t.dropped(), 5);
    }

    #[test]
    fn detail_survives_reset() {
        let t = Tracer::new();
        t.set_detail(Detail::Device);
        t.reset();
        assert!(t.device_detail());
    }
}
