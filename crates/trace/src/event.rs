//! The trace event model.
//!
//! Events are fixed-size and allocation-free: names and categories are
//! `&'static str`, identities are small integers, and each event carries at
//! most two inline `(&'static str, u64)` argument pairs. That keeps
//! recording cheap enough to leave on by default and — because every field
//! is a plain value — makes a trace a deterministic function of the
//! schedule that produced it.

/// A guardian lane. Guardians are numbered from zero by the world; the
/// reserved [`STORE_LANE`] collects storage-device events recorded below
/// the guardian layer (the page cache does not know which guardian owns
/// it).
pub type Gid = u32;

/// The lane for storage-device events not attributable to a guardian.
pub const STORE_LANE: Gid = u32::MAX;

/// The `(guardian, action)` key: which top-level action an event belongs
/// to. Mirrors `argus_objects::ActionId` without depending on it, so every
/// crate in the workspace can record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    /// The guardian at which the action originated (its 2PC coordinator).
    pub origin: u32,
    /// Sequence number unique at the origin.
    pub seq: u64,
}

impl Key {
    /// Creates a key.
    pub fn new(origin: u32, seq: u64) -> Self {
        Self { origin, seq }
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "G{}/{}", self.origin, self.seq)
    }
}

/// The event phase, mirroring the Chrome trace-event phases the exporter
/// emits (`X`, `B`/`E`, `i`, `s`/`f`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ph {
    /// A complete span: `[ts, ts + dur)`. Most argus spans are recorded
    /// retroactively as completes (at lock grant, at force time, at action
    /// resolution) so a crash can never leave them dangling.
    Complete {
        /// Span length in simulated microseconds.
        dur: u64,
    },
    /// A scoped span opens. `span` pairs it with its [`Ph::End`].
    Begin {
        /// Span id unique within one tracer generation.
        span: u64,
    },
    /// A scoped span closes.
    End {
        /// The [`Ph::Begin`] this closes.
        span: u64,
    },
    /// A point event.
    Instant,
    /// A causal edge leaves this guardian (e.g. a 2PC message is sent).
    FlowStart {
        /// Flow id unique within one tracer generation.
        flow: u64,
    },
    /// A causal edge arrives (the message is delivered). A duplicated
    /// message yields several ends for one start; a dropped message leaves
    /// the start unresolved — both are legal, see [`crate::lint`].
    FlowEnd {
        /// The [`Ph::FlowStart`] this resolves.
        flow: u64,
    },
}

/// Inline arguments: at most two named integers.
pub type Args = [Option<(&'static str, u64)>; 2];

/// Copies up to two `(name, value)` pairs into the inline representation.
pub fn args(pairs: &[(&'static str, u64)]) -> Args {
    let mut out: Args = [None, None];
    for (slot, pair) in out.iter_mut().zip(pairs.iter()) {
        *slot = Some(*pair);
    }
    out
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Category (`action`, `cc`, `force`, `net`, `twopc`, `device`,
    /// `recovery`) — the attribution report keys off this.
    pub cat: &'static str,
    /// Event name (`lock_wait`, `force_wait`, `Prepare`, …).
    pub name: &'static str,
    /// Phase and phase-specific payload.
    pub ph: Ph,
    /// Timestamp on the simulated clock, microseconds.
    pub ts: u64,
    /// The guardian lane the event belongs to.
    pub gid: Gid,
    /// The action the event belongs to, when one is known.
    pub key: Option<Key>,
    /// Inline arguments.
    pub args: Args,
}

impl TraceEvent {
    /// The half-open interval a complete span covers.
    pub fn interval(&self) -> Option<(u64, u64)> {
        match self.ph {
            Ph::Complete { dur } => Some((self.ts, self.ts.saturating_add(dur))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_copies_at_most_two() {
        assert_eq!(args(&[]), [None, None]);
        assert_eq!(args(&[("a", 1)]), [Some(("a", 1)), None]);
        assert_eq!(
            args(&[("a", 1), ("b", 2), ("c", 3)]),
            [Some(("a", 1)), Some(("b", 2))]
        );
    }

    #[test]
    fn complete_interval_saturates() {
        let e = TraceEvent {
            cat: "t",
            name: "t",
            ph: Ph::Complete { dur: u64::MAX },
            ts: 5,
            gid: 0,
            key: None,
            args: args(&[]),
        };
        assert_eq!(e.interval(), Some((5, u64::MAX)));
    }

    #[test]
    fn key_renders_origin_and_seq() {
        assert_eq!(Key::new(2, 9).to_string(), "G2/9");
    }
}
