//! The flight recorder: when a checker finds a counterexample, the full
//! trace of the failing schedule is dumped next to the repro command so
//! the history is preserved even though re-running may be expensive.
//!
//! Dumps land in `ARGUS_FLIGHT_DIR` when set, else `target/flight-recorder`
//! under the current directory. File names are derived from the caller's
//! label (sanitized) and never overwrite: an existing file gets a numeric
//! suffix, so a sweep that finds several counterexamples keeps every one.

use crate::chrome::to_chrome_json;
use crate::event::TraceEvent;
use std::io::Write as _;
use std::path::PathBuf;

/// Where flight dumps go.
pub fn flight_dir() -> PathBuf {
    match std::env::var_os("ARGUS_FLIGHT_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("target").join("flight-recorder"),
    }
}

fn sanitize(label: &str) -> String {
    let mut out: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    out.truncate(120);
    if out.is_empty() {
        out.push_str("trace");
    }
    out
}

fn fresh_path(label: &str, ext: &str) -> std::io::Result<PathBuf> {
    let dir = flight_dir();
    std::fs::create_dir_all(&dir)?;
    let stem = sanitize(label);
    let mut path = dir.join(format!("{stem}.{ext}"));
    let mut n = 1u32;
    while path.exists() {
        path = dir.join(format!("{stem}.{n}.{ext}"));
        n += 1;
    }
    Ok(path)
}

/// Dumps `events` as a Chrome trace; returns the file written.
pub fn dump(label: &str, events: &[TraceEvent]) -> std::io::Result<PathBuf> {
    let path = fresh_path(label, "trace.json")?;
    let mut f = std::fs::File::create(&path)?;
    f.write_all(to_chrome_json(events).as_bytes())?;
    Ok(path)
}

/// Dumps a plain-text schedule (the explorer's step list); returns the
/// file written.
pub fn dump_text(label: &str, lines: &[String]) -> std::io::Result<PathBuf> {
    let path = fresh_path(label, "schedule.txt")?;
    let mut f = std::fs::File::create(&path)?;
    for line in lines {
        writeln!(f, "{line}")?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_sanitize_to_safe_file_stems() {
        assert_eq!(
            sanitize("hybrid cached w2@write[3]"),
            "hybrid_cached_w2_write_3_"
        );
        assert_eq!(sanitize(""), "trace");
    }
}
