//! Latency attribution: decomposing an action's wall time into segments.
//!
//! For every resolved action (a `Complete` span with category `action`)
//! the attributor collects the trace intervals that overlap the action's
//! window and partitions the window with a priority sweep:
//!
//! 1. **lock-wait** — `cc` spans for this action (queued behind a holder);
//! 2. **force-wait** — `force_wait` spans (staged, waiting for the group
//!    commit window);
//! 3. **network** — resolved `net` flow edges for this action (send →
//!    delivery);
//! 4. **device** — the shared log forces and, at device detail, individual
//!    storage operations (any action: in the serial simulation, device
//!    time inside the window is wall time of this action);
//! 5. **processing** — the residual.
//!
//! Each instant of the window is charged to exactly one segment (the
//! highest-priority category covering it), so the five segments sum to
//! the end-to-end latency *by construction* — the property experiment E16
//! asserts per action.

use crate::event::{Key, Ph, TraceEvent};
use std::collections::HashMap;

/// The per-action decomposition. All figures in simulated microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionLatency {
    /// The action.
    pub key: Key,
    /// Whether it committed.
    pub committed: bool,
    /// Window start (the action began).
    pub start: u64,
    /// End-to-end latency: begin → resolution.
    pub total_us: u64,
    /// Queued behind a lock holder.
    pub lock_wait_us: u64,
    /// Staged, waiting for the shared force.
    pub force_wait_us: u64,
    /// 2PC messages in flight.
    pub network_us: u64,
    /// Stable-storage device time.
    pub device_us: u64,
    /// Residual: coordinator/participant processing.
    pub processing_us: u64,
}

impl ActionLatency {
    /// Sum of the five segments; always equals [`ActionLatency::total_us`].
    pub fn segment_sum(&self) -> u64 {
        self.lock_wait_us
            + self.force_wait_us
            + self.network_us
            + self.device_us
            + self.processing_us
    }
}

const LOCK: usize = 0;
const FORCE: usize = 1;
const NET: usize = 2;
const DEVICE: usize = 3;
const SEGMENTS: usize = 4;

/// Clips `iv` to the window; `None` when they do not overlap.
fn clip(iv: (u64, u64), w: (u64, u64)) -> Option<(u64, u64)> {
    let lo = iv.0.max(w.0);
    let hi = iv.1.min(w.1);
    (lo < hi).then_some((lo, hi))
}

/// Attributes every resolved action in `events`. Results are in recording
/// order of the action-resolution spans (deterministic for a given trace).
pub fn attribute(events: &[TraceEvent]) -> Vec<ActionLatency> {
    // Resolve net flows once: flow id -> (start_ts, first end_ts, key).
    let mut flow_start: HashMap<u64, (u64, Option<Key>)> = HashMap::new();
    let mut flows: Vec<(u64, u64, Option<Key>)> = Vec::new();
    for e in events {
        if e.cat != "net" {
            continue;
        }
        match e.ph {
            Ph::FlowStart { flow } => {
                flow_start.insert(flow, (e.ts, e.key));
            }
            Ph::FlowEnd { flow } => {
                if let Some(&(ts, key)) = flow_start.get(&flow) {
                    if ts <= e.ts {
                        flows.push((ts, e.ts, key));
                    }
                }
            }
            _ => {}
        }
    }

    let mut out = Vec::new();
    for action in events {
        let (Ph::Complete { dur }, "action") = (action.ph, action.cat) else {
            continue;
        };
        let Some(key) = action.key else { continue };
        let window = (action.ts, action.ts.saturating_add(dur));
        let committed = action
            .args
            .iter()
            .flatten()
            .any(|&(k, v)| k == "committed" && v != 0);

        // Gather clipped intervals per segment.
        let mut ivs: [Vec<(u64, u64)>; SEGMENTS] = Default::default();
        for e in events {
            let Some(iv) = e.interval() else { continue };
            let seg = match (e.cat, e.name) {
                ("cc", _) if e.key == Some(key) => LOCK,
                ("force", "force_wait") if e.key == Some(key) => FORCE,
                ("force", "force") => DEVICE,
                ("device", _) => DEVICE,
                _ => continue,
            };
            if let Some(c) = clip(iv, window) {
                ivs[seg].push(c);
            }
        }
        for &(lo, hi, fkey) in &flows {
            if fkey == Some(key) {
                if let Some(c) = clip((lo, hi), window) {
                    ivs[NET].push(c);
                }
            }
        }

        // Priority sweep over the elementary slices of the window.
        let mut cuts: Vec<u64> = vec![window.0, window.1];
        for seg in &ivs {
            for &(lo, hi) in seg {
                cuts.push(lo);
                cuts.push(hi);
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        let mut segs = [0u64; SEGMENTS];
        let mut charged = 0u64;
        for pair in cuts.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            let covered = (0..SEGMENTS).find(|&s| ivs[s].iter().any(|&(a, b)| a <= lo && hi <= b));
            if let Some(s) = covered {
                segs[s] += hi - lo;
                charged += hi - lo;
            }
        }

        let total_us = window.1 - window.0;
        out.push(ActionLatency {
            key,
            committed,
            start: window.0,
            total_us,
            lock_wait_us: segs[LOCK],
            force_wait_us: segs[FORCE],
            network_us: segs[NET],
            device_us: segs[DEVICE],
            processing_us: total_us - charged,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::args;

    fn complete(
        cat: &'static str,
        name: &'static str,
        ts: u64,
        dur: u64,
        key: Option<Key>,
        a: &[(&'static str, u64)],
    ) -> TraceEvent {
        TraceEvent {
            cat,
            name,
            ph: Ph::Complete { dur },
            ts,
            gid: 0,
            key,
            args: args(a),
        }
    }

    fn flow(ph: Ph, ts: u64, key: Option<Key>) -> TraceEvent {
        TraceEvent {
            cat: "net",
            name: "Prepare",
            ph,
            ts,
            gid: 0,
            key,
            args: args(&[]),
        }
    }

    #[test]
    fn segments_partition_the_window() {
        let k = Key::new(0, 1);
        let events = vec![
            complete("action", "action", 0, 100, Some(k), &[("committed", 1)]),
            complete("cc", "lock_wait", 10, 20, Some(k), &[]),
            // Overlaps the lock wait: the higher-priority lock segment wins
            // the shared instants.
            complete("force", "force_wait", 25, 15, Some(k), &[]),
            complete("force", "force", 60, 10, None, &[]),
            flow(Ph::FlowStart { flow: 0 }, 80, Some(k)),
            flow(Ph::FlowEnd { flow: 0 }, 90, Some(k)),
        ];
        let out = attribute(&events);
        assert_eq!(out.len(), 1);
        let a = out[0];
        assert_eq!(a.total_us, 100);
        assert_eq!(a.lock_wait_us, 20);
        assert_eq!(a.force_wait_us, 10); // 25..40 minus the 25..30 overlap
        assert_eq!(a.device_us, 10);
        assert_eq!(a.network_us, 10);
        assert_eq!(a.processing_us, 50);
        assert_eq!(a.segment_sum(), a.total_us);
        assert!(a.committed);
    }

    #[test]
    fn spans_outside_the_window_are_clipped_away() {
        let k = Key::new(1, 4);
        let events = vec![
            complete("action", "action", 50, 10, Some(k), &[]),
            complete("cc", "lock_wait", 0, 40, Some(k), &[]),
            complete("force", "force", 55, 100, None, &[]),
        ];
        let a = attribute(&events)[0];
        assert_eq!(a.lock_wait_us, 0);
        assert_eq!(a.device_us, 5);
        assert_eq!(a.segment_sum(), 10);
        assert!(!a.committed);
    }

    #[test]
    fn other_actions_private_waits_are_not_charged() {
        let k = Key::new(0, 1);
        let other = Key::new(0, 2);
        let events = vec![
            complete("action", "action", 0, 50, Some(k), &[]),
            complete("cc", "lock_wait", 5, 30, Some(other), &[]),
            complete("force", "force_wait", 10, 10, Some(other), &[]),
        ];
        let a = attribute(&events)[0];
        assert_eq!(a.lock_wait_us, 0);
        assert_eq!(a.force_wait_us, 0);
        assert_eq!(a.processing_us, 50);
    }

    #[test]
    fn unresolved_flows_contribute_nothing() {
        let k = Key::new(0, 1);
        let events = vec![
            complete("action", "action", 0, 50, Some(k), &[]),
            flow(Ph::FlowStart { flow: 3 }, 10, Some(k)),
        ];
        let a = attribute(&events)[0];
        assert_eq!(a.network_us, 0);
        assert_eq!(a.segment_sum(), 50);
    }
}
