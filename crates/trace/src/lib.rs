//! # argus-trace — deterministic causal tracing
//!
//! `argus-obs` aggregates (counters, histograms, a bounded journal); it
//! can say *that* p99 commit latency exploded, never *why one action* took
//! that long. This crate records the causal history itself: a span/event
//! stream keyed by `(guardian, action)` with flow edges carried across
//! 2PC messages, cheap enough to leave on and deterministic enough to
//! diff — the same seed yields a byte-identical trace.
//!
//! * [`Tracer`] — the bounded recorder, bound to [`argus_sim::SimClock`];
//!   scoped per thread via [`Tracer::enter`] with a per-thread default
//!   (see [`current()`]);
//! * [`TraceEvent`] / [`Ph`] / [`Key`] — the fixed-size event model:
//!   complete spans, scoped begin/end pairs, instants, and flow edges;
//! * [`to_chrome_json`] — Chrome trace-event export, loadable in
//!   Perfetto (`argus-lint trace --seed N --out trace.json`);
//! * [`attribute`] — per-action latency decomposition into lock-wait /
//!   force-wait / network / device / processing segments that provably
//!   sum to the end-to-end latency (experiment E16);
//! * [`lint_events`] — the structural trace lint behind invariant I12;
//! * [`flight`] — the counterexample flight recorder the sweeper and the
//!   2PC explorer dump failing schedules through.
//!
//! Instrumented crates record into [`current()`]; the guardian world
//! binds its clock and resets the current tracer when it is built, so a
//! tracer entered around a run observes exactly that run.

mod attr;
mod chrome;
mod event;
pub mod flight;
mod lint;
mod tracer;

pub use attr::{attribute, ActionLatency};
pub use chrome::to_chrome_json;
pub use event::{args, Args, Gid, Key, Ph, TraceEvent, STORE_LANE};
pub use lint::lint_events;
pub use tracer::{current, Detail, ScopedTracer, SpanGuard, Tracer, EVENT_CAP};
