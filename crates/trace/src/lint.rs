//! The trace lint backing invariant **I12** (see `argus_check`): a
//! recorded trace must be structurally sound —
//!
//! * every opened scoped span closes exactly once, at or after its open;
//! * per guardian lane, event *completion* times are monotone in recording
//!   order (a retroactive `Complete` span is recorded at its end time, so
//!   its completion `ts + dur` is the recording instant);
//! * every cross-guardian flow end resolves to an earlier flow start.
//!
//! A flow start with no end is legal (the message was dropped or still in
//! flight at the crash), as are several ends for one start (the network
//! duplicated the message). A truncated trace (events lost to the buffer
//! cap) skips the completeness checks: absence of an end proves nothing
//! when recording stopped early.

use crate::event::{Ph, TraceEvent};
use std::collections::HashMap;

/// The completion instant: when the event was recorded.
fn completion(e: &TraceEvent) -> u64 {
    match e.ph {
        Ph::Complete { dur } => e.ts.saturating_add(dur),
        _ => e.ts,
    }
}

/// Lints `events`; returns one human-readable detail line per violation.
/// `truncated` marks a trace that lost events to the buffer cap.
pub fn lint_events(events: &[TraceEvent], truncated: bool) -> Vec<String> {
    let mut violations = Vec::new();

    // Scoped spans: open/close pairing.
    let mut opens: HashMap<u64, &TraceEvent> = HashMap::new();
    let mut closed: HashMap<u64, u32> = HashMap::new();
    for e in events {
        match e.ph {
            Ph::Begin { span } if opens.insert(span, e).is_some() => {
                violations.push(format!("span {span} ({}) opened twice", e.name));
            }
            Ph::Begin { .. } => {}
            Ph::End { span } => {
                let count = closed.entry(span).or_insert(0);
                *count += 1;
                match opens.get(&span) {
                    None => {
                        violations.push(format!("span {span} ({}) closed but never opened", e.name))
                    }
                    Some(open) if open.ts > e.ts => violations.push(format!(
                        "span {span} ({}) closes at {} before it opens at {}",
                        e.name, e.ts, open.ts
                    )),
                    Some(open) if *count > 1 => {
                        violations.push(format!("span {span} ({}) closed {count} times", open.name))
                    }
                    Some(_) => {}
                }
            }
            _ => {}
        }
    }
    if !truncated {
        for (span, open) in &opens {
            if !closed.contains_key(span) {
                violations.push(format!(
                    "span {span} ({}) opened at {} on G{} never closes",
                    open.name, open.ts, open.gid
                ));
            }
        }
    }

    // Per-lane monotone completion times.
    let mut last: HashMap<u32, (u64, &TraceEvent)> = HashMap::new();
    for e in events {
        let at = completion(e);
        if let Some(&(prev, prev_e)) = last.get(&e.gid) {
            if at < prev {
                violations.push(format!(
                    "lane G{} time runs backwards: {} at {at} recorded after {} at {prev}",
                    e.gid, e.name, prev_e.name
                ));
                continue; // keep the high-water mark for later events
            }
        }
        last.insert(e.gid, (at, e));
    }

    // Flow resolution.
    let mut flow_starts: HashMap<u64, &TraceEvent> = HashMap::new();
    for e in events {
        match e.ph {
            Ph::FlowStart { flow } => {
                flow_starts.insert(flow, e);
            }
            Ph::FlowEnd { flow } => match flow_starts.get(&flow) {
                None if truncated => {}
                None => violations.push(format!(
                    "flow {flow} ({}) ends on G{} with no start",
                    e.name, e.gid
                )),
                Some(start) if start.ts > e.ts => violations.push(format!(
                    "flow {flow} ({}) ends at {} before its start at {}",
                    e.name, e.ts, start.ts
                )),
                Some(_) => {}
            },
            _ => {}
        }
    }

    violations.sort();
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::args;

    fn ev(name: &'static str, ph: Ph, ts: u64, gid: u32) -> TraceEvent {
        TraceEvent {
            cat: "test",
            name,
            ph,
            ts,
            gid,
            key: None,
            args: args(&[]),
        }
    }

    #[test]
    fn clean_trace_passes() {
        let events = vec![
            ev("restart", Ph::Begin { span: 0 }, 0, 0),
            ev("restart", Ph::End { span: 0 }, 10, 0),
            ev("lock_wait", Ph::Complete { dur: 5 }, 6, 0),
            ev("Prepare", Ph::FlowStart { flow: 0 }, 12, 0),
            ev("Prepare", Ph::FlowEnd { flow: 0 }, 14, 1),
        ];
        assert!(lint_events(&events, false).is_empty());
    }

    #[test]
    fn unclosed_span_is_flagged_unless_truncated() {
        let events = vec![ev("restart", Ph::Begin { span: 0 }, 0, 0)];
        let v = lint_events(&events, false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("never closes"));
        assert!(lint_events(&events, true).is_empty());
    }

    #[test]
    fn backwards_lane_time_is_flagged() {
        let events = vec![
            ev("a", Ph::Instant, 10, 0),
            ev("b", Ph::Instant, 5, 0),
            ev("c", Ph::Instant, 5, 1), // other lane: fine
        ];
        let v = lint_events(&events, false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("runs backwards"));
    }

    #[test]
    fn retroactive_complete_is_monotone_by_completion_time() {
        // An instant at t=20 followed by a lock-wait span [5, 20) recorded
        // at grant time: legal, its completion is 20.
        let events = vec![
            ev("granted", Ph::Instant, 20, 0),
            ev("lock_wait", Ph::Complete { dur: 15 }, 5, 0),
        ];
        assert!(lint_events(&events, false).is_empty());
    }

    #[test]
    fn dangling_flow_start_is_legal_but_orphan_end_is_not() {
        let dangling = vec![ev("Prepare", Ph::FlowStart { flow: 0 }, 0, 0)];
        assert!(lint_events(&dangling, false).is_empty());
        let orphan = vec![ev("Prepare", Ph::FlowEnd { flow: 7 }, 3, 1)];
        let v = lint_events(&orphan, false);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("no start"));
    }

    #[test]
    fn duplicated_delivery_yields_two_legal_ends() {
        let events = vec![
            ev("Commit", Ph::FlowStart { flow: 0 }, 0, 0),
            ev("Commit", Ph::FlowEnd { flow: 0 }, 2, 1),
            ev("Commit", Ph::FlowEnd { flow: 0 }, 4, 1),
        ];
        assert!(lint_events(&events, false).is_empty());
    }
}
