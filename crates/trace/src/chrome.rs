//! Chrome trace-event JSON export.
//!
//! Serializes a recorded event vector into the Trace Event Format that
//! `chrome://tracing` and Perfetto load: guardians become processes,
//! actions become threads within them, complete spans become `X` events,
//! scoped spans `B`/`E`, instants `i`, and causal edges `s`/`f` flow
//! pairs. The JSON is hand-rolled (the workspace has no serializer
//! dependency) and fully deterministic: events are emitted in recording
//! order with no floats, timestamps, or hashing, so the same event vector
//! always yields byte-identical output — the property the determinism
//! tests and `scripts/verify.sh --trace` pin.

use crate::event::{Gid, Key, Ph, TraceEvent, STORE_LANE};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The `tid` lane an event renders into: one lane per action within its
/// guardian's process, lane 0 for control events with no action.
fn tid(key: Option<Key>) -> u64 {
    match key {
        // Keep distinct origins apart without allocating a lane table; the
        // per-guardian sequence numbers in one run stay far below the
        // spacing.
        Some(k) => 1 + u64::from(k.origin) * 100_000 + k.seq,
        None => 0,
    }
}

fn escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_common(out: &mut String, event: &TraceEvent, ph: &str) {
    out.push_str("{\"name\":\"");
    escape(out, event.name);
    out.push_str("\",\"cat\":\"");
    escape(out, event.cat);
    let _ = write!(
        out,
        "\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{},\"tid\":{}",
        event.ts,
        event.gid,
        tid(event.key)
    );
}

fn push_args(out: &mut String, event: &TraceEvent, extra: &[(&str, u64)]) {
    let pairs: Vec<(&str, u64)> = event
        .args
        .iter()
        .flatten()
        .map(|&(k, v)| (k, v))
        .chain(extra.iter().copied())
        .collect();
    let mut keyed: Vec<(&str, String)> = pairs.iter().map(|&(k, v)| (k, v.to_string())).collect();
    if let Some(k) = event.key {
        keyed.push(("action", format!("\"{k}\"")));
    }
    if keyed.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in keyed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape(out, k);
        out.push_str("\":");
        out.push_str(v);
    }
    out.push('}');
}

fn push_metadata(out: &mut String, pid: Gid) {
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\""
    );
    if pid == STORE_LANE {
        out.push_str("storage devices");
    } else {
        let _ = write!(out, "guardian {pid}");
    }
    out.push_str("\"}}");
}

/// Serializes `events` as Chrome trace-event JSON.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        out.push('\n');
        *first = false;
    };

    // Name every process lane first, in pid order.
    let pids: BTreeSet<Gid> = events.iter().map(|e| e.gid).collect();
    for pid in pids {
        sep(&mut out, &mut first);
        push_metadata(&mut out, pid);
    }

    for event in events {
        sep(&mut out, &mut first);
        match event.ph {
            Ph::Complete { dur } => {
                push_common(&mut out, event, "X");
                let _ = write!(out, ",\"dur\":{dur}");
                push_args(&mut out, event, &[]);
            }
            Ph::Begin { span } => {
                push_common(&mut out, event, "B");
                push_args(&mut out, event, &[("span", span)]);
            }
            Ph::End { span } => {
                push_common(&mut out, event, "E");
                push_args(&mut out, event, &[("span", span)]);
            }
            Ph::Instant => {
                push_common(&mut out, event, "i");
                out.push_str(",\"s\":\"t\"");
                push_args(&mut out, event, &[]);
            }
            Ph::FlowStart { flow } => {
                push_common(&mut out, event, "s");
                let _ = write!(out, ",\"id\":{flow}");
                push_args(&mut out, event, &[]);
            }
            Ph::FlowEnd { flow } => {
                push_common(&mut out, event, "f");
                let _ = write!(out, ",\"bp\":\"e\",\"id\":{flow}");
                push_args(&mut out, event, &[]);
            }
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::args;

    fn ev(name: &'static str, ph: Ph, ts: u64, gid: Gid, key: Option<Key>) -> TraceEvent {
        TraceEvent {
            cat: "test",
            name,
            ph,
            ts,
            gid,
            key,
            args: args(&[]),
        }
    }

    /// A minimal structural validator: balanced braces/brackets outside
    /// strings, so malformed escaping shows up in tests without a JSON
    /// parser dependency.
    fn check_balanced(s: &str) {
        let mut depth_obj = 0i64;
        let mut depth_arr = 0i64;
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth_obj += 1,
                '}' => depth_obj -= 1,
                '[' => depth_arr += 1,
                ']' => depth_arr -= 1,
                _ => {}
            }
            assert!(depth_obj >= 0 && depth_arr >= 0, "imbalance in {s}");
        }
        assert_eq!(depth_obj, 0);
        assert_eq!(depth_arr, 0);
        assert!(!in_str);
    }

    #[test]
    fn all_phases_serialize_and_balance() {
        let events = vec![
            ev(
                "action",
                Ph::Complete { dur: 30 },
                10,
                0,
                Some(Key::new(0, 1)),
            ),
            ev("restart", Ph::Begin { span: 0 }, 40, 1, None),
            ev("restart", Ph::End { span: 0 }, 55, 1, None),
            ev("cache_miss", Ph::Instant, 60, STORE_LANE, None),
            ev(
                "Prepare",
                Ph::FlowStart { flow: 0 },
                61,
                0,
                Some(Key::new(0, 1)),
            ),
            ev(
                "Prepare",
                Ph::FlowEnd { flow: 0 },
                63,
                2,
                Some(Key::new(0, 1)),
            ),
        ];
        let json = to_chrome_json(&events);
        check_balanced(&json);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":30"));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"bp\":\"e\""));
        assert!(json.contains("storage devices"));
        assert!(json.contains("guardian 2"));
        assert!(json.contains("\"action\":\"G0/1\""));
    }

    #[test]
    fn same_events_yield_byte_identical_json() {
        let events = vec![
            ev("a", Ph::Instant, 1, 0, None),
            ev("b", Ph::Complete { dur: 5 }, 2, 1, Some(Key::new(1, 2))),
        ];
        assert_eq!(to_chrome_json(&events), to_chrome_json(&events));
    }

    #[test]
    fn inline_args_render_as_integers() {
        let mut e = ev("force", Ph::Complete { dur: 3 }, 9, 0, None);
        e.args = args(&[("batch", 4), ("ops", 2)]);
        let json = to_chrome_json(&[e]);
        check_balanced(&json);
        assert!(json.contains("\"batch\":4"));
        assert!(json.contains("\"ops\":2"));
    }
}
