//! Per-object FIFO wait queues for lock requests that could not be granted.

use crate::WaitForGraph;
use argus_objects::{ActionId, GuardianId, HeapId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The mode of a lock request on an atomic object (§2.4.1). A mutex seize
/// (§2.4.2) queues as [`LockMode::Exclusive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// A read lock; compatible with other read locks.
    Shared,
    /// A write lock (or mutex possession); compatible with nothing.
    Exclusive,
}

impl LockMode {
    /// Whether two requests in these modes could both be granted.
    pub fn compatible(self, other: LockMode) -> bool {
        self == LockMode::Shared && other == LockMode::Shared
    }

    /// The mode as a static name, for journal events and trace spans.
    pub fn name(self) -> &'static str {
        match self {
            LockMode::Shared => "shared",
            LockMode::Exclusive => "exclusive",
        }
    }
}

/// Names one lockable object in the world: a heap slot at a guardian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObjKey {
    /// The guardian whose heap holds the object.
    pub gid: GuardianId,
    /// The object's volatile address in that heap.
    pub hid: HeapId,
}

/// The lock holders of one object, snapshotted from a heap when the
/// wait-for graph is built.
#[derive(Debug, Clone, Default)]
pub struct LockHolders {
    /// The write-lock holder (or mutex possessor), if any.
    pub writer: Option<ActionId>,
    /// Read-lock holders, in action-id order.
    pub readers: Vec<ActionId>,
}

/// A parked lock request: the action, what it wants, and the continuation
/// the scheduler runs once the request is granted.
#[derive(Debug)]
pub struct Waiter<C> {
    /// The requesting action.
    pub aid: ActionId,
    /// The requested mode.
    pub mode: LockMode,
    /// Simulated time at which the request parked.
    pub parked_at: u64,
    /// Simulated deadline after which the request times out ([`crate::CcPolicy::Timeout`]).
    pub deadline: Option<u64>,
    /// The lock holder this request is queued behind at park time (the
    /// writer, or the first reader blocking an exclusive request), when one
    /// is known. Carried so the grant-time trace span can name who was
    /// waited on.
    pub holder: Option<ActionId>,
    /// What to run when the request is granted.
    pub cont: C,
}

/// The lock manager: a FIFO wait queue per contended object.
///
/// The manager itself never touches a heap — granting is a two-phase
/// conversation with the owner of the heaps (the guardian `World`): the
/// owner snapshots [`LockManager::fronts`], attempts the actual heap
/// acquisition for each front, and pops granted waiters with
/// [`LockManager::take_front`]. That split keeps this structure free of any
/// borrow of guardian state and keeps grant order deterministic (queues
/// iterate in [`ObjKey`] order, each queue in FIFO order).
#[derive(Debug)]
pub struct LockManager<C> {
    queues: BTreeMap<ObjKey, VecDeque<Waiter<C>>>,
}

impl<C> Default for LockManager<C> {
    fn default() -> Self {
        Self {
            queues: BTreeMap::new(),
        }
    }
}

impl<C> LockManager<C> {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks a request at the back of `key`'s queue. An `upgrade` (the
    /// action already holds a shared lock and wants exclusive) parks at the
    /// *front*: it cannot give way to later arrivals, which would have to
    /// wait behind its shared lock anyway.
    pub fn park(&mut self, key: ObjKey, waiter: Waiter<C>, upgrade: bool) {
        argus_obs::current().event(argus_obs::Event::LockBlocked {
            mode: waiter.mode.name(),
            holder_seq: waiter.holder.map(|h| h.seq),
        });
        argus_trace::current().instant(
            "cc",
            "lock_blocked",
            key.gid.0,
            Some(argus_trace::Key::new(
                waiter.aid.coordinator.0,
                waiter.aid.seq,
            )),
            &[
                ("hid", u64::from(key.hid.0)),
                ("holder_seq", waiter.holder.map_or(0, |h| h.seq)),
            ],
        );
        let queue = self.queues.entry(key).or_default();
        if upgrade {
            queue.push_front(waiter);
        } else {
            queue.push_back(waiter);
        }
    }

    /// Whether any request is parked.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Total parked requests.
    pub fn waiter_count(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Whether `key` has a non-empty queue.
    pub fn has_queue(&self, key: ObjKey) -> bool {
        self.queues.contains_key(&key)
    }

    /// Whether `aid` has at least one parked request.
    pub fn is_blocked(&self, aid: ActionId) -> bool {
        self.queues.values().any(|q| q.iter().any(|w| w.aid == aid))
    }

    /// Every action with a parked request, in id order.
    pub fn blocked_actions(&self) -> BTreeSet<ActionId> {
        self.queues
            .values()
            .flat_map(|q| q.iter().map(|w| w.aid))
            .collect()
    }

    /// The front of every queue, in key order — the candidates the owner of
    /// the heaps should try to grant.
    pub fn fronts(&self) -> Vec<(ObjKey, ActionId, LockMode)> {
        self.queues
            .iter()
            .filter_map(|(k, q)| q.front().map(|w| (*k, w.aid, w.mode)))
            .collect()
    }

    /// Pops the front waiter of `key`'s queue (after the owner successfully
    /// acquired the heap lock on its behalf).
    pub fn take_front(&mut self, key: ObjKey) -> Option<Waiter<C>> {
        let queue = self.queues.get_mut(&key)?;
        let waiter = queue.pop_front();
        if queue.is_empty() {
            self.queues.remove(&key);
        }
        waiter
    }

    /// Removes every request parked by `aid` (abort, victim, timeout),
    /// returning them in key order.
    pub fn cancel(&mut self, aid: ActionId) -> Vec<(ObjKey, Waiter<C>)> {
        self.remove_where(|_, w| w.aid == aid)
    }

    /// Removes every request parked on an object at guardian `gid` (the
    /// guardian crashed; its heap — and the locks in it — are gone).
    pub fn drain_guardian(&mut self, gid: GuardianId) -> Vec<(ObjKey, Waiter<C>)> {
        self.remove_where(|key, _| key.gid == gid)
    }

    fn remove_where(
        &mut self,
        mut pred: impl FnMut(ObjKey, &Waiter<C>) -> bool,
    ) -> Vec<(ObjKey, Waiter<C>)> {
        let mut removed = Vec::new();
        let keys: Vec<ObjKey> = self.queues.keys().copied().collect();
        for key in keys {
            let queue = self.queues.get_mut(&key).expect("key just listed");
            let mut kept = VecDeque::with_capacity(queue.len());
            for waiter in queue.drain(..) {
                if pred(key, &waiter) {
                    removed.push((key, waiter));
                } else {
                    kept.push_back(waiter);
                }
            }
            if kept.is_empty() {
                self.queues.remove(&key);
            } else {
                *queue = kept;
            }
        }
        removed
    }

    /// Actions whose earliest deadline has passed at `now`, in id order.
    pub fn expired(&self, now: u64) -> Vec<ActionId> {
        let mut out: BTreeSet<ActionId> = BTreeSet::new();
        for queue in self.queues.values() {
            for waiter in queue {
                if waiter.deadline.is_some_and(|d| d <= now) {
                    out.insert(waiter.aid);
                }
            }
        }
        out.into_iter().collect()
    }

    /// The earliest deadline of any parked request.
    pub fn next_deadline(&self) -> Option<u64> {
        self.queues
            .values()
            .flat_map(|q| q.iter().filter_map(|w| w.deadline))
            .min()
    }

    /// Builds the wait-for graph from the queues and the given holder
    /// snapshot. Edges:
    ///
    /// * waiter → holder, when the held lock blocks the request (an
    ///   exclusive request waits on the writer and every reader; a shared
    ///   request waits only on the writer);
    /// * waiter → earlier waiter in the same queue, when their modes are
    ///   incompatible (FIFO order means the later one cannot be granted
    ///   before the earlier one completes).
    pub fn wait_for_edges(&self, holders: &BTreeMap<ObjKey, LockHolders>) -> WaitForGraph {
        let mut graph = WaitForGraph::new();
        for (key, queue) in &self.queues {
            let held = holders.get(key);
            for (i, waiter) in queue.iter().enumerate() {
                if let Some(held) = held {
                    if let Some(writer) = held.writer {
                        graph.add_edge(waiter.aid, writer);
                    }
                    if waiter.mode == LockMode::Exclusive {
                        for &reader in &held.readers {
                            graph.add_edge(waiter.aid, reader);
                        }
                    }
                }
                for earlier in queue.iter().take(i) {
                    if !waiter.mode.compatible(earlier.mode) {
                        graph.add_edge(waiter.aid, earlier.aid);
                    }
                }
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> ActionId {
        ActionId::new(GuardianId(9), n)
    }

    fn key(g: u32, h: u32) -> ObjKey {
        ObjKey {
            gid: GuardianId(g),
            hid: HeapId(h),
        }
    }

    fn waiter(n: u64, mode: LockMode) -> Waiter<&'static str> {
        Waiter {
            aid: a(n),
            mode,
            parked_at: 0,
            deadline: None,
            holder: None,
            cont: "c",
        }
    }

    #[test]
    fn fifo_order_and_take() {
        let mut lm = LockManager::new();
        lm.park(key(0, 1), waiter(1, LockMode::Exclusive), false);
        lm.park(key(0, 1), waiter(2, LockMode::Shared), false);
        assert_eq!(lm.fronts(), vec![(key(0, 1), a(1), LockMode::Exclusive)]);
        assert_eq!(lm.take_front(key(0, 1)).unwrap().aid, a(1));
        assert_eq!(lm.fronts(), vec![(key(0, 1), a(2), LockMode::Shared)]);
        assert_eq!(lm.take_front(key(0, 1)).unwrap().aid, a(2));
        assert!(lm.is_empty());
    }

    #[test]
    fn upgrades_jump_the_queue() {
        let mut lm = LockManager::new();
        lm.park(key(0, 1), waiter(1, LockMode::Exclusive), false);
        lm.park(key(0, 1), waiter(2, LockMode::Exclusive), true);
        assert_eq!(lm.fronts(), vec![(key(0, 1), a(2), LockMode::Exclusive)]);
    }

    #[test]
    fn cancel_removes_all_of_an_action() {
        let mut lm = LockManager::new();
        lm.park(key(0, 1), waiter(1, LockMode::Shared), false);
        lm.park(key(0, 2), waiter(1, LockMode::Exclusive), false);
        lm.park(key(0, 2), waiter(2, LockMode::Shared), false);
        let removed = lm.cancel(a(1));
        assert_eq!(removed.len(), 2);
        assert_eq!(lm.waiter_count(), 1);
        assert!(!lm.is_blocked(a(1)));
        assert!(lm.is_blocked(a(2)));
    }

    #[test]
    fn drain_guardian_only_touches_its_keys() {
        let mut lm = LockManager::new();
        lm.park(key(0, 1), waiter(1, LockMode::Shared), false);
        lm.park(key(1, 1), waiter(2, LockMode::Shared), false);
        let removed = lm.drain_guardian(GuardianId(0));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].1.aid, a(1));
        assert!(lm.is_blocked(a(2)));
    }

    #[test]
    fn deadlines_expire_and_sort() {
        let mut lm = LockManager::new();
        let mut w1 = waiter(1, LockMode::Shared);
        w1.deadline = Some(100);
        let mut w2 = waiter(2, LockMode::Shared);
        w2.deadline = Some(50);
        lm.park(key(0, 1), w1, false);
        lm.park(key(0, 2), w2, false);
        assert_eq!(lm.next_deadline(), Some(50));
        assert_eq!(lm.expired(49), Vec::<ActionId>::new());
        assert_eq!(lm.expired(50), vec![a(2)]);
        assert_eq!(lm.expired(100), vec![a(1), a(2)]);
    }

    #[test]
    fn wait_edges_respect_modes() {
        // Holder: writer a1 on (0,1); readers a2,a3 on (0,2).
        let mut lm = LockManager::new();
        lm.park(key(0, 1), waiter(4, LockMode::Shared), false);
        lm.park(key(0, 2), waiter(5, LockMode::Exclusive), false);
        lm.park(key(0, 2), waiter(6, LockMode::Shared), false);
        let mut holders = BTreeMap::new();
        holders.insert(
            key(0, 1),
            LockHolders {
                writer: Some(a(1)),
                readers: Vec::new(),
            },
        );
        holders.insert(
            key(0, 2),
            LockHolders {
                writer: None,
                readers: vec![a(2), a(3)],
            },
        );
        let g = lm.wait_for_edges(&holders);
        // Shared request waits only on the writer.
        assert_eq!(g.successors(a(4)).collect::<Vec<_>>(), vec![a(1)]);
        // Exclusive request waits on every reader.
        assert_eq!(g.successors(a(5)).collect::<Vec<_>>(), vec![a(2), a(3)]);
        // The later shared request waits on the earlier exclusive one (FIFO)
        // but not on the readers.
        assert_eq!(g.successors(a(6)).collect::<Vec<_>>(), vec![a(5)]);
    }

    #[test]
    fn upgrade_cycle_shows_in_edges() {
        // a1 and a2 both hold shared; both queue for exclusive.
        let mut lm = LockManager::new();
        lm.park(key(0, 1), waiter(1, LockMode::Exclusive), true);
        lm.park(key(0, 1), waiter(2, LockMode::Exclusive), true);
        let mut holders = BTreeMap::new();
        holders.insert(
            key(0, 1),
            LockHolders {
                writer: None,
                readers: vec![a(1), a(2)],
            },
        );
        let g = lm.wait_for_edges(&holders);
        assert!(g.cycle_through(a(1)).is_some() || g.cycle_through(a(2)).is_some());
    }
}
