//! The wait-for graph: who is waiting for whom to release a lock.

use argus_objects::ActionId;
use std::collections::{BTreeMap, BTreeSet};

/// A directed graph over actions where an edge `a → b` means "`a` cannot
/// proceed until `b` releases a lock (or leaves the queue ahead of `a`)".
///
/// A cycle is a deadlock: every action on it waits for another on it. The
/// graph is rebuilt from the wait queues and current holders each time a
/// request parks, and only the newly parked action needs checking — grants
/// never add edges, so any cycle must pass through the most recent parker.
#[derive(Debug, Default, Clone)]
pub struct WaitForGraph {
    edges: BTreeMap<ActionId, BTreeSet<ActionId>>,
}

impl WaitForGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the edge `from → to`. Self-edges are ignored (an action never
    /// waits on itself; re-entrant acquisition is granted outright).
    pub fn add_edge(&mut self, from: ActionId, to: ActionId) {
        if from != to {
            self.edges.entry(from).or_default().insert(to);
        }
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// The successors of `a`, in action-id order.
    pub fn successors(&self, a: ActionId) -> impl Iterator<Item = ActionId> + '_ {
        self.edges.get(&a).into_iter().flatten().copied()
    }

    /// Searches for a cycle through `start` and returns its members in path
    /// order (`start` first), or `None`. Deterministic: the depth-first
    /// search visits successors in action-id order.
    pub fn cycle_through(&self, start: ActionId) -> Option<Vec<ActionId>> {
        let mut path = vec![start];
        let mut visited = BTreeSet::from([start]);
        if self.dfs(start, start, &mut visited, &mut path) {
            Some(path)
        } else {
            None
        }
    }

    fn dfs(
        &self,
        node: ActionId,
        target: ActionId,
        visited: &mut BTreeSet<ActionId>,
        path: &mut Vec<ActionId>,
    ) -> bool {
        for next in self.successors(node) {
            if next == target {
                return true;
            }
            if visited.insert(next) {
                path.push(next);
                if self.dfs(next, target, visited, path) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_objects::GuardianId;

    fn a(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    #[test]
    fn no_cycle_in_a_chain() {
        let mut g = WaitForGraph::new();
        g.add_edge(a(1), a(2));
        g.add_edge(a(2), a(3));
        assert_eq!(g.cycle_through(a(1)), None);
        assert_eq!(g.cycle_through(a(3)), None);
    }

    #[test]
    fn two_cycle_is_found_from_either_end() {
        let mut g = WaitForGraph::new();
        g.add_edge(a(1), a(2));
        g.add_edge(a(2), a(1));
        assert_eq!(g.cycle_through(a(1)), Some(vec![a(1), a(2)]));
        assert_eq!(g.cycle_through(a(2)), Some(vec![a(2), a(1)]));
    }

    #[test]
    fn long_cycle_members_are_reported_in_path_order() {
        let mut g = WaitForGraph::new();
        g.add_edge(a(1), a(2));
        g.add_edge(a(2), a(3));
        g.add_edge(a(3), a(4));
        g.add_edge(a(4), a(1));
        assert_eq!(g.cycle_through(a(3)), Some(vec![a(3), a(4), a(1), a(2)]));
    }

    #[test]
    fn cycle_not_through_start_is_ignored() {
        // 1 → 2 ⇄ 3, but 1 is not on the cycle.
        let mut g = WaitForGraph::new();
        g.add_edge(a(1), a(2));
        g.add_edge(a(2), a(3));
        g.add_edge(a(3), a(2));
        assert_eq!(g.cycle_through(a(1)), None);
        assert!(g.cycle_through(a(2)).is_some());
    }

    #[test]
    fn self_edges_are_dropped() {
        let mut g = WaitForGraph::new();
        g.add_edge(a(1), a(1));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.cycle_through(a(1)), None);
    }

    #[test]
    fn branching_search_finds_the_one_real_cycle() {
        let mut g = WaitForGraph::new();
        g.add_edge(a(1), a(2)); // dead end
        g.add_edge(a(1), a(3));
        g.add_edge(a(3), a(1));
        assert_eq!(g.cycle_through(a(1)), Some(vec![a(1), a(3)]));
    }
}
