//! Concurrency-control policies and the retry/backoff schedule.

use argus_sim::DetRng;

/// What the system does when a lock request collides with a holder.
///
/// The thesis assumes two-phase read/write locks on atomic objects (§2.4)
/// but leaves the collision discipline open. Three classic disciplines are
/// provided so workloads can compare them side by side (experiment E14):
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcPolicy {
    /// Optimistic conflict-abort: a conflicting request fails immediately;
    /// the caller aborts the action and retries after a backoff. No waiting,
    /// no deadlock possible, but heavy contention wastes work.
    #[default]
    ConflictAbort,
    /// Blocking with deadlock detection: conflicting requests park in a
    /// per-object FIFO queue; every new wait edge triggers a wait-for-graph
    /// cycle search, and the youngest action on a cycle is aborted.
    Blocking,
    /// Blocking with a lock-wait timeout on the simulated clock: parked
    /// requests that wait longer than [`CcConfig::wait_timeout_us`] abort
    /// their action and retry after a backoff. Deadlocks are broken by the
    /// timeout rather than a cycle search.
    Timeout,
}

impl CcPolicy {
    /// A short stable name (table rows, JSON artifacts).
    pub fn name(&self) -> &'static str {
        match self {
            CcPolicy::ConflictAbort => "conflict-abort",
            CcPolicy::Blocking => "blocking",
            CcPolicy::Timeout => "timeout",
        }
    }
}

/// Knobs of the concurrency-control subsystem.
#[derive(Debug, Clone, Copy)]
pub struct CcConfig {
    /// The collision discipline.
    pub policy: CcPolicy,
    /// Lock-wait timeout in simulated µs ([`CcPolicy::Timeout`] only).
    pub wait_timeout_us: u64,
    /// Backoff schedule workloads use between retries of an aborted action.
    pub backoff: BackoffConfig,
}

impl Default for CcConfig {
    fn default() -> Self {
        Self {
            policy: CcPolicy::ConflictAbort,
            wait_timeout_us: 5_000,
            backoff: BackoffConfig::default(),
        }
    }
}

impl CcConfig {
    /// A config running the given policy with default knobs.
    pub fn with_policy(policy: CcPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }
}

/// Parameters of the seeded exponential-backoff schedule.
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// Delay cap for attempt 0 in simulated µs.
    pub base_us: u64,
    /// Upper bound on any delay in simulated µs.
    pub cap_us: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self {
            base_us: 200,
            cap_us: 12_800,
        }
    }
}

impl BackoffConfig {
    /// The delay before retry number `attempt` (0-based): *full jitter*
    /// exponential backoff — uniform in `[1, min(cap, base << attempt)]`,
    /// drawn from the caller's deterministic generator so a seed pins the
    /// whole retry schedule.
    pub fn delay_us(&self, attempt: u32, rng: &mut DetRng) -> u64 {
        let ceiling = self
            .base_us
            .saturating_shl(attempt.min(32))
            .clamp(1, self.cap_us.max(1));
        1 + rng.gen_range(ceiling)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, by: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, by: u32) -> u64 {
        if by >= 64 || self.leading_zeros() < by {
            u64::MAX
        } else {
            self << by
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(CcPolicy::ConflictAbort.name(), "conflict-abort");
        assert_eq!(CcPolicy::Blocking.name(), "blocking");
        assert_eq!(CcPolicy::Timeout.name(), "timeout");
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let cfg = BackoffConfig {
            base_us: 100,
            cap_us: 1_000,
        };
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for attempt in 0..20 {
            let da = cfg.delay_us(attempt, &mut a);
            let db = cfg.delay_us(attempt, &mut b);
            assert_eq!(da, db);
            assert!((1..=1_000).contains(&da), "delay {da} out of range");
        }
    }

    #[test]
    fn backoff_ceiling_grows_then_caps() {
        let cfg = BackoffConfig {
            base_us: 100,
            cap_us: 800,
        };
        // The ceiling doubles 100 → 200 → 400 → 800 → 800…; sample many
        // draws per attempt and check the maxima respect the ceilings.
        let mut rng = DetRng::new(3);
        for (attempt, ceiling) in [(0u32, 100u64), (1, 200), (2, 400), (3, 800), (9, 800)] {
            for _ in 0..200 {
                assert!(cfg.delay_us(attempt, &mut rng) <= ceiling);
            }
        }
    }

    #[test]
    fn backoff_survives_huge_attempt_counts() {
        let cfg = BackoffConfig::default();
        let mut rng = DetRng::new(5);
        assert!(cfg.delay_us(u32::MAX, &mut rng) <= cfg.cap_us);
    }
}
