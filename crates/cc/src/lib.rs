//! # argus-cc — concurrency control for atomic actions
//!
//! The thesis assumes Argus's two-phase read/write locks on atomic objects
//! (§2.4) but leaves open what happens when two actions collide. This crate
//! supplies the missing subsystem: per-object FIFO wait queues with
//! shared/exclusive modes and upgrade handling ([`LockManager`]), a
//! wait-for graph with deterministic cycle detection ([`WaitForGraph`]),
//! and three collision disciplines ([`CcPolicy`]) — optimistic
//! conflict-abort, blocking with deadlock detection (victim = youngest
//! action), and a simulated-clock lock-wait timeout — plus a seeded
//! exponential-backoff retry schedule ([`BackoffConfig`]).
//!
//! The manager is deliberately heap-free: it owns only queues and
//! continuations. Granting is a two-phase conversation with the owner of
//! the heaps (the guardian `World`): snapshot [`LockManager::fronts`], try
//! the real heap acquisition for each, pop winners with
//! [`LockManager::take_front`]. All iteration orders are `BTreeMap`-stable,
//! so a seed pins the complete schedule: grants, deadlocks, victims, and
//! timeouts.

mod graph;
mod lock;
mod policy;

pub use graph::WaitForGraph;
pub use lock::{LockHolders, LockManager, LockMode, ObjKey, Waiter};
pub use policy::{BackoffConfig, CcConfig, CcPolicy};

use argus_objects::ActionId;

/// How a lock-aware submission resolved, as seen by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcOutcome {
    /// The request was granted and its effect applied synchronously.
    Done,
    /// The request parked on a wait queue; it resumes when the lock is
    /// released (or the action is made a deadlock victim / times out).
    Parked,
    /// The request hit a conflict under [`CcPolicy::ConflictAbort`]; the
    /// caller should abort the action and retry after a backoff.
    Conflict,
}

/// Why the scheduler gave up on a parked action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcFate {
    /// Chosen as the deadlock victim (youngest action on the cycle) and
    /// aborted.
    Victim,
    /// Its lock-wait deadline passed and it was aborted.
    TimedOut,
    /// The guardian holding the awaited object crashed; the wait is moot
    /// and the action was aborted.
    CrashDrained,
}

/// A deterministic record of one broken deadlock, for logs and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// The cycle, starting at the action whose park closed it.
    pub cycle: Vec<ActionId>,
    /// The member chosen for abort (the youngest).
    pub victim: ActionId,
}
