//! A bespoke benchmark harness: warmup, N measured iterations, and
//! min/median/p95 summaries over the **simulated** clock (with wall-clock
//! nanoseconds as a secondary column).
//!
//! The workspace's costs are dominated by the simulated device model
//! (`argus_sim::CostModel`), so the interesting latency of an operation is
//! how far it advances the [`SimClock`] — a quantity that is exactly
//! reproducible run to run. Wall time is reported too, for the real CPU cost
//! of the code itself.

use crate::table::Table;
use argus_sim::SimClock;
use std::fmt;
use std::time::Instant;

/// How many warmup and measured iterations to run.
#[derive(Debug, Clone, Copy)]
pub struct BenchSpec {
    /// Unmeasured iterations run first (fills caches, triggers lazy init).
    pub warmup: u64,
    /// Measured iterations.
    pub iters: u64,
}

impl Default for BenchSpec {
    fn default() -> Self {
        Self {
            warmup: 3,
            iters: 30,
        }
    }
}

impl BenchSpec {
    /// A spec with `iters` measured iterations and a small warmup.
    pub fn iters(iters: u64) -> Self {
        Self {
            warmup: (iters / 10).clamp(1, 5),
            iters: iters.max(1),
        }
    }
}

/// Order statistics over one sample set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Smallest sample.
    pub min: u64,
    /// Exact median (lower of the two middle samples for even counts).
    pub median: u64,
    /// Exact 95th percentile (nearest-rank).
    pub p95: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: u64,
}

impl Summary {
    /// Computes exact order statistics from the raw samples.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |q: f64| -> u64 {
            let i = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            samples[i]
        };
        Self {
            min: samples[0],
            median: rank(0.5),
            p95: rank(0.95),
            max: samples[n - 1],
            mean: samples.iter().sum::<u64>() / n as u64,
        }
    }
}

/// The outcome of one benchmark: summaries of simulated µs and wall ns.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Measured iterations.
    pub iters: u64,
    /// Per-iteration simulated microseconds.
    pub sim_us: Summary,
    /// Per-iteration wall-clock nanoseconds.
    pub wall_ns: Summary,
}

/// Runs `f` for `spec.warmup` unmeasured plus `spec.iters` measured
/// iterations, timing each against `clock` and the wall.
pub fn run<F>(name: &str, clock: &SimClock, spec: BenchSpec, mut f: F) -> BenchResult
where
    F: FnMut(),
{
    run_batched(name, clock, spec, || (), |()| f())
}

/// Like [`run`], but each iteration first builds an input with `setup`,
/// which is *excluded* from the measurement (the `iter_batched` pattern).
pub fn run_batched<S, I, F>(
    name: &str,
    clock: &SimClock,
    spec: BenchSpec,
    mut setup: S,
    mut f: F,
) -> BenchResult
where
    S: FnMut() -> I,
    F: FnMut(I),
{
    for _ in 0..spec.warmup {
        let input = setup();
        f(input);
    }
    let mut sim = Vec::with_capacity(spec.iters as usize);
    let mut wall = Vec::with_capacity(spec.iters as usize);
    for _ in 0..spec.iters {
        let input = setup();
        let s0 = clock.now();
        let w0 = Instant::now();
        f(input);
        sim.push(clock.now() - s0);
        wall.push(w0.elapsed().as_nanos() as u64);
    }
    BenchResult {
        name: name.to_string(),
        iters: spec.iters,
        sim_us: Summary::from_samples(sim),
        wall_ns: Summary::from_samples(wall),
    }
}

/// Collects [`BenchResult`]s and renders one markdown table.
#[derive(Debug, Clone)]
pub struct BenchReport {
    title: String,
    results: Vec<BenchResult>,
}

impl BenchReport {
    /// An empty report titled `title`.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            results: Vec::new(),
        }
    }

    /// Appends one result.
    pub fn push(&mut self, result: BenchResult) {
        self.results.push(result);
    }

    /// The collected results.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

impl fmt::Display for BenchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(self.title.clone());
        t.header([
            "benchmark",
            "iters",
            "sim min (µs)",
            "sim p50 (µs)",
            "sim p95 (µs)",
            "wall p50 (ns)",
        ]);
        for r in &self.results {
            t.row([
                r.name.clone(),
                r.iters.to_string(),
                r.sim_us.min.to_string(),
                r.sim_us.median.to_string(),
                r.sim_us.p95.to_string(),
                r.wall_ns.median.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_order_statistics_are_exact() {
        let s = Summary::from_samples((1..=100).rev().collect());
        assert_eq!(s.min, 1);
        assert_eq!(s.median, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean, 50);
        assert_eq!(Summary::from_samples(vec![]), Summary::default());
        assert_eq!(Summary::from_samples(vec![7]).median, 7);
    }

    #[test]
    fn run_measures_sim_clock_per_iteration() {
        let clock = SimClock::new();
        let result = run(
            "advance",
            &clock,
            BenchSpec {
                warmup: 2,
                iters: 10,
            },
            || {
                clock.advance(100);
            },
        );
        assert_eq!(result.iters, 10);
        assert_eq!(result.sim_us.min, 100);
        assert_eq!(result.sim_us.max, 100);
        // Warmup ran too but was not measured.
        assert_eq!(clock.now(), 12 * 100);
    }

    #[test]
    fn setup_cost_is_excluded() {
        let clock = SimClock::new();
        let result = run_batched(
            "batched",
            &clock,
            BenchSpec {
                warmup: 0,
                iters: 5,
            },
            || clock.advance(1_000), // expensive setup, excluded
            |_start| {
                clock.advance(10);
            },
        );
        assert_eq!(result.sim_us.max, 10);
    }

    #[test]
    fn report_renders_a_table() {
        let clock = SimClock::new();
        let mut report = BenchReport::new("demo");
        report.push(run("noop", &clock, BenchSpec::iters(5), || {}));
        let text = report.to_string();
        assert!(text.contains("### demo"));
        assert!(text.contains("| noop"));
        assert_eq!(report.results().len(), 1);
    }
}
