//! Atomic counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing atomic counter.
///
/// Cloning a `Counter` yields another handle to the *same* underlying value,
/// so instrumented structs can resolve a handle once (by name, through a
/// [`crate::Registry`]) and then bump it on the hot path with a single
/// relaxed `fetch_add`.
///
/// # Examples
///
/// ```
/// use argus_obs::Counter;
///
/// let c = Counter::new();
/// let handle = c.clone();
/// handle.inc();
/// handle.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (for per-run experiment isolation).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn reset_zeroes_all_handles() {
        let a = Counter::new();
        let b = a.clone();
        a.add(10);
        b.reset();
        assert_eq!(a.get(), 0);
    }

    #[test]
    fn counters_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Counter>();
    }
}
