//! # argus-obs — observability for the argus workspace
//!
//! The thesis's evaluation artifacts are comparative *claims* (log ⇒ fast
//! write / slow recovery; shadowing ⇒ the reverse; hybrid in between), so
//! every path must be measurable. This crate is the std-only substrate the
//! experiments report against:
//!
//! * [`Counter`] / [`Histogram`] — atomic counters and fixed power-of-two
//!   bucket histograms behind a named [`Registry`];
//! * [`PhaseTimer`] — span-like guards measuring 2PC phases, log forces,
//!   recovery passes, and housekeeping runs against the simulated
//!   [`argus_sim::SimClock`];
//! * [`Journal`] / [`Event`] — a bounded ring buffer of typed events (entry
//!   written, outcome chained, chain hop followed, data entry read during
//!   recovery, snapshot taken, compaction pass, crash fired, mirror repair);
//! * [`Report`] — text (markdown tables) and JSON exporters over one
//!   registry snapshot;
//! * [`bench`] — a zero-dependency benchmark harness (warmup, N iterations,
//!   min/median/p95 over the sim clock) replacing `criterion`.
//!
//! ## Global or injected
//!
//! Instrumented code records into [`current()`]: the registry installed on
//! the calling thread via [`Registry::enter`], falling back to the
//! process-wide [`global()`] registry. Tests and experiments that want an
//! isolated view enter their own registry; everything else just works.
//!
//! ```
//! use argus_obs::{current, Registry};
//!
//! let reg = Registry::new();
//! let _scope = reg.enter();
//! current().inc("core.commits");
//! println!("{}", reg.report().to_text());
//! ```

pub mod bench;
mod counter;
mod hist;
mod journal;
mod registry;
mod report;
mod table;

pub use counter::Counter;
pub use hist::{HistSnapshot, Histogram};
pub use journal::{Event, EventRecord, Journal};
pub use registry::{current, global, PhaseTimer, Registry, ScopedRegistry};
pub use report::Report;
pub use table::Table;
