//! A minimal markdown table renderer, in the same style as the experiment
//! tables of `argus-bench` (`crates/bench/src/table.rs`).

use std::fmt;

/// A titled markdown table with column alignment.
///
/// # Examples
///
/// ```
/// use argus_obs::Table;
///
/// let mut t = Table::new("counters");
/// t.header(["counter", "value"]);
/// t.row(["slog.appends", "12"]);
/// let text = t.to_string();
/// assert!(text.contains("| slog.appends |"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the header cells.
    pub fn header<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cells.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .chain(std::iter::once(&self.header))
            .map(|r| r.len())
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "### {}", self.title)?;
        writeln!(f)?;
        let render = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                write!(f, " {cell:w$} |", w = w)?;
            }
            writeln!(f)
        };
        render(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo");
        t.header(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let s = t.to_string();
        assert!(s.starts_with("### demo\n"));
        assert!(s.contains("| name   | value |"));
        assert!(s.contains("| longer | 22    |"));
        assert!(s.contains("|--------|"));
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new("ragged");
        t.header(["a"]);
        t.row(["x", "extra"]);
        let s = t.to_string();
        assert!(s.contains("extra"));
    }
}
