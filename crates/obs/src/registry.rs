//! The metric registry: named counters, histograms, phase timers, and the
//! event journal, resolvable globally or per-scope.

use crate::counter::Counter;
use crate::hist::Histogram;
use crate::journal::{Event, Journal};
use crate::report::Report;
use argus_sim::SimClock;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default event-journal capacity.
const JOURNAL_CAP: usize = 4096;

#[derive(Debug)]
struct Inner {
    clock: Mutex<SimClock>,
    counters: Mutex<BTreeMap<String, Counter>>,
    hists: Mutex<BTreeMap<String, Histogram>>,
    journal: Journal,
}

/// A registry of named [`Counter`]s and [`Histogram`]s plus one [`Journal`].
///
/// Cloning is cheap (one `Arc`). Instrumented structs resolve handles by
/// name once, at construction, and bump plain atomics afterwards.
///
/// Resolution is **global-or-injected**: [`crate::current()`] returns the
/// registry installed on the calling thread by [`Registry::enter`], falling
/// back to the process-wide [`crate::global()`] registry. Each `#[test]`
/// runs on its own thread, so a test that wants isolated metrics does
///
/// ```
/// use argus_obs::Registry;
///
/// let reg = Registry::new();
/// let _scope = reg.enter();
/// // everything constructed here records into `reg`
/// argus_obs::current().counter("demo").inc();
/// assert_eq!(reg.counter("demo").get(), 1);
/// ```
///
/// Phase timers measure **simulated** time: the registry holds a [`SimClock`]
/// (replaceable via [`Registry::set_clock`], which `World::new` does), and a
/// [`PhaseTimer`] guard records `clock.now()` deltas into a histogram when
/// dropped.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry with its own (zeroed) clock.
    pub fn new() -> Self {
        Self::with_clock(SimClock::new())
    }

    /// Creates an empty registry reading simulated time from `clock`.
    pub fn with_clock(clock: SimClock) -> Self {
        Self {
            inner: Arc::new(Inner {
                clock: Mutex::new(clock),
                counters: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
                journal: Journal::new(JOURNAL_CAP),
            }),
        }
    }

    /// Replaces the clock that phase timers and journal stamps read.
    /// Existing [`PhaseTimer`] guards keep their original clock.
    pub fn set_clock(&self, clock: SimClock) {
        *self.inner.clock.lock().unwrap() = clock;
    }

    /// A handle to the registry's clock.
    pub fn clock(&self) -> SimClock {
        self.inner.clock.lock().unwrap().clone()
    }

    /// Resolves (creating on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock().unwrap();
        match counters.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::new();
                counters.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Resolves (creating on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut hists = self.inner.hists.lock().unwrap();
        match hists.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Histogram::new();
                hists.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Convenience: `counter(name).add(n)`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Convenience: `counter(name).inc()`.
    pub fn inc(&self, name: &str) {
        self.counter(name).inc();
    }

    /// Convenience: `histogram(name).record(v)`.
    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Starts a phase timer recording into the histogram `name` (by
    /// convention suffixed `_us`) when the guard drops.
    pub fn phase(&self, name: &str) -> PhaseTimer {
        let clock = self.clock();
        let start = clock.now();
        PhaseTimer {
            clock,
            hist: self.histogram(name),
            start,
            stopped: false,
        }
    }

    /// Appends `event` to the journal, stamped with the registry clock.
    pub fn event(&self, event: Event) {
        let at = self.clock().now();
        self.inner.journal.push(at, event);
    }

    /// A handle to the event journal.
    pub fn journal(&self) -> Journal {
        self.inner.journal.clone()
    }

    /// Snapshots every counter, histogram, and the journal into a [`Report`].
    pub fn report(&self) -> Report {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let hists = self
            .inner
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        Report {
            counters,
            hists,
            events: self.inner.journal.snapshot(),
            dropped_events: self.inner.journal.dropped(),
        }
    }

    /// Resets every counter, histogram, and the journal (names persist, so
    /// already-cached handles stay live).
    pub fn reset(&self) {
        for c in self.inner.counters.lock().unwrap().values() {
            c.reset();
        }
        for h in self.inner.hists.lock().unwrap().values() {
            h.reset();
        }
        self.inner.journal.reset();
    }

    /// Installs this registry as the calling thread's current registry until
    /// the returned guard drops. Nests: the innermost scope wins.
    pub fn enter(&self) -> ScopedRegistry {
        CURRENT.with(|stack| stack.borrow_mut().push(self.clone()));
        ScopedRegistry { _priv: () }
    }
}

/// A span-like guard measuring one phase against the simulated clock.
///
/// Records `clock.now() - start` into its histogram when dropped (or
/// explicitly via [`PhaseTimer::stop`], which also returns the elapsed µs).
#[derive(Debug)]
pub struct PhaseTimer {
    clock: SimClock,
    hist: Histogram,
    start: u64,
    stopped: bool,
}

impl PhaseTimer {
    /// Stops the timer now, records the elapsed simulated µs, and returns it.
    pub fn stop(mut self) -> u64 {
        let elapsed = self.clock.now().saturating_sub(self.start);
        self.hist.record(elapsed);
        self.stopped = true;
        elapsed
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if !self.stopped {
            self.hist
                .record(self.clock.now().saturating_sub(self.start));
        }
    }
}

/// Guard returned by [`Registry::enter`]; uninstalls the scope on drop.
#[derive(Debug)]
pub struct ScopedRegistry {
    _priv: (),
}

impl Drop for ScopedRegistry {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Registry>> = const { RefCell::new(Vec::new()) };
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide default registry.
pub fn global() -> Registry {
    GLOBAL.get_or_init(Registry::new).clone()
}

/// The registry instrumented code should record into: the innermost registry
/// [`Registry::enter`]ed on this thread, else [`global()`].
pub fn current() -> Registry {
    CURRENT
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(global)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_counters_are_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("x").get(), 2);
        assert_eq!(reg.counter("y").get(), 0);
    }

    #[test]
    fn scoped_registry_overrides_global() {
        let reg = Registry::new();
        {
            let _scope = reg.enter();
            current().counter("scoped").inc();
            // Nested scope wins, then restores.
            let inner = Registry::new();
            {
                let _s2 = inner.enter();
                current().counter("scoped").inc();
            }
            current().counter("scoped").inc();
            assert_eq!(inner.counter("scoped").get(), 1);
        }
        assert_eq!(reg.counter("scoped").get(), 2);
        assert_eq!(global().counter("scoped").get(), 0);
    }

    #[test]
    fn phase_timer_records_sim_elapsed() {
        let clock = SimClock::new();
        let reg = Registry::with_clock(clock.clone());
        {
            let _t = reg.phase("demo_us");
            clock.advance(250);
        }
        let t2 = reg.phase("demo_us");
        clock.advance(50);
        assert_eq!(t2.stop(), 50);
        let s = reg.histogram("demo_us").snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 300);
        assert_eq!(s.max, 250);
    }

    #[test]
    fn set_clock_rebinds_timers_and_events() {
        let reg = Registry::new();
        let clock = SimClock::new();
        clock.advance(77);
        reg.set_clock(clock.clone());
        reg.event(Event::ChainHop { addr: 1 });
        assert_eq!(reg.journal().snapshot()[0].at_us, 77);
    }

    #[test]
    fn report_collects_everything() {
        let reg = Registry::new();
        reg.inc("c1");
        reg.observe("h1_us", 9);
        reg.event(Event::CrashFired { crash_count: 1 });
        let report = reg.report();
        assert_eq!(report.counters, vec![("c1".to_string(), 1)]);
        assert_eq!(report.hists.len(), 1);
        assert_eq!(report.events.len(), 1);
    }

    #[test]
    fn reset_keeps_cached_handles_live() {
        let reg = Registry::new();
        let c = reg.counter("keep");
        c.add(5);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(reg.counter("keep").get(), 1);
    }
}
