//! Text and JSON exporters for a registry snapshot.

use crate::hist::HistSnapshot;
use crate::journal::EventRecord;
use crate::table::Table;
use std::fmt::Write as _;

/// A point-in-time snapshot of one [`crate::Registry`]: every counter and
/// histogram plus the retained tail of the event journal.
#[derive(Debug, Clone)]
pub struct Report {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram name → snapshot, sorted by name.
    pub hists: Vec<(String, HistSnapshot)>,
    /// Retained journal events, oldest first.
    pub events: Vec<EventRecord>,
    /// Journal events evicted before this snapshot.
    pub dropped_events: u64,
}

impl Report {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty() && self.events.is_empty()
    }

    /// Renders markdown tables in the `argus-bench` table style: a counter
    /// table, a phase-timing table (count/min/p50/p95/max/total), and the
    /// tail of the event journal.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let mut t = Table::new("counters");
            t.header(["counter", "value"]);
            for (name, v) in &self.counters {
                t.row([name.clone(), v.to_string()]);
            }
            let _ = writeln!(out, "{t}");
        }
        if !self.hists.is_empty() {
            let mut t = Table::new("phase timings (simulated µs)");
            t.header(["phase", "count", "min", "p50", "p95", "max", "total"]);
            for (name, s) in &self.hists {
                t.row([
                    name.clone(),
                    s.count.to_string(),
                    s.min_or_zero().to_string(),
                    s.quantile(0.5).to_string(),
                    s.quantile(0.95).to_string(),
                    s.max.to_string(),
                    s.sum.to_string(),
                ]);
            }
            let _ = writeln!(out, "{t}");
        }
        if !self.events.is_empty() {
            let title = if self.dropped_events > 0 {
                format!(
                    "event journal (last {} of {})",
                    self.events.len(),
                    self.events.len() as u64 + self.dropped_events
                )
            } else {
                format!("event journal ({} events)", self.events.len())
            };
            let mut t = Table::new(title);
            t.header(["seq", "t (µs)", "event", "fields"]);
            for record in &self.events {
                let fields = record
                    .event
                    .fields()
                    .into_iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                t.row([
                    record.seq.to_string(),
                    record.at_us.to_string(),
                    record.event.name().to_string(),
                    fields,
                ]);
            }
            let _ = writeln!(out, "{t}");
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Like [`Report::to_text`], but summarizes the event journal as one
    /// line instead of a table — the per-run form the experiments binary
    /// prints, where thousands of journal rows would drown the tables.
    pub fn to_text_compact(&self) -> String {
        let mut out = String::new();
        let events = self.events.len() as u64;
        let mut trimmed = self.clone();
        trimmed.events.clear();
        trimmed.dropped_events = 0;
        if !(self.counters.is_empty() && self.hists.is_empty()) {
            out.push_str(&trimmed.to_text());
        }
        if events > 0 || self.dropped_events > 0 {
            let _ = writeln!(
                out,
                "journal: {} events retained, {} dropped\n",
                events, self.dropped_events
            );
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Renders the whole report as one JSON object (hand-built; the
    /// workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, s)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{}}}",
                json_string(name),
                s.count,
                s.sum,
                s.min_or_zero(),
                s.max,
                s.mean(),
                s.quantile(0.5),
                s.quantile(0.95),
            );
        }
        let _ = write!(
            out,
            "}},\"dropped_events\":{},\"events\":[",
            self.dropped_events
        );
        for (i, record) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"at_us\":{},\"name\":{}",
                record.seq,
                record.at_us,
                json_string(record.event.name())
            );
            for (k, v) in record.event.fields() {
                let _ = write!(out, ",{}:{}", json_string(k), json_string(&v));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Event;
    use crate::registry::Registry;

    fn sample() -> Report {
        let reg = Registry::new();
        reg.add("slog.appends", 12);
        reg.observe("slog.force_us", 40);
        reg.observe("slog.force_us", 80);
        reg.event(Event::ForceCompleted {
            entries: 2,
            stable_bytes: 128,
        });
        reg.report()
    }

    #[test]
    fn text_report_has_all_three_tables() {
        let text = sample().to_text();
        assert!(text.contains("### counters"));
        assert!(text.contains("| slog.appends | 12    |"), "{text}");
        assert!(text.contains("### phase timings"));
        assert!(text.contains("slog.force_us"));
        assert!(text.contains("### event journal (1 events)"));
        assert!(text.contains("force_completed"));
        assert!(text.contains("entries=2 stable_bytes=128"));
    }

    #[test]
    fn empty_report_says_so() {
        let r = Registry::new().report();
        assert!(r.is_empty());
        assert_eq!(r.to_text(), "(no metrics recorded)\n");
    }

    #[test]
    fn json_is_wellformed_and_complete() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"slog.appends\":12"));
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"sum\":120"));
        assert!(json.contains("\"name\":\"force_completed\""));
        assert!(json.contains("\"entries\":\"2\""));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn dropped_events_are_reported_in_the_title() {
        let reg = Registry::new();
        for i in 0..5000u64 {
            reg.event(Event::ChainHop { addr: i });
        }
        let r = reg.report();
        assert!(r.dropped_events > 0);
        assert!(r.to_text().contains("event journal (last 4096 of 5000)"));
    }
}
