//! A bounded, structured event journal.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One typed event, mirroring the milestones of the thesis's algorithms.
///
/// Variants carry only small scalar fields so pushing an event is cheap and
/// the ring buffer stays bounded in memory, not just in length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A log entry was appended to the volatile buffer (§3.2 `write`).
    EntryWritten {
        /// Entry kind, e.g. `"data"`, `"prepared"`.
        kind: &'static str,
        /// Payload bytes.
        bytes: u64,
    },
    /// An outcome entry was chained onto the backward outcome-entry chain
    /// (§4.2).
    OutcomeChained {
        /// Outcome kind, e.g. `"prepared"`, `"committed"`.
        kind: &'static str,
        /// Log address of the previous outcome entry, if any.
        prev: Option<u64>,
    },
    /// A force completed: buffered entries became stable (§3.2 `force`).
    ForceCompleted {
        /// Entries published by this force.
        entries: u64,
        /// Total stable bytes after the force.
        stable_bytes: u64,
    },
    /// Recovery followed one hop of the backward outcome-entry chain (§4.3).
    ChainHop {
        /// Log address of the outcome entry visited.
        addr: u64,
    },
    /// Recovery read a data entry's payload from the log (§4.3 step 3).
    RecoveryDataRead {
        /// Log address of the data entry.
        addr: u64,
    },
    /// One full recovery pass finished (§3.4 / §4.3).
    RecoveryPass {
        /// Log entries examined.
        entries_examined: u64,
        /// Data entries whose payloads were read.
        data_entries_read: u64,
        /// Backward outcome-chain hops followed.
        chain_hops: u64,
        /// Participant-table entries reconstructed.
        pt_size: u64,
        /// Object-table entries reconstructed.
        ot_size: u64,
        /// Coordinator-table entries reconstructed.
        ct_size: u64,
    },
    /// Housekeeping stage one took a snapshot of the stable state (§5.2).
    SnapshotTaken {
        /// Entries written to the new log.
        entries: u64,
        /// Bytes written to the new log.
        bytes: u64,
    },
    /// Housekeeping stage one compacted the old log (§5.1).
    CompactionPass {
        /// Stable entries on the old log when the pass started.
        entries_in: u64,
        /// Entries copied to the new log by stage one.
        entries_out: u64,
    },
    /// A housekeeping pass finished and the new log supplanted the old.
    HousekeepingDone {
        /// `"compaction"` or `"snapshot"`.
        mode: &'static str,
        /// Stable entries reclaimed by the switch.
        entries_reclaimed: u64,
    },
    /// An injected fault fired and crashed the node (`FaultPlan`).
    CrashFired {
        /// Total crashes fired by this plan so far.
        crash_count: u64,
    },
    /// A mirrored-disk read fell back to the good copy and repaired the bad
    /// one (Lampson–Sturgis §2.1).
    MirrorRepair {
        /// Page number repaired.
        page: u64,
    },
    /// The lock manager granted a lock to a waiter (or immediately).
    LockGranted {
        /// `"shared"` or `"exclusive"`.
        mode: &'static str,
        /// How long the action waited in the queue, microseconds.
        waited_us: u64,
    },
    /// An action parked behind an incompatible holder.
    LockBlocked {
        /// `"shared"` or `"exclusive"` — the mode being requested.
        mode: &'static str,
        /// Sequence number of the holding action, when one is known.
        holder_seq: Option<u64>,
    },
    /// Deadlock detection chose this action as the victim (wait-for cycle).
    DeadlockVictim {
        /// Sequence number of the aborted action.
        victim_seq: u64,
        /// Length of the wait-for cycle broken.
        cycle_len: u64,
    },
    /// A 2PC coordinator sent its prepare round.
    PrepareSent {
        /// Participants addressed.
        participants: u64,
    },
    /// A 2PC participant sent its vote.
    VoteSent {
        /// `true` = prepare-ok, `false` = refused.
        ok: bool,
    },
    /// A 2PC coordinator sent its verdict to the participants.
    OutcomeSent {
        /// The verdict.
        committed: bool,
        /// Participants addressed.
        participants: u64,
    },
}

impl Event {
    /// Short machine-readable event name.
    pub fn name(&self) -> &'static str {
        match self {
            Event::EntryWritten { .. } => "entry_written",
            Event::OutcomeChained { .. } => "outcome_chained",
            Event::ForceCompleted { .. } => "force_completed",
            Event::ChainHop { .. } => "chain_hop",
            Event::RecoveryDataRead { .. } => "recovery_data_read",
            Event::RecoveryPass { .. } => "recovery_pass",
            Event::SnapshotTaken { .. } => "snapshot_taken",
            Event::CompactionPass { .. } => "compaction_pass",
            Event::HousekeepingDone { .. } => "housekeeping_done",
            Event::CrashFired { .. } => "crash_fired",
            Event::MirrorRepair { .. } => "mirror_repair",
            Event::LockGranted { .. } => "lock_granted",
            Event::LockBlocked { .. } => "lock_blocked",
            Event::DeadlockVictim { .. } => "deadlock_victim",
            Event::PrepareSent { .. } => "prepare_sent",
            Event::VoteSent { .. } => "vote_sent",
            Event::OutcomeSent { .. } => "outcome_sent",
        }
    }

    /// Field names and rendered values, for the text and JSON exporters.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        match self {
            Event::EntryWritten { kind, bytes } => {
                vec![("kind", (*kind).to_string()), ("bytes", bytes.to_string())]
            }
            Event::OutcomeChained { kind, prev } => vec![
                ("kind", (*kind).to_string()),
                (
                    "prev",
                    prev.map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
                ),
            ],
            Event::ForceCompleted {
                entries,
                stable_bytes,
            } => vec![
                ("entries", entries.to_string()),
                ("stable_bytes", stable_bytes.to_string()),
            ],
            Event::ChainHop { addr } => vec![("addr", addr.to_string())],
            Event::RecoveryDataRead { addr } => vec![("addr", addr.to_string())],
            Event::RecoveryPass {
                entries_examined,
                data_entries_read,
                chain_hops,
                pt_size,
                ot_size,
                ct_size,
            } => vec![
                ("entries_examined", entries_examined.to_string()),
                ("data_entries_read", data_entries_read.to_string()),
                ("chain_hops", chain_hops.to_string()),
                ("pt_size", pt_size.to_string()),
                ("ot_size", ot_size.to_string()),
                ("ct_size", ct_size.to_string()),
            ],
            Event::SnapshotTaken { entries, bytes } => vec![
                ("entries", entries.to_string()),
                ("bytes", bytes.to_string()),
            ],
            Event::CompactionPass {
                entries_in,
                entries_out,
            } => vec![
                ("entries_in", entries_in.to_string()),
                ("entries_out", entries_out.to_string()),
            ],
            Event::HousekeepingDone {
                mode,
                entries_reclaimed,
            } => vec![
                ("mode", (*mode).to_string()),
                ("entries_reclaimed", entries_reclaimed.to_string()),
            ],
            Event::CrashFired { crash_count } => {
                vec![("crash_count", crash_count.to_string())]
            }
            Event::MirrorRepair { page } => vec![("page", page.to_string())],
            Event::LockGranted { mode, waited_us } => vec![
                ("mode", (*mode).to_string()),
                ("waited_us", waited_us.to_string()),
            ],
            Event::LockBlocked { mode, holder_seq } => vec![
                ("mode", (*mode).to_string()),
                (
                    "holder_seq",
                    holder_seq
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| "-".into()),
                ),
            ],
            Event::DeadlockVictim {
                victim_seq,
                cycle_len,
            } => vec![
                ("victim_seq", victim_seq.to_string()),
                ("cycle_len", cycle_len.to_string()),
            ],
            Event::PrepareSent { participants } => {
                vec![("participants", participants.to_string())]
            }
            Event::VoteSent { ok } => vec![("ok", ok.to_string())],
            Event::OutcomeSent {
                committed,
                participants,
            } => vec![
                ("committed", committed.to_string()),
                ("participants", participants.to_string()),
            ],
        }
    }
}

/// An [`Event`] stamped with the simulated time and a monotonic sequence
/// number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Simulated microseconds when the event was recorded.
    pub at_us: u64,
    /// Journal-wide monotonic sequence number (counts evicted events too).
    pub seq: u64,
    /// The event.
    pub event: Event,
}

#[derive(Debug)]
struct JournalInner {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<EventRecord>,
}

/// A bounded ring buffer of [`EventRecord`]s.
///
/// When full, pushing evicts the oldest record; `dropped()` reports how many
/// were lost, so a report can say "last N of M events" honestly.
///
/// # Examples
///
/// ```
/// use argus_obs::{Event, Journal};
///
/// let j = Journal::new(2);
/// j.push(10, Event::ChainHop { addr: 512 });
/// j.push(20, Event::ChainHop { addr: 1024 });
/// j.push(30, Event::ChainHop { addr: 2048 });
/// let events = j.snapshot();
/// assert_eq!(events.len(), 2);
/// assert_eq!(events[0].at_us, 20); // the oldest was evicted
/// assert_eq!(j.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Journal {
    inner: Arc<Mutex<JournalInner>>,
}

impl Journal {
    /// Creates a journal holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(JournalInner {
                cap: cap.max(1),
                next_seq: 0,
                dropped: 0,
                events: VecDeque::new(),
            })),
        }
    }

    /// Appends an event stamped `at_us`, evicting the oldest when full.
    pub fn push(&self, at_us: u64, event: Event) {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == inner.cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(EventRecord { at_us, seq, event });
    }

    /// Copies out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Total events ever pushed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Clears the journal and its counters.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.events.clear();
        inner.next_seq = 0;
        inner.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_in_order_under_capacity() {
        let j = Journal::new(8);
        j.push(1, Event::ChainHop { addr: 1 });
        j.push(2, Event::ChainHop { addr: 2 });
        let events = j.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.total(), 2);
    }

    #[test]
    fn eviction_keeps_the_newest() {
        let j = Journal::new(3);
        for i in 0..10u64 {
            j.push(i, Event::ChainHop { addr: i });
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.at_us).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(j.dropped(), 7);
        assert_eq!(j.total(), 10);
    }

    #[test]
    fn every_event_renders_name_and_fields() {
        let all = [
            Event::EntryWritten {
                kind: "data",
                bytes: 8,
            },
            Event::OutcomeChained {
                kind: "prepared",
                prev: Some(512),
            },
            Event::OutcomeChained {
                kind: "committed",
                prev: None,
            },
            Event::ForceCompleted {
                entries: 1,
                stable_bytes: 64,
            },
            Event::ChainHop { addr: 512 },
            Event::RecoveryDataRead { addr: 1024 },
            Event::RecoveryPass {
                entries_examined: 4,
                data_entries_read: 3,
                chain_hops: 4,
                pt_size: 2,
                ot_size: 3,
                ct_size: 0,
            },
            Event::SnapshotTaken {
                entries: 5,
                bytes: 400,
            },
            Event::CompactionPass {
                entries_in: 9,
                entries_out: 4,
            },
            Event::HousekeepingDone {
                mode: "snapshot",
                entries_reclaimed: 5,
            },
            Event::CrashFired { crash_count: 1 },
            Event::MirrorRepair { page: 7 },
            Event::LockGranted {
                mode: "shared",
                waited_us: 120,
            },
            Event::LockBlocked {
                mode: "exclusive",
                holder_seq: Some(3),
            },
            Event::LockBlocked {
                mode: "exclusive",
                holder_seq: None,
            },
            Event::DeadlockVictim {
                victim_seq: 4,
                cycle_len: 2,
            },
            Event::PrepareSent { participants: 2 },
            Event::VoteSent { ok: true },
            Event::VoteSent { ok: false },
            Event::OutcomeSent {
                committed: true,
                participants: 2,
            },
        ];
        for e in all {
            assert!(!e.name().is_empty());
            assert!(!e.fields().is_empty(), "{} has no fields", e.name());
        }
    }

    #[test]
    fn reset_restarts_sequence_numbers() {
        let j = Journal::new(2);
        j.push(0, Event::ChainHop { addr: 0 });
        j.reset();
        assert!(j.is_empty());
        j.push(5, Event::ChainHop { addr: 5 });
        assert_eq!(j.snapshot()[0].seq, 0);
    }
}
