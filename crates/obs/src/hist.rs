//! Fixed-bucket histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one for zero plus one per power-of-two magnitude.
const BUCKETS: usize = 65;

/// Upper bound (inclusive) of bucket `i`: bucket 0 holds exactly zero,
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i - 1]`.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

#[derive(Debug)]
struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A lock-free histogram over `u64` values with fixed power-of-two buckets.
///
/// Quantiles are therefore approximate: a reported quantile is the upper
/// bound of the bucket the rank falls in, clamped to the observed maximum.
/// That is plenty for the microsecond-scale phase timings this workspace
/// records, and it keeps `record` to a handful of relaxed atomic ops.
///
/// Cloning yields a handle to the same histogram, like [`crate::Counter`].
///
/// # Examples
///
/// ```
/// use argus_obs::Histogram;
///
/// let h = Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 4);
/// assert_eq!(s.min, 1);
/// assert_eq!(s.max, 100);
/// assert!(s.quantile(0.5) >= 2);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(HistInner {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
                buckets: [const { AtomicU64::new(0) }; BUCKETS],
            }),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let inner = &self.inner;
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
        inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram contents.
    pub fn snapshot(&self) -> HistSnapshot {
        let inner = &self.inner;
        HistSnapshot {
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            min: inner.min.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
            buckets: inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Resets all buckets and summary fields.
    pub fn reset(&self) {
        let inner = &self.inner;
        inner.count.store(0, Ordering::Relaxed);
        inner.sum.store(0, Ordering::Relaxed);
        inner.min.store(u64::MAX, Ordering::Relaxed);
        inner.max.store(0, Ordering::Relaxed);
        for b in &inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable copy of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Per-bucket counts; bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`.
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Arithmetic mean, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Smallest observation, zero when empty (for display).
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// the rank falls in, clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Quantile `q` with linear interpolation inside the power-of-two
    /// bucket the rank falls in, assuming observations are uniformly
    /// spread over the bucket's effective range (the bucket bounds
    /// tightened to the observed min/max). Much tighter than
    /// [`HistSnapshot::quantile`], which reports the raw bucket upper
    /// bound: for 1..=100 the interpolated p50 lands near 50, not 63.
    pub fn quantile_interpolated(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Effective bounds of this bucket: `[2^(i-1), 2^i - 1]`
                // clipped to the observed range.
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) }.max(self.min);
                let hi = bucket_bound(i).min(self.max);
                if hi <= lo {
                    return lo.clamp(self.min, self.max);
                }
                // Position of the rank within the bucket, in (0, 1].
                let pos = (rank - seen) as f64 / *c as f64;
                let span = (hi - lo) as f64;
                let v = lo + (span * pos).round() as u64;
                return v.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Interpolated median.
    pub fn p50(&self) -> u64 {
        self.quantile_interpolated(0.50)
    }

    /// Interpolated 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile_interpolated(0.95)
    }

    /// Interpolated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile_interpolated(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn summary_fields_track_observations() {
        let h = Histogram::new();
        for v in [5u64, 10, 15, 0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 30);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 15);
        assert_eq!(s.mean(), 7);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // p50 of 1..=100 lands in the bucket holding 50 → bound 63.
        let p50 = s.quantile(0.5);
        assert!((32..=63).contains(&p50), "p50 = {p50}");
        let p95 = s.quantile(0.95);
        assert!((64..=100).contains(&p95), "p95 = {p95}");
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.quantile(0.0), 1);
    }

    #[test]
    fn interpolated_quantiles_are_much_tighter() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // The raw bucket bound reports 63 for p50; interpolation within
        // bucket [32, 63] (32 observations, 31 below) lands near the true
        // median 50.
        let p50 = s.p50();
        assert!((45..=55).contains(&p50), "p50 = {p50}");
        // True p95 = 95; bucket [64, 127] clips to [64, 100].
        let p95 = s.p95();
        assert!((90..=100).contains(&p95), "p95 = {p95}");
        let p99 = s.p99();
        assert!((95..=100).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile_interpolated(1.0), 100);
        assert!(s.quantile_interpolated(0.0) >= 1);
    }

    #[test]
    fn interpolation_degenerate_cases() {
        // Empty.
        assert_eq!(Histogram::new().snapshot().p50(), 0);
        // Single value: every quantile is that value.
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        assert_eq!(s.p50(), 42);
        assert_eq!(s.p99(), 42);
        // All zeros: bucket 0 has lo == hi == 0.
        let z = Histogram::new();
        for _ in 0..10 {
            z.record(0);
        }
        assert_eq!(z.snapshot().p95(), 0);
        // Interpolated quantiles are monotone in q.
        let m = Histogram::new();
        for v in [1u64, 3, 7, 20, 500, 10_000] {
            m.record(v);
        }
        let s = m.snapshot();
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
        assert!(s.p99() <= s.max);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min_or_zero(), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert!(s.buckets.iter().all(|&b| b == 0));
    }
}
