//! World-level errors.

use argus_core::RsError;
use argus_objects::{ActionId, GuardianId, HeapError};
use std::fmt;

/// Errors surfaced by the guardian substrate.
#[derive(Debug)]
pub enum WorldError {
    /// Propagated recovery-system error.
    Rs(RsError),
    /// Propagated volatile-memory error.
    Heap(HeapError),
    /// The guardian is down; restart it first.
    Down(GuardianId),
    /// No such guardian.
    NoGuardian(GuardianId),
    /// The action is not known at this guardian.
    UnknownAction(ActionId),
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::Rs(e) => write!(f, "recovery system: {e}"),
            WorldError::Heap(e) => write!(f, "heap: {e}"),
            WorldError::Down(g) => write!(f, "guardian {g} is down"),
            WorldError::NoGuardian(g) => write!(f, "no guardian {g}"),
            WorldError::UnknownAction(a) => write!(f, "unknown action {a}"),
        }
    }
}

impl std::error::Error for WorldError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorldError::Rs(e) => Some(e),
            WorldError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RsError> for WorldError {
    fn from(e: RsError) -> Self {
        WorldError::Rs(e)
    }
}

impl From<HeapError> for WorldError {
    fn from(e: HeapError) -> Self {
        WorldError::Heap(e)
    }
}

impl WorldError {
    /// Whether the underlying cause is the simulated node crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, WorldError::Rs(e) if e.is_crash())
    }
}

/// Result alias for world operations.
pub type WorldResult<T> = Result<T, WorldError>;
