//! The Argus guardian substrate (§2.1, §2.3).
//!
//! Guardians are the logical nodes of the distributed system: each
//! encapsulates a volatile [`argus_objects::Heap`], a recovery system over
//! its own stable log, and its halves of any in-flight two-phase commits.
//! [`World`] simulates a network of guardians deterministically — message
//! delivery, node crashes (volatile state vanishes, stable media survive),
//! restarts (the recovery system rebuilds the stable state, in-doubt
//! participants query their coordinators, committing coordinators restart
//! phase two).
//!
//! Simplifications relative to full Argus, recorded in DESIGN.md: handler
//! calls are modeled by the caller manipulating objects at several guardians
//! under one action id; subactions and read-only participants are elided
//! (reads acquire locks but a guardian joins two-phase commit only if the
//! action modified something there).

mod error;
mod guardian;
mod network;
#[cfg(test)]
mod tests;
mod world;

pub use error::{WorldError, WorldResult};
pub use guardian::{Guardian, RsKind};
pub use network::{NetFaults, SimNetwork};
pub use world::{MediaKind, Outcome, World, WorldConfig};

// The concurrency-control vocabulary of the `submit_*`/`cc_*` World API, so
// drivers need not depend on `argus-cc` directly.
pub use argus_cc::{BackoffConfig, CcConfig, CcFate, CcOutcome, CcPolicy, DeadlockReport};
