//! The simulated network.

use argus_objects::GuardianId;
use argus_sim::DetRng;
use argus_twopc::Envelope;
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Deterministic message-fault injection: drops, duplication, reordering.
///
/// The two-phase-commit machines must tolerate a network that loses,
/// duplicates, and reorders messages (§2.2 assumes only that "eventually any
/// two nodes can communicate"). Probabilities are driven by a seeded RNG, so
/// a faulty run is exactly reproducible. Drops are one-shot message loss —
/// the protocol's retry and query paths regenerate the traffic, which is
/// what keeps delivery eventual.
#[derive(Debug)]
pub struct NetFaults {
    rng: DetRng,
    /// Probability a delivered message is also re-enqueued (duplicate).
    pub duplicate_prob: f64,
    /// Probability a message is deferred behind the rest of the queue
    /// (reordering); each message is deferred at most twice so delivery
    /// remains eventual.
    pub defer_prob: f64,
    /// Probability a message is lost at delivery time.
    pub drop_prob: f64,
}

impl NetFaults {
    /// Creates an injector with the given seed and probabilities (no drops).
    pub fn new(seed: u64, duplicate_prob: f64, defer_prob: f64) -> Self {
        Self {
            rng: DetRng::new(seed),
            duplicate_prob,
            defer_prob,
            drop_prob: 0.0,
        }
    }

    /// Adds one-shot message loss with the given probability.
    pub fn with_drop(mut self, drop_prob: f64) -> Self {
        self.drop_prob = drop_prob;
        self
    }
}

/// Cached metric handles mirroring the network's internal tallies into the
/// ambient observability registry.
#[derive(Debug, Clone)]
struct NetObs {
    sent: argus_obs::Counter,
    delivered: argus_obs::Counter,
    dropped: argus_obs::Counter,
    partitioned: argus_obs::Counter,
}

impl Default for NetObs {
    fn default() -> Self {
        let reg = argus_obs::current();
        Self {
            sent: reg.counter("net.sent"),
            delivered: reg.counter("net.delivered"),
            dropped: reg.counter("net.dropped"),
            partitioned: reg.counter("net.partitioned"),
        }
    }
}

/// A deterministic store-and-forward network.
///
/// Messages are delivered in FIFO order, one at a time, by the world's event
/// loop — unless a [`NetFaults`] injector is installed, in which case
/// messages may be dropped, duplicated, or deferred. Messages addressed to a
/// crashed guardian are dropped at delivery time — the protocol's
/// retry/query paths are what recover from the loss, exactly as over a real
/// network.
///
/// Two fault shapes *hold* mail instead of losing it, preserving the
/// eventual-delivery liveness assumption of §2.2:
///
/// * **Partitions** ([`SimNetwork::partition`]): messages between the two
///   guardians are parked until the pair is healed.
/// * **Pauses** ([`SimNetwork::pause`]): a paused guardian receives nothing
///   until resumed — it sleeps while the rest of the world's clock runs.
///
/// A message the fault injector *deferred* is also held, not dropped, if its
/// recipient crashes before it finally pops: it is still in the network, and
/// arrives after the restart like any delayed packet.
#[derive(Debug, Default)]
pub struct SimNetwork {
    /// Pending messages: the envelope, how often it has been deferred, and
    /// the trace flow id opened at send time (closed at delivery; a dropped
    /// message leaves its flow unresolved, which is what the trace shows).
    queue: VecDeque<(Envelope, u8, Option<u64>)>,
    /// Messages parked by a partition, a paused recipient, or a crash that
    /// caught a deferred message in flight. Re-enqueued when unblocked.
    held: VecDeque<(Envelope, u8, Option<u64>)>,
    down: HashSet<GuardianId>,
    partitions: BTreeSet<(GuardianId, GuardianId)>,
    paused: BTreeSet<GuardianId>,
    faults: Option<NetFaults>,
    delivered: u64,
    dropped: u64,
    fault_dropped: u64,
    duplicated: u64,
    deferred: u64,
    partitioned: u64,
    obs: NetObs,
}

fn pair(a: GuardianId, b: GuardianId) -> (GuardianId, GuardianId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl SimNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or removes) a fault injector.
    pub fn set_faults(&mut self, faults: Option<NetFaults>) {
        self.faults = faults;
    }

    /// Enqueues a message, opening the trace flow edge that ties the send
    /// on the sender's lane to the delivery on the receiver's.
    pub fn send(&mut self, envelope: Envelope) {
        self.obs.sent.inc();
        let aid = envelope.msg.aid();
        let flow = argus_trace::current().flow_start(
            "net",
            envelope.msg.kind(),
            envelope.from.0,
            Some(argus_trace::Key::new(aid.coordinator.0, aid.seq)),
        );
        self.queue.push_back((envelope, 0, Some(flow)));
    }

    /// Pops the next deliverable message: parks mail blocked by partitions
    /// or pauses, silently drops fresh mail addressed to down guardians,
    /// and applies any installed fault injection.
    pub fn deliver_next(&mut self) -> Option<Envelope> {
        while let Some((envelope, deferrals, flow)) = self.queue.pop_front() {
            if self.is_partitioned(envelope.from, envelope.to) {
                self.partitioned += 1;
                self.obs.partitioned.inc();
                self.held.push_back((envelope, deferrals, flow));
                continue;
            }
            if self.paused.contains(&envelope.to) {
                self.held.push_back((envelope, deferrals, flow));
                continue;
            }
            if self.down.contains(&envelope.to) {
                if deferrals > 0 {
                    // A deferred message is still in the network: it must
                    // survive the recipient's crash and arrive after the
                    // restart, not vanish with the volatile state.
                    self.held.push_back((envelope, deferrals, flow));
                    continue;
                }
                self.dropped += 1;
                self.obs.dropped.inc();
                continue;
            }
            if let Some(faults) = &mut self.faults {
                // One-shot loss: the retry/query paths regenerate traffic,
                // so delivery stays eventual.
                if faults.rng.gen_bool(faults.drop_prob) {
                    self.dropped += 1;
                    self.fault_dropped += 1;
                    self.obs.dropped.inc();
                    continue;
                }
                // Defer (reorder) with bounded retries so delivery stays
                // eventual.
                if deferrals < 2 && !self.queue.is_empty() && faults.rng.gen_bool(faults.defer_prob)
                {
                    self.deferred += 1;
                    self.queue.push_back((envelope, deferrals + 1, flow));
                    continue;
                }
                if faults.rng.gen_bool(faults.duplicate_prob) {
                    self.duplicated += 1;
                    // The duplicate shares the original's flow id: both
                    // deliveries trace back to the one send.
                    self.queue.push_back((envelope.clone(), 2, flow));
                }
            }
            self.delivered += 1;
            self.obs.delivered.inc();
            if let Some(flow) = flow {
                let aid = envelope.msg.aid();
                argus_trace::current().flow_end(
                    "net",
                    envelope.msg.kind(),
                    envelope.to.0,
                    Some(argus_trace::Key::new(aid.coordinator.0, aid.seq)),
                    flow,
                );
            }
            return Some(envelope);
        }
        None
    }

    /// Whether a held or queued message is currently blocked from delivery.
    fn blocked(&self, envelope: &Envelope, deferrals: u8) -> bool {
        self.is_partitioned(envelope.from, envelope.to)
            || self.paused.contains(&envelope.to)
            || (deferrals > 0 && self.down.contains(&envelope.to))
    }

    /// Moves every no-longer-blocked held message back onto the queue (at
    /// the back: unblocking reorders, which the protocol must tolerate).
    fn release_held(&mut self) {
        let held = std::mem::take(&mut self.held);
        for (envelope, deferrals, flow) in held {
            if self.blocked(&envelope, deferrals) {
                self.held.push_back((envelope, deferrals, flow));
            } else {
                self.queue.push_back((envelope, deferrals, flow));
            }
        }
    }

    /// Partitions the pair: mail between `a` and `b` (both directions) is
    /// held until [`SimNetwork::heal`].
    pub fn partition(&mut self, a: GuardianId, b: GuardianId) {
        self.partitions.insert(pair(a, b));
    }

    /// Heals the pair's partition; held mail between them flows again.
    pub fn heal(&mut self, a: GuardianId, b: GuardianId) {
        self.partitions.remove(&pair(a, b));
        self.release_held();
    }

    /// Heals every active partition.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
        self.release_held();
    }

    /// Whether the pair is currently partitioned.
    pub fn is_partitioned(&self, a: GuardianId, b: GuardianId) -> bool {
        self.partitions.contains(&pair(a, b))
    }

    /// Active partitioned pairs.
    pub fn active_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Pauses a guardian: its incoming mail is held (not lost) until
    /// [`SimNetwork::resume`] — the node sleeps while world time advances.
    pub fn pause(&mut self, g: GuardianId) {
        self.paused.insert(g);
    }

    /// Resumes a paused guardian; its held mail flows again.
    pub fn resume(&mut self, g: GuardianId) {
        self.paused.remove(&g);
        self.release_held();
    }

    /// Whether the guardian is paused.
    pub fn is_paused(&self, g: GuardianId) -> bool {
        self.paused.contains(&g)
    }

    /// Marks a guardian down (its fresh messages will be dropped).
    pub fn mark_down(&mut self, g: GuardianId) {
        self.down.insert(g);
    }

    /// Marks a guardian up again; mail deferred past its crash flows again.
    pub fn mark_up(&mut self, g: GuardianId) {
        self.down.remove(&g);
        self.release_held();
    }

    /// Whether any messages are pending, held mail included.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.held.is_empty()
    }

    /// Pending message count, held mail included.
    pub fn len(&self) -> usize {
        self.queue.len() + self.held.len()
    }

    /// Messages currently parked by partitions, pauses, or crashes.
    pub fn held_len(&self) -> usize {
        self.held.len()
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total messages dropped (addressed to down guardians, or lost by the
    /// fault injector).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages lost by the fault injector's `drop_prob` alone.
    pub fn fault_dropped(&self) -> u64 {
        self.fault_dropped
    }

    /// Total duplicate deliveries injected.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Total deferrals (reorderings) injected.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }

    /// Total delivery attempts parked by an active partition.
    pub fn partitioned(&self) -> u64 {
        self.partitioned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_objects::ActionId;
    use argus_twopc::Msg;

    fn env(from: u32, to: u32) -> Envelope {
        Envelope {
            from: GuardianId(from),
            to: GuardianId(to),
            msg: Msg::Prepare {
                aid: ActionId::new(GuardianId(from), 1),
            },
        }
    }

    #[test]
    fn fifo_delivery() {
        let mut net = SimNetwork::new();
        net.send(env(0, 1));
        net.send(env(1, 0));
        assert_eq!(net.deliver_next().unwrap().to, GuardianId(1));
        assert_eq!(net.deliver_next().unwrap().to, GuardianId(0));
        assert!(net.deliver_next().is_none());
        assert_eq!(net.delivered(), 2);
    }

    #[test]
    fn down_guardians_drop_mail() {
        let mut net = SimNetwork::new();
        net.mark_down(GuardianId(1));
        net.send(env(0, 1));
        net.send(env(0, 2));
        let delivered = net.deliver_next().unwrap();
        assert_eq!(delivered.to, GuardianId(2));
        assert_eq!(net.dropped(), 1);
        net.mark_up(GuardianId(1));
        net.send(env(0, 1));
        assert_eq!(net.deliver_next().unwrap().to, GuardianId(1));
    }

    #[test]
    fn partitioned_mail_is_held_then_heals() {
        let mut net = SimNetwork::new();
        net.partition(GuardianId(0), GuardianId(1));
        net.send(env(0, 1));
        net.send(env(1, 0)); // both directions blocked
        net.send(env(0, 2)); // unaffected pair
        assert_eq!(net.deliver_next().unwrap().to, GuardianId(2));
        assert!(net.deliver_next().is_none());
        assert_eq!(net.held_len(), 2);
        assert_eq!(net.partitioned(), 2);
        assert_eq!(net.dropped(), 0, "partitions hold, never lose");
        net.heal(GuardianId(0), GuardianId(1));
        assert_eq!(net.deliver_next().unwrap().to, GuardianId(1));
        assert_eq!(net.deliver_next().unwrap().to, GuardianId(0));
        assert!(net.is_empty());
    }

    #[test]
    fn paused_guardian_mail_is_held_until_resume() {
        let mut net = SimNetwork::new();
        net.pause(GuardianId(1));
        net.send(env(0, 1));
        assert!(net.deliver_next().is_none());
        assert_eq!(net.held_len(), 1);
        net.resume(GuardianId(1));
        assert_eq!(net.deliver_next().unwrap().to, GuardianId(1));
    }

    #[test]
    fn drop_prob_loses_mail() {
        let mut net = SimNetwork::new();
        net.set_faults(Some(NetFaults::new(7, 0.0, 0.0).with_drop(1.0)));
        net.send(env(0, 1));
        assert!(net.deliver_next().is_none());
        assert_eq!(net.fault_dropped(), 1);
        assert_eq!(net.dropped(), 1);
    }

    #[test]
    fn deferred_mail_survives_a_crash_of_its_recipient() {
        let mut net = SimNetwork::new();
        // Always defer: two messages chase each other to the deferral cap,
        // then the first (now with deferrals > 0) delivers.
        net.set_faults(Some(NetFaults::new(3, 0.0, 1.0)));
        net.send(env(0, 1));
        net.send(env(0, 2));
        assert_eq!(net.deliver_next().unwrap().to, GuardianId(1));
        // The remaining message for G2 sits in the queue with deferrals > 0:
        // conceptually delayed in the network. G2 now crashes.
        net.mark_down(GuardianId(2));
        assert!(net.deliver_next().is_none());
        assert_eq!(net.dropped(), 0, "a deferred message must not be lost");
        assert_eq!(net.held_len(), 1);
        // After the restart the delayed message arrives.
        net.mark_up(GuardianId(2));
        assert_eq!(net.deliver_next().unwrap().to, GuardianId(2));
    }
}
