//! The simulated network.

use argus_objects::GuardianId;
use argus_sim::DetRng;
use argus_twopc::Envelope;
use std::collections::{HashSet, VecDeque};

/// Deterministic message-fault injection: duplication and reordering.
///
/// The two-phase-commit machines must tolerate a network that duplicates
/// and reorders messages (§2.2 assumes only that "eventually any two nodes
/// can communicate"). Probabilities are driven by a seeded RNG, so a faulty
/// run is exactly reproducible.
#[derive(Debug)]
pub struct NetFaults {
    rng: DetRng,
    /// Probability a delivered message is also re-enqueued (duplicate).
    pub duplicate_prob: f64,
    /// Probability a message is deferred behind the rest of the queue
    /// (reordering); each message is deferred at most twice so delivery
    /// remains eventual.
    pub defer_prob: f64,
}

impl NetFaults {
    /// Creates an injector with the given seed and probabilities.
    pub fn new(seed: u64, duplicate_prob: f64, defer_prob: f64) -> Self {
        Self {
            rng: DetRng::new(seed),
            duplicate_prob,
            defer_prob,
        }
    }
}

/// Cached metric handles mirroring the network's internal tallies into the
/// ambient observability registry.
#[derive(Debug, Clone)]
struct NetObs {
    sent: argus_obs::Counter,
    delivered: argus_obs::Counter,
    dropped: argus_obs::Counter,
}

impl Default for NetObs {
    fn default() -> Self {
        let reg = argus_obs::current();
        Self {
            sent: reg.counter("net.sent"),
            delivered: reg.counter("net.delivered"),
            dropped: reg.counter("net.dropped"),
        }
    }
}

/// A deterministic store-and-forward network.
///
/// Messages are delivered in FIFO order, one at a time, by the world's event
/// loop — unless a [`NetFaults`] injector is installed, in which case
/// messages may be duplicated or deferred. Messages addressed to a crashed
/// guardian are dropped at delivery time — the protocol's retry/query paths
/// are what recover from the loss, exactly as over a real network.
#[derive(Debug, Default)]
pub struct SimNetwork {
    /// Pending messages: the envelope, how often it has been deferred, and
    /// the trace flow id opened at send time (closed at delivery; a dropped
    /// message leaves its flow unresolved, which is what the trace shows).
    queue: VecDeque<(Envelope, u8, Option<u64>)>,
    down: HashSet<GuardianId>,
    faults: Option<NetFaults>,
    delivered: u64,
    dropped: u64,
    duplicated: u64,
    deferred: u64,
    obs: NetObs,
}

impl SimNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or removes) a fault injector.
    pub fn set_faults(&mut self, faults: Option<NetFaults>) {
        self.faults = faults;
    }

    /// Enqueues a message, opening the trace flow edge that ties the send
    /// on the sender's lane to the delivery on the receiver's.
    pub fn send(&mut self, envelope: Envelope) {
        self.obs.sent.inc();
        let aid = envelope.msg.aid();
        let flow = argus_trace::current().flow_start(
            "net",
            envelope.msg.kind(),
            envelope.from.0,
            Some(argus_trace::Key::new(aid.coordinator.0, aid.seq)),
        );
        self.queue.push_back((envelope, 0, Some(flow)));
    }

    /// Pops the next deliverable message, silently dropping any addressed to
    /// down guardians and applying any installed fault injection.
    pub fn deliver_next(&mut self) -> Option<Envelope> {
        while let Some((envelope, deferrals, flow)) = self.queue.pop_front() {
            if self.down.contains(&envelope.to) {
                self.dropped += 1;
                self.obs.dropped.inc();
                continue;
            }
            if let Some(faults) = &mut self.faults {
                // Defer (reorder) with bounded retries so delivery stays
                // eventual.
                if deferrals < 2 && !self.queue.is_empty() && faults.rng.gen_bool(faults.defer_prob)
                {
                    self.deferred += 1;
                    self.queue.push_back((envelope, deferrals + 1, flow));
                    continue;
                }
                if faults.rng.gen_bool(faults.duplicate_prob) {
                    self.duplicated += 1;
                    // The duplicate shares the original's flow id: both
                    // deliveries trace back to the one send.
                    self.queue.push_back((envelope.clone(), 2, flow));
                }
            }
            self.delivered += 1;
            self.obs.delivered.inc();
            if let Some(flow) = flow {
                let aid = envelope.msg.aid();
                argus_trace::current().flow_end(
                    "net",
                    envelope.msg.kind(),
                    envelope.to.0,
                    Some(argus_trace::Key::new(aid.coordinator.0, aid.seq)),
                    flow,
                );
            }
            return Some(envelope);
        }
        None
    }

    /// Marks a guardian down (its messages will be dropped).
    pub fn mark_down(&mut self, g: GuardianId) {
        self.down.insert(g);
    }

    /// Marks a guardian up again.
    pub fn mark_up(&mut self, g: GuardianId) {
        self.down.remove(&g);
    }

    /// Whether any messages are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pending message count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total messages dropped (addressed to down guardians).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total duplicate deliveries injected.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Total deferrals (reorderings) injected.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_objects::ActionId;
    use argus_twopc::Msg;

    fn env(from: u32, to: u32) -> Envelope {
        Envelope {
            from: GuardianId(from),
            to: GuardianId(to),
            msg: Msg::Prepare {
                aid: ActionId::new(GuardianId(from), 1),
            },
        }
    }

    #[test]
    fn fifo_delivery() {
        let mut net = SimNetwork::new();
        net.send(env(0, 1));
        net.send(env(1, 0));
        assert_eq!(net.deliver_next().unwrap().to, GuardianId(1));
        assert_eq!(net.deliver_next().unwrap().to, GuardianId(0));
        assert!(net.deliver_next().is_none());
        assert_eq!(net.delivered(), 2);
    }

    #[test]
    fn down_guardians_drop_mail() {
        let mut net = SimNetwork::new();
        net.mark_down(GuardianId(1));
        net.send(env(0, 1));
        net.send(env(0, 2));
        let delivered = net.deliver_next().unwrap();
        assert_eq!(delivered.to, GuardianId(2));
        assert_eq!(net.dropped(), 1);
        net.mark_up(GuardianId(1));
        net.send(env(0, 1));
        assert_eq!(net.deliver_next().unwrap().to, GuardianId(1));
    }
}
