//! World-level tests: the §2.2.3 crash matrix across all three storage
//! organizations.

use crate::{Outcome, RsKind, World};
use argus_objects::Value;

const KINDS: [RsKind; 3] = [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow];

#[test]
fn single_guardian_commit_survives_crash() {
    for kind in KINDS {
        let mut w = World::fast();
        let g = w.add_guardian(kind).unwrap();
        let a = w.begin(g).unwrap();
        w.set_stable(g, a, "balance", Value::Int(100)).unwrap();
        assert_eq!(w.commit(a).unwrap(), Outcome::Committed);

        w.crash(g);
        w.restart(g).unwrap();
        assert_eq!(
            w.guardian(g).unwrap().stable_value("balance"),
            Some(Value::Int(100)),
            "{kind:?}"
        );
    }
}

#[test]
fn distributed_commit_across_three_guardians() {
    for kind in KINDS {
        let mut w = World::fast();
        let gs: Vec<_> = (0..3).map(|_| w.add_guardian(kind).unwrap()).collect();
        let a = w.begin(gs[0]).unwrap();
        for (i, &g) in gs.iter().enumerate() {
            w.set_stable(g, a, "x", Value::Int(i as i64)).unwrap();
        }
        assert_eq!(w.commit(a).unwrap(), Outcome::Committed);
        for (i, &g) in gs.iter().enumerate() {
            w.crash(g);
            w.restart(g).unwrap();
            assert_eq!(
                w.guardian(g).unwrap().stable_value("x"),
                Some(Value::Int(i as i64)),
                "{kind:?}"
            );
        }
    }
}

#[test]
fn participant_crash_before_prepare_aborts_the_action() {
    for kind in KINDS {
        let mut w = World::fast();
        let g0 = w.add_guardian(kind).unwrap();
        let g1 = w.add_guardian(kind).unwrap();
        let a0 = w.begin(g0).unwrap();
        w.set_stable(g0, a0, "k", Value::Int(1)).unwrap();
        w.commit(a0).unwrap();

        let a = w.begin(g0).unwrap();
        w.set_stable(g0, a, "k", Value::Int(2)).unwrap();
        w.set_stable(g1, a, "k", Value::Int(2)).unwrap();
        // g1 loses its volatile state (and with it the action) pre-prepare.
        w.crash(g1);
        w.restart(g1).unwrap();
        // The prepare finds the action unknown at g1 → refused → abort.
        assert_eq!(w.commit(a).unwrap(), Outcome::Aborted);
        assert_eq!(
            w.guardian(g0).unwrap().stable_value("k"),
            Some(Value::Int(1)),
            "{kind:?}"
        );
    }
}

#[test]
fn in_doubt_participant_learns_commit_after_restart() {
    for kind in KINDS {
        let mut w = World::fast();
        let g0 = w.add_guardian(kind).unwrap();
        let g1 = w.add_guardian(kind).unwrap();
        let a = w.begin(g0).unwrap();
        w.set_stable(g0, a, "v", Value::Int(7)).unwrap();
        w.set_stable(g1, a, "v", Value::Int(7)).unwrap();

        // Crash g1 *after* its prepared record: arm the plan to fire during
        // the force of the committed record (prepare succeeded, commit
        // interrupted). We arm generously and drive commit.
        // Instead of counting raw writes, crash g1 right after the whole
        // protocol would deliver the commit: simulate by a mid-protocol
        // crash — prepare completes, then we crash before the verdict can
        // be processed by pausing at the message level.
        //
        // Deterministic route: run the commit, then crash g1 and verify its
        // recovered state is already committed; the in-doubt path proper is
        // exercised below with the armed fault plan.
        assert_eq!(w.commit(a).unwrap(), Outcome::Committed);
        w.crash(g1);
        let out = w.restart(g1).unwrap();
        assert!(
            out.pt
                .iter()
                .any(|(_, s)| *s == argus_core::PState::Committed),
            "{kind:?}"
        );
        assert_eq!(
            w.guardian(g1).unwrap().stable_value("v"),
            Some(Value::Int(7))
        );
    }
}

#[test]
fn armed_crash_during_commit_leaves_participant_in_doubt_then_resolves() {
    for kind in KINDS {
        let mut w = World::fast();
        let g0 = w.add_guardian(kind).unwrap();
        let g1 = w.add_guardian(kind).unwrap();
        let a = w.begin(g0).unwrap();
        w.set_stable(g0, a, "v", Value::Int(7)).unwrap();
        w.set_stable(g1, a, "v", Value::Int(7)).unwrap();

        // g1's prepare writes several pages; let the prepare succeed but
        // tear the *commit* force: count the writes a prepare needs by
        // arming far enough to cover it. The exact budget depends on the
        // organization, so probe: find a budget where the outcome is
        // Committed at the coordinator but g1 is down.
        let mut resolved = false;
        for budget in 1..200 {
            let mut w = World::fast();
            let g0 = w.add_guardian(kind).unwrap();
            let g1 = w.add_guardian(kind).unwrap();
            let a = w.begin(g0).unwrap();
            w.set_stable(g0, a, "v", Value::Int(7)).unwrap();
            w.set_stable(g1, a, "v", Value::Int(7)).unwrap();
            w.arm_crash_after_writes(g1, budget).unwrap();
            let outcome = w.commit(a).unwrap();
            if outcome == Outcome::Committed && !w.is_up(g1) {
                // g1 crashed somewhere at-or-after its prepared record.
                let out = w.restart(g1).unwrap();
                let _ = out;
                w.run_until_quiet().unwrap();
                // After restart + query/redelivery, g1 must converge to the
                // committed value.
                assert_eq!(
                    w.guardian(g1).unwrap().stable_value("v"),
                    Some(Value::Int(7)),
                    "{kind:?} budget={budget}"
                );
                resolved = true;
                break;
            }
        }
        assert!(
            resolved,
            "no budget produced a committed-with-crash run for {kind:?}"
        );
        let _ = (g0, g1, a, &mut w);
    }
}

#[test]
fn coordinator_crash_before_committing_aborts() {
    for kind in KINDS {
        // Arm the coordinator to die on its committing record: participants
        // prepared, coordinator forgot → queries answered "abort".
        let mut done = false;
        for budget in 0..200 {
            let mut w = World::fast();
            let g0 = w.add_guardian(kind).unwrap();
            let g1 = w.add_guardian(kind).unwrap();
            let a0 = w.begin(g0).unwrap();
            w.set_stable(g1, a0, "k", Value::Int(1)).unwrap();
            w.commit(a0).unwrap();

            let a = w.begin(g0).unwrap();
            w.set_stable(g1, a, "k", Value::Int(2)).unwrap();
            w.arm_crash_after_writes(g0, budget).unwrap();
            let outcome = w.commit(a).unwrap();
            if outcome == Outcome::Pending && !w.is_up(g0) && w.is_up(g1) {
                // Coordinator died; participant g1 may be in doubt.
                w.restart(g0).unwrap();
                // If the coordinator never logged `committing`, recovery
                // forgets the action; g1's query gets "aborted" — unless the
                // committing record made it, in which case phase two resumes
                // and g1 commits. Either way the system must converge.
                w.run_until_quiet().unwrap();
                let v = w.guardian(g1).unwrap().stable_value("k");
                assert!(
                    v == Some(Value::Int(1)) || v == Some(Value::Int(2)),
                    "{kind:?} budget={budget}: diverged to {v:?}"
                );
                // And g1 must not be left in doubt.
                let g1_ref = w.guardian(g1).unwrap();
                assert!(g1_ref.participants.is_empty(), "{kind:?} budget={budget}");
                done = true;
            }
        }
        assert!(done, "no budget produced a coordinator crash for {kind:?}");
    }
}

#[test]
fn aborted_action_rolls_back_everywhere() {
    for kind in KINDS {
        let mut w = World::fast();
        let g0 = w.add_guardian(kind).unwrap();
        let g1 = w.add_guardian(kind).unwrap();
        let a0 = w.begin(g0).unwrap();
        w.set_stable(g0, a0, "x", Value::Int(1)).unwrap();
        w.set_stable(g1, a0, "y", Value::Int(1)).unwrap();
        w.commit(a0).unwrap();

        let a = w.begin(g0).unwrap();
        w.set_stable(g0, a, "x", Value::Int(9)).unwrap();
        w.set_stable(g1, a, "y", Value::Int(9)).unwrap();
        w.abort_local(a);
        assert_eq!(
            w.guardian(g0).unwrap().stable_value("x"),
            Some(Value::Int(1))
        );
        assert_eq!(
            w.guardian(g1).unwrap().stable_value("y"),
            Some(Value::Int(1))
        );
        // And after crashes the aborted values stay gone.
        w.crash(g0);
        w.restart(g0).unwrap();
        assert_eq!(
            w.guardian(g0).unwrap().stable_value("x"),
            Some(Value::Int(1)),
            "{kind:?}"
        );
    }
}

#[test]
fn object_graphs_survive_crashes() {
    for kind in KINDS {
        let mut w = World::fast();
        let g = w.add_guardian(kind).unwrap();
        let a = w.begin(g).unwrap();
        let leaf = w.create_atomic(g, a, Value::Int(42)).unwrap();
        let node = w
            .create_atomic(g, a, Value::Seq(vec![Value::heap_ref(leaf)]))
            .unwrap();
        w.set_stable(g, a, "tree", Value::heap_ref(node)).unwrap();
        assert_eq!(w.commit(a).unwrap(), Outcome::Committed);

        w.crash(g);
        w.restart(g).unwrap();
        let guardian = w.guardian(g).unwrap();
        let tree = guardian.stable_value("tree").unwrap();
        let node_h = match tree {
            Value::Ref(argus_objects::ObjRef::Heap(h)) => h,
            other => panic!("{kind:?}: expected a resolved pointer, got {other}"),
        };
        let node_v = guardian.heap.read_value(node_h, None).unwrap();
        let leaf_h = match node_v {
            Value::Seq(items) => match items.as_slice() {
                [Value::Ref(argus_objects::ObjRef::Heap(h))] => *h,
                other => panic!("{kind:?}: bad node {other:?}"),
            },
            other => panic!("{kind:?}: bad node {other}"),
        };
        assert_eq!(
            guardian.heap.read_value(leaf_h, None).unwrap(),
            &Value::Int(42)
        );
    }
}

#[test]
fn mutex_objects_work_end_to_end() {
    for kind in KINDS {
        let mut w = World::fast();
        let g = w.add_guardian(kind).unwrap();
        let a = w.begin(g).unwrap();
        let m = w.create_mutex(g, Value::Int(0)).unwrap();
        w.set_stable(g, a, "counter", Value::heap_ref(m)).unwrap();
        w.mutate_mutex(g, a, m, |v| *v = Value::Int(5)).unwrap();
        assert_eq!(w.commit(a).unwrap(), Outcome::Committed);

        w.crash(g);
        w.restart(g).unwrap();
        let guardian = w.guardian(g).unwrap();
        let m_h = match guardian.stable_value("counter").unwrap() {
            Value::Ref(argus_objects::ObjRef::Heap(h)) => h,
            other => panic!("{kind:?}: {other}"),
        };
        assert_eq!(
            guardian.heap.read_value(m_h, None).unwrap(),
            &Value::Int(5),
            "{kind:?}"
        );
    }
}

#[test]
fn early_prepare_speeds_up_the_hybrid_prepare() {
    let mut w = World::fast();
    let g = w.add_guardian(RsKind::Hybrid).unwrap();
    let a = w.begin(g).unwrap();
    w.set_stable(g, a, "a", Value::Int(1)).unwrap();
    w.early_prepare(g, a).unwrap();
    // Nothing left in the MOS: the prepare only forces the outcome entry.
    assert!(w
        .guardian(g)
        .unwrap()
        .mos
        .get(&a)
        .map(|m| m.is_empty())
        .unwrap_or(true));
    assert_eq!(w.commit(a).unwrap(), Outcome::Committed);
    w.crash(g);
    w.restart(g).unwrap();
    assert_eq!(
        w.guardian(g).unwrap().stable_value("a"),
        Some(Value::Int(1))
    );
}

#[test]
fn housekeeping_under_live_traffic() {
    use argus_core::HousekeepingMode;
    for mode in [HousekeepingMode::Compaction, HousekeepingMode::Snapshot] {
        let mut w = World::fast();
        let g = w.add_guardian(RsKind::Hybrid).unwrap();
        for i in 0..20 {
            let a = w.begin(g).unwrap();
            w.set_stable(g, a, "n", Value::Int(i)).unwrap();
            w.commit(a).unwrap();
        }
        w.housekeep(g, mode).unwrap();
        let a = w.begin(g).unwrap();
        w.set_stable(g, a, "n", Value::Int(99)).unwrap();
        w.commit(a).unwrap();
        w.crash(g);
        w.restart(g).unwrap();
        assert_eq!(
            w.guardian(g).unwrap().stable_value("n"),
            Some(Value::Int(99)),
            "{mode:?}"
        );
    }
}
