//! One guardian: heap + recovery system + protocol state.

use crate::world::{MediaKind, WorldConfig};
use crate::{WorldError, WorldResult};
use argus_core::providers::{CachedProvider, FileProvider, MemProvider, MirrorProvider};
use argus_core::{HybridLogRs, LogEntry, LogStats, RecoverySystem, RedoRs, RsResult, SimpleLogRs};
use argus_objects::{ActionId, GuardianId, Heap, HeapId, Uid, Value};
use argus_shadow::ShadowRs;
use argus_sim::{CostModel, SimClock};
use argus_slog::{ForceScheduler, LogAddress};
use argus_stable::FaultPlan;
use argus_twopc::{Coordinator, Participant};
use std::collections::{HashMap, HashSet};

/// Which stable-storage organization a guardian runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsKind {
    /// The simple log (ch. 3).
    Simple,
    /// The hybrid log (ch. 4/5) — the thesis's contribution.
    Hybrid,
    /// The shadowing baseline (§1.2.1).
    Shadow,
    /// The REDO-only log with backlink chains and parallel / on-demand
    /// recovery (ROADMAP item 3 — the post-thesis evolution).
    Redo,
}

/// A durability-dependent step whose protocol continuation is waiting on a
/// group-commit force (§3.2's "force_write makes every earlier buffered
/// entry durable" turned into a scheduler).
///
/// Each variant names the entry a recovery system has *staged* via its
/// `stage_*` operation; once [`crate::World`] runs the shared force, the
/// matching two-phase-commit continuation fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StagedOp {
    /// A staged prepared record; on force, `prepare_succeeded`.
    Prepare(ActionId),
    /// A staged commit record; on force, install versions and ack.
    Commit(ActionId),
    /// A staged abort record; on force, discard versions and ack.
    Abort(ActionId),
    /// A staged committing record; on force, enter phase two.
    Committing(ActionId),
    /// A staged done record; on force, the coordinator finishes.
    Done(ActionId),
}

impl StagedOp {
    /// The action whose durability this staged entry carries.
    pub(crate) fn aid(&self) -> ActionId {
        match self {
            Self::Prepare(aid)
            | Self::Commit(aid)
            | Self::Abort(aid)
            | Self::Committing(aid)
            | Self::Done(aid) => *aid,
        }
    }
}

/// A guardian: a logical node with stable and volatile state (§2.1).
///
/// "When a guardian's node crashes, all processes within the guardian
/// disappear, but a subset of the guardian's state survives" — here, the
/// recovery system's stable log survives; everything else in this struct is
/// volatile and is rebuilt by [`crate::World::restart`].
pub struct Guardian {
    /// This guardian's identity.
    pub id: GuardianId,
    /// Volatile object memory.
    pub heap: Heap,
    /// The recovery system over this guardian's stable log.
    pub(crate) rs: Box<dyn RecoverySystem>,
    /// The fault plan shared with the guardian's storage stack.
    pub(crate) plan: FaultPlan,
    /// Whether the node is up.
    pub(crate) up: bool,
    /// Modified Objects Set per active action (§2.3).
    pub(crate) mos: HashMap<ActionId, Vec<HeapId>>,
    /// Actions this guardian has participated in since its last crash.
    pub(crate) known: HashSet<ActionId>,
    /// Locally resolved participant verdicts (for idempotent re-acks).
    pub(crate) resolved: HashMap<ActionId, bool>,
    /// Actions this guardian coordinated to completion.
    pub(crate) coord_done: HashSet<ActionId>,
    /// Live coordinator state machines.
    pub(crate) coordinators: HashMap<ActionId, Coordinator>,
    /// Live participant state machines.
    pub(crate) participants: HashMap<ActionId, Participant>,
    /// Action-id sequence for top-level actions originating here.
    pub(crate) next_seq: u64,
    /// Automatic housekeeping policy: (max log entries, mode).
    pub(crate) hk_policy: Option<(u64, argus_core::HousekeepingMode)>,
    /// Group-commit scheduler deciding when staged entries are forced.
    pub(crate) force_sched: ForceScheduler,
    /// Continuations awaiting the next force, in staging order, each with
    /// the simulated time it was staged (the start of its `force_wait`
    /// trace span).
    pub(crate) staged: Vec<(StagedOp, u64)>,
}

impl std::fmt::Debug for Guardian {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guardian")
            .field("id", &self.id)
            .field("up", &self.up)
            .field("objects", &self.heap.len())
            .finish()
    }
}

impl Guardian {
    /// Creates a fresh guardian with an empty stable state.
    pub(crate) fn new(
        id: GuardianId,
        kind: RsKind,
        clock: SimClock,
        model: CostModel,
        cfg: &WorldConfig,
    ) -> RsResult<Self> {
        let plan = FaultPlan::new();
        let mem = MemProvider {
            clock: clock.clone(),
            model: model.clone(),
            plan: Some(plan.clone()),
        };
        let mirror = MirrorProvider {
            clock: clock.clone(),
            model: model.clone(),
            plan: plan.clone(),
        };
        // A real-file provider on demand: one subdirectory per guardian so
        // several guardians (and several worlds) never share a log file.
        // The FaultPlan does not apply here — a real file has real crash
        // semantics (unsynced writes are lost, synced ones survive).
        let file = |dir: Option<&'static str>| -> RsResult<FileProvider> {
            let base = match dir {
                Some(d) => std::path::PathBuf::from(d),
                None => {
                    static UNIQ: std::sync::atomic::AtomicU64 =
                        std::sync::atomic::AtomicU64::new(0);
                    let n = UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    std::env::temp_dir().join(format!("argus-world-{}-{n}", std::process::id()))
                }
            };
            FileProvider::new(base.join(format!("g{}", id.0)))
                .map(|p| p.with_device(clock.clone(), model.clone()))
                .map_err(|e| argus_core::RsError::BadState(format!("file provider: {e}")))
        };
        // Log organizations read through a volatile page cache; shadowing
        // keeps its direct store (its page map is already its own cache).
        let rs: Box<dyn RecoverySystem> = match (kind, cfg.media) {
            (RsKind::Simple, MediaKind::Mem) => {
                Box::new(SimpleLogRs::create(CachedProvider::new(mem, cfg.cache))?)
            }
            (RsKind::Simple, MediaKind::Mirrored) => {
                Box::new(SimpleLogRs::create(CachedProvider::new(mirror, cfg.cache))?)
            }
            (RsKind::Simple, MediaKind::File { dir }) => Box::new(SimpleLogRs::create(
                CachedProvider::new(file(dir)?, cfg.cache),
            )?),
            (RsKind::Hybrid, MediaKind::Mem) => {
                Box::new(HybridLogRs::create(CachedProvider::new(mem, cfg.cache))?)
            }
            (RsKind::Hybrid, MediaKind::Mirrored) => {
                Box::new(HybridLogRs::create(CachedProvider::new(mirror, cfg.cache))?)
            }
            (RsKind::Hybrid, MediaKind::File { dir }) => Box::new(HybridLogRs::create(
                CachedProvider::new(file(dir)?, cfg.cache),
            )?),
            (RsKind::Shadow, MediaKind::Mem) => Box::new(ShadowRs::create(mem)?),
            (RsKind::Shadow, MediaKind::Mirrored) => Box::new(ShadowRs::create(mirror)?),
            (RsKind::Shadow, MediaKind::File { dir }) => Box::new(ShadowRs::create(file(dir)?)?),
            (RsKind::Redo, MediaKind::Mem) => {
                Box::new(RedoRs::create(CachedProvider::new(mem, cfg.cache))?)
            }
            (RsKind::Redo, MediaKind::Mirrored) => {
                Box::new(RedoRs::create(CachedProvider::new(mirror, cfg.cache))?)
            }
            (RsKind::Redo, MediaKind::File { dir }) => {
                Box::new(RedoRs::create(CachedProvider::new(file(dir)?, cfg.cache))?)
            }
        };
        Ok(Self {
            id,
            heap: Heap::with_stable_root(),
            rs,
            plan,
            up: true,
            mos: HashMap::new(),
            known: HashSet::new(),
            resolved: HashMap::new(),
            coord_done: HashSet::new(),
            coordinators: HashMap::new(),
            participants: HashMap::new(),
            next_seq: 0,
            hk_policy: None,
            force_sched: ForceScheduler::new(cfg.force),
            staged: Vec::new(),
        })
    }

    /// Whether the node is up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// The committed value of the stable variable `name`, if set.
    pub fn stable_value(&self, name: &str) -> Option<Value> {
        self.stable_value_as(name, None)
    }

    /// The value of the stable variable `name` as seen by `aid` (its own
    /// uncommitted version while it holds the write lock on the root).
    pub fn stable_value_as(&self, name: &str, aid: Option<ActionId>) -> Option<Value> {
        let root = self.heap.stable_root()?;
        let value = self.heap.read_value(root, aid).ok()?;
        if let Value::Seq(pairs) = value {
            for pair in pairs {
                if let Value::Seq(kv) = pair {
                    if let [Value::Str(n), v] = kv.as_slice() {
                        if n == name {
                            return Some(v.clone());
                        }
                    }
                }
            }
        }
        None
    }

    /// Records a stable-variable binding in the root's current version. The
    /// caller must already hold the root write lock for `aid`.
    pub(crate) fn bind_stable(
        &mut self,
        aid: ActionId,
        name: &str,
        value: Value,
    ) -> WorldResult<()> {
        let root = self.heap.stable_root().ok_or(WorldError::Heap(
            argus_objects::HeapError::NoSuchUid(Uid::STABLE_ROOT),
        ))?;
        let name = name.to_owned();
        self.heap.write_value(root, aid, move |v| {
            let pairs = match v {
                Value::Seq(pairs) => pairs,
                other => {
                    *other = Value::Seq(Vec::new());
                    match other {
                        Value::Seq(pairs) => pairs,
                        _ => unreachable!(),
                    }
                }
            };
            for pair in pairs.iter_mut() {
                if let Value::Seq(kv) = pair {
                    if let [Value::Str(n), slot] = kv.as_mut_slice() {
                        if *n == name {
                            *slot = value;
                            return;
                        }
                    }
                }
            }
            pairs.push(Value::Seq(vec![Value::Str(name), value]));
        })?;
        Ok(())
    }

    /// Log and device statistics for this guardian's recovery system.
    pub fn log_stats(&self) -> LogStats {
        self.rs.log_stats()
    }

    /// Read-only access to the recovery system (for tests).
    pub fn recovery_system(&self) -> &dyn RecoverySystem {
        self.rs.as_ref()
    }

    /// Every decoded entry of this guardian's log, oldest first, for
    /// external audits like the `argus-check` linter (`None` when the
    /// organization keeps no log, e.g. the shadowing baseline).
    pub fn dump_log(&mut self) -> RsResult<Option<Vec<(LogAddress, LogEntry)>>> {
        self.rs.dump_log()
    }
}
