//! The simulated distributed system.

use crate::guardian::StagedOp;
use crate::network::NetFaults;
use crate::{Guardian, RsKind, SimNetwork, WorldError, WorldResult};
use argus_cc::{
    CcConfig, CcFate, CcOutcome, CcPolicy, DeadlockReport, LockHolders, LockManager, LockMode,
    ObjKey, Waiter,
};
use argus_core::{HousekeepingMode, RecoveryOutcome};
use argus_objects::{ActionId, GuardianId, HeapError, HeapId, ObjKind, Uid, Value};
use argus_sim::{CostModel, SimClock};
use argus_slog::ForceConfig;
use argus_stable::{CacheConfig, FaultPlan};
use argus_twopc::{CoordEffect, Coordinator, Envelope, Msg, PartEffect, Participant};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

/// Storage-performance knobs shared by every guardian the world spawns.
///
/// The defaults enable both optimizations — group-commit batching of log
/// forces and a page cache with read-ahead under every log organization.
/// [`WorldConfig::unbatched`] restores the one-force-per-operation,
/// uncached behavior for baselines and A/B experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorldConfig {
    /// Group-commit force scheduling for log-based recovery systems.
    pub force: ForceConfig,
    /// Page cache + read-ahead layered over each guardian's page store.
    pub cache: CacheConfig,
    /// Concurrency control: what happens when lock requests collide.
    pub cc: CcConfig,
    /// Media model under each guardian's page store.
    pub media: MediaKind,
}

/// Which media model guardians' page stores run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MediaKind {
    /// Always-good in-memory pages — the fast default for unit tests.
    #[default]
    Mem,
    /// Lampson–Sturgis mirrored disks (§1.1): crashes tear at most one
    /// in-flight leg, decayed pages are repaired from the twin on read.
    Mirrored,
    /// Real files via [`argus_stable::DurableFileStore`]: durable fsync
    /// forces, write combining, wall-clock costs. Each guardian gets its
    /// own subdirectory `g<N>` under `dir` (a fresh temp directory when
    /// `None`). The `&'static str` keeps [`WorldConfig`] `Copy`; benches
    /// leak their path strings, tests use string literals.
    File {
        /// Base directory for the guardians' log files.
        dir: Option<&'static str>,
    },
}

impl WorldConfig {
    /// Every force is immediate and every page read hits the device —
    /// the pre-optimization baseline.
    pub fn unbatched() -> Self {
        Self {
            force: ForceConfig::immediate(),
            cache: CacheConfig::disabled(),
            cc: CcConfig::default(),
            media: MediaKind::Mem,
        }
    }

    /// The default knobs with the given concurrency-control policy.
    pub fn with_cc(policy: CcPolicy) -> Self {
        Self {
            cc: CcConfig::with_policy(policy),
            ..Self::default()
        }
    }
}

/// The parked half of a blocked operation, run by the scheduler once the
/// lock is granted (the grant itself *is* the heap acquisition).
enum CcCont {
    /// A blocked `read`: the grant acquired the read lock; the caller
    /// re-issues [`World::read`], which now succeeds as a holder.
    Read,
    /// A blocked `write_atomic`: apply the buffered mutation to the current
    /// version the grant just created.
    Write(Box<dyn FnOnce(&mut Value)>),
    /// A blocked `mutate_mutex`: the grant seized the mutex; mutate, then
    /// release.
    Mutex(Box<dyn FnOnce(&mut Value)>),
}

/// The fate of a top-level action as observed by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The committing record is on stable storage: committed everywhere.
    Committed,
    /// The action aborted everywhere.
    Aborted,
    /// A crash interrupted the protocol; the outcome will settle after the
    /// crashed node restarts.
    Pending,
}

/// A deterministic world of guardians, the driver for every integration
/// test, example, and experiment.
///
/// # Examples
///
/// A distributed action across two guardians, committed by two-phase commit,
/// surviving a crash of each:
///
/// ```
/// use argus_guardian::{Outcome, RsKind, World};
/// use argus_objects::Value;
///
/// let mut world = World::fast();
/// let g0 = world.add_guardian(RsKind::Hybrid)?;
/// let g1 = world.add_guardian(RsKind::Shadow)?; // organizations can mix
///
/// let action = world.begin(g0)?;
/// world.set_stable(g0, action, "left", Value::Int(1))?;
/// world.set_stable(g1, action, "right", Value::Int(2))?;
/// assert_eq!(world.commit(action)?, Outcome::Committed);
///
/// for g in [g0, g1] {
///     world.crash(g);
///     world.restart(g)?;
/// }
/// assert_eq!(world.guardian(g0)?.stable_value("left"), Some(Value::Int(1)));
/// assert_eq!(world.guardian(g1)?.stable_value("right"), Some(Value::Int(2)));
/// # Ok::<(), argus_guardian::WorldError>(())
/// ```
pub struct World {
    /// The shared logical clock.
    pub clock: SimClock,
    model: CostModel,
    /// The ambient observability registry, bound to `clock` so phase timers
    /// measure simulated time.
    obs: argus_obs::Registry,
    /// The ambient tracer, bound to `clock` and reset when the world is
    /// built: one world is one trace.
    tracer: argus_trace::Tracer,
    guardians: BTreeMap<GuardianId, Guardian>,
    net: SimNetwork,
    /// Guardians an action has modified objects at.
    touched: HashMap<ActionId, BTreeSet<GuardianId>>,
    /// Guardians an action has (only) read at — they hold read locks and
    /// must join two-phase commit so those locks are released with the
    /// action (read-only participants).
    touched_read: HashMap<ActionId, BTreeSet<GuardianId>>,
    /// Final verdicts of completed coordinators.
    outcomes: HashMap<ActionId, bool>,
    next_gid: u32,
    /// Storage knobs applied to every guardian spawned in this world.
    cfg: WorldConfig,
    /// Parked lock requests awaiting a release, commit, abort, or crash.
    cc: LockManager<CcCont>,
    /// Why the scheduler gave up on parked actions (victim/timeout/crash).
    cc_fates: BTreeMap<ActionId, CcFate>,
    /// Deadlocks broken so far, in detection order.
    cc_deadlocks: Vec<DeadlockReport>,
    /// Begin order per action: the deadlock victim is the *youngest* cycle
    /// member, i.e. the one with the largest begin index.
    begin_order: HashMap<ActionId, u64>,
    next_begin: u64,
    /// Simulated time each live action began, consumed when the action
    /// resolves to record its end-to-end trace span.
    begin_ts: HashMap<ActionId, u64>,
    /// Guardians holding a non-empty staged batch, maintained at every
    /// staging site so the message loop's idle flush visits only guardians
    /// with work — never the whole world.
    staged_ready: BTreeSet<GuardianId>,
    /// Min-heap of `(force deadline, guardian)` for open staged batches.
    /// Entries are lazily invalidated: a popped guardian whose batch
    /// already flushed (or whose current batch has a later deadline) is
    /// skipped after an O(1) check.
    force_due: BinaryHeap<Reverse<(u64, GuardianId)>>,
}

/// The trace key for an action: the id, decomposed so every crate stamps
/// events the same way.
fn tkey(aid: ActionId) -> argus_trace::Key {
    argus_trace::Key::new(aid.coordinator.0, aid.seq)
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("guardians", &self.guardians.len())
            .finish()
    }
}

impl World {
    /// Creates an empty world with the given device cost profile and the
    /// default storage knobs (batching and caching on).
    pub fn new(model: CostModel) -> Self {
        Self::with_config(model, WorldConfig::default())
    }

    /// Creates an empty world with explicit storage knobs.
    pub fn with_config(model: CostModel, cfg: WorldConfig) -> Self {
        let clock = SimClock::new();
        let obs = argus_obs::current();
        obs.set_clock(clock.clone());
        let tracer = argus_trace::current();
        tracer.set_clock(clock.clone());
        tracer.reset();
        Self {
            clock,
            model,
            obs,
            tracer,
            guardians: BTreeMap::new(),
            net: SimNetwork::new(),
            touched: HashMap::new(),
            touched_read: HashMap::new(),
            outcomes: HashMap::new(),
            next_gid: 0,
            cfg,
            cc: LockManager::new(),
            cc_fates: BTreeMap::new(),
            cc_deadlocks: Vec::new(),
            begin_order: HashMap::new(),
            next_begin: 0,
            begin_ts: HashMap::new(),
            staged_ready: BTreeSet::new(),
            force_due: BinaryHeap::new(),
        }
    }

    /// A world with the fast cost profile (unit tests).
    pub fn fast() -> Self {
        Self::new(CostModel::fast())
    }

    /// The storage knobs guardians in this world run with.
    pub fn config(&self) -> WorldConfig {
        self.cfg
    }

    /// Spawns a guardian running the given storage organization.
    pub fn add_guardian(&mut self, kind: RsKind) -> WorldResult<GuardianId> {
        let id = GuardianId(self.next_gid);
        self.next_gid += 1;
        let guardian = Guardian::new(id, kind, self.clock.clone(), self.model.clone(), &self.cfg)?;
        self.guardians.insert(id, guardian);
        Ok(id)
    }

    /// Borrows a guardian.
    pub fn guardian(&self, g: GuardianId) -> WorldResult<&Guardian> {
        self.guardians.get(&g).ok_or(WorldError::NoGuardian(g))
    }

    /// Every guardian in the world, in id order.
    pub fn guardian_ids(&self) -> Vec<GuardianId> {
        self.guardians.keys().copied().collect()
    }

    /// Dumps guardian `g`'s decoded log for external audits like the
    /// `argus-check` linter (`None` when its organization keeps no log).
    pub fn dump_log(
        &mut self,
        g: GuardianId,
    ) -> WorldResult<Option<Vec<(argus_slog::LogAddress, argus_core::LogEntry)>>> {
        Ok(self.guardian_mut(g)?.dump_log()?)
    }

    /// The registry this world's instrumentation records into.
    pub fn obs(&self) -> &argus_obs::Registry {
        &self.obs
    }

    /// The tracer this world's instrumentation records into.
    pub fn tracer(&self) -> &argus_trace::Tracer {
        &self.tracer
    }

    fn guardian_mut(&mut self, g: GuardianId) -> WorldResult<&mut Guardian> {
        self.guardians.get_mut(&g).ok_or(WorldError::NoGuardian(g))
    }

    fn live(&mut self, g: GuardianId) -> WorldResult<&mut Guardian> {
        let guardian = self
            .guardians
            .get_mut(&g)
            .ok_or(WorldError::NoGuardian(g))?;
        if !guardian.up {
            return Err(WorldError::Down(g));
        }
        Ok(guardian)
    }

    // ---- action execution (the "handler call" surface) -------------------

    /// Begins a top-level action originating (and coordinated) at `origin`.
    pub fn begin(&mut self, origin: GuardianId) -> WorldResult<ActionId> {
        let guardian = self.live(origin)?;
        let aid = ActionId::new(origin, guardian.next_seq);
        guardian.next_seq += 1;
        guardian.known.insert(aid);
        self.touched.entry(aid).or_default().insert(origin);
        self.begin_order.insert(aid, self.next_begin);
        self.next_begin += 1;
        self.begin_ts.insert(aid, self.clock.now());
        Ok(aid)
    }

    fn note_read(&mut self, g: GuardianId, aid: ActionId) {
        self.touched_read.entry(aid).or_default().insert(g);
        if let Some(guardian) = self.guardians.get_mut(&g) {
            guardian.known.insert(aid);
        }
    }

    fn note_write(&mut self, g: GuardianId, aid: ActionId, h: HeapId) {
        self.touched.entry(aid).or_default().insert(g);
        if let Some(guardian) = self.guardians.get_mut(&g) {
            guardian.known.insert(aid);
            let mos = guardian.mos.entry(aid).or_default();
            if !mos.contains(&h) {
                mos.push(h);
            }
        }
    }

    /// Creates an atomic object at `g` on behalf of `aid` (read-locked by
    /// its creator, §2.4.1).
    pub fn create_atomic(
        &mut self,
        g: GuardianId,
        aid: ActionId,
        value: Value,
    ) -> WorldResult<HeapId> {
        let guardian = self.live(g)?;
        let h = guardian.heap.alloc_atomic(value, Some(aid));
        // The creator holds a read lock (§2.4.1); record the guardian as a
        // read participant so that lock is released with the action.
        self.note_read(g, aid);
        Ok(h)
    }

    /// Creates a mutex object at `g`.
    pub fn create_mutex(&mut self, g: GuardianId, value: Value) -> WorldResult<HeapId> {
        let guardian = self.live(g)?;
        Ok(guardian.heap.alloc_mutex(value))
    }

    /// Reads an object at `g` under `aid`, acquiring a read lock on atomic
    /// objects. The guardian becomes a *read-only participant* of the
    /// action: it joins two-phase commit so the lock is released with the
    /// action's outcome.
    pub fn read(&mut self, g: GuardianId, aid: ActionId, h: HeapId) -> WorldResult<Value> {
        let guardian = self.live(g)?;
        if matches!(
            guardian.heap.get(h)?.body,
            argus_objects::ObjectBody::Atomic(_)
        ) {
            guardian.heap.acquire_read(h, aid)?;
        }
        let value = guardian.heap.read_value(h, Some(aid))?.clone();
        self.note_read(g, aid);
        Ok(value)
    }

    /// Write-locks and mutates an atomic object at `g` under `aid`.
    pub fn write_atomic(
        &mut self,
        g: GuardianId,
        aid: ActionId,
        h: HeapId,
        f: impl FnOnce(&mut Value),
    ) -> WorldResult<()> {
        let guardian = self.live(g)?;
        guardian.heap.acquire_write(h, aid)?;
        guardian.heap.write_value(h, aid, f)?;
        self.note_write(g, aid, h);
        Ok(())
    }

    /// Seizes, mutates, and releases a mutex object at `g` under `aid`.
    pub fn mutate_mutex(
        &mut self,
        g: GuardianId,
        aid: ActionId,
        h: HeapId,
        f: impl FnOnce(&mut Value),
    ) -> WorldResult<()> {
        let guardian = self.live(g)?;
        guardian.heap.seize(h, aid)?;
        guardian.heap.mutate_mutex(h, aid, f)?;
        guardian.heap.release(h, aid)?;
        self.note_write(g, aid, h);
        Ok(())
    }

    // ---- lock-aware submissions (the blocked-action scheduler) -----------

    /// Lock-aware [`World::read`]: on conflict the request parks on the
    /// object's wait queue (blocking/timeout policies) or reports
    /// [`CcOutcome::Conflict`] (conflict-abort). When a parked read is later
    /// granted, the grant *is* the read-lock acquisition — re-issue
    /// [`World::read`] to observe the value.
    pub fn submit_read(
        &mut self,
        g: GuardianId,
        aid: ActionId,
        h: HeapId,
    ) -> WorldResult<CcOutcome> {
        let key = ObjKey { gid: g, hid: h };
        if self.cc_should_queue(key, aid) {
            return self.cc_park(key, aid, LockMode::Shared, CcCont::Read, false);
        }
        match self.read(g, aid, h) {
            Ok(_) => Ok(CcOutcome::Done),
            Err(WorldError::Heap(HeapError::LockConflict { .. })) => {
                self.cc_refuse_or_park(key, aid, LockMode::Shared, CcCont::Read)
            }
            Err(e) => Err(e),
        }
    }

    /// Lock-aware [`World::write_atomic`]: on conflict the mutation is
    /// buffered as a continuation and parks (blocking/timeout policies) or
    /// the call reports [`CcOutcome::Conflict`] (conflict-abort). An action
    /// upgrading its own read lock parks at the *front* of the queue.
    pub fn submit_write_atomic(
        &mut self,
        g: GuardianId,
        aid: ActionId,
        h: HeapId,
        f: impl FnOnce(&mut Value) + 'static,
    ) -> WorldResult<CcOutcome> {
        let key = ObjKey { gid: g, hid: h };
        if self.cc_should_queue(key, aid) {
            return self.cc_park(
                key,
                aid,
                LockMode::Exclusive,
                CcCont::Write(Box::new(f)),
                false,
            );
        }
        let guardian = self.live(g)?;
        match guardian.heap.acquire_write(h, aid) {
            Ok(()) => {
                guardian
                    .heap
                    .write_value(h, aid, f)
                    .expect("write lock just granted");
                self.note_write(g, aid, h);
                Ok(CcOutcome::Done)
            }
            Err(HeapError::LockConflict { .. }) => {
                self.cc_refuse_or_park(key, aid, LockMode::Exclusive, CcCont::Write(Box::new(f)))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Lock-aware [`World::mutate_mutex`]: a seized mutex parks the request
    /// (blocking/timeout policies) or reports [`CcOutcome::Conflict`]
    /// (conflict-abort). On grant the scheduler seizes, mutates, releases.
    pub fn submit_mutate_mutex(
        &mut self,
        g: GuardianId,
        aid: ActionId,
        h: HeapId,
        f: impl FnOnce(&mut Value) + 'static,
    ) -> WorldResult<CcOutcome> {
        let key = ObjKey { gid: g, hid: h };
        if self.cc_should_queue(key, aid) {
            return self.cc_park(
                key,
                aid,
                LockMode::Exclusive,
                CcCont::Mutex(Box::new(f)),
                false,
            );
        }
        let guardian = self.live(g)?;
        match guardian.heap.seize(h, aid) {
            Ok(()) => {
                guardian.heap.mutate_mutex(h, aid, f).expect("just seized");
                guardian.heap.release(h, aid).expect("just seized");
                self.note_write(g, aid, h);
                Ok(CcOutcome::Done)
            }
            Err(HeapError::MutexSeized { .. }) => {
                self.cc_refuse_or_park(key, aid, LockMode::Exclusive, CcCont::Mutex(Box::new(f)))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Whether a new request must queue behind earlier waiters even if it is
    /// compatible with the current holders — FIFO fairness keeps a stream of
    /// readers from starving a queued writer. Re-entrant requests (the
    /// action already holds a lock on the object) bypass the queue.
    fn cc_should_queue(&self, key: ObjKey, aid: ActionId) -> bool {
        if matches!(self.cfg.cc.policy, CcPolicy::ConflictAbort) {
            return false;
        }
        if !self.cc.has_queue(key) {
            return false;
        }
        self.guardians
            .get(&key.gid)
            .map(|gu| gu.up && !gu.heap.holds_lock(key.hid, aid))
            .unwrap_or(false)
    }

    fn cc_refuse_or_park(
        &mut self,
        key: ObjKey,
        aid: ActionId,
        mode: LockMode,
        cont: CcCont,
    ) -> WorldResult<CcOutcome> {
        match self.cfg.cc.policy {
            CcPolicy::ConflictAbort => Ok(CcOutcome::Conflict),
            CcPolicy::Blocking | CcPolicy::Timeout => {
                let upgrade = self
                    .guardians
                    .get(&key.gid)
                    .map(|gu| gu.heap.holds_lock(key.hid, aid))
                    .unwrap_or(false);
                self.cc_park(key, aid, mode, cont, upgrade)
            }
        }
    }

    fn cc_park(
        &mut self,
        key: ObjKey,
        aid: ActionId,
        mode: LockMode,
        cont: CcCont,
        upgrade: bool,
    ) -> WorldResult<CcOutcome> {
        let now = self.clock.now();
        let deadline = matches!(self.cfg.cc.policy, CcPolicy::Timeout)
            .then(|| now + self.cfg.cc.wait_timeout_us);
        // The holder the waiter is queuing behind right now (writer first,
        // else the first foreign reader): the grant-time trace span names it
        // so lock-wait time is attributable to a specific action.
        let holder = self.guardians.get(&key.gid).and_then(|gu| {
            gu.heap
                .lock_holders(key.hid)
                .ok()
                .and_then(|(writer, readers)| {
                    writer.or_else(|| readers.into_iter().find(|h| *h != aid))
                })
        });
        self.cc.park(
            key,
            Waiter {
                aid,
                mode,
                parked_at: now,
                deadline,
                holder,
                cont,
            },
            upgrade,
        );
        self.obs.inc("cc.waits");
        if matches!(self.cfg.cc.policy, CcPolicy::Blocking) {
            self.cc_detect_deadlock(aid);
        }
        Ok(CcOutcome::Parked)
    }

    /// Rebuilds the wait-for graph and, while the just-parked request
    /// closes a cycle, aborts the youngest member of each. Checking only
    /// from the new waiter is sound: grants never add edges, so every cycle
    /// passes through the most recent parker. One park can close *several*
    /// cycles at once (the parker's new edges fan out to different
    /// queues), and aborting one victim only breaks the cycles it was on —
    /// hence the loop, which re-checks until no cycle through the parker
    /// remains. Breaking only the first was a real livelock at scale: in
    /// 8-shard worlds a park that closed two cycles left the second one
    /// undetected forever, stalling every slot.
    fn cc_detect_deadlock(&mut self, start: ActionId) {
        loop {
            let holders = self.cc_holder_snapshot();
            let graph = self.cc.wait_for_edges(&holders);
            let Some(cycle) = graph.cycle_through(start) else {
                return;
            };
            self.obs.inc("cc.deadlocks");
            let victim = cycle
                .iter()
                .copied()
                .filter(|a| !self.in_two_phase_commit(*a))
                .max_by_key(|a| self.begin_order.get(a).copied().unwrap_or(0))
                .unwrap_or(start);
            self.obs.inc("cc.victims");
            self.obs.event(argus_obs::Event::DeadlockVictim {
                victim_seq: victim.seq,
                cycle_len: cycle.len() as u64,
            });
            self.tracer.instant(
                "cc",
                "deadlock_victim",
                victim.coordinator.0,
                Some(tkey(victim)),
                &[("cycle_len", cycle.len() as u64)],
            );
            self.cc_deadlocks.push(DeadlockReport { cycle, victim });
            self.cc_fates.insert(victim, CcFate::Victim);
            self.abort_local(victim);
            // The parker itself was the victim: its request is gone, and
            // with it every remaining cycle through it.
            if victim == start || !self.cc.is_blocked(start) {
                return;
            }
        }
    }

    fn cc_holder_snapshot(&self) -> BTreeMap<ObjKey, LockHolders> {
        let mut out = BTreeMap::new();
        for (key, _, _) in self.cc.fronts() {
            let Some(guardian) = self.guardians.get(&key.gid) else {
                continue;
            };
            if !guardian.up {
                continue;
            }
            if let Ok((writer, readers)) = guardian.heap.lock_holders(key.hid) {
                out.insert(key, LockHolders { writer, readers });
            }
        }
        out
    }

    /// Whether `aid` has entered two-phase commit anywhere. A coordinator
    /// can only live at the action's origin and participants only at
    /// guardians the action touched, so checking that set — not every
    /// guardian in the world — is exhaustive.
    fn in_two_phase_commit(&self, aid: ActionId) -> bool {
        let engaged = |g: &GuardianId| {
            self.guardians.get(g).is_some_and(|gu| {
                gu.participants.contains_key(&aid) || gu.coordinators.contains_key(&aid)
            })
        };
        engaged(&aid.coordinator)
            || self
                .touched
                .get(&aid)
                .is_some_and(|gids| gids.iter().any(engaged))
            || self
                .touched_read
                .get(&aid)
                .is_some_and(|gids| gids.iter().any(engaged))
    }

    /// Grants every front waiter whose heap lock is now acquirable, runs the
    /// parked continuations, and repeats until no queue makes progress.
    /// Returns whether anything was granted.
    fn cc_pump(&mut self) -> bool {
        let mut any = false;
        loop {
            let mut progressed = false;
            for (key, aid, mode) in self.cc.fronts() {
                let Some(guardian) = self.guardians.get_mut(&key.gid) else {
                    continue;
                };
                if !guardian.up {
                    continue;
                }
                let granted = match guardian.heap.get(key.hid).map(|s| s.body.kind()) {
                    Ok(ObjKind::Atomic) => match mode {
                        LockMode::Shared => guardian.heap.acquire_read(key.hid, aid).is_ok(),
                        LockMode::Exclusive => guardian.heap.acquire_write(key.hid, aid).is_ok(),
                    },
                    Ok(ObjKind::Mutex) => guardian.heap.seize(key.hid, aid).is_ok(),
                    Err(_) => false,
                };
                if !granted {
                    continue;
                }
                let waiter = self.cc.take_front(key).expect("front just snapshotted");
                let waited = self.clock.now().saturating_sub(waiter.parked_at);
                self.obs.observe("cc.wait_us", waited);
                self.obs.event(argus_obs::Event::LockGranted {
                    mode: waiter.mode.name(),
                    waited_us: waited,
                });
                self.tracer.complete(
                    "cc",
                    "lock_wait",
                    key.gid.0,
                    Some(tkey(waiter.aid)),
                    waiter.parked_at,
                    &[
                        ("hid", u64::from(key.hid.0)),
                        ("holder_seq", waiter.holder.map_or(0, |h| h.seq)),
                    ],
                );
                match waiter.cont {
                    CcCont::Read => self.note_read(key.gid, waiter.aid),
                    CcCont::Write(f) => {
                        let gu = self.guardians.get_mut(&key.gid).expect("granted above");
                        gu.heap
                            .write_value(key.hid, waiter.aid, f)
                            .expect("write lock just granted");
                        self.note_write(key.gid, waiter.aid, key.hid);
                    }
                    CcCont::Mutex(f) => {
                        let gu = self.guardians.get_mut(&key.gid).expect("granted above");
                        gu.heap
                            .mutate_mutex(key.hid, waiter.aid, f)
                            .expect("mutex just seized");
                        gu.heap
                            .release(key.hid, waiter.aid)
                            .expect("mutex just seized");
                        self.note_write(key.gid, waiter.aid, key.hid);
                    }
                }
                progressed = true;
                any = true;
            }
            if !progressed {
                break;
            }
        }
        any
    }

    /// Expires parked requests whose lock-wait deadline has passed on the
    /// simulated clock ([`CcPolicy::Timeout`]), aborting their actions.
    /// Returns whether anything expired. Drivers that advanced the clock
    /// themselves can call this directly; [`World::run_until_quiet`] calls
    /// it when otherwise idle.
    pub fn cc_tick(&mut self) -> bool {
        let expired = self.cc.expired(self.clock.now());
        let any = !expired.is_empty();
        for aid in expired {
            self.obs.inc("cc.timeouts");
            self.cc_fates.insert(aid, CcFate::TimedOut);
            self.abort_local(aid);
        }
        any
    }

    /// Whether `aid` has a parked lock request.
    pub fn cc_blocked(&self, aid: ActionId) -> bool {
        self.cc.is_blocked(aid)
    }

    /// Every action with a parked lock request, in id order.
    pub fn cc_blocked_actions(&self) -> BTreeSet<ActionId> {
        self.cc.blocked_actions()
    }

    /// Total parked lock requests.
    pub fn cc_waiter_count(&self) -> usize {
        self.cc.waiter_count()
    }

    /// The earliest lock-wait deadline of any parked request, if the world
    /// runs the timeout policy — drivers advance the clock here when every
    /// in-flight action is parked.
    pub fn cc_next_deadline(&self) -> Option<u64> {
        self.cc.next_deadline()
    }

    /// Why the scheduler gave up on `aid`, if it did.
    pub fn cc_fate(&self, aid: ActionId) -> Option<CcFate> {
        self.cc_fates.get(&aid).copied()
    }

    /// Every deadlock broken so far, in detection order.
    pub fn cc_deadlock_reports(&self) -> &[DeadlockReport] {
        &self.cc_deadlocks
    }

    /// Actions the world still considers live: begun and neither committed
    /// nor aborted — they may legitimately hold locks. The stale-lock lint
    /// (I11) checks quiesced heaps against this set.
    pub fn live_actions(&self) -> BTreeSet<ActionId> {
        let mut live: BTreeSet<ActionId> = self.touched.keys().copied().collect();
        live.extend(self.touched_read.keys().copied());
        live.extend(self.cc.blocked_actions());
        for guardian in self.guardians.values() {
            live.extend(guardian.participants.keys().copied());
            live.extend(guardian.coordinators.keys().copied());
            live.extend(guardian.mos.keys().copied());
        }
        live
    }

    /// Binds the stable variable `name` at `g` to `value` under `aid`
    /// (write-locks the stable root).
    pub fn set_stable(
        &mut self,
        g: GuardianId,
        aid: ActionId,
        name: &str,
        value: Value,
    ) -> WorldResult<()> {
        let guardian = self.live(g)?;
        let root = guardian
            .heap
            .stable_root()
            .expect("live guardians always have a stable root");
        guardian.heap.acquire_write(root, aid)?;
        guardian.bind_stable(aid, name, value)?;
        self.note_write(g, aid, root);
        Ok(())
    }

    /// Early-prepares `aid`'s current MOS at `g` (§4.4); objects that were
    /// inaccessible stay in the MOS.
    pub fn early_prepare(&mut self, g: GuardianId, aid: ActionId) -> WorldResult<()> {
        let guardian = self.live(g)?;
        let mos = guardian.mos.remove(&aid).unwrap_or_default();
        match guardian.rs.write_entry(aid, &mos, &guardian.heap) {
            Ok(leftover) => {
                guardian.mos.insert(aid, leftover);
                Ok(())
            }
            Err(e) if e.is_crash() => {
                self.mark_crashed(g);
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Locally aborts an action that has not entered two-phase commit.
    /// Parked lock requests of the action are cancelled, and any locks it
    /// released may wake other waiters.
    pub fn abort_local(&mut self, aid: ActionId) {
        self.cc.cancel(aid);
        let mut touched = self.touched.remove(&aid).unwrap_or_default();
        touched.extend(self.touched_read.remove(&aid).unwrap_or_default());
        for g in &touched {
            if let Some(guardian) = self.guardians.get_mut(g) {
                guardian.heap.abort_action(aid);
                guardian.mos.remove(&aid);
                guardian.known.remove(&aid);
                guardian.rs.discard(aid);
            }
        }
        if cfg!(debug_assertions) {
            // Locks are only ever taken at touched guardians, so the
            // leak check need not visit the rest of the world.
            for g in &touched {
                let Some(guardian) = self.guardians.get(g) else {
                    continue;
                };
                let held = guardian.heap.locks_held_by(aid);
                debug_assert!(
                    held.is_empty(),
                    "aborted action {aid} still holds locks on {held:?} at {g}"
                );
            }
        }
        if let Some(start) = self.begin_ts.remove(&aid) {
            self.tracer.complete(
                "action",
                "action",
                aid.coordinator.0,
                Some(tkey(aid)),
                start,
                &[("committed", 0)],
            );
        }
        self.outcomes.insert(aid, false);
        self.cc_pump();
    }

    /// Runs housekeeping at `g`.
    pub fn housekeep(&mut self, g: GuardianId, mode: HousekeepingMode) -> WorldResult<()> {
        // Housekeeping snapshots and truncates the log; staged entries must
        // reach it first.
        self.flush_staged(g)?;
        let guardian = self.live(g)?;
        // Split borrow: the recovery system reads the heap during snapshot.
        let Guardian { rs, heap, .. } = guardian;
        match rs.housekeeping(heap, mode) {
            Ok(()) => Ok(()),
            Err(e) if e.is_crash() => {
                // The fault plan fired mid-pass: the node goes down with the
                // old log still authoritative (the switch is the last step).
                self.mark_crashed(g);
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    // ---- two-phase commit -------------------------------------------------

    /// Commits a top-level action: the full two-phase commit of §2.2, driven
    /// to quiescence.
    pub fn commit(&mut self, aid: ActionId) -> WorldResult<Outcome> {
        let timer = self.obs.phase("twopc.commit_round_us");
        // Capture the participant set up front: the coordinator clears the
        // touched maps when the action finishes.
        let mut hk_gids: BTreeSet<GuardianId> = self.touched.get(&aid).cloned().unwrap_or_default();
        if let Some(readers) = self.touched_read.get(&aid) {
            hk_gids.extend(readers.iter().copied());
        }
        hk_gids.insert(aid.coordinator);
        let outcome = self.commit_inner(aid)?;
        timer.stop();
        self.obs.inc(match outcome {
            Outcome::Committed => "world.commits",
            Outcome::Aborted => "world.aborts",
            Outcome::Pending => "world.pending",
        });
        // Apply any automatic housekeeping policies now that the log grew
        // ("as frequently as needed", ch. 5). Only this action's
        // participants appended records; every guardian's log growth is
        // checked at a commit it takes part in.
        for g in hk_gids {
            self.maybe_housekeep(g)?;
        }
        Ok(outcome)
    }

    fn commit_inner(&mut self, aid: ActionId) -> WorldResult<Outcome> {
        self.commit_start(aid)?;
        self.commit_settle(aid)
    }

    /// Launches two-phase commit for `aid` without driving it to
    /// quiescence. Several actions started this way proceed concurrently:
    /// their prepare/commit records share group-commit forces. Settle each
    /// with [`World::commit_settle`].
    pub fn commit_start(&mut self, aid: ActionId) -> WorldResult<()> {
        let origin = aid.coordinator;
        let mut gids: BTreeSet<GuardianId> = self.touched.get(&aid).cloned().unwrap_or_default();
        if let Some(readers) = self.touched_read.get(&aid) {
            gids.extend(readers.iter().copied());
        }
        gids.insert(origin);
        let guardian = self.live(origin)?;
        let coordinator = Coordinator::new(aid, gids.into_iter().collect());
        let effects = coordinator.start();
        guardian.coordinators.insert(aid, coordinator);
        self.exec_coord(origin, aid, effects)
    }

    /// Drives the network to quiescence and reports the fate of a commit
    /// launched with [`World::commit_start`].
    pub fn commit_settle(&mut self, aid: ActionId) -> WorldResult<Outcome> {
        let origin = aid.coordinator;
        self.run_until_quiet()?;

        if let Some(&committed) = self.outcomes.get(&aid) {
            return Ok(if committed {
                Outcome::Committed
            } else {
                Outcome::Aborted
            });
        }
        let Some(guardian) = self.guardians.get(&origin) else {
            return Ok(Outcome::Pending);
        };
        if !guardian.up {
            return Ok(Outcome::Pending);
        }
        match guardian.coordinators.get(&aid).map(|c| c.phase()) {
            Some(argus_twopc::CoordPhase::Preparing) => {
                // Some participant is down or silent: unilateral abort
                // (§2.2.1, the Argus-system timeout).
                let guardian = self.guardian_mut(origin)?;
                let effects = guardian
                    .coordinators
                    .get_mut(&aid)
                    .map(|c| c.abort_unilaterally())
                    .unwrap_or_default();
                self.exec_coord(origin, aid, effects)?;
                self.run_until_quiet()?;
                Ok(Outcome::Aborted)
            }
            Some(argus_twopc::CoordPhase::Committing) => {
                // Committed; the missing acknowledgments arrive after the
                // crashed participant restarts.
                Ok(Outcome::Committed)
            }
            Some(argus_twopc::CoordPhase::Aborting) => Ok(Outcome::Aborted),
            _ => Ok(Outcome::Pending),
        }
    }

    // ---- crashes and restarts ----------------------------------------------

    /// Crashes a guardian: volatile state is lost; the stable media survive.
    pub fn crash(&mut self, g: GuardianId) {
        self.mark_crashed(g);
    }

    fn mark_crashed(&mut self, g: GuardianId) {
        if let Some(guardian) = self.guardians.get_mut(&g) {
            if guardian.up {
                self.obs.inc("world.crashes");
            }
            guardian.up = false;
            // Staged-but-unforced entries died with the volatile buffer;
            // their continuations must never run (the participants never
            // replied, so two-phase commit resolves them after restart).
            guardian.staged.clear();
            guardian.force_sched.flushed();
        }
        self.staged_ready.remove(&g);
        self.net.mark_down(g);
        // Requests parked on objects in the crashed heap are moot: the
        // volatile heap (locks included) is gone. Abort the waiting actions
        // so their drivers see a fate and can retry.
        let drained = self.cc.drain_guardian(g);
        for (_key, waiter) in drained {
            self.cc_fates.insert(waiter.aid, CcFate::CrashDrained);
            self.abort_local(waiter.aid);
        }
    }

    /// Arms the guardian's fault plan: the node will crash when the
    /// `n + 1`-th subsequent low-level page write begins.
    pub fn arm_crash_after_writes(&mut self, g: GuardianId, n: u64) -> WorldResult<()> {
        let guardian = self.guardian_mut(g)?;
        guardian.plan.arm_after_writes(n);
        Ok(())
    }

    /// Arms the guardian's fault plan on *any* device operation — reads,
    /// writes, and forces all count — so a crash can land inside the
    /// read-mostly scan of recovery itself.
    pub fn arm_crash_after_ops(&mut self, g: GuardianId, n: u64) -> WorldResult<()> {
        let guardian = self.guardian_mut(g)?;
        guardian.plan.arm_after_ops(n);
        Ok(())
    }

    /// A handle on the guardian's fault plan. Clones share countdown,
    /// trace, and op-count state, so crash-schedule sweepers can count
    /// device operations and read the crash frontier from outside.
    pub fn fault_plan(&self, g: GuardianId) -> WorldResult<FaultPlan> {
        Ok(self.guardian(g)?.plan.clone())
    }

    /// Decays one media copy of page `pno` on the guardian's store (media
    /// failure injection, §3.1). Returns `false` when the organization's
    /// media keep no redundant copy to decay (plain memory store).
    pub fn decay_page(&mut self, g: GuardianId, pno: argus_stable::PageNo) -> WorldResult<bool> {
        Ok(self.guardian_mut(g)?.rs.decay_page(pno))
    }

    /// Whether the node is up. A node downed by an armed fault plan is only
    /// discovered at its next storage operation, so check after operations.
    pub fn is_up(&self, g: GuardianId) -> bool {
        self.guardians
            .get(&g)
            .map(|gu| gu.up && !gu.plan.is_crashed())
            .unwrap_or(false)
    }

    /// Selects how `g`'s next recovery pass rebuilds state. Returns whether
    /// the guardian's organization supports the mode (only the redo
    /// organization supports `Parallel` and `OnDemand`).
    pub fn set_recovery_mode(
        &mut self,
        g: GuardianId,
        mode: argus_core::RecoveryMode,
    ) -> WorldResult<bool> {
        Ok(self.guardian_mut(g)?.rs.set_recovery_mode(mode))
    }

    /// Log entries an on-demand recovery has left unrestored on `g`.
    pub fn lazy_pending(&self, g: GuardianId) -> WorldResult<u64> {
        Ok(self.guardian(g)?.rs.lazy_pending())
    }

    /// The modeled restart makespan of `g`'s last recovery pass (`None`
    /// unless the organization tracks one — the redo organization's
    /// scan-plus-slowest-worker figure for parallel replay).
    pub fn recovery_makespan_us(&self, g: GuardianId) -> WorldResult<Option<u64>> {
        Ok(self.guardian(g)?.rs.recovery_makespan_us())
    }

    /// The heap-miss path: materializes `uid` on guardian `g` if it is
    /// lazily pending from an on-demand recovery, returning its heap handle.
    /// `Ok(None)` means the object is simply unknown — a true dangling
    /// reference, not a deferred one.
    pub fn demand(&mut self, g: GuardianId, uid: Uid) -> WorldResult<Option<HeapId>> {
        let guardian = self.guardian_mut(g)?;
        if let Some(h) = guardian.heap.lookup(uid) {
            return Ok(Some(h));
        }
        if guardian.rs.demand_restore(uid, &mut guardian.heap)? {
            self.obs.inc("world.demand_restores");
            return Ok(self.guardian(g)?.heap.lookup(uid));
        }
        Ok(None)
    }

    /// Restarts a crashed guardian: runs recovery, resumes in-doubt
    /// participants (they query their coordinators) and committing
    /// coordinators (they re-send commits), then drives the network to
    /// quiescence. Returns the recovery outcome for inspection.
    pub fn restart(&mut self, g: GuardianId) -> WorldResult<RecoveryOutcome> {
        self.restart_inner(g, None)?.ok_or_else(|| {
            WorldError::Rs(argus_core::RsError::BadState(
                "restart crashed without an armed plan".into(),
            ))
        })
    }

    /// Restarts a crashed guardian with a *second* crash armed to fire once
    /// `ops` further device operations (reads, writes, and forces all
    /// count) have begun — so the fault lands inside recovery itself, or in
    /// the protocol resumption right after it. Returns `Ok(None)` when the
    /// second crash interrupted recovery: the guardian is left down and can
    /// be restarted again with a plain [`World::restart`].
    pub fn restart_with_crash_after_ops(
        &mut self,
        g: GuardianId,
        ops: u64,
    ) -> WorldResult<Option<RecoveryOutcome>> {
        self.restart_inner(g, Some(ops))
    }

    fn restart_inner(
        &mut self,
        g: GuardianId,
        arm_ops: Option<u64>,
    ) -> WorldResult<Option<RecoveryOutcome>> {
        let timer = self.obs.phase("world.restart_us");
        // The crash already cleared the staged batch; drop any stale ready
        // marker before recovery repopulates the world's view of `g`.
        self.staged_ready.remove(&g);
        let tracer = self.tracer.clone();
        // Begin/End (not retroactive Complete) is safe here: every exit
        // path drops the guard, including the crash-in-recovery returns.
        let _restart_span = tracer.begin("recovery", "restart", g.0, None);
        let guardian = self.guardian_mut(g)?;
        guardian.plan.heal();
        if let Some(n) = arm_ops {
            guardian.plan.arm_after_ops(n);
        }
        match guardian.rs.simulate_crash() {
            Ok(()) => {}
            Err(e) if e.is_crash() => {
                // The armed second crash fired in the pre-recovery device
                // re-read (superblock scan) — recovery never began.
                timer.stop();
                self.obs.inc("world.recovery_crashes");
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        }
        guardian.staged.clear();
        guardian.force_sched.flushed();
        guardian.heap = argus_objects::Heap::new();
        guardian.mos.clear();
        guardian.known.clear();
        guardian.resolved.clear();
        guardian.coord_done.clear();
        guardian.coordinators.clear();
        guardian.participants.clear();
        let rec_t0 = tracer.now();
        let outcome = match guardian.rs.recover(&mut guardian.heap) {
            Ok(outcome) => outcome,
            Err(e) if e.is_crash() => {
                // The armed second crash fired inside recovery. The node
                // stays down with whatever the device already holds; a
                // plain restart picks it up from there.
                timer.stop();
                self.obs.inc("world.recovery_crashes");
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        };
        tracer.complete("recovery", "recovery_pass", g.0, None, rec_t0, &[]);
        // If recovery found nothing (fresh log), re-create the stable root.
        if guardian.heap.stable_root().is_none() {
            guardian.heap = argus_objects::Heap::with_stable_root();
        }
        guardian.up = true;

        for (aid, state) in outcome.pt.iter() {
            match state {
                argus_core::PState::Committed => {
                    guardian.resolved.insert(*aid, true);
                    guardian.known.insert(*aid);
                }
                argus_core::PState::Aborted => {
                    guardian.resolved.insert(*aid, false);
                    guardian.known.insert(*aid);
                }
                argus_core::PState::Prepared => {
                    guardian.known.insert(*aid);
                }
            }
        }
        for (aid, ct_state) in outcome.ct.iter() {
            if matches!(ct_state, argus_core::CState::Done) {
                guardian.coord_done.insert(*aid);
            }
        }
        self.net.mark_up(g);

        // Resume in-doubt participants: query the coordinator (§2.2.2).
        for aid in outcome.pt.prepared_actions() {
            let (participant, effects) = Participant::resume_in_doubt(aid, aid.coordinator);
            self.guardian_mut(g)?.participants.insert(aid, participant);
            self.exec_part(g, aid, effects)?;
        }
        // Resume committing coordinators: restart phase two (§2.2.3).
        for (aid, gids) in outcome.ct.committing_actions() {
            let (coordinator, effects) = Coordinator::resume_committing(aid, gids);
            self.guardian_mut(g)?.coordinators.insert(aid, coordinator);
            self.exec_coord(g, aid, effects)?;
        }
        self.run_until_quiet()?;
        // A node coming back may be the coordinator some other guardian's
        // in-doubt participant is waiting on; model the periodic query of
        // §2.2.2 by a world-wide re-query sweep.
        self.requery_in_doubt()?;
        timer.stop();
        self.obs.inc("world.restarts");
        Ok(Some(outcome))
    }

    /// Every in-doubt participant on an up guardian re-queries its
    /// coordinator — the thesis's "if a participant has not heard from its
    /// coordinator it can query the coordinator" (§2.2.2), which a real
    /// system drives from a timer.
    pub fn requery_in_doubt(&mut self) -> WorldResult<()> {
        let queries: Vec<Envelope> = self
            .guardians
            .values()
            .filter(|guardian| guardian.up)
            .flat_map(|guardian| {
                guardian.participants.iter().filter_map(move |(aid, p)| {
                    (p.phase() == argus_twopc::PartPhase::Prepared).then_some(Envelope {
                        from: guardian.id,
                        to: p.coordinator,
                        msg: Msg::QueryOutcome { aid: *aid },
                    })
                })
            })
            .collect();
        for q in queries {
            self.net.send(q);
        }
        self.run_until_quiet()
    }

    // ---- message loop -------------------------------------------------------

    /// Delivers messages until the network is quiet *and* no guardian holds
    /// staged log entries.
    ///
    /// Between deliveries the group-commit scheduler is polled: a guardian
    /// whose batch filled up or whose window expired forces immediately.
    /// When the network drains, every remaining staged batch is forced (the
    /// idle flush — with no more work arriving there is nothing to gain by
    /// waiting), which typically releases replies back into the network, so
    /// the loop repeats until both are empty.
    pub fn run_until_quiet(&mut self) -> WorldResult<()> {
        let mut budget = 1_000_000u64;
        loop {
            while let Some(envelope) = self.net.deliver_next() {
                self.deliver(envelope)?;
                self.flush_due_forces()?;
                budget -= 1;
                if budget == 0 {
                    return Err(WorldError::Rs(argus_core::RsError::BadState(
                        "message loop did not quiesce".into(),
                    )));
                }
            }
            let flushed = self.flush_all_staged()?;
            // Forces just installed commits/aborts, releasing heap locks:
            // grant what the releases unblocked, then expire overdue waits.
            let pumped = self.cc_pump();
            let ticked = self.cc_tick();
            if !flushed && !pumped && !ticked {
                return Ok(());
            }
        }
    }

    /// Records that `g` just staged a log entry: the guardian joins the
    /// ready set, and its batch's force deadline enters the min-deadline
    /// heap (staging time, if the batch is already due — e.g. it just
    /// filled up). Keeping both structures current here is what lets the
    /// message loop poll in O(log n) of the *staged* guardians instead of
    /// scanning the whole world per delivery.
    fn note_staged_batch(&mut self, g: GuardianId) {
        let Some(guardian) = self.guardians.get(&g) else {
            return;
        };
        let now = self.clock.now();
        let due_at = if guardian.force_sched.due(now) {
            now
        } else {
            guardian.force_sched.deadline().unwrap_or(now)
        };
        self.staged_ready.insert(g);
        self.force_due.push(Reverse((due_at, g)));
    }

    /// Forces the staged batch of every up guardian whose scheduler says
    /// the batch is due (full, or window expired on the simulated clock).
    ///
    /// Pops only heap entries whose deadline has passed; each pop is one
    /// `world.sched.polls` tick, so per-delivery work is proportional to
    /// guardians with due batches — not to the size of the world.
    fn flush_due_forces(&mut self) -> WorldResult<()> {
        let now = self.clock.now();
        while let Some(&Reverse((at, g))) = self.force_due.peek() {
            if at > now {
                break;
            }
            self.force_due.pop();
            self.obs.inc("world.sched.polls");
            let due = self
                .guardians
                .get(&g)
                .map(|gu| gu.up && gu.force_sched.due(now))
                .unwrap_or(false);
            if due {
                self.flush_staged(g)?;
            }
        }
        Ok(())
    }

    /// Forces every non-empty staged batch; returns whether any force ran
    /// (and hence new messages may be in flight). Visits the ready set, not
    /// every guardian.
    fn flush_all_staged(&mut self) -> WorldResult<bool> {
        let pending: Vec<GuardianId> = self
            .staged_ready
            .iter()
            .copied()
            .filter(|g| {
                self.guardians
                    .get(g)
                    .map(|gu| gu.up && !gu.staged.is_empty())
                    .unwrap_or(false)
            })
            .collect();
        self.obs
            .add("world.sched.polls", self.staged_ready.len() as u64);
        let any = !pending.is_empty();
        for g in pending {
            self.flush_staged(g)?;
        }
        Ok(any)
    }

    /// Runs the shared force for guardian `g`'s staged batch, then fires the
    /// waiting two-phase-commit continuations in staging order.
    ///
    /// One device force publishes every staged entry atomically (the log's
    /// superblock is the commit point), so a crash during the force loses
    /// the whole batch — the continuations are dropped and the protocol
    /// resolves the actions after restart, exactly as for an unbatched
    /// force that crashed.
    fn flush_staged(&mut self, g: GuardianId) -> WorldResult<()> {
        let Some(guardian) = self.guardians.get_mut(&g) else {
            return Ok(());
        };
        if !guardian.up || guardian.staged.is_empty() {
            return Ok(());
        }
        let staged = std::mem::take(&mut guardian.staged);
        let batch = guardian.force_sched.batch_id();
        guardian.force_sched.flushed();
        let force_t0 = self.clock.now();
        let force = guardian.rs.force_staged();
        self.staged_ready.remove(&g);
        match force {
            Ok(()) => {}
            Err(e) if e.is_crash() => {
                // The batch died with the volatile buffer: no spans — the
                // staged actions resolve through recovery, not this force.
                self.mark_crashed(g);
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        }
        self.tracer.complete(
            "force",
            "force",
            g.0,
            None,
            force_t0,
            &[("batch", batch), ("ops", staged.len() as u64)],
        );
        for &(op, staged_at) in &staged {
            self.tracer.complete(
                "force",
                "force_wait",
                g.0,
                Some(tkey(op.aid())),
                staged_at,
                &[("batch", batch)],
            );
        }
        for (op, _staged_at) in staged {
            if !self.guardians.get(&g).map(|gu| gu.up).unwrap_or(false) {
                break;
            }
            match op {
                StagedOp::Prepare(aid) => {
                    let guardian = self.guardian_mut(g)?;
                    let more = guardian
                        .participants
                        .get_mut(&aid)
                        .map(|p| p.prepare_succeeded())
                        .unwrap_or_default();
                    self.exec_part(g, aid, more)?;
                }
                StagedOp::Commit(aid) => {
                    let guardian = self.guardian_mut(g)?;
                    guardian.heap.commit_action(aid);
                    guardian.resolved.insert(aid, true);
                    let more = guardian
                        .participants
                        .get_mut(&aid)
                        .map(|p| p.commit_forced())
                        .unwrap_or_default();
                    self.exec_part(g, aid, more)?;
                }
                StagedOp::Abort(aid) => {
                    let guardian = self.guardian_mut(g)?;
                    guardian.heap.abort_action(aid);
                    guardian.resolved.insert(aid, false);
                    let more = guardian
                        .participants
                        .get_mut(&aid)
                        .map(|p| p.abort_forced())
                        .unwrap_or_default();
                    self.exec_part(g, aid, more)?;
                }
                StagedOp::Committing(aid) => {
                    let guardian = self.guardian_mut(g)?;
                    let more = guardian
                        .coordinators
                        .get_mut(&aid)
                        .map(|c| c.committing_forced())
                        .unwrap_or_default();
                    self.exec_coord(g, aid, more)?;
                }
                StagedOp::Done(aid) => {
                    let guardian = self.guardian_mut(g)?;
                    let more = guardian
                        .coordinators
                        .get_mut(&aid)
                        .map(|c| c.done_forced())
                        .unwrap_or_default();
                    self.exec_coord(g, aid, more)?;
                }
            }
        }
        Ok(())
    }

    fn deliver(&mut self, envelope: Envelope) -> WorldResult<()> {
        let g = envelope.to;
        let aid = envelope.msg.aid();
        let Some(guardian) = self.guardians.get_mut(&g) else {
            return Ok(());
        };
        if !guardian.up {
            return Ok(());
        }
        match &envelope.msg {
            Msg::Prepare { .. } => {
                if guardian.participants.contains_key(&aid) {
                    return Ok(()); // duplicate prepare
                }
                if let Some(&committed) = guardian.resolved.get(&aid) {
                    // Already resolved here (e.g. coordinator retry storm).
                    let reply = if committed {
                        Msg::PrepareOk { aid }
                    } else {
                        Msg::PrepareRefused { aid }
                    };
                    self.net.send(Envelope {
                        from: g,
                        to: envelope.from,
                        msg: reply,
                    });
                    return Ok(());
                }
                if !guardian.known.contains(&aid) {
                    // "If the action is unknown at the participant (because
                    // it never ran there, was aborted locally, or was wiped
                    // out by a crash), then it replies aborted" (§2.2.2).
                    self.net.send(Envelope {
                        from: g,
                        to: envelope.from,
                        msg: Msg::PrepareRefused { aid },
                    });
                    return Ok(());
                }
                let (participant, effects) = Participant::on_prepare(aid, envelope.from);
                guardian.participants.insert(aid, participant);
                self.exec_part(g, aid, effects)
            }
            Msg::Commit { .. } | Msg::Abort { .. } | Msg::Outcome { .. } => {
                if guardian.participants.contains_key(&aid) {
                    let effects = guardian
                        .participants
                        .get_mut(&aid)
                        .map(|p| p.on_msg(&envelope.msg))
                        .unwrap_or_default();
                    self.exec_part(g, aid, effects)
                } else {
                    // Participant already resolved and forgotten: re-ack so
                    // the coordinator can finish.
                    let reply = match &envelope.msg {
                        Msg::Commit { .. } => Some(Msg::CommitAck { aid }),
                        Msg::Abort { .. } => Some(Msg::AbortAck { aid }),
                        _ => None,
                    };
                    if let Some(msg) = reply {
                        self.net.send(Envelope {
                            from: g,
                            to: envelope.from,
                            msg,
                        });
                    }
                    Ok(())
                }
            }
            Msg::PrepareOk { .. }
            | Msg::PrepareRefused { .. }
            | Msg::CommitAck { .. }
            | Msg::AbortAck { .. } => {
                let effects = guardian
                    .coordinators
                    .get_mut(&aid)
                    .map(|c| c.on_msg(envelope.from, &envelope.msg))
                    .unwrap_or_default();
                self.exec_coord(g, aid, effects)
            }
            Msg::QueryOutcome { .. } => {
                if let Some(coordinator) = guardian.coordinators.get_mut(&aid) {
                    let effects = coordinator.on_msg(envelope.from, &envelope.msg);
                    self.exec_coord(g, aid, effects)
                } else {
                    // Finished (done on the log) or forgotten (⇒ aborted,
                    // §2.2.3).
                    let committed = guardian.coord_done.contains(&aid)
                        || self.outcomes.get(&aid) == Some(&true);
                    self.net.send(Envelope {
                        from: g,
                        to: envelope.from,
                        msg: Msg::Outcome { aid, committed },
                    });
                    Ok(())
                }
            }
        }
    }

    fn exec_coord(
        &mut self,
        g: GuardianId,
        aid: ActionId,
        effects: Vec<CoordEffect>,
    ) -> WorldResult<()> {
        let mut queue: std::collections::VecDeque<CoordEffect> = effects.into();
        while let Some(effect) = queue.pop_front() {
            match effect {
                CoordEffect::Send { to, msg } => {
                    self.net.send(Envelope { from: g, to, msg });
                }
                CoordEffect::ForceCommitting => {
                    let _timer = self.obs.phase("twopc.committing_us");
                    let now = self.clock.now();
                    let guardian = self.guardian_mut(g)?;
                    let gids: Vec<GuardianId> = guardian
                        .coordinators
                        .get(&aid)
                        .map(|c| c.participants.clone())
                        .unwrap_or_default();
                    let mut staged_now = false;
                    match guardian.rs.stage_committing(aid, &gids) {
                        Ok(true) => {
                            guardian.staged.push((StagedOp::Committing(aid), now));
                            guardian.force_sched.note_staged(now);
                            staged_now = true;
                        }
                        Ok(false) => {
                            let more = guardian
                                .coordinators
                                .get_mut(&aid)
                                .map(|c| c.committing_forced())
                                .unwrap_or_default();
                            queue.extend(more);
                        }
                        Err(e) if e.is_crash() => {
                            self.mark_crashed(g);
                            return Ok(());
                        }
                        Err(e) => return Err(e.into()),
                    }
                    if staged_now {
                        self.note_staged_batch(g);
                    }
                    self.tracer
                        .complete("twopc", "committing", g.0, Some(tkey(aid)), now, &[]);
                }
                CoordEffect::ForceDone => {
                    let now = self.clock.now();
                    let guardian = self.guardian_mut(g)?;
                    let mut staged_now = false;
                    match guardian.rs.stage_done(aid) {
                        Ok(true) => {
                            guardian.staged.push((StagedOp::Done(aid), now));
                            guardian.force_sched.note_staged(now);
                            staged_now = true;
                        }
                        Ok(false) => {
                            let more = guardian
                                .coordinators
                                .get_mut(&aid)
                                .map(|c| c.done_forced())
                                .unwrap_or_default();
                            queue.extend(more);
                        }
                        Err(e) if e.is_crash() => {
                            self.mark_crashed(g);
                            return Ok(());
                        }
                        Err(e) => return Err(e.into()),
                    }
                    if staged_now {
                        self.note_staged_batch(g);
                    }
                    self.tracer
                        .complete("twopc", "done", g.0, Some(tkey(aid)), now, &[]);
                }
                CoordEffect::Finished { committed } => {
                    if let Some(start) = self.begin_ts.remove(&aid) {
                        self.tracer.complete(
                            "action",
                            "action",
                            aid.coordinator.0,
                            Some(tkey(aid)),
                            start,
                            &[("committed", u64::from(committed))],
                        );
                    }
                    self.outcomes.insert(aid, committed);
                    let guardian = self.guardian_mut(g)?;
                    guardian.coordinators.remove(&aid);
                    if committed {
                        guardian.coord_done.insert(aid);
                    }
                    self.touched.remove(&aid);
                    self.touched_read.remove(&aid);
                }
            }
        }
        Ok(())
    }

    fn exec_part(
        &mut self,
        g: GuardianId,
        aid: ActionId,
        effects: Vec<PartEffect>,
    ) -> WorldResult<()> {
        let mut queue: std::collections::VecDeque<PartEffect> = effects.into();
        while let Some(effect) = queue.pop_front() {
            match effect {
                PartEffect::Send { to, msg } => {
                    self.net.send(Envelope { from: g, to, msg });
                }
                PartEffect::PrepareLocally => {
                    let _timer = self.obs.phase("twopc.prepare_us");
                    let now = self.clock.now();
                    let guardian = self.guardian_mut(g)?;
                    let mos = guardian.mos.remove(&aid).unwrap_or_default();
                    // Split borrow: the recovery system reads the heap.
                    let Guardian {
                        rs,
                        heap,
                        staged,
                        force_sched,
                        participants,
                        ..
                    } = guardian;
                    let mut staged_now = false;
                    match rs.stage_prepare(aid, &mos, heap) {
                        Ok(true) => {
                            staged.push((StagedOp::Prepare(aid), now));
                            force_sched.note_staged(now);
                            staged_now = true;
                        }
                        Ok(false) => {
                            let more = participants
                                .get_mut(&aid)
                                .map(|p| p.prepare_succeeded())
                                .unwrap_or_default();
                            queue.extend(more);
                        }
                        Err(e) if e.is_crash() => {
                            self.mark_crashed(g);
                            return Ok(());
                        }
                        Err(_) => {
                            let more = participants
                                .get_mut(&aid)
                                .map(|p| p.prepare_failed())
                                .unwrap_or_default();
                            queue.extend(more);
                        }
                    }
                    if staged_now {
                        self.note_staged_batch(g);
                    }
                    self.tracer
                        .complete("twopc", "prepare", g.0, Some(tkey(aid)), now, &[]);
                }
                PartEffect::ForceCommit => {
                    let _timer = self.obs.phase("twopc.commit_us");
                    let now = self.clock.now();
                    let guardian = self.guardian_mut(g)?;
                    let mut staged_now = false;
                    match guardian.rs.stage_commit(aid) {
                        Ok(true) => {
                            guardian.staged.push((StagedOp::Commit(aid), now));
                            guardian.force_sched.note_staged(now);
                            staged_now = true;
                        }
                        Ok(false) => {
                            guardian.heap.commit_action(aid);
                            guardian.resolved.insert(aid, true);
                            let more = guardian
                                .participants
                                .get_mut(&aid)
                                .map(|p| p.commit_forced())
                                .unwrap_or_default();
                            queue.extend(more);
                        }
                        Err(e) if e.is_crash() => {
                            self.mark_crashed(g);
                            return Ok(());
                        }
                        Err(e) => return Err(e.into()),
                    }
                    if staged_now {
                        self.note_staged_batch(g);
                    }
                    self.tracer
                        .complete("twopc", "commit", g.0, Some(tkey(aid)), now, &[]);
                }
                PartEffect::ForceAbort => {
                    let _timer = self.obs.phase("twopc.abort_us");
                    let now = self.clock.now();
                    let guardian = self.guardian_mut(g)?;
                    let mut staged_now = false;
                    match guardian.rs.stage_abort(aid) {
                        Ok(true) => {
                            guardian.staged.push((StagedOp::Abort(aid), now));
                            guardian.force_sched.note_staged(now);
                            staged_now = true;
                        }
                        Ok(false) => {
                            guardian.heap.abort_action(aid);
                            guardian.resolved.insert(aid, false);
                            let more = guardian
                                .participants
                                .get_mut(&aid)
                                .map(|p| p.abort_forced())
                                .unwrap_or_default();
                            queue.extend(more);
                        }
                        Err(e) if e.is_crash() => {
                            self.mark_crashed(g);
                            return Ok(());
                        }
                        Err(e) => return Err(e.into()),
                    }
                    if staged_now {
                        self.note_staged_batch(g);
                    }
                    self.tracer
                        .complete("twopc", "abort", g.0, Some(tkey(aid)), now, &[]);
                }
                PartEffect::Finished { .. } => {
                    let guardian = self.guardian_mut(g)?;
                    guardian.participants.remove(&aid);
                }
            }
        }
        Ok(())
    }

    /// The final verdict for `aid`, if the protocol completed at the
    /// coordinator.
    pub fn verdict(&self, aid: ActionId) -> Option<bool> {
        self.outcomes.get(&aid).copied()
    }

    /// Network statistics.
    pub fn network(&self) -> &SimNetwork {
        &self.net
    }

    /// Enables deterministic network fault injection (message duplication
    /// and reordering) for everything delivered from now on.
    pub fn enable_network_faults(&mut self, seed: u64, duplicate_prob: f64, defer_prob: f64) {
        self.net
            .set_faults(Some(NetFaults::new(seed, duplicate_prob, defer_prob)));
    }

    /// Installs (or removes) a fully-specified network fault injector —
    /// the general form of [`World::enable_network_faults`], used by fault
    /// explorers that also want message loss ([`NetFaults::with_drop`]).
    pub fn set_network_faults(&mut self, faults: Option<NetFaults>) {
        self.net.set_faults(faults);
    }

    /// Partitions the network between `a` and `b`: mail between them (both
    /// directions) is held — not lost — until the pair is healed.
    pub fn partition(&mut self, a: GuardianId, b: GuardianId) {
        self.net.partition(a, b);
    }

    /// Heals the partition between `a` and `b`; held mail flows again.
    pub fn heal_partition(&mut self, a: GuardianId, b: GuardianId) {
        self.net.heal(a, b);
    }

    /// Heals every active partition.
    pub fn heal_all_partitions(&mut self) {
        self.net.heal_all();
    }

    /// Pauses a guardian: it stops receiving mail (held, not lost) while
    /// the rest of the world — including the shared clock — runs on. The
    /// cheap model of a stalled node whose clock has skewed behind.
    pub fn pause_guardian(&mut self, g: GuardianId) {
        self.net.pause(g);
    }

    /// Resumes a paused guardian; its held mail flows again.
    pub fn resume_guardian(&mut self, g: GuardianId) {
        self.net.resume(g);
    }

    /// Installs an automatic housekeeping policy at `g`: after each commit
    /// or abort record, if the guardian's log has grown past `max_entries`,
    /// the world runs a housekeeping pass — "Whenever the Argus system has
    /// determined that enough old information has accumulated on stable
    /// storage at a guardian, it calls the housekeeping operation" (§2.3).
    pub fn set_housekeeping_policy(
        &mut self,
        g: GuardianId,
        max_entries: u64,
        mode: HousekeepingMode,
    ) -> WorldResult<()> {
        let guardian = self.guardian_mut(g)?;
        guardian.hk_policy = Some((max_entries, mode));
        Ok(())
    }

    /// Applies the housekeeping policy at `g` if its threshold is exceeded.
    /// Returns whether a pass ran.
    pub fn maybe_housekeep(&mut self, g: GuardianId) -> WorldResult<bool> {
        let guardian = self.guardian_mut(g)?;
        let Some((max_entries, mode)) = guardian.hk_policy else {
            return Ok(false);
        };
        if !guardian.up || guardian.rs.log_stats().entries <= max_entries {
            return Ok(false);
        }
        self.flush_staged(g)?;
        let guardian = self.guardian_mut(g)?;
        if !guardian.up {
            return Ok(false);
        }
        let Guardian { rs, heap, .. } = guardian;
        match rs.housekeeping(heap, mode) {
            Ok(()) => Ok(true),
            Err(e) if e.is_crash() => {
                self.mark_crashed(g);
                Ok(false)
            }
            Err(e) => Err(e.into()),
        }
    }
}
