//! E6: prepare latency with and without early prepare (§4.4), on the
//! bespoke `argus_obs::bench` harness.

use argus_core::providers::MemProvider;
use argus_core::{HybridLogRs, RecoverySystem};
use argus_objects::{ActionId, GuardianId, Heap, Value};
use argus_obs::bench::{run, BenchReport, BenchSpec};
use argus_sim::{CostModel, SimClock};

struct Rig {
    rs: HybridLogRs<MemProvider>,
    heap: Heap,
    objs: Vec<argus_objects::HeapId>,
    seq: u64,
}

fn make_rig(writes: usize) -> (Rig, SimClock) {
    let clock = SimClock::new();
    let provider = MemProvider {
        clock: clock.clone(),
        model: CostModel::fast(),
        plan: None,
    };
    let mut rs = HybridLogRs::create(provider).expect("rs");
    let mut heap = Heap::with_stable_root();
    let t0 = ActionId::new(GuardianId(0), 0);
    let root = heap.stable_root().expect("root");
    heap.acquire_write(root, t0).expect("lock");
    let objs: Vec<_> = (0..writes)
        .map(|_| heap.alloc_atomic(Value::Bytes(vec![0; 48]), Some(t0)))
        .collect();
    let refs: Vec<Value> = objs.iter().map(|h| Value::heap_ref(*h)).collect();
    heap.write_value(root, t0, |v| *v = Value::Seq(refs))
        .expect("write");
    rs.prepare(t0, &[root], &heap).expect("prepare");
    rs.commit(t0).expect("commit");
    heap.commit_action(t0);
    (
        Rig {
            rs,
            heap,
            objs,
            seq: 1,
        },
        clock,
    )
}

impl Rig {
    /// Modifies every object under a fresh action and returns (aid, mos).
    fn modify(&mut self) -> (ActionId, Vec<argus_objects::HeapId>) {
        let aid = ActionId::new(GuardianId(0), self.seq);
        self.seq += 1;
        for &h in &self.objs {
            self.heap.acquire_write(h, aid).expect("lock");
            self.heap
                .write_value(h, aid, |v| {
                    *v = Value::Bytes(vec![(self.seq & 0xFF) as u8; 48])
                })
                .expect("write");
        }
        (aid, self.objs.clone())
    }

    fn finish(&mut self, aid: ActionId) {
        self.rs.commit(aid).expect("commit");
        self.heap.commit_action(aid);
    }
}

fn main() {
    let mut report = BenchReport::new("prepare_latency");
    for writes in [4usize, 32] {
        let (mut rig, clock) = make_rig(writes);
        report.push(run(
            &format!("plain/{writes}"),
            &clock,
            BenchSpec::default(),
            || {
                let (aid, mos) = rig.modify();
                rig.rs.prepare(aid, &mos, &rig.heap).expect("prepare");
                rig.finish(aid);
            },
        ));
        let (mut rig, clock) = make_rig(writes);
        report.push(run(
            &format!("early_prepared/{writes}"),
            &clock,
            BenchSpec::default(),
            || {
                let (aid, mos) = rig.modify();
                // Off the measured path in a real system; here part of the
                // iteration but the *prepare* only forces the outcome entry.
                let leftover = rig.rs.write_entry(aid, &mos, &rig.heap).expect("early");
                rig.rs.prepare(aid, &leftover, &rig.heap).expect("prepare");
                rig.finish(aid);
            },
        ));
    }
    println!("{report}");
}
