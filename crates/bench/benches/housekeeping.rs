//! Criterion bench for E4: wall-clock housekeeping cost, compaction versus
//! snapshot. Each iteration rebuilds the workload (housekeeping consumes
//! the long log it is measured against).

use argus_core::HousekeepingMode;
use argus_guardian::{RsKind, World};
use argus_sim::{CostModel, DetRng};
use argus_workload::{Synth, SynthConfig};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn build(history: u64) -> (World, argus_objects::GuardianId) {
    let mut world = World::new(CostModel::fast());
    let mut synth = Synth::setup(
        &mut world,
        RsKind::Hybrid,
        SynthConfig {
            objects: 64,
            writes_per_action: 4,
            value_size: 48,
            ..Default::default()
        },
    )
    .expect("setup");
    let g = synth.guardian();
    let mut rng = DetRng::new(3);
    synth.run(&mut world, &mut rng, history).expect("run");
    (world, g)
}

fn bench_housekeeping(c: &mut Criterion) {
    let mut group = c.benchmark_group("housekeeping");
    group.sample_size(10);
    for mode in [HousekeepingMode::Compaction, HousekeepingMode::Snapshot] {
        for history in [500u64, 2_000] {
            group.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), history),
                &history,
                |b, &history| {
                    b.iter_batched(
                        || build(history),
                        |(mut world, g)| {
                            world.housekeep(g, mode).expect("housekeeping");
                            world
                        },
                        BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_housekeeping);
criterion_main!(benches);
