//! E4: housekeeping cost, compaction versus snapshot, on the bespoke
//! `argus_obs::bench` harness.
//!
//! Housekeeping consumes the long log it is measured against, so each
//! iteration regrows the log in the (unmeasured) setup step and measures
//! only the pass itself — the `run_batched` pattern.

use argus_core::HousekeepingMode;
use argus_guardian::{RsKind, World};
use argus_obs::bench::{run_batched, BenchReport, BenchSpec};
use argus_sim::{CostModel, DetRng};
use argus_workload::{Synth, SynthConfig};
use std::cell::RefCell;

fn main() {
    let mut report = BenchReport::new("housekeeping");
    for mode in [HousekeepingMode::Compaction, HousekeepingMode::Snapshot] {
        for history in [500u64, 2_000] {
            let mut world = World::new(CostModel::fast());
            let synth = Synth::setup(
                &mut world,
                RsKind::Hybrid,
                SynthConfig {
                    objects: 64,
                    writes_per_action: 4,
                    value_size: 48,
                    ..Default::default()
                },
            )
            .expect("setup");
            let g = synth.guardian();
            let clock = world.clock.clone();
            let world = RefCell::new(world);
            let synth = RefCell::new(synth);
            let rng = RefCell::new(DetRng::new(3));
            report.push(run_batched(
                &format!("{mode:?}/{history}"),
                &clock,
                BenchSpec::iters(10),
                || {
                    synth
                        .borrow_mut()
                        .run(&mut world.borrow_mut(), &mut rng.borrow_mut(), history)
                        .expect("run");
                },
                |()| {
                    world.borrow_mut().housekeep(g, mode).expect("housekeeping");
                },
            ));
        }
    }
    println!("{report}");
}
