//! Criterion bench for E1: wall-clock write cost per committed action
//! across the three storage organizations.

use argus_guardian::{RsKind, World};
use argus_sim::{CostModel, DetRng};
use argus_workload::{Synth, SynthConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_path");
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow] {
        for writes in [1usize, 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), writes),
                &writes,
                |b, &writes| {
                    let mut world = World::new(CostModel::fast());
                    let mut synth = Synth::setup(
                        &mut world,
                        kind,
                        SynthConfig {
                            objects: 256,
                            writes_per_action: writes,
                            value_size: 48,
                            ..Default::default()
                        },
                    )
                    .expect("setup");
                    let mut rng = DetRng::new(1);
                    b.iter(|| {
                        synth.action(&mut world, &mut rng, false).expect("action");
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_write_path);
criterion_main!(benches);
