//! E1: write cost per committed action across the three storage
//! organizations, on the bespoke `argus_obs::bench` harness.

use argus_guardian::{RsKind, World};
use argus_obs::bench::{run, BenchReport, BenchSpec};
use argus_sim::{CostModel, DetRng};
use argus_workload::{Synth, SynthConfig};

fn main() {
    let mut report = BenchReport::new("write_path");
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow] {
        for writes in [1usize, 16] {
            let mut world = World::new(CostModel::fast());
            let mut synth = Synth::setup(
                &mut world,
                kind,
                SynthConfig {
                    objects: 256,
                    writes_per_action: writes,
                    value_size: 48,
                    ..Default::default()
                },
            )
            .expect("setup");
            let mut rng = DetRng::new(1);
            let clock = world.clock.clone();
            report.push(run(
                &format!("{kind:?}/{writes}"),
                &clock,
                BenchSpec::default(),
                || {
                    synth.action(&mut world, &mut rng, false).expect("action");
                },
            ));
        }
    }
    println!("{report}");
}
