//! Criterion bench for E2: wall-clock crash recovery versus history length.
//!
//! Crash + recover is repeatable on the same stable log, so each iteration
//! re-runs recovery against the identical media.

use argus_guardian::{RsKind, World};
use argus_sim::{CostModel, DetRng};
use argus_workload::{Synth, SynthConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(20);
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow] {
        for history in [500u64, 2_000] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), history),
                &history,
                |b, &history| {
                    let mut world = World::new(CostModel::fast());
                    let mut synth = Synth::setup(
                        &mut world,
                        kind,
                        SynthConfig {
                            objects: 128,
                            writes_per_action: 4,
                            value_size: 48,
                            ..Default::default()
                        },
                    )
                    .expect("setup");
                    let g = synth.guardian();
                    let mut rng = DetRng::new(2);
                    synth.run(&mut world, &mut rng, history).expect("run");
                    b.iter(|| {
                        world.crash(g);
                        world.restart(g).expect("recover")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
