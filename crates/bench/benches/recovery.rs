//! E2: crash-recovery cost versus history length, on the bespoke
//! `argus_obs::bench` harness.
//!
//! Crash + recover is repeatable on the same stable log, so each iteration
//! re-runs recovery against the identical media.

use argus_guardian::{RsKind, World};
use argus_obs::bench::{run, BenchReport, BenchSpec};
use argus_sim::{CostModel, DetRng};
use argus_workload::{Synth, SynthConfig};

fn main() {
    let mut report = BenchReport::new("recovery");
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow] {
        for history in [500u64, 2_000] {
            let mut world = World::new(CostModel::fast());
            let mut synth = Synth::setup(
                &mut world,
                kind,
                SynthConfig {
                    objects: 128,
                    writes_per_action: 4,
                    value_size: 48,
                    ..Default::default()
                },
            )
            .expect("setup");
            let g = synth.guardian();
            let mut rng = DetRng::new(2);
            synth.run(&mut world, &mut rng, history).expect("run");
            let clock = world.clock.clone();
            report.push(run(
                &format!("{kind:?}/{history}"),
                &clock,
                BenchSpec::iters(20),
                || {
                    world.crash(g);
                    world.restart(g).expect("recover");
                },
            ));
        }
    }
    println!("{report}");
}
