//! Stable-log primitives — buffered append, force, and backward iteration,
//! the costs everything above is built from — on the bespoke
//! `argus_obs::bench` harness.

use argus_obs::bench::{run, BenchReport, BenchSpec};
use argus_sim::{CostModel, SimClock};
use argus_slog::StableLog;
use argus_stable::MemStore;

fn new_log(clock: &SimClock) -> StableLog<MemStore> {
    StableLog::create(MemStore::new(clock.clone(), CostModel::fast())).unwrap()
}

fn main() {
    let mut report = BenchReport::new("slog");

    for size in [64usize, 1024] {
        let payload = vec![0xA5u8; size];

        let clock = SimClock::new();
        let mut log = new_log(&clock);
        report.push(run(
            &format!("write_buffered/{size}"),
            &clock,
            BenchSpec::default(),
            || {
                log.write(&payload);
            },
        ));

        let clock = SimClock::new();
        let mut log = new_log(&clock);
        report.push(run(
            &format!("force_write/{size}"),
            &clock,
            BenchSpec::default(),
            || {
                log.force_write(&payload).unwrap();
            },
        ));
    }

    let clock = SimClock::new();
    let mut log = new_log(&clock);
    for i in 0..1000u32 {
        log.write(&i.to_le_bytes());
    }
    log.force().unwrap();
    report.push(run(
        "read_backward_1000",
        &clock,
        BenchSpec::default(),
        || {
            let mut n = 0u32;
            for item in log.read_backward(None) {
                item.unwrap();
                n += 1;
            }
            assert_eq!(n, 1000);
        },
    ));

    println!("{report}");
}
