//! Criterion bench for the stable-log primitives: buffered append, force,
//! and backward iteration — the costs everything above is built from.

use argus_sim::{CostModel, SimClock};
use argus_slog::StableLog;
use argus_stable::MemStore;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn new_log() -> StableLog<MemStore> {
    StableLog::create(MemStore::new(SimClock::new(), CostModel::fast())).unwrap()
}

fn bench_slog(c: &mut Criterion) {
    let mut group = c.benchmark_group("slog");

    for size in [64usize, 1024] {
        let payload = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("write_buffered", size),
            &payload,
            |b, p| {
                let mut log = new_log();
                b.iter(|| log.write(p));
            },
        );
        group.bench_with_input(BenchmarkId::new("force_write", size), &payload, |b, p| {
            let mut log = new_log();
            b.iter(|| log.force_write(p).unwrap());
        });
    }

    group.bench_function("read_backward_1000", |b| {
        let mut log = new_log();
        for i in 0..1000u32 {
            log.write(&i.to_le_bytes());
        }
        log.force().unwrap();
        b.iter(|| {
            let mut n = 0u32;
            for item in log.read_backward(None) {
                item.unwrap();
                n += 1;
            }
            assert_eq!(n, 1000);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_slog);
criterion_main!(benches);
