//! Counting-allocator harness: pins heap allocations per committed action
//! on the steady-state commit path.
//!
//! A `#[global_allocator]` wrapper counts every `alloc`/`realloc` call made
//! by this test binary. After a warm-up phase (so table growth, cache fills,
//! and network buffers are out of the way), the harness runs batches of
//! concurrent commits exactly like `argus_bench::commit_perf` and divides
//! the allocation delta by the number of commits. The resulting
//! `allocs/commit` is published as the `bench.allocs_per_commit` obs counter
//! and asserted against a ceiling.
//!
//! The ceilings encode the allocation audit of the borrowed-entry-view work
//! (encode directly into the log's pending buffer via `write_with`, decode
//! values lazily through `EntryView`): the pre-change baseline was **simple
//! 37.5 / hybrid 40.4** allocs per commit at concurrency 8 (recorded in
//! EXPERIMENTS.md). A regression that reintroduces per-entry encode buffers
//! or eager value decode pushes the number back above the ceiling and fails
//! here.

use argus_guardian::{Outcome, RsKind, World, WorldConfig};
use argus_objects::Value;
use argus_sim::CostModel;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator, counting allocation calls (not bytes):
/// `alloc` and `realloc` each count one; `dealloc` is free.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Runs `rounds` batches of `concurrency` concurrent committed actions on a
/// warmed-up single-guardian world and returns the allocation calls per
/// commit over the measured batches.
fn allocs_per_commit(kind: RsKind, concurrency: usize, rounds: u64) -> f64 {
    let mut world = World::with_config(CostModel::fast(), WorldConfig::default());
    let g = world.add_guardian(kind).expect("guardian");
    let setup = world.begin(g).expect("begin");
    let mut objs = Vec::new();
    for i in 0..concurrency {
        let h = world
            .create_atomic(g, setup, Value::Bytes(vec![0; 48]))
            .expect("create");
        world
            .set_stable(g, setup, &format!("o{i}"), Value::heap_ref(h))
            .expect("bind");
        objs.push(h);
    }
    assert_eq!(
        world.commit(setup).expect("setup commit"),
        Outcome::Committed
    );

    let batch = |world: &mut World, round: u64| {
        let aids: Vec<_> = (0..concurrency)
            .map(|_| world.begin(g).expect("begin"))
            .collect();
        for (i, &aid) in aids.iter().enumerate() {
            let fill = (round & 0xFF) as u8;
            world
                .write_atomic(g, aid, objs[i], move |v| *v = Value::Bytes(vec![fill; 48]))
                .expect("write");
        }
        for &aid in &aids {
            world.commit_start(aid).expect("start");
        }
        for &aid in &aids {
            assert_eq!(
                world.commit_settle(aid).expect("settle"),
                Outcome::Committed
            );
        }
    };

    // Warm up: table growth, log pending-buffer capacity, scheduler state.
    for round in 0..8 {
        batch(&mut world, round);
    }
    let before = allocs();
    for round in 0..rounds {
        batch(&mut world, 8 + round);
    }
    let delta = allocs() - before;
    delta as f64 / (rounds * concurrency as u64) as f64
}

#[test]
fn steady_state_allocs_per_commit_stay_bounded() {
    let reg = argus_obs::Registry::new();
    let _scope = reg.enter();
    // Ceilings sit ~12% above the measured post-audit numbers (simple 30.5,
    // hybrid 34.4, redo 31.5 at concurrency 8) and below the pre-change
    // baseline (simple 37.5 / hybrid 40.4) so the audit's win cannot
    // silently regress. The redo log's commit path stays within one alloc
    // of the simple log's: the backlink stamp and chain bookkeeping reuse
    // the sink's maps; only the amortized checkpoint write adds to it. The
    // absolute numbers include the whole stack: workload value
    // construction, 2PC messages, and scheduler queues — not just the log.
    for (kind, ceiling) in [
        (RsKind::Simple, 34.5),
        (RsKind::Hybrid, 38.5),
        (RsKind::Redo, 35.5),
    ] {
        let per_commit = allocs_per_commit(kind, 8, 16);
        reg.counter("bench.allocs_per_commit")
            .add(per_commit as u64);
        println!("{kind:?}: {per_commit:.1} allocs/commit");
        assert!(
            per_commit < ceiling,
            "{kind:?}: {per_commit:.1} allocs/commit exceeds the {ceiling} \
             ceiling — the commit hot path regressed (pre-audit baseline was \
             37.5 simple / 40.4 hybrid; see EXPERIMENTS.md)"
        );
    }
    assert!(reg.counter("bench.allocs_per_commit").get() > 0);
}
