//! Minimal markdown-table rendering for the experiment harness.

use std::fmt;

/// One experiment's output table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (E1..E8).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The thesis claim being checked.
    pub claim: &'static str,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &'static str, title: &'static str, claim: &'static str) -> Self {
        Self {
            id,
            title,
            claim,
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn header(&mut self, header: Vec<String>) {
        self.header = header;
    }

    /// Appends a row.
    pub fn row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// The data rows (for tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Serializes the table as a small JSON document (no external
    /// dependencies), for `scripts/bench.sh`'s `BENCH_<id>.json` artifacts.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn arr(cells: &[String]) -> String {
            let quoted: Vec<String> = cells.iter().map(|c| format!("\"{}\"", esc(c))).collect();
            format!("[{}]", quoted.join(","))
        }
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"claim\":\"{}\",\"header\":{},\"rows\":[{}]}}\n",
            esc(self.id),
            esc(self.title),
            esc(self.claim),
            arr(&self.header),
            rows.join(",")
        )
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {} — {}", self.id, self.title)?;
        writeln!(f, "_{}_", self.claim)?;
        writeln!(f)?;
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        write!(f, "|")?;
        for width in &widths {
            write!(f, "{:-<w$}|", "", w = width + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("E0", "demo", "a claim");
        t.header(vec!["a".into(), "bb".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("### E0 — demo"));
        assert!(s.contains("| a | bb |"));
        assert!(s.contains("| 1 | 2  |"));
    }

    #[test]
    fn renders_json() {
        let mut t = Table::new("E0", "demo \"quoted\"", "a claim");
        t.header(vec!["a".into(), "bb".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_json();
        assert!(s.contains("\"id\":\"E0\""));
        assert!(s.contains("\"title\":\"demo \\\"quoted\\\"\""));
        assert!(s.contains("\"header\":[\"a\",\"bb\"]"));
        assert!(s.contains("\"rows\":[[\"1\",\"2\"]]"));
    }
}
