//! The experiment harness: regenerates the thesis's comparative claims as
//! tables (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
//! recorded results).
//!
//! The thesis has no quantitative evaluation of its own — its "results" are
//! the cost claims of §1.2.2, §4.1, §4.4, and §5.3. Each `eN_*` function
//! here measures one claim across the three storage organizations on the
//! deterministic device model, so the *shape* (who wins, by what factor,
//! where the crossovers are) can be checked against the thesis's argument.
//! Simulated device time is the primary metric: it is exactly reproducible.

mod table;

pub use table::Table;

use argus_core::{HousekeepingMode, RecoveryMode, RecoverySystem};
use argus_guardian::{CcPolicy, Outcome, RsKind, World, WorldConfig};
use argus_objects::Value;
use argus_sim::{CostModel, StatsSnapshot};
use argus_workload::{Contended, ContendedConfig, Sharded, ShardedConfig, Synth, SynthConfig};

const KINDS: [RsKind; 4] = [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow, RsKind::Redo];

fn kind_name(kind: RsKind) -> &'static str {
    match kind {
        RsKind::Simple => "simple log",
        RsKind::Hybrid => "hybrid log",
        RsKind::Shadow => "shadowing",
        RsKind::Redo => "redo log",
    }
}

fn device(world: &World, g: argus_objects::GuardianId) -> StatsSnapshot {
    world.guardian(g).expect("guardian").log_stats().device
}

/// E1 — §1.2.2/§4.1: writing cost per committed action.
///
/// Claim: "Log ⇒ fast writing… Shadowing ⇒ slow writing"; the hybrid log
/// writes almost exactly like the pure log because the map fragment rides
/// inside the forced `prepared` entry.
pub fn e1_write_cost(commits: u64) -> Table {
    let mut table = Table::new(
        "E1",
        "Write cost per committed action (simulated device µs)",
        "thesis: simple ≈ hybrid < shadowing; the shadowing penalty is the per-commit map rewrite (see E7 for its scaling)",
    );
    table.header(vec![
        "objects/action".into(),
        "simple log".into(),
        "hybrid log".into(),
        "shadowing".into(),
        "redo log".into(),
        "shadow/hybrid".into(),
    ]);
    for writes in [1usize, 4, 16, 64] {
        let mut row = vec![writes.to_string()];
        let mut per_commit = Vec::new();
        for kind in KINDS {
            let mut world = World::new(CostModel::default());
            let mut synth = Synth::setup(
                &mut world,
                kind,
                SynthConfig {
                    objects: 2_048,
                    writes_per_action: writes,
                    value_size: 48,
                    ..Default::default()
                },
            )
            .expect("setup");
            let g = synth.guardian();
            let mut rng = argus_sim::DetRng::new(1);
            let before = device(&world, g);
            synth.run(&mut world, &mut rng, commits).expect("run");
            let delta = device(&world, g).since(&before);
            let us = delta.busy_us / commits;
            per_commit.push(us);
            row.push(format!("{us}"));
        }
        row.push(format!(
            "{:.1}x",
            per_commit[2] as f64 / per_commit[1].max(1) as f64
        ));
        table.row(row);
    }
    table
}

/// E2 — §1.2.2/§4.1: recovery cost versus history length.
///
/// Claim: "Log ⇒ … slow recovery. Shadowing ⇒ … fast recovery"; the hybrid
/// log sits in between, much closer to shadowing because it walks only the
/// outcome chain.
pub fn e2_recovery_cost(lengths: &[u64]) -> (Table, Table) {
    let mut time = Table::new(
        "E2",
        "Recovery cost after a crash vs. history length (simulated device µs)",
        "thesis: shadow < hybrid ≪ simple; the simple log's cost grows with the whole history",
    );
    time.header(vec![
        "committed actions".into(),
        "simple log".into(),
        "hybrid log".into(),
        "shadowing".into(),
        "redo log".into(),
        "simple/hybrid".into(),
    ]);
    let mut examined = Table::new(
        "E3",
        "Log entries examined during recovery (entries / data entries read)",
        "thesis §4.1: the hybrid log reads only the outcome chain plus needed data entries",
    );
    examined.header(vec![
        "committed actions".into(),
        "simple log".into(),
        "hybrid log".into(),
        "shadowing".into(),
        "redo log".into(),
    ]);

    for &n in lengths {
        let mut time_row = vec![n.to_string()];
        let mut ex_row = vec![n.to_string()];
        let mut us = Vec::new();
        for kind in KINDS {
            let mut world = World::new(CostModel::default());
            let mut synth = Synth::setup(
                &mut world,
                kind,
                SynthConfig {
                    objects: 128,
                    writes_per_action: 4,
                    value_size: 48,
                    ..Default::default()
                },
            )
            .expect("setup");
            let g = synth.guardian();
            let mut rng = argus_sim::DetRng::new(2);
            synth.run(&mut world, &mut rng, n).expect("run");
            world.crash(g);
            let before = device(&world, g);
            let outcome = world.restart(g).expect("recover");
            let delta = device(&world, g).since(&before);
            us.push(delta.busy_us);
            time_row.push(delta.busy_us.to_string());
            ex_row.push(format!(
                "{} / {}",
                outcome.entries_examined, outcome.data_entries_read
            ));
        }
        time_row.push(format!("{:.1}x", us[0] as f64 / us[1].max(1) as f64));
        time.row(time_row);
        examined.row(ex_row);
    }
    (time, examined)
}

/// E4 — §5.3: housekeeping cost, compaction vs snapshot.
///
/// Claim: "the snapshot… takes an amount of time roughly proportional to
/// the number of accessible recoverable objects; the compaction method
/// would take much longer since it must process all outcome entries as well
/// as all accessible objects."
pub fn e4_housekeeping_cost() -> Table {
    let mut table = Table::new(
        "E4",
        "Housekeeping cost (simulated device µs)",
        "thesis §5.3: compaction grows with history length; snapshot with live-set size",
    );
    table.header(vec![
        "live objects".into(),
        "history (commits)".into(),
        "compaction".into(),
        "snapshot".into(),
        "compaction/snapshot".into(),
    ]);
    for (objects, history) in [
        (64usize, 500u64),
        (64, 2_000),
        (64, 8_000),
        (256, 2_000),
        (1_024, 2_000),
    ] {
        let mut costs = Vec::new();
        for mode in [HousekeepingMode::Compaction, HousekeepingMode::Snapshot] {
            let mut world = World::new(CostModel::default());
            let mut synth = Synth::setup(
                &mut world,
                RsKind::Hybrid,
                SynthConfig {
                    objects,
                    writes_per_action: 4,
                    value_size: 48,
                    ..Default::default()
                },
            )
            .expect("setup");
            let g = synth.guardian();
            let mut rng = argus_sim::DetRng::new(3);
            synth.run(&mut world, &mut rng, history).expect("run");
            // Housekeeping swaps the log to a fresh store, so measure via
            // the shared clock (old-log reads + new-log writes included).
            let before = world.clock.now();
            world.housekeep(g, mode).expect("housekeeping");
            costs.push(world.clock.now() - before);
        }
        table.row(vec![
            objects.to_string(),
            history.to_string(),
            costs[0].to_string(),
            costs[1].to_string(),
            format!("{:.1}x", costs[0] as f64 / costs[1].max(1) as f64),
        ]);
    }
    table
}

/// E5 — ch. 5: a checkpoint bounds recovery.
pub fn e5_checkpoint_bounds_recovery() -> Table {
    let mut table = Table::new(
        "E5",
        "Recovery after a crash, with and without housekeeping first",
        "thesis ch. 5: the checkpoint bounds how much log recovery must examine",
    );
    table.header(vec![
        "history (commits)".into(),
        "no housekeeping (entries / µs)".into(),
        "after snapshot (entries / µs)".into(),
    ]);
    for history in [1_000u64, 4_000, 16_000] {
        let mut cells = Vec::new();
        for housekeep in [false, true] {
            let mut world = World::new(CostModel::default());
            let mut synth = Synth::setup(
                &mut world,
                RsKind::Hybrid,
                SynthConfig {
                    objects: 128,
                    writes_per_action: 4,
                    value_size: 48,
                    ..Default::default()
                },
            )
            .expect("setup");
            let g = synth.guardian();
            let mut rng = argus_sim::DetRng::new(4);
            synth.run(&mut world, &mut rng, history).expect("run");
            if housekeep {
                world
                    .housekeep(g, HousekeepingMode::Snapshot)
                    .expect("housekeeping");
            }
            world.crash(g);
            let before = device(&world, g);
            let outcome = world.restart(g).expect("recover");
            let us = device(&world, g).since(&before).busy_us;
            cells.push(format!("{} / {}", outcome.entries_examined, us));
        }
        table.row(vec![
            history.to_string(),
            cells[0].clone(),
            cells[1].clone(),
        ]);
    }
    table
}

/// E6 — §4.4: early prepare shortens the prepare critical path.
///
/// Claim: "Rather than waiting for a top-level action to prepare and then
/// writing out the data entries to the log all at once, it might be better
/// to write out changes early… if the action eventually commits just the
/// prepared and committed outcome entries are written."
pub fn e6_early_prepare() -> Table {
    use argus_core::providers::MemProvider;
    use argus_core::HybridLogRs;
    use argus_objects::Heap;

    let mut table = Table::new(
        "E6",
        "Prepare-phase critical path (simulated device µs per prepare)",
        "thesis §4.4: with early prepare only the prepared outcome entry remains on the critical path",
    );
    table.header(vec![
        "objects/action".into(),
        "prepare (no early prepare)".into(),
        "prepare (after early prepare)".into(),
        "speedup".into(),
    ]);
    for writes in [1usize, 4, 16, 64] {
        let mut costs = Vec::new();
        for early in [false, true] {
            let clock = argus_sim::SimClock::new();
            let provider = MemProvider {
                clock: clock.clone(),
                model: CostModel::default(),
                plan: None,
            };
            let mut rs = HybridLogRs::create(provider).expect("rs");
            let mut heap = Heap::with_stable_root();
            // Create the objects (committed).
            let t0 = argus_objects::ActionId::new(argus_objects::GuardianId(0), 0);
            let root = heap.stable_root().expect("root");
            heap.acquire_write(root, t0).expect("lock");
            let mut objs = Vec::new();
            for _ in 0..writes {
                let h = heap.alloc_atomic(Value::Bytes(vec![0; 48]), Some(t0));
                objs.push(h);
            }
            let refs: Vec<Value> = objs.iter().map(|h| Value::heap_ref(*h)).collect();
            heap.write_value(root, t0, |v| *v = Value::Seq(refs))
                .expect("write");
            rs.prepare(t0, &[root], &heap).expect("prepare");
            rs.commit(t0).expect("commit");
            heap.commit_action(t0);

            // Measure 50 prepares.
            let rounds = 50u64;
            let mut total = 0u64;
            for i in 0..rounds {
                let aid = argus_objects::ActionId::new(argus_objects::GuardianId(0), i + 1);
                for &h in &objs {
                    heap.acquire_write(h, aid).expect("lock");
                    heap.write_value(h, aid, |v| *v = Value::Bytes(vec![i as u8; 48]))
                        .expect("write");
                }
                let mos: Vec<_> = objs.clone();
                let mos = if early {
                    // Background (free-time) writing, off the critical path.
                    rs.write_entry(aid, &mos, &heap).expect("early prepare")
                } else {
                    mos
                };
                let start = clock.now();
                rs.prepare(aid, &mos, &heap).expect("prepare");
                total += clock.now() - start;
                rs.commit(aid).expect("commit");
                heap.commit_action(aid);
            }
            costs.push(total / rounds);
        }
        table.row(vec![
            writes.to_string(),
            costs[0].to_string(),
            costs[1].to_string(),
            format!("{:.1}x", costs[0] as f64 / costs[1].max(1) as f64),
        ]);
    }
    table
}

/// E7 — §1.2.1: the shadowing map rewrite grows with the number of objects;
/// the hybrid log's distributed map does not.
pub fn e7_map_scaling() -> Table {
    let mut table = Table::new(
        "E7",
        "Commit cost vs. total live objects, fixed 4 writes/action (device µs per commit)",
        "thesis §1.2.1: rewriting the map at every commit \"could be expensive, especially if the map is large\"",
    );
    table.header(vec![
        "live objects".into(),
        "hybrid log".into(),
        "shadowing".into(),
        "shadow/hybrid".into(),
    ]);
    for objects in [1_000usize, 4_000, 16_000, 32_000] {
        let commits = 50u64;
        let mut costs = Vec::new();
        for kind in [RsKind::Hybrid, RsKind::Shadow] {
            let mut world = World::new(CostModel::default());
            let mut synth = Synth::setup(
                &mut world,
                kind,
                SynthConfig {
                    objects,
                    writes_per_action: 4,
                    value_size: 48,
                    ..Default::default()
                },
            )
            .expect("setup");
            let g = synth.guardian();
            let mut rng = argus_sim::DetRng::new(5);
            let before = device(&world, g);
            synth.run(&mut world, &mut rng, commits).expect("run");
            costs.push(device(&world, g).since(&before).busy_us / commits);
        }
        table.row(vec![
            objects.to_string(),
            costs[0].to_string(),
            costs[1].to_string(),
            format!("{:.1}x", costs[1] as f64 / costs[0].max(1) as f64),
        ]);
    }
    table
}

/// E8 — correctness under fault injection: the crash matrix of §2.2.3.
pub fn e8_crash_matrix() -> Table {
    use argus_objects::{GuardianId, ObjRef};

    fn balance(w: &World, g: GuardianId) -> i64 {
        let guardian = w.guardian(g).expect("guardian");
        match guardian.stable_value("acct") {
            Some(Value::Ref(ObjRef::Heap(h))) => match guardian.heap.read_value(h, None) {
                Ok(Value::Int(b)) => *b,
                _ => panic!("bad balance"),
            },
            _ => panic!("unresolved account"),
        }
    }

    let mut table = Table::new(
        "E8",
        "Fault-injection torture: distributed transfer with a crash at every write step",
        "required: 100% of recoveries consistent (conserved + all-or-nothing) and no committed action lost",
    );
    table.header(vec![
        "organization".into(),
        "victim".into(),
        "crashes fired".into(),
        "consistent".into(),
        "durable commits".into(),
    ]);
    for kind in KINDS {
        for coordinator in [false, true] {
            let mut fired = 0u64;
            let mut consistent = 0u64;
            let mut durable = 0u64;
            for budget in 0..150u64 {
                let mut w = World::fast();
                let g0 = w.add_guardian(kind).expect("g0");
                let g1 = w.add_guardian(kind).expect("g1");
                for g in [g0, g1] {
                    let a = w.begin(g).expect("begin");
                    let account = w.create_atomic(g, a, Value::Int(100)).expect("create");
                    w.set_stable(g, a, "acct", Value::heap_ref(account))
                        .expect("bind");
                    w.commit(a).expect("commit");
                }
                let a = w.begin(g0).expect("begin");
                for (g, delta) in [(g0, -30i64), (g1, 30)] {
                    let h = match w.guardian(g).expect("guardian").stable_value("acct") {
                        Some(Value::Ref(ObjRef::Heap(h))) => h,
                        _ => unreachable!(),
                    };
                    w.write_atomic(g, a, h, move |v| {
                        if let Value::Int(b) = v {
                            *b += delta;
                        }
                    })
                    .expect("write");
                }
                let victim = if coordinator { g0 } else { g1 };
                w.arm_crash_after_writes(victim, budget).expect("arm");
                let outcome = w.commit(a).expect("2pc");
                if w.is_up(victim) {
                    continue;
                }
                fired += 1;
                w.crash(victim);
                w.restart(victim).expect("restart");
                w.run_until_quiet().expect("quiesce");
                w.requery_in_doubt().expect("requery");
                let (b0, b1) = (balance(&w, g0), balance(&w, g1));
                let ok = b0 + b1 == 200 && ((b0, b1) == (70, 130) || (b0, b1) == (100, 100));
                if ok {
                    consistent += 1;
                }
                if outcome != argus_guardian::Outcome::Committed || (b0, b1) == (70, 130) {
                    durable += 1;
                }
            }
            table.row(vec![
                kind_name(kind).into(),
                if coordinator {
                    "coordinator"
                } else {
                    "participant"
                }
                .into(),
                fired.to_string(),
                format!("{consistent}/{fired}"),
                format!("{durable}/{fired}"),
            ]);
        }
    }
    table
}

/// E9 — robustness of the orderings to the device profile.
///
/// The thesis's argument is about I/O *structure* (appends vs seeks vs map
/// rewrites), not one device's constants. Re-run the E1/E2 comparisons on a
/// device 1000× faster than the early-80s default: every ordering must hold
/// on both.
pub fn e9_device_sensitivity() -> Table {
    let mut table = Table::new(
        "E9",
        "Ordering robustness across device profiles (device µs)",
        "ablation: the who-wins orderings of E1/E2 must not depend on the cost constants",
    );
    table.header(vec![
        "profile".into(),
        "metric".into(),
        "simple log".into(),
        "hybrid log".into(),
        "shadowing".into(),
        "redo log".into(),
        "ordering holds".into(),
    ]);
    for (name, model) in [
        ("1983 disk", CostModel::default()),
        ("fast device", CostModel::fast()),
    ] {
        // Write cost per commit (16 writes/action, 2048 live objects).
        let mut write_us = Vec::new();
        for kind in KINDS {
            let mut world = World::new(model.clone());
            let mut synth = Synth::setup(
                &mut world,
                kind,
                SynthConfig {
                    objects: 2_048,
                    writes_per_action: 16,
                    value_size: 48,
                    ..Default::default()
                },
            )
            .expect("setup");
            let g = synth.guardian();
            let mut rng = argus_sim::DetRng::new(6);
            let before = device(&world, g);
            synth.run(&mut world, &mut rng, 100).expect("run");
            write_us.push(device(&world, g).since(&before).busy_us / 100);
        }
        let write_ok =
            write_us[0] < write_us[2] && write_us[1] < write_us[2] && write_us[3] < write_us[2];
        table.row(vec![
            name.into(),
            "write/commit".into(),
            write_us[0].to_string(),
            write_us[1].to_string(),
            write_us[2].to_string(),
            write_us[3].to_string(),
            if write_ok { "yes".into() } else { "NO".into() },
        ]);

        // Recovery cost after 2000 commits.
        let mut rec_us = Vec::new();
        for kind in KINDS {
            let mut world = World::new(model.clone());
            let mut synth = Synth::setup(
                &mut world,
                kind,
                SynthConfig {
                    objects: 128,
                    writes_per_action: 4,
                    value_size: 48,
                    ..Default::default()
                },
            )
            .expect("setup");
            let g = synth.guardian();
            let mut rng = argus_sim::DetRng::new(7);
            synth.run(&mut world, &mut rng, 2_000).expect("run");
            world.crash(g);
            let before = device(&world, g);
            world.restart(g).expect("recover");
            rec_us.push(device(&world, g).since(&before).busy_us);
        }
        // The redo log's full-scan recovery reads the whole history like the
        // simple log's (E20 is where its fast restart modes are priced), so
        // the ordering constraint is only that both full scans lose to the
        // chain/map organizations.
        let rec_ok = rec_us[2] < rec_us[1] && rec_us[1] < rec_us[0] && rec_us[1] < rec_us[3];
        table.row(vec![
            name.into(),
            "recovery".into(),
            rec_us[0].to_string(),
            rec_us[1].to_string(),
            rec_us[2].to_string(),
            rec_us[3].to_string(),
            if rec_ok { "yes".into() } else { "NO".into() },
        ]);
    }
    table
}

/// Per-commit device costs measured by [`commit_perf`].
#[derive(Debug, Clone, Copy)]
pub struct CommitPerf {
    /// Device force barriers per committed action.
    pub forces_per_commit: f64,
    /// Simulated device-busy µs per committed action.
    pub us_per_commit: u64,
}

/// Runs `rounds` batches of `concurrency` concurrent actions (disjoint
/// object sets, all committed via two-phase commit launched together so
/// their log forces can coalesce) at a single guardian, and reports the
/// per-commit device cost.
pub fn commit_perf(kind: RsKind, concurrency: usize, rounds: u64, cfg: WorldConfig) -> CommitPerf {
    let mut world = World::with_config(CostModel::default(), cfg);
    let g = world.add_guardian(kind).expect("guardian");
    let setup = world.begin(g).expect("begin");
    let mut objs = Vec::new();
    for i in 0..concurrency {
        let h = world
            .create_atomic(g, setup, Value::Bytes(vec![0; 48]))
            .expect("create");
        world
            .set_stable(g, setup, &format!("o{i}"), Value::heap_ref(h))
            .expect("bind");
        objs.push(h);
    }
    assert_eq!(
        world.commit(setup).expect("setup commit"),
        Outcome::Committed
    );

    let before = device(&world, g);
    let mut commits = 0u64;
    for round in 0..rounds {
        let aids: Vec<_> = (0..concurrency)
            .map(|_| world.begin(g).expect("begin"))
            .collect();
        for (i, &aid) in aids.iter().enumerate() {
            let fill = (round & 0xFF) as u8;
            world
                .write_atomic(g, aid, objs[i], move |v| *v = Value::Bytes(vec![fill; 48]))
                .expect("write");
        }
        // Launch every commit before settling any: the prepares (and then
        // the commit-phase records) of the whole batch are in flight
        // together and share group-commit forces.
        for &aid in &aids {
            world.commit_start(aid).expect("start");
        }
        for &aid in &aids {
            assert_eq!(
                world.commit_settle(aid).expect("settle"),
                Outcome::Committed
            );
            commits += 1;
        }
    }
    let delta = device(&world, g).since(&before);
    CommitPerf {
        forces_per_commit: delta.forces as f64 / commits as f64,
        us_per_commit: delta.busy_us / commits,
    }
}

/// E12 — group commit: forces and device time per commit vs. concurrency.
///
/// The thesis's log argument (§3.2) prices a commit at a forced append; the
/// group-commit scheduler makes one *device* force cover every action whose
/// records are staged when it runs. Shadowing has no force to share, so it
/// stays flat.
pub fn e12_group_commit(rounds: u64) -> Table {
    let mut table = Table::new(
        "E12",
        "Group commit: device forces and µs per commit vs. concurrent actions",
        "claim: concurrent actions share forces on the log organizations — forces/commit falls with concurrency; shadowing cannot batch",
    );
    table.header(vec![
        "concurrent actions".into(),
        "simple (forces/commit)".into(),
        "hybrid (forces/commit)".into(),
        "shadow (forces/commit)".into(),
        "redo (forces/commit)".into(),
        "simple (µs/commit)".into(),
        "hybrid (µs/commit)".into(),
        "shadow (µs/commit)".into(),
        "redo (µs/commit)".into(),
    ]);
    for n in [1usize, 2, 4, 8] {
        let perf: Vec<CommitPerf> = KINDS
            .iter()
            .map(|&kind| commit_perf(kind, n, rounds, WorldConfig::default()))
            .collect();
        table.row(vec![
            n.to_string(),
            format!("{:.2}", perf[0].forces_per_commit),
            format!("{:.2}", perf[1].forces_per_commit),
            format!("{:.2}", perf[2].forces_per_commit),
            format!("{:.2}", perf[3].forces_per_commit),
            perf[0].us_per_commit.to_string(),
            perf[1].us_per_commit.to_string(),
            perf[2].us_per_commit.to_string(),
            perf[3].us_per_commit.to_string(),
        ]);
    }
    table
}

/// Recovery device cost and cache effectiveness measured by
/// [`recovery_perf`].
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPerf {
    /// Simulated device-busy µs spent by the restart (recovery included).
    pub device_us: u64,
    /// Page-cache hits during the restart.
    pub hits: u64,
    /// Page-cache misses during the restart.
    pub misses: u64,
    /// Pages prefetched by read-ahead during the restart.
    pub readahead: u64,
}

/// Builds `history` committed actions on one guardian, crashes it, and
/// measures the restart's device time plus the page cache's counters.
pub fn recovery_perf(kind: RsKind, history: u64, cfg: WorldConfig) -> RecoveryPerf {
    let reg = argus_obs::Registry::new();
    let _scope = reg.enter();
    let mut world = World::with_config(CostModel::default(), cfg);
    let mut synth = Synth::setup(
        &mut world,
        kind,
        SynthConfig {
            objects: 128,
            writes_per_action: 4,
            value_size: 48,
            ..Default::default()
        },
    )
    .expect("setup");
    let g = synth.guardian();
    let mut rng = argus_sim::DetRng::new(8);
    synth.run(&mut world, &mut rng, history).expect("run");
    world.crash(g);
    let hits0 = reg.counter("stable.cache.hit").get();
    let misses0 = reg.counter("stable.cache.miss").get();
    let ra0 = reg.counter("stable.cache.readahead").get();
    let before = device(&world, g);
    world.restart(g).expect("recover");
    RecoveryPerf {
        device_us: device(&world, g).since(&before).busy_us,
        hits: reg.counter("stable.cache.hit").get() - hits0,
        misses: reg.counter("stable.cache.miss").get() - misses0,
        readahead: reg.counter("stable.cache.readahead").get() - ra0,
    }
}

/// E13 — the page cache + read-ahead under recovery.
///
/// The hybrid log's backward chain walk re-reads pages it just touched
/// (header and payload of adjacent records share pages), and the prefetch
/// window turns its backward page sequence into sequential-rate device
/// reads; the simple log's full forward scan benefits the same way.
pub fn e13_recovery_cache(history: u64) -> Table {
    let mut table = Table::new(
        "E13",
        "Recovery device time with and without the page cache + read-ahead",
        "claim: caching + read-ahead cuts recovery device time ≥30% for the log organizations; the cache is volatile so crash semantics are unchanged",
    );
    table.header(vec![
        "organization".into(),
        "uncached µs".into(),
        "cached µs".into(),
        "reduction".into(),
        "hits".into(),
        "misses".into(),
        "readahead".into(),
    ]);
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Redo] {
        let uncached = recovery_perf(
            kind,
            history,
            WorldConfig {
                cache: argus_stable::CacheConfig::disabled(),
                ..Default::default()
            },
        );
        let cached = recovery_perf(kind, history, WorldConfig::default());
        table.row(vec![
            kind_name(kind).into(),
            uncached.device_us.to_string(),
            cached.device_us.to_string(),
            format!(
                "{:.0}%",
                (1.0 - cached.device_us as f64 / uncached.device_us.max(1) as f64) * 100.0
            ),
            cached.hits.to_string(),
            cached.misses.to_string(),
            cached.readahead.to_string(),
        ]);
    }
    table
}

/// E11 — bounded model check of two-phase commit (DESIGN.md § Checking).
///
/// Runs the `argus-check` interleaving explorer over the real `twopc` state
/// machines across a sweep of crash/drop budgets and reports its coverage:
/// distinct states visited, crash points injected, messages dropped, and
/// per-state log lints — all of which must find **zero** atomicity
/// violations. The same counters are exported through `argus-obs`
/// (`check.explore.*`), so the harness's per-run metrics report shows them
/// alongside every other layer's.
pub fn e11_explore_coverage() -> Table {
    use argus_check::{ExploreConfig, Explorer};

    let mut table = Table::new(
        "E11",
        "Bounded 2PC interleaving exploration: coverage vs. fault budget",
        "required: zero atomicity violations (A1-A4 + termination) in every configuration; eager restarts re-check the stale-vote race class",
    );
    table.header(vec![
        "participants".into(),
        "crashes".into(),
        "drops".into(),
        "eager restarts".into(),
        "states".into(),
        "crash points".into(),
        "dropped msgs".into(),
        "lints".into(),
        "terminal".into(),
        "violations".into(),
    ]);
    for (participants, max_crashes, max_drops, eager_restarts) in [
        (2usize, 0u32, 0u32, false),
        (2, 1, 0, false),
        (2, 1, 1, false),
        (2, 2, 1, false),
        (3, 1, 0, false),
        (8, 1, 0, false),
        (2, 1, 0, true),
    ] {
        let report = Explorer::new(ExploreConfig {
            participants,
            max_crashes,
            max_drops,
            max_states: 200_000,
            allow_refusal: true,
            eager_restarts,
        })
        .run();
        report.assert_ok();
        let s = report.stats;
        table.row(vec![
            participants.to_string(),
            max_crashes.to_string(),
            max_drops.to_string(),
            if eager_restarts { "yes" } else { "no" }.into(),
            s.states_visited.to_string(),
            s.crash_points.to_string(),
            s.drops.to_string(),
            s.lint_runs.to_string(),
            s.terminal_states.to_string(),
            report.violations.len().to_string(),
        ]);
    }
    table
}

/// One cell of E14 measured by [`cc_perf`]: the contended zipfian mix under
/// one concurrency-control policy, log organization, and slot count.
#[derive(Debug, Clone, Copy)]
pub struct CcPerf {
    /// Transfers committed (`concurrency × transfers_per_slot`).
    pub committed: u64,
    /// Aborted-and-retried attempts.
    pub retries: u64,
    /// Deadlock cycles broken by a victim abort.
    pub deadlocks: u64,
    /// Lock waits expired by the timeout policy.
    pub timeouts: u64,
    /// Retried attempts over all attempts.
    pub abort_rate: f64,
    /// p99 transfer latency in simulated µs (first begin → commit).
    pub p99_us: u64,
    /// Committed transfers per simulated second.
    pub commits_per_s: f64,
}

/// Runs the contended transfer mix ([`Contended`]) under `policy` and
/// reports the cell's metrics. Conserved balances are asserted, so every
/// E14 run doubles as a correctness check of the lock scheduler.
pub fn cc_perf(kind: RsKind, policy: CcPolicy, concurrency: usize, transfers: u64) -> CcPerf {
    // Record into the caller's registry scope (so the experiment's metrics
    // report shows the cc.* counters); per-run deadlocks are a delta.
    let reg = argus_obs::current();
    let deadlocks_before = reg.counter("cc.deadlocks").get();
    let mut world = World::with_config(CostModel::default(), WorldConfig::with_cc(policy));
    let mix = Contended::setup(
        &mut world,
        kind,
        ContendedConfig {
            concurrency,
            transfers_per_slot: transfers,
            ..Default::default()
        },
    )
    .expect("setup");
    let mut rng = argus_sim::DetRng::new(14);
    let start = world.clock.now();
    let stats = mix.run(&mut world, &mut rng).expect("contended run");
    let elapsed_us = world.clock.now() - start;
    assert_eq!(
        mix.total_balance(&world).expect("balance"),
        mix.expected_total(),
        "{kind:?}/{policy:?}: transfers did not conserve the total balance"
    );
    CcPerf {
        committed: stats.committed,
        retries: stats.retries,
        deadlocks: reg.counter("cc.deadlocks").get() - deadlocks_before,
        timeouts: stats.timeouts,
        abort_rate: stats.abort_rate(),
        p99_us: stats.p99_latency_us(),
        commits_per_s: stats.committed as f64 * 1e6 / elapsed_us.max(1) as f64,
    }
}

/// E14 — concurrency-control policies under contention (§2.4.1).
///
/// The thesis prescribes two-phase locking but leaves the conflict policy
/// open. Three policies run the same deadlock-prone zipfian transfer mix on
/// every log organization: refuse-and-retry (conflict-abort), FIFO blocking
/// with wait-for-graph deadlock detection, and lock-wait timeout.
pub fn e14_cc_policies(concurrencies: &[usize], transfers: u64) -> Table {
    let mut table = Table::new(
        "E14",
        "Concurrency-control policies on the contended zipfian mix (throughput, abort rate, p99 latency)",
        "claim: blocking beats conflict-abort at high contention (fewer wasted attempts); deadlock detection bounds p99 below the timeout policy's",
    );
    table.header(vec![
        "organization".into(),
        "concurrent actions".into(),
        "policy".into(),
        "commits/s".into(),
        "abort rate".into(),
        "p99 µs".into(),
        "deadlocks".into(),
        "timeouts".into(),
    ]);
    for kind in KINDS {
        for &n in concurrencies {
            for policy in [
                CcPolicy::ConflictAbort,
                CcPolicy::Blocking,
                CcPolicy::Timeout,
            ] {
                let perf = cc_perf(kind, policy, n, transfers);
                table.row(vec![
                    kind_name(kind).into(),
                    n.to_string(),
                    policy.name().into(),
                    format!("{:.1}", perf.commits_per_s),
                    format!("{:.1}%", perf.abort_rate * 100.0),
                    perf.p99_us.to_string(),
                    perf.deadlocks.to_string(),
                    perf.timeouts.to_string(),
                ]);
            }
        }
    }
    table
}

/// One cell of E21 measured by [`sharded_perf`]: the sharded many-guardian
/// mix on one log organization at one world scale.
#[derive(Debug, Clone, Copy)]
pub struct ShardPerf {
    /// Actions committed.
    pub committed: u64,
    /// Committed actions that ran distributed two-phase commit.
    pub cross_shard: u64,
    /// Retried attempts over all attempts.
    pub abort_rate: f64,
    /// Committed actions per simulated second.
    pub commits_per_s: f64,
    /// Shards that coordinated at least one commit.
    pub coordinating_shards: usize,
    /// Peak-to-mean coordinator load (1.0 = perfectly even).
    pub coordinator_skew: f64,
    /// World-scheduler guardian polls per committed action — the tentpole
    /// metric: stays flat as the guardian count grows because the scheduler
    /// visits only guardians with staged or due batches, never all `G`.
    pub polls_per_commit: f64,
    /// p99 action latency in simulated µs (first begin → commit).
    pub p99_us: u64,
}

/// Runs the sharded mix ([`Sharded`]) at one scale under FIFO blocking with
/// deadlock detection and reports the cell's metrics. Both conservation
/// oracles (total balance, seats vs. committed reservations) are asserted,
/// so every E21 cell doubles as a correctness check of the sharded world.
pub fn sharded_perf(kind: RsKind, cfg: ShardedConfig) -> ShardPerf {
    let reg = argus_obs::current();
    let polls_before = reg.counter("world.sched.polls").get();
    let mut world = World::with_config(
        CostModel::default(),
        WorldConfig::with_cc(CcPolicy::Blocking),
    );
    let mix = Sharded::setup(&mut world, kind, cfg).expect("setup");
    let mut rng = argus_sim::DetRng::new(21);
    let start = world.clock.now();
    let stats = mix.run(&mut world, &mut rng).expect("sharded run");
    let elapsed_us = world.clock.now() - start;
    assert_eq!(
        mix.total_balance(&world).expect("balance"),
        mix.expected_total(),
        "{kind:?}/{} shards: the mix did not conserve the total balance",
        cfg.shards
    );
    assert_eq!(
        mix.total_seats(&world).expect("seats"),
        mix.expected_seats(&stats),
        "{kind:?}/{} shards: seats do not match committed reservations",
        cfg.shards
    );
    let polls = reg.counter("world.sched.polls").get() - polls_before;
    ShardPerf {
        committed: stats.committed,
        cross_shard: stats.cross_shard,
        abort_rate: stats.abort_rate(),
        commits_per_s: stats.committed as f64 * 1e6 / elapsed_us.max(1) as f64,
        coordinating_shards: stats.coordinating_shards(),
        coordinator_skew: stats.coordinator_skew(),
        polls_per_commit: polls as f64 / stats.committed.max(1) as f64,
        p99_us: stats.p99_latency_us(),
    }
}

/// The [`ShardedConfig`] E21 uses at a given scale: `actions_per_shard`
/// actions spread over `shards` guardians and a user population that grows
/// with the world (at 256 shards: 40 960 users).
pub fn e21_config(shards: usize, actions_per_shard: u64) -> ShardedConfig {
    ShardedConfig {
        shards,
        users: shards * 160,
        concurrency: (shards * 2).clamp(16, 128),
        actions: actions_per_shard * shards as u64,
        ..Default::default()
    }
}

/// E21 — the sharded many-guardian world at scale (§2.1's "many guardians",
/// stressed the way §5.3 sizes real systems).
///
/// The partitioned banking/airline mix runs on worlds of 4 → 64 → 256 shard
/// guardians with zipfian user populations into the tens of thousands, on
/// every log organization. The simulator has one global clock, so elapsed
/// simulated time is the *total* device work — commits/s of simulated time
/// therefore measures per-commit cost, and the claim is that it carries no
/// O(G) term: it stays flat as the guardian count grows 64×, as does the
/// world scheduler's work per committed action (`polls/commit` — the
/// O(active), not O(G), step), while 2PC coordination spreads across every
/// shard (`coord shards` ≈ all of them).
pub fn e21_sharded_scaling(shards: &[usize], actions_per_shard: u64) -> Table {
    let mut table = Table::new(
        "E21",
        "Sharded many-guardian scaling: committed actions/s of simulated time (zipfian users, 2PC blocking mix)",
        "claim: per-commit cost is independent of world size — commits/s and scheduler polls/commit stay flat as guardians grow 4 -> 256 — while 2PC coordination spreads across every shard",
    );
    table.header(vec![
        "organization".into(),
        "shards".into(),
        "users".into(),
        "commits/s".into(),
        "cross-shard".into(),
        "abort rate".into(),
        "p99 µs".into(),
        "coord shards".into(),
        "coord skew".into(),
        "polls/commit".into(),
    ]);
    for kind in KINDS {
        for &shards in shards {
            let cfg = e21_config(shards, actions_per_shard);
            let perf = sharded_perf(kind, cfg);
            table.row(vec![
                kind_name(kind).into(),
                shards.to_string(),
                cfg.users.to_string(),
                format!("{:.1}", perf.commits_per_s),
                perf.cross_shard.to_string(),
                format!("{:.1}%", perf.abort_rate * 100.0),
                perf.p99_us.to_string(),
                format!("{}/{}", perf.coordinating_shards, shards),
                format!("{:.2}", perf.coordinator_skew),
                format!("{:.2}", perf.polls_per_commit),
            ]);
        }
    }
    table
}

/// E10 — the early-prepare assumption: "if it aborts then extra work has
/// been done, but that is not a problem because we assume that aborts are
/// not as frequent as commits" (§4.4).
///
/// Measures total device time (not just the critical path) per 100 actions
/// with and without early prepare, as the abort rate rises: the wasted
/// writes grow with the abort rate, quantifying where the assumption pays.
pub fn e10_abort_rate() -> Table {
    use argus_core::providers::MemProvider;
    use argus_core::HybridLogRs;
    use argus_objects::Heap;

    let mut table = Table::new(
        "E10",
        "Early prepare under aborts: total device µs per 100 actions (16 objects each)",
        "thesis §4.4: early prepare trades wasted writes on aborts for a shorter prepare path — worthwhile while aborts are rare",
    );
    table.header(vec![
        "abort rate".into(),
        "lazy (total)".into(),
        "early prepare (total)".into(),
        "early overhead".into(),
        "prepare path (lazy → early)".into(),
    ]);
    for abort_pct in [0u64, 10, 25, 50] {
        let mut totals = Vec::new();
        let mut paths = Vec::new();
        for early in [false, true] {
            let clock = argus_sim::SimClock::new();
            let provider = MemProvider {
                clock: clock.clone(),
                model: CostModel::default(),
                plan: None,
            };
            let mut rs = HybridLogRs::create(provider).expect("rs");
            let mut heap = Heap::with_stable_root();
            let t0 = argus_objects::ActionId::new(argus_objects::GuardianId(0), 0);
            let root = heap.stable_root().expect("root");
            heap.acquire_write(root, t0).expect("lock");
            let objs: Vec<_> = (0..16)
                .map(|_| heap.alloc_atomic(Value::Bytes(vec![0; 48]), Some(t0)))
                .collect();
            let refs: Vec<Value> = objs.iter().map(|h| Value::heap_ref(*h)).collect();
            heap.write_value(root, t0, |v| *v = Value::Seq(refs))
                .expect("write");
            rs.prepare(t0, &[root], &heap).expect("prepare");
            rs.commit(t0).expect("commit");
            heap.commit_action(t0);

            let mut rng = argus_sim::DetRng::new(42);
            let start_total = clock.now();
            let mut path_total = 0u64;
            let mut commits = 0u64;
            for i in 0..100u64 {
                let aid = argus_objects::ActionId::new(argus_objects::GuardianId(0), i + 1);
                for &h in &objs {
                    heap.acquire_write(h, aid).expect("lock");
                    heap.write_value(h, aid, |v| *v = Value::Bytes(vec![i as u8; 48]))
                        .expect("write");
                }
                let mos: Vec<_> = objs.clone();
                let mos = if early {
                    rs.write_entry(aid, &mos, &heap).expect("early prepare")
                } else {
                    mos
                };
                if rng.gen_bool(abort_pct as f64 / 100.0) {
                    // Local abort before the prepare message: nothing more
                    // reaches the log; early-prepared work is wasted.
                    heap.abort_action(aid);
                    rs.discard(aid);
                    continue;
                }
                let t = clock.now();
                rs.prepare(aid, &mos, &heap).expect("prepare");
                path_total += clock.now() - t;
                rs.commit(aid).expect("commit");
                heap.commit_action(aid);
                commits += 1;
            }
            totals.push(clock.now() - start_total);
            paths.push(path_total / commits.max(1));
        }
        table.row(vec![
            format!("{abort_pct}%"),
            totals[0].to_string(),
            totals[1].to_string(),
            format!(
                "{:+.1}%",
                (totals[1] as f64 / totals[0] as f64 - 1.0) * 100.0
            ),
            format!("{} → {}", paths[0], paths[1]),
        ]);
    }
    table
}

/// Drives the E16 mix and returns every attributed action plus the start
/// of the measurement window (setup actions start before it).
///
/// Three guardians host one hot account each; three concurrent transfer
/// streams work the pairs (0,1), (1,2), (0,2), so the streams contend on
/// every account and every commit is a cross-guardian two-phase commit.
/// Locks are always taken lower-guardian-first — a global order — so the
/// blocking policy never deadlocks and no stream ever retries. Device
/// detail is on, so the trace carries individual storage operations and
/// [`argus_trace::attribute`] can price the device segment exactly.
///
/// Every attributed action is asserted to satisfy `segment_sum == total`
/// — the partition property E16 exists to demonstrate. Fully
/// deterministic: same inputs, byte-identical trace.
pub fn e16_run(kind: RsKind, transfers_per_slot: u64) -> (Vec<argus_trace::ActionLatency>, u64) {
    use argus_guardian::{CcOutcome, CcPolicy};
    use argus_objects::ActionId;

    let mut world = World::with_config(
        CostModel::default(),
        WorldConfig::with_cc(CcPolicy::Blocking),
    );
    let tracer = world.tracer().clone();
    tracer.set_detail(argus_trace::Detail::Device);
    let gids: Vec<_> = (0..3)
        .map(|_| world.add_guardian(kind).expect("guardian"))
        .collect();
    let mut accounts = Vec::new();
    for (j, &g) in gids.iter().enumerate() {
        let aid = world.begin(g).expect("begin");
        let h = world
            .create_atomic(g, aid, Value::Int(1_000))
            .expect("create");
        world
            .set_stable(g, aid, &format!("hot{j}"), Value::heap_ref(h))
            .expect("bind");
        assert_eq!(world.commit(aid).expect("setup"), Outcome::Committed);
        accounts.push(h);
    }
    let measure_start = world.clock.now();

    struct Slot {
        pair: (usize, usize),
        aid: Option<ActionId>,
        next_op: usize,
        remaining: u64,
    }
    let mut slots: Vec<Slot> = [(0usize, 1usize), (1, 2), (0, 2)]
        .iter()
        .map(|&pair| Slot {
            pair,
            aid: None,
            next_op: 0,
            remaining: transfers_per_slot,
        })
        .collect();
    loop {
        let mut progress = false;
        let mut all_done = true;
        for slot in &mut slots {
            match slot.aid {
                None => {
                    if slot.remaining == 0 {
                        continue;
                    }
                    all_done = false;
                    slot.aid = Some(world.begin(gids[slot.pair.0]).expect("begin"));
                    slot.next_op = 0;
                    progress = true;
                }
                Some(aid) => {
                    all_done = false;
                    assert!(
                        world.cc_fate(aid).is_none(),
                        "E16 mix is deadlock-free by lock order"
                    );
                    if world.cc_blocked(aid) {
                        continue;
                    }
                    if slot.next_op < 2 {
                        let j = if slot.next_op == 0 {
                            slot.pair.0
                        } else {
                            slot.pair.1
                        };
                        let delta = if slot.next_op == 0 { -5i64 } else { 5 };
                        let outcome = world
                            .submit_write_atomic(gids[j], aid, accounts[j], move |v| {
                                if let Value::Int(balance) = v {
                                    *balance += delta;
                                }
                            })
                            .expect("submit");
                        // Parked counts as issued: the grant runs the write.
                        assert!(
                            !matches!(outcome, CcOutcome::Conflict),
                            "blocking policy never refuses"
                        );
                        slot.next_op += 1;
                    } else {
                        assert_eq!(world.commit(aid).expect("2pc"), Outcome::Committed);
                        slot.aid = None;
                        slot.remaining -= 1;
                    }
                    progress = true;
                }
            }
        }
        if all_done {
            break;
        }
        if !progress {
            let next = world
                .cc_next_deadline()
                .expect("E16 mix stalled with no pending event");
            world.clock.advance_to(next);
            world.cc_tick();
        }
    }

    let mut total = 0i64;
    for (j, &g) in gids.iter().enumerate() {
        let guardian = world.guardian(g).expect("guardian");
        if let Ok(Value::Int(b)) = guardian.heap.read_value(accounts[j], None) {
            total += *b;
        }
    }
    assert_eq!(total, 3_000, "transfers must conserve the total balance");

    let lats = argus_trace::attribute(&tracer.events());
    for a in &lats {
        assert_eq!(
            a.segment_sum(),
            a.total_us,
            "E16: the five segments must partition the action window"
        );
    }
    (lats, measure_start)
}

/// E16 — latency attribution from the causal trace (DESIGN.md § Tracing).
///
/// Where does a committed action's wall time go? The trace decomposes each
/// action's window into lock-wait / force-wait / network / device /
/// processing segments that partition it exactly ([`argus_trace::attribute`];
/// the partition is asserted per action inside [`e16_run`]). The thesis
/// prices only the device side (§4.1); the trace shows how much of an
/// action's latency the device actually is once lock queues, the group-
/// commit window, and 2PC round-trips are in the picture.
///
/// The log organizations read and write through the instrumented page
/// cache, so their device segment is exact. Shadowing keeps its direct
/// store (its page map is already its own cache), so its device time is
/// not separately instrumented and reports under processing.
pub fn e16_latency_attribution(transfers_per_slot: u64) -> Table {
    let mut table = Table::new(
        "E16",
        "Latency attribution on the contended 3-guardian 2PC mix (mean simulated µs per committed action)",
        "required: lock-wait + force-wait + network + device + processing == end-to-end latency, per action (asserted); the breakdown shows what the thesis's device-only costing leaves out",
    );
    table.header(vec![
        "organization".into(),
        "actions".into(),
        "total".into(),
        "lock-wait".into(),
        "force-wait".into(),
        "network".into(),
        "device".into(),
        "processing".into(),
    ]);
    for kind in KINDS {
        let (lats, measure_start) = e16_run(kind, transfers_per_slot);
        let committed: Vec<_> = lats
            .iter()
            .filter(|a| a.committed && a.start >= measure_start)
            .collect();
        let n = committed.len().max(1) as u64;
        let mean = |f: &dyn Fn(&argus_trace::ActionLatency) -> u64| {
            (committed.iter().map(|a| f(a)).sum::<u64>() / n).to_string()
        };
        table.row(vec![
            kind_name(kind).into(),
            committed.len().to_string(),
            mean(&|a| a.total_us),
            mean(&|a| a.lock_wait_us),
            mean(&|a| a.force_wait_us),
            mean(&|a| a.network_us),
            mean(&|a| a.device_us),
            mean(&|a| a.processing_us),
        ]);
    }
    table
}

/// E15 — exhaustive crash-schedule sweep coverage (DESIGN.md § Fault-sweep).
///
/// Runs the `argus-check` crash-schedule sweeper over its full configuration
/// matrix — every write index of the 3-guardian 2PC workload as a first
/// crash, plus a second crash swept through each recovery's device
/// operations — and reports per-organization coverage: schedule points
/// explored, counterexamples (which must be **zero**), and both simulated
/// and wall time. `max_points_per_victim` bounds the per-victim crash
/// indices for smoke use; `None` is the exhaustive sweep. The same counters
/// are exported through `argus-obs` (`check.sweep.*`).
pub fn e15_sweep_coverage(max_points_per_victim: Option<u64>, double_crash: bool) -> Table {
    use argus_check::sweep::{sweep, SweepConfig};
    use argus_guardian::RsKind;

    let mut table = Table::new(
        "E15",
        "Crash-schedule sweep: crash at every write index, and during recovery",
        "required: zero counterexamples — committed stays durable, aborted stays invisible, in-doubt resolves atomically, logs lint clean (I1-I11), on every explored schedule",
    );
    table.header(vec![
        "organization".into(),
        "cells".into(),
        "first-crash points".into(),
        "double-crash points".into(),
        "oracle writes".into(),
        "counterexamples".into(),
        "simulated ms".into(),
        "wall ms".into(),
    ]);
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow, RsKind::Redo] {
        let started = std::time::Instant::now();
        let mut cells = 0u64;
        let mut first = 0u64;
        let mut second = 0u64;
        let mut oracle = 0u64;
        let mut cx = 0u64;
        let mut sim_us = 0u64;
        for mut cfg in SweepConfig::matrix(double_crash, 1) {
            if cfg.kind != kind {
                continue;
            }
            cfg.max_points_per_victim = max_points_per_victim;
            let report = sweep(&cfg);
            cells += 1;
            first += report.first_crash_points;
            second += report.double_crash_points;
            oracle += report.oracle_writes;
            cx += report.counterexamples.len() as u64;
            sim_us += report.sim_us;
        }
        table.row(vec![
            format!("{kind:?}").to_lowercase(),
            cells.to_string(),
            first.to_string(),
            second.to_string(),
            oracle.to_string(),
            cx.to_string(),
            (sim_us / 1_000).to_string(),
            started.elapsed().as_millis().to_string(),
        ]);
    }
    table
}

/// E17: randomized fault-composition (VOPR) coverage per organization.
///
/// Runs a batch of seeded `argus_check::vopr` explorations per recovery
/// organization — each seed composes message drop, duplication, reorder,
/// partitions with heals, guardian pauses (clock skew), media decay, and
/// crashes with recovery against the multi-guardian 2PC workload, checking
/// I1–I12 and the legal-outcomes oracle at every quiesce point — and
/// reports coverage: actions driven, quiesce-point checks ("states
/// explored"), per-kind fault counts, and violations (which must be
/// **zero**). The same counters are exported through `argus-obs`
/// (`vopr.*`). Any violating seed replays exactly with
/// `argus-lint vopr --seed N --iterations M`.
pub fn e17_vopr_coverage(seeds: u64, iterations: u64) -> Table {
    use argus_check::{vopr, FaultTally, VoprConfig};
    use argus_guardian::RsKind;

    let mut table = Table::new(
        "E17",
        "VOPR randomized fault composition: drop/dup/reorder + partition/heal + pause/skew + decay + crash/recovery",
        "required: zero violations across every seed, with every fault kind firing in each organization's batch",
    );
    table.header(vec![
        "organization".into(),
        "seeds".into(),
        "actions".into(),
        "committed".into(),
        "aborted".into(),
        "in-doubt".into(),
        "checks".into(),
        "net faults".into(),
        "partitions".into(),
        "pauses".into(),
        "skews".into(),
        "decays".into(),
        "crashes".into(),
        "violations".into(),
        "simulated ms".into(),
        "wall ms".into(),
    ]);
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow, RsKind::Redo] {
        let started = std::time::Instant::now();
        let mut actions = 0u64;
        let (mut committed, mut aborted, mut in_doubt) = (0u64, 0u64, 0u64);
        let mut checks = 0u64;
        let mut tally = FaultTally::default();
        let mut violations = 0u64;
        let mut sim_us = 0u64;
        for seed in 1..=seeds {
            let mut cfg = VoprConfig::new(seed, iterations);
            cfg.kind = kind;
            let s = vopr(&cfg);
            actions += s.actions;
            committed += s.committed;
            aborted += s.aborted;
            in_doubt += s.in_doubt;
            checks += s.checks;
            tally.absorb(&s.faults);
            violations += s.violations.len() as u64;
            sim_us += s.sim_us;
        }
        table.row(vec![
            format!("{kind:?}").to_lowercase(),
            seeds.to_string(),
            actions.to_string(),
            committed.to_string(),
            aborted.to_string(),
            in_doubt.to_string(),
            checks.to_string(),
            (tally.drops + tally.duplicates + tally.defers).to_string(),
            tally.partitions.to_string(),
            tally.pauses.to_string(),
            tally.skews.to_string(),
            tally.decays.to_string(),
            tally.crashes.to_string(),
            violations.to_string(),
            (sim_us / 1_000).to_string(),
            started.elapsed().as_millis().to_string(),
        ]);
    }
    table
}

/// Per-commit wall-clock costs on a real file, measured by
/// [`wall_commit_perf`].
#[derive(Debug, Clone, Copy)]
pub struct WallCommitPerf {
    /// Wall-clock nanoseconds per committed action.
    pub ns_per_commit: u64,
    /// Real `fsync`/`fdatasync` calls per committed action (from the
    /// `stable.file.fsyncs` counter).
    pub fsyncs_per_commit: f64,
    /// Bytes handed to `write(2)` per committed action.
    pub bytes_per_commit: u64,
}

/// The wall-clock twin of [`commit_perf`]: `rounds` batches of
/// `concurrency` concurrent committed actions on a file-backed guardian,
/// timed with a monotonic clock and counted in real fsyncs.
///
/// `cfg.media` must be [`argus_guardian::MediaKind::File`]; the caller picks
/// the directory (tmpfs vs. a real disk) and the force schedule.
pub fn wall_commit_perf(
    kind: RsKind,
    concurrency: usize,
    rounds: u64,
    cfg: WorldConfig,
) -> WallCommitPerf {
    let reg = argus_obs::Registry::new();
    let _scope = reg.enter();
    let mut world = World::with_config(CostModel::fast(), cfg);
    let g = world.add_guardian(kind).expect("guardian");
    let setup = world.begin(g).expect("begin");
    let mut objs = Vec::new();
    for i in 0..concurrency {
        let h = world
            .create_atomic(g, setup, Value::Bytes(vec![0; 48]))
            .expect("create");
        world
            .set_stable(g, setup, &format!("o{i}"), Value::heap_ref(h))
            .expect("bind");
        objs.push(h);
    }
    assert_eq!(
        world.commit(setup).expect("setup commit"),
        Outcome::Committed
    );

    let batch = |world: &mut World, round: u64| {
        let aids: Vec<_> = (0..concurrency)
            .map(|_| world.begin(g).expect("begin"))
            .collect();
        for (i, &aid) in aids.iter().enumerate() {
            let fill = (round & 0xFF) as u8;
            world
                .write_atomic(g, aid, objs[i], move |v| *v = Value::Bytes(vec![fill; 48]))
                .expect("write");
        }
        for &aid in &aids {
            world.commit_start(aid).expect("start");
        }
        for &aid in &aids {
            assert_eq!(
                world.commit_settle(aid).expect("settle"),
                Outcome::Committed
            );
        }
    };

    // Warm up file growth and caches before the timed window.
    for round in 0..2 {
        batch(&mut world, round);
    }
    let fsyncs0 = reg.counter("stable.file.fsyncs").get();
    let bytes0 = reg.counter("stable.file.bytes_written").get();
    let start = std::time::Instant::now();
    for round in 0..rounds {
        batch(&mut world, 2 + round);
    }
    let elapsed = start.elapsed();
    let commits = rounds * concurrency as u64;
    WallCommitPerf {
        ns_per_commit: (elapsed.as_nanos() / u128::from(commits)) as u64,
        fsyncs_per_commit: (reg.counter("stable.file.fsyncs").get() - fsyncs0) as f64
            / commits as f64,
        bytes_per_commit: (reg.counter("stable.file.bytes_written").get() - bytes0) / commits,
    }
}

/// A `MediaKind::File` config over a fresh subdirectory of `base` (or a
/// temp dir when `base` is `None`) with the given force schedule —
/// `immediate` picks one-fsync-per-record, otherwise the group-commit
/// default (the `--wall-smoke` entry point of the experiments binary).
pub fn file_config_for(base: Option<&str>, tag: &str, immediate: bool) -> WorldConfig {
    let force = if immediate {
        argus_slog::ForceConfig::immediate()
    } else {
        argus_slog::ForceConfig::default()
    };
    file_config(base, tag, force)
}

/// A `MediaKind::File` config over a fresh subdirectory of `base` (or a
/// temp dir when `base` is `None`). The path is leaked: `WorldConfig` is
/// `Copy`, so the media variant holds a `&'static str`.
fn file_config(base: Option<&str>, tag: &str, force: argus_slog::ForceConfig) -> WorldConfig {
    let dir = match base {
        Some(b) => std::path::PathBuf::from(b).join(format!("argus-bench-{tag}")),
        None => std::env::temp_dir().join(format!("argus-bench-{}-{tag}", std::process::id())),
    };
    let dir: &'static str = Box::leak(dir.to_string_lossy().into_owned().into_boxed_str());
    WorldConfig {
        force,
        media: argus_guardian::MediaKind::File { dir: Some(dir) },
        ..Default::default()
    }
}

/// E18 — group commit on a real file: wall-clock ns and fsyncs per commit.
///
/// The wall-clock reproduction of E12's ordering outside the simulator: at
/// 8 concurrent actions the group-commit scheduler folds the batch's forced
/// records into a shared `fdatasync`, so fsyncs/commit falls well below the
/// one-force-per-action immediate schedule.
///
/// `dir` picks the backing filesystem (`None` = the OS temp dir; point it
/// at tmpfs and a real disk to see the medium's sync cost).
pub fn e18_wall_group_commit(rounds: u64, dir: Option<&str>) -> Table {
    let mut table = Table::new(
        "E18",
        "Wall-clock group commit on a real file: ns and fsyncs per commit",
        "claim: E12's ordering survives contact with a real file — at 8 concurrent actions, group commit needs ~1/8th the fsyncs of the immediate schedule",
    );
    table.header(vec![
        "organization".into(),
        "schedule".into(),
        "concurrent".into(),
        "ns/commit".into(),
        "fsyncs/commit".into(),
        "bytes/commit".into(),
    ]);
    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Redo] {
        for (schedule, force, n) in [
            ("immediate", argus_slog::ForceConfig::immediate(), 1usize),
            ("immediate", argus_slog::ForceConfig::immediate(), 8),
            ("group", argus_slog::ForceConfig::default(), 1),
            ("group", argus_slog::ForceConfig::default(), 8),
        ] {
            let tag = format!("e18-{}-{schedule}-{n}", kind_name(kind).replace(' ', "-"));
            let perf = wall_commit_perf(kind, n, rounds, file_config(dir, &tag, force));
            table.row(vec![
                kind_name(kind).into(),
                schedule.into(),
                n.to_string(),
                perf.ns_per_commit.to_string(),
                format!("{:.2}", perf.fsyncs_per_commit),
                perf.bytes_per_commit.to_string(),
            ]);
        }
    }
    table
}

/// Wall-clock recovery throughput on a real file, measured by
/// [`wall_recovery_perf`].
#[derive(Debug, Clone, Copy)]
pub struct WallRecoveryPerf {
    /// Stable log bytes at the crash point.
    pub log_bytes: u64,
    /// Wall-clock microseconds the restart took (recovery included).
    pub restart_us: u64,
}

impl WallRecoveryPerf {
    /// Recovery throughput in MB/s of stable log processed.
    pub fn mb_per_s(&self) -> f64 {
        if self.restart_us == 0 {
            return f64::INFINITY;
        }
        self.log_bytes as f64 / self.restart_us as f64
    }
}

/// Builds `history` committed actions on a file-backed guardian, crashes
/// it, and times the restart with a monotonic clock.
pub fn wall_recovery_perf(kind: RsKind, history: u64, cfg: WorldConfig) -> WallRecoveryPerf {
    let reg = argus_obs::Registry::new();
    let _scope = reg.enter();
    let mut world = World::with_config(CostModel::fast(), cfg);
    let mut synth = Synth::setup(
        &mut world,
        kind,
        SynthConfig {
            objects: 128,
            writes_per_action: 4,
            value_size: 48,
            ..Default::default()
        },
    )
    .expect("setup");
    let g = synth.guardian();
    let mut rng = argus_sim::DetRng::new(18);
    synth.run(&mut world, &mut rng, history).expect("run");
    let log_bytes = world.guardian(g).expect("guardian").log_stats().bytes;
    world.crash(g);
    let start = std::time::Instant::now();
    world.restart(g).expect("recover");
    WallRecoveryPerf {
        log_bytes,
        restart_us: start.elapsed().as_micros() as u64,
    }
}

/// E19 — wall-clock recovery throughput on a real file.
///
/// E2's shape in real time: the simple log re-reads its whole history, the
/// hybrid log walks only the outcome chain, shadowing reads the newest map.
/// Reported as MB/s of stable log bytes processed by the restart, so the
/// organizations' *selectivity* (not just the medium) sets the number.
pub fn e19_wall_recovery(history: u64, dir: Option<&str>) -> Table {
    let mut table = Table::new(
        "E19",
        "Wall-clock recovery on a real file: restart time vs. log size",
        "claim: hybrid restarts in near-constant time while the simple log's restart grows with the log; MB/s is log bytes at crash over restart wall time",
    );
    table.header(vec![
        "organization".into(),
        "committed actions".into(),
        "log KiB".into(),
        "restart µs".into(),
        "MB/s".into(),
    ]);
    for kind in KINDS {
        let tag = format!("e19-{}-{history}", kind_name(kind).replace(' ', "-"));
        let perf = wall_recovery_perf(
            kind,
            history,
            file_config(dir, &tag, argus_slog::ForceConfig::default()),
        );
        table.row(vec![
            kind_name(kind).into(),
            history.to_string(),
            (perf.log_bytes / 1024).to_string(),
            perf.restart_us.to_string(),
            format!("{:.1}", perf.mb_per_s()),
        ]);
    }
    table
}

/// Restart cost and time-to-first-commit measured by
/// [`instant_restart_perf`].
#[derive(Debug, Clone, Copy)]
pub struct InstantRestartPerf {
    /// Device µs the restart actually spent. Parallel replay runs its
    /// workers sequentially under the simulated clock, so this is the
    /// single-device total whatever the mode.
    pub restart_us: u64,
    /// The restart figure the scheme advertises: the parallel-replay
    /// makespan (tail scan + slowest worker) for `Parallel`, otherwise the
    /// measured restart time.
    pub modeled_restart_us: u64,
    /// Device µs of the first committed action after the restart, demand
    /// restores included.
    pub first_commit_us: u64,
    /// Objects still awaiting lazy restoration after that first commit.
    pub lazy_left: u64,
}

impl InstantRestartPerf {
    /// Crash to first commit: the E20 headline figure.
    pub fn time_to_first_commit_us(&self) -> u64 {
        self.modeled_restart_us + self.first_commit_us
    }
}

/// Builds `history` committed actions on one guardian, crashes it, restarts
/// it under `mode`, and measures restart plus the first post-restart commit
/// on the simulated device.
pub fn instant_restart_perf(kind: RsKind, mode: RecoveryMode, history: u64) -> InstantRestartPerf {
    let mut world = World::new(CostModel::default());
    let mut synth = Synth::setup(
        &mut world,
        kind,
        SynthConfig {
            objects: 128,
            writes_per_action: 4,
            value_size: 48,
            ..Default::default()
        },
    )
    .expect("setup");
    let g = synth.guardian();
    let mut rng = argus_sim::DetRng::new(20);
    synth.run(&mut world, &mut rng, history).expect("run");
    world.crash(g);
    assert!(
        world.set_recovery_mode(g, mode).expect("guardian"),
        "{kind:?} does not support {mode:?}"
    );
    let before = device(&world, g);
    world.restart(g).expect("recover");
    let restart_us = device(&world, g).since(&before).busy_us;
    let modeled_restart_us = match mode {
        RecoveryMode::Parallel(_) => world
            .recovery_makespan_us(g)
            .expect("guardian")
            .unwrap_or(restart_us),
        _ => restart_us,
    };
    let before = device(&world, g);
    synth.run(&mut world, &mut rng, 1).expect("first commit");
    InstantRestartPerf {
        restart_us,
        modeled_restart_us,
        first_commit_us: device(&world, g).since(&before).busy_us,
        lazy_left: world.lazy_pending(g).expect("guardian"),
    }
}

/// The wall-clock twin of [`instant_restart_perf`]: the same
/// crash-restart-commit sequence on a file-backed guardian, timed with a
/// monotonic clock. Returns `(restart_us, first_commit_us, lazy_left)`.
pub fn wall_instant_restart_perf(
    kind: RsKind,
    mode: RecoveryMode,
    history: u64,
    cfg: WorldConfig,
) -> (u64, u64, u64) {
    let reg = argus_obs::Registry::new();
    let _scope = reg.enter();
    let mut world = World::with_config(CostModel::fast(), cfg);
    let mut synth = Synth::setup(
        &mut world,
        kind,
        SynthConfig {
            objects: 128,
            writes_per_action: 4,
            value_size: 48,
            ..Default::default()
        },
    )
    .expect("setup");
    let g = synth.guardian();
    let mut rng = argus_sim::DetRng::new(21);
    synth.run(&mut world, &mut rng, history).expect("run");
    world.crash(g);
    assert!(
        world.set_recovery_mode(g, mode).expect("guardian"),
        "{kind:?} does not support {mode:?}"
    );
    let start = std::time::Instant::now();
    world.restart(g).expect("recover");
    let restart_us = start.elapsed().as_micros() as u64;
    let start = std::time::Instant::now();
    synth.run(&mut world, &mut rng, 1).expect("first commit");
    let first_commit_us = start.elapsed().as_micros() as u64;
    (
        restart_us,
        first_commit_us,
        world.lazy_pending(g).expect("guardian"),
    )
}

/// E20 — the instant-restart tier: time-to-first-commit after a crash.
///
/// The thesis's three organizations must finish their whole recovery pass
/// before serving anything; the redo organization decouples *restart* (tail
/// scan for the tables) from *restore* (replaying object chains), so the
/// guardian can take its first commit while most objects are still on the
/// log. The sim half prices every scheme on the deterministic device —
/// parallel rows report the modeled makespan (tail scan + slowest worker;
/// the workers run sequentially under the simulated clock) — and the wall
/// half replays the comparison on a real file.
///
/// Asserted here, so every run is a gate: on-demand reaches its first
/// commit ≥10× sooner than the simple log's full-scan restart on the
/// simulated device (≥3× wall-clock — the loose bound keeps slow CI
/// filesystems from flaking), and the parallel makespan falls as workers
/// are added and undercuts the single-pass full replay.
pub fn e20_instant_restart(history: u64, dir: Option<&str>) -> Table {
    use RecoveryMode::{Full, OnDemand, Parallel};

    let mut table = Table::new(
        "E20",
        "Instant restart: time-to-first-commit after a crash (sim device µs; wall µs on a real file)",
        "claim: on-demand restart commits ≥10× sooner than the simple log's full scan; the parallel-replay makespan falls as workers are added",
    );
    table.header(vec![
        "clock".into(),
        "scheme".into(),
        "restart µs".into(),
        "first commit µs".into(),
        "time to first commit".into(),
        "vs simple".into(),
        "lazy left".into(),
    ]);

    let schemes: [(&str, RsKind, RecoveryMode); 8] = [
        ("simple full scan", RsKind::Simple, Full),
        ("hybrid chain walk", RsKind::Hybrid, Full),
        ("shadow map read", RsKind::Shadow, Full),
        ("redo full replay", RsKind::Redo, Full),
        ("redo parallel x2", RsKind::Redo, Parallel(2)),
        ("redo parallel x4", RsKind::Redo, Parallel(4)),
        ("redo parallel x8", RsKind::Redo, Parallel(8)),
        ("redo on-demand", RsKind::Redo, OnDemand),
    ];

    let mut sim_simple = None;
    let mut redo_full = None;
    let mut makespans = Vec::new();
    for (name, kind, mode) in schemes {
        let perf = instant_restart_perf(kind, mode, history);
        let ttfc = perf.time_to_first_commit_us();
        let base = *sim_simple.get_or_insert(ttfc);
        match mode {
            Full if kind == RsKind::Redo => redo_full = Some(ttfc),
            Parallel(_) => makespans.push(perf.modeled_restart_us),
            OnDemand => assert!(
                ttfc * 10 <= base,
                "on-demand time-to-first-commit not 10x below the simple \
                 log's ({ttfc} !<= {base}/10)"
            ),
            _ => {}
        }
        table.row(vec![
            "sim".into(),
            name.into(),
            perf.modeled_restart_us.to_string(),
            perf.first_commit_us.to_string(),
            ttfc.to_string(),
            format!("{:.1}x", base as f64 / ttfc.max(1) as f64),
            perf.lazy_left.to_string(),
        ]);
    }
    assert!(
        makespans.last() < makespans.first(),
        "parallel makespan did not fall with more workers: {makespans:?}"
    );
    assert!(
        makespans.last().copied().unwrap_or(u64::MAX) < redo_full.expect("redo full row"),
        "parallel replay did not undercut the single-pass full replay \
         ({makespans:?} !< {redo_full:?})"
    );

    let mut wall_simple = None;
    for (i, (name, kind, mode)) in schemes.iter().enumerate() {
        // Parallel workers are a simulated-device construct; the wall half
        // compares the schemes that run end to end on the real file.
        if matches!(mode, Parallel(_)) {
            continue;
        }
        let tag = format!("e20-{i}-{history}");
        let (restart_us, first_commit_us, lazy_left) = wall_instant_restart_perf(
            *kind,
            *mode,
            history,
            file_config(dir, &tag, argus_slog::ForceConfig::default()),
        );
        let ttfc = restart_us + first_commit_us;
        let base = *wall_simple.get_or_insert(ttfc);
        if *mode == OnDemand {
            assert!(
                ttfc * 3 <= base,
                "wall on-demand time-to-first-commit not 3x below the \
                 simple log's ({ttfc} !<= {base}/3)"
            );
        }
        table.row(vec![
            "wall".into(),
            (*name).into(),
            restart_us.to_string(),
            first_commit_us.to_string(),
            ttfc.to_string(),
            format!("{:.1}x", base as f64 / ttfc.max(1) as f64),
            lazy_left.to_string(),
        ]);
    }
    table
}
