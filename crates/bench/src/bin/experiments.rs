//! Regenerates every experiment table (E1–E8). See DESIGN.md for the
//! experiment index and EXPERIMENTS.md for recorded results.
//!
//! ```sh
//! cargo run --release -p argus-bench --bin experiments            # all
//! cargo run --release -p argus-bench --bin experiments -- E2 E3  # subset
//! ```

use argus_bench::{
    e10_abort_rate, e1_write_cost, e2_recovery_cost, e4_housekeeping_cost,
    e5_checkpoint_bounds_recovery, e6_early_prepare, e7_map_scaling, e8_crash_matrix,
    e9_device_sensitivity,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_uppercase()).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    println!("# Experiments — Reliable Object Storage to Support Atomic Actions\n");

    if want("E1") {
        println!("{}", e1_write_cost(200));
    }
    if want("E2") || want("E3") {
        let (e2, e3) = e2_recovery_cost(&[250, 1_000, 4_000, 16_000]);
        if want("E2") {
            println!("{e2}");
        }
        if want("E3") {
            println!("{e3}");
        }
    }
    if want("E4") {
        println!("{}", e4_housekeeping_cost());
    }
    if want("E5") {
        println!("{}", e5_checkpoint_bounds_recovery());
    }
    if want("E6") {
        println!("{}", e6_early_prepare());
    }
    if want("E7") {
        println!("{}", e7_map_scaling());
    }
    if want("E8") {
        println!("{}", e8_crash_matrix());
    }
    if want("E9") {
        println!("{}", e9_device_sensitivity());
    }
    if want("E10") {
        println!("{}", e10_abort_rate());
    }
}
