//! Regenerates every experiment table (E1–E21). See DESIGN.md for the
//! experiment index and EXPERIMENTS.md for recorded results.
//!
//! Each experiment runs under its own `argus_obs::Registry` scope, so the
//! table is followed by that run's metrics report — counters and phase
//! timings recorded by the instrumented layers (slog, core, twopc, world).
//!
//! ```sh
//! cargo run --release -p argus-bench --bin experiments            # all
//! cargo run --release -p argus-bench --bin experiments -- E2 E3  # subset
//! cargo run --release -p argus-bench --bin experiments -- --json-dir out E1
//! cargo run --release -p argus-bench --bin experiments -- --smoke
//! ```
//!
//! `--json-dir DIR` additionally writes each table as `DIR/BENCH_<id>.json`.
//! `--wall-smoke` runs a tiny E18 on real files (tmpfs when
//! `ARGUS_BENCH_DIR` points there) and asserts the group-commit fsync
//! reduction holds outside the simulator — the `scripts/verify.sh --wall`
//! tier. `--smoke` runs a tiny E12/E13/E14 and asserts the optimization and
//! scheduling invariants (batching never increases forces per commit; the
//! cache hits during recovery; the contended lock mix completes without a
//! hang and blocking mode actually detects deadlocks) instead of printing
//! tables — the CI-friendly mode used by `scripts/verify.sh`.
//! `--scale-smoke` runs the 64-shard sharded mix on every organization and
//! lints every shard's log — the `scripts/verify.sh --scale` tier.

use argus_bench::{
    cc_perf, commit_perf, e10_abort_rate, e11_explore_coverage, e12_group_commit,
    e13_recovery_cache, e14_cc_policies, e15_sweep_coverage, e16_latency_attribution,
    e17_vopr_coverage, e18_wall_group_commit, e19_wall_recovery, e1_write_cost,
    e20_instant_restart, e21_sharded_scaling, e2_recovery_cost, e4_housekeeping_cost,
    e5_checkpoint_bounds_recovery, e6_early_prepare, e7_map_scaling, e8_crash_matrix,
    e9_device_sensitivity, recovery_perf, Table,
};
use argus_guardian::{CcPolicy, RsKind, World, WorldConfig};
use argus_obs::Registry;
use std::path::PathBuf;

/// Runs `f` under a fresh registry scope and returns its result plus the
/// run's metrics report.
fn scoped<T>(f: impl FnOnce() -> T) -> (T, argus_obs::Report) {
    let reg = Registry::new();
    let out = {
        let _scope = reg.enter();
        f()
    };
    (out, reg.report())
}

fn print_metrics(id: &str, report: &argus_obs::Report) {
    println!("#### {id} run metrics\n");
    println!("{}", report.to_text_compact());
}

/// Writes `table` as `BENCH_<id>.json` under `dir`, if a dir was given.
fn emit_json(dir: &Option<PathBuf>, table: &Table) {
    if let Some(dir) = dir {
        let path = dir.join(format!("BENCH_{}.json", table.id));
        std::fs::write(&path, table.to_json())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
}

/// The `--smoke` mode: a tiny E12/E13/E14 asserting the optimization and
/// lock-scheduling invariants hold. Exits non-zero (panics) on violation.
fn smoke() {
    for kind in [RsKind::Simple, RsKind::Hybrid] {
        let unbatched = commit_perf(kind, 1, 3, WorldConfig::unbatched());
        let batched1 = commit_perf(kind, 1, 3, WorldConfig::default());
        let batched8 = commit_perf(kind, 8, 3, WorldConfig::default());
        assert!(
            batched1.forces_per_commit <= unbatched.forces_per_commit,
            "{kind:?}: batching increased forces/commit at concurrency 1 \
             ({} > {})",
            batched1.forces_per_commit,
            unbatched.forces_per_commit
        );
        assert!(
            batched8.forces_per_commit < batched1.forces_per_commit,
            "{kind:?}: concurrency did not reduce forces/commit \
             ({} !< {})",
            batched8.forces_per_commit,
            batched1.forces_per_commit
        );
        let recovery = recovery_perf(kind, 50, WorldConfig::default());
        assert!(
            recovery.hits > 0,
            "{kind:?}: page cache never hit during recovery"
        );
        println!(
            "smoke {kind:?}: forces/commit {:.2} (unbatched {:.2}) -> {:.2} at 8x; \
             recovery hit rate {:.0}%",
            batched1.forces_per_commit,
            unbatched.forces_per_commit,
            batched8.forces_per_commit,
            100.0 * recovery.hits as f64 / (recovery.hits + recovery.misses).max(1) as f64
        );
    }
    // E14: the contended lock mix must complete under every policy — a
    // stall returns an error and panics here, so "no hang" is asserted by
    // completion — and blocking mode must break at least one deadlock on a
    // mix that deadlocks by construction.
    for policy in [
        CcPolicy::ConflictAbort,
        CcPolicy::Blocking,
        CcPolicy::Timeout,
    ] {
        let perf = cc_perf(RsKind::Hybrid, policy, 8, 8);
        assert_eq!(
            perf.committed, 64,
            "{policy:?}: contended mix lost transfers"
        );
        if policy == CcPolicy::Blocking {
            assert!(
                perf.deadlocks > 0,
                "blocking: the deadlock-by-construction mix broke no deadlock"
            );
        }
        println!(
            "smoke cc {}: {} commits, {} retries, {} deadlocks, {} timeouts",
            policy.name(),
            perf.committed,
            perf.retries,
            perf.deadlocks,
            perf.timeouts
        );
    }
    println!("smoke: ok");
}

/// The `--scale-smoke` mode: the sharded many-guardian world at 64 shards
/// on every log organization — the `scripts/verify.sh --scale` tier.
/// Runs the zipfian cross-shard mix to completion, asserts the conservation
/// oracles (total balance; seats account exactly for the committed
/// reservations — the mix's legal-outcomes oracle), quiesces, then checks
/// the world structurally: I1–I10 on every shard's log, I11 heap quiescence
/// on every shard, I12 trace consistency. Exits non-zero (panics) on
/// violation.
fn scale_smoke() {
    use argus_check::{lint_heap_quiesced, lint_log, lint_trace, LogImage};
    use argus_workload::{Sharded, ShardedConfig};

    for kind in [RsKind::Simple, RsKind::Hybrid, RsKind::Shadow, RsKind::Redo] {
        let mut world = World::with_config(
            argus_sim::CostModel::fast(),
            WorldConfig::with_cc(CcPolicy::Blocking),
        );
        let cfg = ShardedConfig {
            shards: 64,
            users: 10_240,
            concurrency: 64,
            actions: 512,
            ..Default::default()
        };
        let mix = Sharded::setup(&mut world, kind, cfg).expect("setup");
        let mut rng = argus_sim::DetRng::new(64);
        let stats = mix.run(&mut world, &mut rng).expect("sharded run");
        assert_eq!(stats.committed, cfg.actions, "{kind:?}: lost actions");
        assert!(stats.cross_shard > 0, "{kind:?}: no cross-shard 2PC ran");
        assert_eq!(
            mix.total_balance(&world).expect("balance"),
            mix.expected_total(),
            "{kind:?}: total balance not conserved"
        );
        assert_eq!(
            mix.total_seats(&world).expect("seats"),
            mix.expected_seats(&stats),
            "{kind:?}: seats do not match committed reservations"
        );
        world.run_until_quiet().expect("quiesce");
        let live = world.live_actions();
        for g in world.guardian_ids() {
            if let Some(entries) = world.dump_log(g).expect("dump") {
                lint_log(&LogImage::from_entries(entries)).assert_clean();
            }
            let heap = &world.guardian(g).expect("guardian").heap;
            let heap_violations = lint_heap_quiesced(heap, &live);
            assert!(
                heap_violations.is_empty(),
                "{g:?} heap: {heap_violations:?}"
            );
        }
        let trace_violations = lint_trace(world.tracer());
        assert!(trace_violations.is_empty(), "trace: {trace_violations:?}");
        println!(
            "scale-smoke {kind:?}: {} commits ({} cross-shard, {} reservations) \
             across {}/{} coordinating shards, abort rate {:.1}%",
            stats.committed,
            stats.cross_shard,
            stats.reservations,
            stats.coordinating_shards(),
            cfg.shards,
            stats.abort_rate() * 100.0
        );
    }
    println!("scale-smoke: ok");
}

/// The `--wall-smoke` mode: E12's group-commit claim checked against a real
/// file with real fsyncs. At 8 concurrent actions the shared force schedule
/// must need at most half the fsyncs per commit of the immediate schedule
/// (in practice it is ~8x fewer; the loose bound keeps slow CI filesystems
/// from flaking). Panics (exits non-zero) on violation.
fn wall_smoke() {
    use argus_bench::wall_commit_perf;
    let dir = std::env::var("ARGUS_BENCH_DIR").ok();
    for kind in [RsKind::Simple, RsKind::Hybrid] {
        let immediate = wall_commit_perf(
            kind,
            8,
            5,
            argus_bench::file_config_for(dir.as_deref(), &format!("wall-smoke-imm-{kind:?}"), true),
        );
        let group = wall_commit_perf(
            kind,
            8,
            5,
            argus_bench::file_config_for(
                dir.as_deref(),
                &format!("wall-smoke-grp-{kind:?}"),
                false,
            ),
        );
        assert!(
            group.fsyncs_per_commit <= immediate.fsyncs_per_commit / 2.0,
            "{kind:?}: group commit did not reduce real fsyncs/commit              ({:.2} !<= {:.2}/2)",
            group.fsyncs_per_commit,
            immediate.fsyncs_per_commit
        );
        println!(
            "wall-smoke {kind:?}: fsyncs/commit {:.2} immediate -> {:.2} group;              {} -> {} ns/commit",
            immediate.fsyncs_per_commit,
            group.fsyncs_per_commit,
            immediate.ns_per_commit,
            group.ns_per_commit
        );
    }
    println!("wall-smoke: ok");
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut json_dir: Option<PathBuf> = None;
    let mut run_smoke = false;
    let mut run_wall_smoke = false;
    let mut run_scale_smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json-dir" => {
                let dir = PathBuf::from(args.next().expect("--json-dir needs a directory"));
                std::fs::create_dir_all(&dir).expect("create json dir");
                json_dir = Some(dir);
            }
            "--smoke" => run_smoke = true,
            "--wall-smoke" => run_wall_smoke = true,
            "--scale-smoke" => run_scale_smoke = true,
            other => ids.push(other.to_uppercase()),
        }
    }
    if run_smoke {
        let (_, _) = scoped(smoke);
        return;
    }
    if run_wall_smoke {
        wall_smoke();
        return;
    }
    if run_scale_smoke {
        let (_, _) = scoped(scale_smoke);
        return;
    }
    let want = |id: &str| ids.is_empty() || ids.iter().any(|a| a == id);

    println!("# Experiments — Reliable Object Storage to Support Atomic Actions\n");

    if want("E1") {
        let (table, metrics) = scoped(|| e1_write_cost(200));
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E1", &metrics);
    }
    if want("E2") || want("E3") {
        let ((e2, e3), metrics) = scoped(|| e2_recovery_cost(&[250, 1_000, 4_000, 16_000]));
        if want("E2") {
            println!("{e2}");
            emit_json(&json_dir, &e2);
        }
        if want("E3") {
            println!("{e3}");
            emit_json(&json_dir, &e3);
        }
        print_metrics("E2/E3", &metrics);
    }
    if want("E4") {
        let (table, metrics) = scoped(e4_housekeeping_cost);
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E4", &metrics);
    }
    if want("E5") {
        let (table, metrics) = scoped(e5_checkpoint_bounds_recovery);
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E5", &metrics);
    }
    if want("E6") {
        let (table, metrics) = scoped(e6_early_prepare);
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E6", &metrics);
    }
    if want("E7") {
        let (table, metrics) = scoped(e7_map_scaling);
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E7", &metrics);
    }
    if want("E8") {
        let (table, metrics) = scoped(e8_crash_matrix);
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E8", &metrics);
    }
    if want("E9") {
        let (table, metrics) = scoped(e9_device_sensitivity);
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E9", &metrics);
    }
    if want("E10") {
        let (table, metrics) = scoped(e10_abort_rate);
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E10", &metrics);
    }
    if want("E11") {
        let (table, metrics) = scoped(e11_explore_coverage);
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E11", &metrics);
    }
    if want("E12") {
        let (table, metrics) = scoped(|| e12_group_commit(25));
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E12", &metrics);
    }
    if want("E13") {
        let (table, metrics) = scoped(|| e13_recovery_cache(2_000));
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E13", &metrics);
    }
    if want("E14") {
        let (table, metrics) = scoped(|| e14_cc_policies(&[2, 8, 32], 8));
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E14", &metrics);
    }
    if want("E15") {
        let (table, metrics) = scoped(|| e15_sweep_coverage(None, true));
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E15", &metrics);
    }
    if want("E16") {
        let (table, metrics) = scoped(|| e16_latency_attribution(8));
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E16", &metrics);
    }
    if want("E17") {
        let (table, metrics) = scoped(|| e17_vopr_coverage(24, 64));
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E17", &metrics);
    }
    // E18/E19 run on real files (the OS temp dir by default; set
    // ARGUS_BENCH_DIR to point them at tmpfs or a specific disk) and time
    // with a monotonic clock, so their numbers vary run to run — the
    // *ordering* (group commit ≪ immediate fsyncs; hybrid restart ≪ simple)
    // is the reproducible claim.
    let wall_dir = std::env::var("ARGUS_BENCH_DIR").ok();
    if want("E18") {
        let (table, metrics) = scoped(|| e18_wall_group_commit(25, wall_dir.as_deref()));
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E18", &metrics);
    }
    if want("E19") {
        let (table, metrics) = scoped(|| e19_wall_recovery(2_000, wall_dir.as_deref()));
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E19", &metrics);
    }
    // E20 combines a simulated half (deterministic) with a wall-clock half
    // on a real file, and asserts the instant-restart claims as it runs.
    if want("E20") {
        let (table, metrics) = scoped(|| e20_instant_restart(2_000, wall_dir.as_deref()));
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E20", &metrics);
    }
    if want("E21") {
        let (table, metrics) = scoped(|| e21_sharded_scaling(&[4, 64, 256], 8));
        println!("{table}");
        emit_json(&json_dir, &table);
        print_metrics("E21", &metrics);
    }
}
