//! Regenerates every experiment table (E1–E11). See DESIGN.md for the
//! experiment index and EXPERIMENTS.md for recorded results.
//!
//! Each experiment runs under its own `argus_obs::Registry` scope, so the
//! table is followed by that run's metrics report — counters and phase
//! timings recorded by the instrumented layers (slog, core, twopc, world).
//!
//! ```sh
//! cargo run --release -p argus-bench --bin experiments            # all
//! cargo run --release -p argus-bench --bin experiments -- E2 E3  # subset
//! ```

use argus_bench::{
    e10_abort_rate, e11_explore_coverage, e1_write_cost, e2_recovery_cost, e4_housekeeping_cost,
    e5_checkpoint_bounds_recovery, e6_early_prepare, e7_map_scaling, e8_crash_matrix,
    e9_device_sensitivity,
};
use argus_obs::Registry;

/// Runs `f` under a fresh registry scope and returns its result plus the
/// run's metrics report.
fn scoped<T>(f: impl FnOnce() -> T) -> (T, argus_obs::Report) {
    let reg = Registry::new();
    let out = {
        let _scope = reg.enter();
        f()
    };
    (out, reg.report())
}

fn print_metrics(id: &str, report: &argus_obs::Report) {
    println!("#### {id} run metrics\n");
    println!("{}", report.to_text_compact());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_uppercase()).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    println!("# Experiments — Reliable Object Storage to Support Atomic Actions\n");

    if want("E1") {
        let (table, metrics) = scoped(|| e1_write_cost(200));
        println!("{table}");
        print_metrics("E1", &metrics);
    }
    if want("E2") || want("E3") {
        let ((e2, e3), metrics) = scoped(|| e2_recovery_cost(&[250, 1_000, 4_000, 16_000]));
        if want("E2") {
            println!("{e2}");
        }
        if want("E3") {
            println!("{e3}");
        }
        print_metrics("E2/E3", &metrics);
    }
    if want("E4") {
        let (table, metrics) = scoped(e4_housekeeping_cost);
        println!("{table}");
        print_metrics("E4", &metrics);
    }
    if want("E5") {
        let (table, metrics) = scoped(e5_checkpoint_bounds_recovery);
        println!("{table}");
        print_metrics("E5", &metrics);
    }
    if want("E6") {
        let (table, metrics) = scoped(e6_early_prepare);
        println!("{table}");
        print_metrics("E6", &metrics);
    }
    if want("E7") {
        let (table, metrics) = scoped(e7_map_scaling);
        println!("{table}");
        print_metrics("E7", &metrics);
    }
    if want("E8") {
        let (table, metrics) = scoped(e8_crash_matrix);
        println!("{table}");
        print_metrics("E8", &metrics);
    }
    if want("E9") {
        let (table, metrics) = scoped(e9_device_sensitivity);
        println!("{table}");
        print_metrics("E9", &metrics);
    }
    if want("E10") {
        let (table, metrics) = scoped(e10_abort_rate);
        println!("{table}");
        print_metrics("E10", &metrics);
    }
    if want("E11") {
        let (table, metrics) = scoped(e11_explore_coverage);
        println!("{table}");
        print_metrics("E11", &metrics);
    }
}
