//! The simple-log recovery system (ch. 3).

use crate::api::{HousekeepingMode, LogStats, RecoverySystem, StoreProvider};
use crate::entry::{
    decode_entry, decode_entry_view, encode_entry, encode_entry_into, EntryRef, EntryView, LogEntry,
};
use crate::metrics::CoreObs;
use crate::restore::RecoverCtx;
use crate::tables::{ObjState, RecoveryOutcome};
use crate::writer::{process_mos, EntrySink};
use crate::{RsError, RsResult};
use argus_objects::{ActionId, GuardianId, Heap, HeapId, ObjKind, ObjectBody, Uid, Value};
use argus_slog::{LogAddress, StableLog};
use argus_stable::PageStore;
use std::collections::HashSet;

/// Emits simple-log entries: data entries carry uid, kind and aid
/// (Figure 3-1); nothing is chained.
struct SimpleSink<'a, S: PageStore> {
    log: &'a mut StableLog<S>,
    obs: &'a CoreObs,
}

impl<S: PageStore> SimpleSink<'_, S> {
    /// Encodes `entry` straight into the log's pending buffer (no
    /// per-record allocation), returning its payload length.
    fn append(&mut self, entry: EntryRef<'_>) -> RsResult<u64> {
        let mut len = 0;
        self.log.write_with(|enc| {
            let start = enc.len();
            encode_entry_into(enc, &entry)?;
            len = (enc.len() - start) as u64;
            Ok::<_, RsError>(())
        })?;
        Ok(len)
    }
}

impl<S: PageStore> EntrySink for SimpleSink<'_, S> {
    fn data(&mut self, uid: Uid, kind: ObjKind, value: Value, aid: ActionId) -> RsResult<()> {
        let len = self.append(EntryRef::Data {
            uid,
            kind,
            value: &value,
            aid,
        })?;
        self.obs.data_entry(len);
        Ok(())
    }

    fn base_committed(&mut self, uid: Uid, value: Value) -> RsResult<()> {
        let len = self.append(EntryRef::BaseCommitted {
            uid,
            value: &value,
            prev: None,
        })?;
        self.obs.entry_written("base_committed", len);
        Ok(())
    }

    fn prepared_data(&mut self, uid: Uid, value: Value, aid: ActionId) -> RsResult<()> {
        let len = self.append(EntryRef::PreparedData {
            uid,
            value: &value,
            aid,
            prev: None,
        })?;
        self.obs.entry_written("prepared_data", len);
        Ok(())
    }
}

/// In-progress simple-log compaction state (between `begin_housekeeping` and
/// `finish_housekeeping`).
#[derive(Debug)]
struct SimpleHk<S: PageStore> {
    new_log: StableLog<S>,
    /// Forced-entry count of the old log at begin: entries with `seq >=
    /// marker` were written after stage one digested the log and are copied
    /// verbatim by stage two.
    marker: u64,
    /// Stable entries on the old log when the pass started (metrics).
    old_entries_at_begin: u64,
}

/// The recovery system over a simple log: writing per §3.3, recovery per
/// §3.4.4 (read *every* entry backwards). Fast writing, slow recovery; no
/// early prepare. Housekeeping is log compaction in the simple-log idiom:
/// the digest is re-expressed with the flat entry forms recovery already
/// understands (`base_committed`, `prepared_data`, plain data entries), so
/// the compacted log is still an ordinary simple log.
#[derive(Debug)]
pub struct SimpleLogRs<P: StoreProvider> {
    provider: P,
    log: StableLog<P::Store>,
    /// The accessibility set (AS, §3.3.3.2).
    access: HashSet<Uid>,
    /// The prepared-actions table (PAT, §3.3.3.2).
    pat: HashSet<ActionId>,
    /// In-progress housekeeping state.
    hk: Option<SimpleHk<P::Store>>,
    /// Cached metric handles.
    obs: CoreObs,
}

impl<P: StoreProvider> SimpleLogRs<P> {
    /// Creates a recovery system over a freshly formatted log. The stable
    /// root is accessible by definition.
    pub fn create(mut provider: P) -> RsResult<Self> {
        let log = StableLog::create(provider.new_store())?;
        Ok(Self {
            provider,
            log,
            access: [Uid::STABLE_ROOT].into_iter().collect(),
            pat: HashSet::new(),
            hk: None,
            obs: CoreObs::resolve(),
        })
    }

    /// Opens a recovery system over an existing log (post-crash). Call
    /// [`RecoverySystem::recover`] before anything else.
    pub fn open(provider: P, store: P::Store) -> RsResult<Self> {
        Ok(Self {
            provider,
            log: StableLog::open(store)?,
            access: HashSet::new(),
            pat: HashSet::new(),
            hk: None,
            obs: CoreObs::resolve(),
        })
    }

    /// Appends a raw entry — scenario tests use this to fabricate the exact
    /// logs of the thesis's figures.
    pub fn append_raw(&mut self, entry: &LogEntry, force: bool) -> RsResult<LogAddress> {
        let bytes = encode_entry(entry)?;
        let addr = self.log.write(&bytes);
        if force {
            self.log.force()?;
        }
        Ok(addr)
    }

    /// The accessibility set (read-only, for tests and experiments).
    pub fn access_set(&self) -> &HashSet<Uid> {
        &self.access
    }

    /// Decodes every forced entry, oldest first — scenario tests use this to
    /// check the exact log contents against the thesis's figures.
    pub fn dump_entries(&mut self) -> RsResult<Vec<(LogAddress, LogEntry)>> {
        let mut entries = Vec::new();
        for item in self.log.read_backward(None) {
            let (addr, _seq, payload) = item.map_err(RsError::Log)?;
            entries.push((addr, payload));
        }
        let mut decoded = Vec::with_capacity(entries.len());
        for (addr, payload) in entries.into_iter().rev() {
            decoded.push((addr, decode_entry(&payload)?));
        }
        Ok(decoded)
    }

    /// Direct access to the underlying log (experiments).
    pub fn log(&self) -> &StableLog<P::Store> {
        &self.log
    }

    /// The §3.4.4 backward scan: feeds every forced entry (newest first)
    /// through `ctx`, including the deferred committed_ss handling. Shared
    /// between [`RecoverySystem::recover`] and compaction stage one, which is
    /// "like a recovery" (§5.1.1) but digests into a scratch heap.
    fn scan_log(&mut self, ctx: &mut RecoverCtx<'_>) -> RsResult<()> {
        // Deferred committed_ss pairs (only present if someone recovers a
        // compacted hybrid log with the simple algorithm).
        let mut deferred_cssl: Vec<(Uid, LogAddress)> = Vec::new();

        // Step 2: read the log backwards, every entry. Records are decoded
        // as zero-copy views: versions of superseded or wiped-out writes are
        // validated but never materialized.
        for item in self.log.read_backward(None) {
            let (addr, _seq, payload) = item?;
            let entry = decode_entry_view(&payload)?;
            ctx.entries_examined += 1;
            match entry {
                EntryView::Prepared { aid, .. } => {
                    ctx.on_prepared(aid);
                }
                EntryView::Committed { aid, .. } => ctx.on_committed(aid),
                EntryView::Aborted { aid, .. } => ctx.on_aborted(aid),
                EntryView::Committing { aid, gids, .. } => ctx.on_committing(aid, gids.to_vec()),
                EntryView::Done { aid, .. } => ctx.on_done(aid),
                EntryView::BaseCommitted { uid, value, .. } => {
                    ctx.on_base_committed(uid, value.into())?
                }
                EntryView::PreparedData {
                    uid, value, aid, ..
                } => ctx.on_prepared_data(uid, value.into(), aid)?,
                // A redo-log data entry is a data entry whose backlink the
                // simple scan simply does not need.
                EntryView::Data {
                    uid,
                    kind,
                    value,
                    aid,
                }
                | EntryView::DataR {
                    uid,
                    kind,
                    value,
                    aid,
                    ..
                } => {
                    ctx.data_entries_read += 1;
                    ctx.on_data(addr, uid, kind, value.into(), aid)?;
                }
                // Hybrid-log data entries carry no uid/aid; in a pure scan
                // they can only be interpreted through the prepared entries'
                // pairs, which the simple algorithm does not use.
                EntryView::DataH { .. } => {}
                EntryView::CommittedSs { cssl, .. } => deferred_cssl.extend(cssl.iter()),
            }
        }

        // Checkpoint pairs are the oldest committed state; restoring them
        // after the scan preserves newest-first priority.
        let mut scratch = Vec::new();
        for (uid, addr) in deferred_cssl {
            if ctx.ot.get(uid).map(|e| e.state) == Some(ObjState::Restored) {
                continue;
            }
            self.log.read_into(addr, &mut scratch)?;
            ctx.entries_examined += 1;
            ctx.data_entries_read += 1;
            match decode_entry_view(&scratch)? {
                EntryView::DataH { kind, value } => {
                    ctx.restore_committed(uid, kind, value.into(), Some(addr))?;
                }
                other => {
                    return Err(RsError::BadState(format!(
                        "cssl pair points at a {} entry",
                        other.name()
                    )))
                }
            }
        }
        Ok(())
    }
}

impl<P: StoreProvider> RecoverySystem for SimpleLogRs<P> {
    fn prepare(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<()> {
        self.stage_prepare(aid, mos, heap)?;
        self.force_staged()
    }

    fn write_entry(
        &mut self,
        _aid: ActionId,
        mos: &[HeapId],
        _heap: &Heap,
    ) -> RsResult<Vec<HeapId>> {
        // Early prepare is a hybrid-log refinement (§4.4); under the simple
        // log the whole MOS simply waits for the prepare message.
        Ok(mos.to_vec())
    }

    fn commit(&mut self, aid: ActionId) -> RsResult<()> {
        self.stage_commit(aid)?;
        self.force_staged()
    }

    fn abort(&mut self, aid: ActionId) -> RsResult<()> {
        self.stage_abort(aid)?;
        self.force_staged()
    }

    fn committing(&mut self, aid: ActionId, gids: &[GuardianId]) -> RsResult<()> {
        self.stage_committing(aid, gids)?;
        self.force_staged()
    }

    fn done(&mut self, aid: ActionId) -> RsResult<()> {
        self.stage_done(aid)?;
        self.force_staged()
    }

    // Staged variants: identical bookkeeping, but the force is deferred to
    // `force_staged` so a group-commit scheduler can share it. Volatile
    // tables are updated at stage time — operations arrive sequentially
    // (§2.3), so a later `process_mos` in the same batch must already see
    // this prepare's PAT entry.

    fn stage_prepare(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<bool> {
        let _timer = self.obs.reg.phase("core.prepare_us");
        {
            let mut sink = SimpleSink {
                log: &mut self.log,
                obs: &self.obs,
            };
            process_mos(aid, mos, heap, &mut self.access, &self.pat, &mut sink)?;
        }
        self.log.write_with(|enc| {
            encode_entry_into(
                enc,
                &EntryRef::Prepared {
                    aid,
                    pairs: &[],
                    prev: None,
                },
            )
        })?;
        self.obs.outcome("prepared", None);
        self.pat.insert(aid);
        self.obs.prepares.inc();
        Ok(true)
    }

    fn stage_commit(&mut self, aid: ActionId) -> RsResult<bool> {
        self.log
            .write_with(|enc| encode_entry_into(enc, &EntryRef::Committed { aid, prev: None }))?;
        self.obs.outcome("committed", None);
        self.pat.remove(&aid);
        self.obs.commits.inc();
        Ok(true)
    }

    fn stage_abort(&mut self, aid: ActionId) -> RsResult<bool> {
        self.log
            .write_with(|enc| encode_entry_into(enc, &EntryRef::Aborted { aid, prev: None }))?;
        self.obs.outcome("aborted", None);
        self.pat.remove(&aid);
        self.obs.aborts.inc();
        Ok(true)
    }

    fn stage_committing(&mut self, aid: ActionId, gids: &[GuardianId]) -> RsResult<bool> {
        self.log.write_with(|enc| {
            encode_entry_into(
                enc,
                &EntryRef::Committing {
                    aid,
                    gids,
                    prev: None,
                },
            )
        })?;
        self.obs.outcome("committing", None);
        self.obs.committings.inc();
        Ok(true)
    }

    fn stage_done(&mut self, aid: ActionId) -> RsResult<bool> {
        self.log
            .write_with(|enc| encode_entry_into(enc, &EntryRef::Done { aid, prev: None }))?;
        self.obs.outcome("done", None);
        self.obs.dones.inc();
        Ok(true)
    }

    fn force_staged(&mut self) -> RsResult<()> {
        self.log.force()?;
        Ok(())
    }

    fn recover(&mut self, heap: &mut Heap) -> RsResult<RecoveryOutcome> {
        let timer = self.obs.reg.phase("core.recover_us");
        let mut ctx = RecoverCtx::new(heap);
        self.scan_log(&mut ctx)?;

        // Step 3: turn uids into pointers; the stable counter was advanced
        // as objects were inserted.
        ctx.heap.resolve_uid_refs();

        let outcome = RecoveryOutcome {
            entries_examined: ctx.entries_examined,
            data_entries_read: ctx.data_entries_read,
            chain_hops: ctx.chain_hops,
            ot: ctx.ot,
            pt: ctx.pt,
            ct: ctx.ct,
        };
        self.obs.recovery_pass(&outcome);
        timer.stop();

        // Step 4: rebuild the accessibility set from the restored state.
        self.access = heap.accessible_uids();
        if heap.stable_root().is_none() {
            // A brand-new guardian that crashed before its first prepare:
            // the root is still accessible by definition.
            self.access.insert(Uid::STABLE_ROOT);
        }
        // The PAT is the set of in-doubt actions.
        self.pat = outcome.pt.prepared_actions().into_iter().collect();
        Ok(outcome)
    }

    fn begin_housekeeping(&mut self, _heap: &Heap, mode: HousekeepingMode) -> RsResult<()> {
        if mode != HousekeepingMode::Compaction {
            return Err(RsError::Unsupported(
                "snapshot housekeeping on the simple log (§5.2 needs the MT)",
            ));
        }
        if self.hk.is_some() {
            return Err(RsError::BadState("housekeeping already in progress".into()));
        }
        let _timer = self.obs.reg.phase("core.hk.begin_us");
        // Flush buffered entries so the marker covers a readable prefix.
        self.log.force()?;
        let marker = self.log.stable_count();

        // Stage one: digest everything below the marker exactly like a
        // recovery, into a scratch heap. resolve_uid_refs is deliberately
        // skipped so the restored values keep their uid-reference encoding
        // and can be re-logged verbatim.
        let mut scratch = Heap::new();
        let mut ctx = RecoverCtx::new(&mut scratch);
        self.scan_log(&mut ctx)?;

        let mut hk = SimpleHk {
            new_log: StableLog::create(self.provider.new_store())?,
            marker,
            old_entries_at_begin: marker,
        };

        // Deterministic emission: tables are hash maps, so sort everything.
        let mut uids: Vec<Uid> = ctx.ot.iter().map(|(u, _)| *u).collect();
        uids.sort();

        // Committed atomic bases, prepared (in-doubt) versions, and mutex
        // values, straight from the scratch heap.
        let mut prepared_versions: Vec<(ActionId, Uid, Value)> = Vec::new();
        let mut mutex_values: Vec<(Uid, Value)> = Vec::new();
        for uid in &uids {
            let entry = ctx.ot.get(*uid).expect("uid came from the OT");
            match &ctx.heap.get(entry.heap)?.body {
                ObjectBody::Atomic(obj) => {
                    if entry.state == ObjState::Restored {
                        let bytes = encode_entry(&LogEntry::BaseCommitted {
                            uid: *uid,
                            value: obj.base.clone(),
                            prev: None,
                        })?;
                        hk.new_log.write(&bytes);
                    }
                    if let (Some(writer), Some(cur)) = (obj.writer, &obj.current) {
                        prepared_versions.push((writer, *uid, cur.clone()));
                    }
                }
                ObjectBody::Mutex(obj) => mutex_values.push((*uid, obj.value.clone())),
            }
        }

        // Mutex values compact as *committed* state regardless of their
        // writers' outcomes (§2.4.2: a mutex keeps its newest value). They
        // are re-logged as the data entries of a synthetic committed action
        // — "like a combined prepare and commit for some special action
        // whose name does not matter" (§5.1.1) — so the compacted log stays
        // an ordinary simple log.
        if !mutex_values.is_empty() {
            let hk_aid = ActionId::new(GuardianId(u32::MAX), marker);
            let bytes = encode_entry(&LogEntry::Prepared {
                aid: hk_aid,
                pairs: Vec::new(),
                prev: None,
            })?;
            hk.new_log.write(&bytes);
            for (uid, value) in mutex_values {
                let bytes = encode_entry(&LogEntry::Data {
                    uid,
                    kind: ObjKind::Mutex,
                    value,
                    aid: hk_aid,
                })?;
                hk.new_log.write(&bytes);
            }
            let bytes = encode_entry(&LogEntry::Committed {
                aid: hk_aid,
                prev: None,
            })?;
            hk.new_log.write(&bytes);
        }

        // In-doubt actions survive compaction: their prepared versions as
        // `prepared_data`, plus a bare `prepared` entry so a participant
        // whose writes were all mutexes still remembers it prepared.
        prepared_versions.sort_by_key(|v| (v.0, v.1));
        for (aid, uid, value) in prepared_versions {
            if ctx.pt.get(aid) != Some(crate::tables::PState::Prepared) {
                continue;
            }
            let bytes = encode_entry(&LogEntry::PreparedData {
                uid,
                value,
                aid,
                prev: None,
            })?;
            hk.new_log.write(&bytes);
        }
        for aid in ctx.pt.prepared_actions() {
            let bytes = encode_entry(&LogEntry::Prepared {
                aid,
                pairs: Vec::new(),
                prev: None,
            })?;
            hk.new_log.write(&bytes);
        }

        // Coordinators still in phase two.
        for (aid, gids) in ctx.ct.committing_actions() {
            let bytes = encode_entry(&LogEntry::Committing {
                aid,
                gids,
                prev: None,
            })?;
            hk.new_log.write(&bytes);
        }

        self.hk = Some(hk);
        Ok(())
    }

    fn finish_housekeeping(&mut self) -> RsResult<()> {
        let _timer = self.obs.reg.phase("core.hk.finish_us");
        let mut hk = self
            .hk
            .take()
            .ok_or_else(|| RsError::BadState("no housekeeping in progress".into()))?;

        // Publish post-marker buffered entries so stage two can read them.
        self.log.force()?;

        // Stage two: copy everything written since the marker, verbatim —
        // simple-log entries are self-describing, so recovery interprets the
        // copies exactly as it did the originals.
        let mut tail = Vec::new();
        for item in self.log.read_backward(None) {
            let (_addr, seq, payload) = item?;
            if seq < hk.marker {
                break;
            }
            tail.push(payload);
        }
        for payload in tail.into_iter().rev() {
            hk.new_log.write(&payload);
        }
        hk.new_log.force()?;

        let new_entries = hk.new_log.stable_count();
        let reclaimed = self.log.stable_count().saturating_sub(new_entries);
        self.obs.reg.event(argus_obs::Event::CompactionPass {
            entries_in: hk.old_entries_at_begin,
            entries_out: new_entries,
        });
        self.obs.hk_passes.inc();
        self.obs.hk_reclaimed.add(reclaimed);
        self.obs.reg.event(argus_obs::Event::HousekeepingDone {
            mode: "compaction",
            entries_reclaimed: reclaimed,
        });

        // "In one atomic step, the new log supplants the old log."
        self.log = hk.new_log;
        self.provider.store_switched();
        Ok(())
    }

    fn simulate_crash(&mut self) -> RsResult<()> {
        self.log.reopen()?;
        self.access.clear();
        self.pat.clear();
        // An in-progress housekeeping pass dies with the node: the old log
        // is still the active one (the switch is the last step of finish).
        self.hk = None;
        Ok(())
    }

    fn trim_access_set(&mut self, heap: &Heap) {
        let reachable = heap.accessible_uids();
        self.access = self.access.intersection(&reachable).copied().collect();
        self.access.insert(Uid::STABLE_ROOT);
    }

    fn dump_log(&mut self) -> RsResult<Option<Vec<(LogAddress, LogEntry)>>> {
        self.dump_entries().map(Some)
    }

    fn is_prepared(&self, aid: ActionId) -> bool {
        self.pat.contains(&aid)
    }

    fn log_stats(&self) -> LogStats {
        LogStats {
            entries: self.log.stable_count(),
            bytes: self.log.stable_bytes(),
            device: self.log.store().stats().snapshot(),
        }
    }

    fn decay_page(&mut self, pno: argus_stable::PageNo) -> bool {
        self.log.store_mut().decay_page(pno)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::providers::MemProvider;

    fn rs() -> SimpleLogRs<MemProvider> {
        SimpleLogRs::create(MemProvider::fast()).unwrap()
    }

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    fn commit_root_update(
        rs: &mut SimpleLogRs<MemProvider>,
        heap: &mut Heap,
        a: ActionId,
        value: Value,
    ) {
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = value).unwrap();
        rs.prepare(a, &[root], heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);
    }

    #[test]
    fn prepare_then_recover_restores_objects() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let obj = heap.alloc_atomic(Value::Int(41), Some(a));
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Seq(vec![Value::heap_ref(obj)]))
            .unwrap();
        let obj_uid = heap.uid_of(obj).unwrap();

        rs.prepare(a, &[root], &heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);

        // Crash: volatile state gone.
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.pt.get(a), Some(crate::tables::PState::Committed));
        let h = heap2.lookup(obj_uid).unwrap();
        assert_eq!(heap2.read_value(h, None).unwrap(), &Value::Int(41));
        // Root restored with the reference resolved back to a pointer.
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(
            heap2.read_value(root2, None).unwrap(),
            &Value::Seq(vec![Value::heap_ref(h)])
        );
        // AS rebuilt.
        assert!(rs.access_set().contains(&obj_uid));
    }

    #[test]
    fn unforced_prepare_is_invisible_after_crash() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(1)).unwrap();
        // Write data entries but never force (no prepare record): simulate
        // by appending a raw unforced data entry.
        rs.append_raw(
            &LogEntry::Data {
                uid: Uid::STABLE_ROOT,
                kind: ObjKind::Atomic,
                value: Value::Int(1),
                aid: a,
            },
            false,
        )
        .unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.entries_examined, 0);
        assert!(heap2.is_empty());
    }

    #[test]
    fn snapshot_housekeeping_is_unsupported() {
        let mut rs = rs();
        let heap = Heap::new();
        assert!(matches!(
            rs.housekeeping(&heap, HousekeepingMode::Snapshot),
            Err(RsError::Unsupported(_))
        ));
    }

    #[test]
    fn compaction_shrinks_the_log_and_preserves_state() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..50 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        let before = rs.log().stable_count();
        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        let after = rs.log().stable_count();
        assert!(after < before / 5, "before={before} after={after}");

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(49));
    }

    #[test]
    fn in_doubt_actions_survive_compaction() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..3 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        let b = aid(100);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, b).unwrap();
        heap.write_value(root, b, |v| *v = Value::Int(777)).unwrap();
        rs.prepare(b, &[root], &heap).unwrap();

        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.pt.get(b), Some(crate::tables::PState::Prepared));
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(2));
        assert_eq!(heap2.read_value(root2, Some(b)).unwrap(), &Value::Int(777));
    }

    #[test]
    fn activity_between_stages_reaches_the_new_log() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..5 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        rs.begin_housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();

        // Guardian keeps working while "the compaction process" runs.
        let c = aid(200);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, c).unwrap();
        heap.write_value(root, c, |v| *v = Value::Int(1234))
            .unwrap();
        rs.prepare(c, &[root], &heap).unwrap();
        rs.commit(c).unwrap();
        heap.commit_action(c);

        rs.finish_housekeeping().unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(1234));
    }

    #[test]
    fn mutex_state_survives_compaction() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let m = heap.alloc_mutex(Value::Int(1));
        let m_uid = heap.uid_of(m).unwrap();
        commit_root_update(&mut rs, &mut heap, a, Value::heap_ref(m));

        // A prepared-then-aborted action's mutex version must survive
        // compaction as committed state (§2.4.2).
        let b = aid(2);
        heap.seize(m, b).unwrap();
        heap.mutate_mutex(m, b, |v| *v = Value::Int(42)).unwrap();
        heap.release(m, b).unwrap();
        rs.prepare(b, &[m], &heap).unwrap();
        rs.abort(b).unwrap();
        heap.abort_action(b);

        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let m2 = heap2.lookup(m_uid).unwrap();
        assert_eq!(heap2.read_value(m2, None).unwrap(), &Value::Int(42));
    }

    #[test]
    fn repeated_compaction_recompacts_its_own_digest() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..10 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(9));
    }

    #[test]
    fn crash_before_finish_keeps_the_old_log() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..4 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        rs.begin_housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        // Crash before the switch: the old (uncompacted) log is intact.
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(3));
        // Housekeeping state was discarded with the crash.
        assert!(matches!(
            rs.finish_housekeeping(),
            Err(RsError::BadState(_))
        ));
    }

    #[test]
    fn prepared_action_is_in_pat_until_resolution() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(7)).unwrap();
        rs.prepare(a, &[root], &heap).unwrap();
        assert!(rs.is_prepared(a));
        rs.commit(a).unwrap();
        assert!(!rs.is_prepared(a));
    }
}
