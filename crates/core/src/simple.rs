//! The simple-log recovery system (ch. 3).

use crate::api::{HousekeepingMode, LogStats, RecoverySystem};
use crate::entry::{decode_entry, encode_entry, LogEntry};
use crate::metrics::CoreObs;
use crate::restore::RecoverCtx;
use crate::tables::RecoveryOutcome;
use crate::writer::{process_mos, EntrySink};
use crate::{RsError, RsResult};
use argus_objects::{ActionId, GuardianId, Heap, HeapId, ObjKind, Uid, Value};
use argus_slog::{LogAddress, StableLog};
use argus_stable::PageStore;
use std::collections::HashSet;

/// Emits simple-log entries: data entries carry uid, kind and aid
/// (Figure 3-1); nothing is chained.
struct SimpleSink<'a, S: PageStore> {
    log: &'a mut StableLog<S>,
    obs: &'a CoreObs,
}

impl<S: PageStore> EntrySink for SimpleSink<'_, S> {
    fn data(&mut self, uid: Uid, kind: ObjKind, value: Value, aid: ActionId) -> RsResult<()> {
        let bytes = encode_entry(&LogEntry::Data {
            uid,
            kind,
            value,
            aid,
        })?;
        self.log.write(&bytes);
        self.obs.data_entry(bytes.len() as u64);
        Ok(())
    }

    fn base_committed(&mut self, uid: Uid, value: Value) -> RsResult<()> {
        let bytes = encode_entry(&LogEntry::BaseCommitted {
            uid,
            value,
            prev: None,
        })?;
        self.log.write(&bytes);
        self.obs.entry_written("base_committed", bytes.len() as u64);
        Ok(())
    }

    fn prepared_data(&mut self, uid: Uid, value: Value, aid: ActionId) -> RsResult<()> {
        let bytes = encode_entry(&LogEntry::PreparedData {
            uid,
            value,
            aid,
            prev: None,
        })?;
        self.log.write(&bytes);
        self.obs.entry_written("prepared_data", bytes.len() as u64);
        Ok(())
    }
}

/// The recovery system over a simple log: writing per §3.3, recovery per
/// §3.4.4 (read *every* entry backwards). Fast writing, slow recovery; no
/// early prepare and no housekeeping (both are ch. 4/5 hybrid-log features).
#[derive(Debug)]
pub struct SimpleLogRs<S: PageStore> {
    log: StableLog<S>,
    /// The accessibility set (AS, §3.3.3.2).
    access: HashSet<Uid>,
    /// The prepared-actions table (PAT, §3.3.3.2).
    pat: HashSet<ActionId>,
    /// Cached metric handles.
    obs: CoreObs,
}

impl<S: PageStore> SimpleLogRs<S> {
    /// Creates a recovery system over a freshly formatted log. The stable
    /// root is accessible by definition.
    pub fn create(store: S) -> RsResult<Self> {
        Ok(Self {
            log: StableLog::create(store)?,
            access: [Uid::STABLE_ROOT].into_iter().collect(),
            pat: HashSet::new(),
            obs: CoreObs::resolve(),
        })
    }

    /// Opens a recovery system over an existing log (post-crash). Call
    /// [`RecoverySystem::recover`] before anything else.
    pub fn open(store: S) -> RsResult<Self> {
        Ok(Self {
            log: StableLog::open(store)?,
            access: HashSet::new(),
            pat: HashSet::new(),
            obs: CoreObs::resolve(),
        })
    }

    /// Appends a raw entry — scenario tests use this to fabricate the exact
    /// logs of the thesis's figures.
    pub fn append_raw(&mut self, entry: &LogEntry, force: bool) -> RsResult<LogAddress> {
        let bytes = encode_entry(entry)?;
        let addr = self.log.write(&bytes);
        if force {
            self.log.force()?;
        }
        Ok(addr)
    }

    /// The accessibility set (read-only, for tests and experiments).
    pub fn access_set(&self) -> &HashSet<Uid> {
        &self.access
    }

    /// Decodes every forced entry, oldest first — scenario tests use this to
    /// check the exact log contents against the thesis's figures.
    pub fn dump_entries(&mut self) -> RsResult<Vec<(LogAddress, LogEntry)>> {
        let mut entries = Vec::new();
        for item in self.log.read_backward(None) {
            let (addr, _seq, payload) = item.map_err(RsError::Log)?;
            entries.push((addr, payload));
        }
        let mut decoded = Vec::with_capacity(entries.len());
        for (addr, payload) in entries.into_iter().rev() {
            decoded.push((addr, decode_entry(&payload)?));
        }
        Ok(decoded)
    }

    /// Direct access to the underlying log (experiments).
    pub fn log(&self) -> &StableLog<S> {
        &self.log
    }
}

impl<S: PageStore> RecoverySystem for SimpleLogRs<S> {
    fn prepare(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<()> {
        self.stage_prepare(aid, mos, heap)?;
        self.force_staged()
    }

    fn write_entry(
        &mut self,
        _aid: ActionId,
        mos: &[HeapId],
        _heap: &Heap,
    ) -> RsResult<Vec<HeapId>> {
        // Early prepare is a hybrid-log refinement (§4.4); under the simple
        // log the whole MOS simply waits for the prepare message.
        Ok(mos.to_vec())
    }

    fn commit(&mut self, aid: ActionId) -> RsResult<()> {
        self.stage_commit(aid)?;
        self.force_staged()
    }

    fn abort(&mut self, aid: ActionId) -> RsResult<()> {
        self.stage_abort(aid)?;
        self.force_staged()
    }

    fn committing(&mut self, aid: ActionId, gids: &[GuardianId]) -> RsResult<()> {
        self.stage_committing(aid, gids)?;
        self.force_staged()
    }

    fn done(&mut self, aid: ActionId) -> RsResult<()> {
        self.stage_done(aid)?;
        self.force_staged()
    }

    // Staged variants: identical bookkeeping, but the force is deferred to
    // `force_staged` so a group-commit scheduler can share it. Volatile
    // tables are updated at stage time — operations arrive sequentially
    // (§2.3), so a later `process_mos` in the same batch must already see
    // this prepare's PAT entry.

    fn stage_prepare(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<bool> {
        let _timer = self.obs.reg.phase("core.prepare_us");
        {
            let mut sink = SimpleSink {
                log: &mut self.log,
                obs: &self.obs,
            };
            process_mos(aid, mos, heap, &mut self.access, &self.pat, &mut sink)?;
        }
        let bytes = encode_entry(&LogEntry::Prepared {
            aid,
            pairs: Vec::new(),
            prev: None,
        })?;
        self.log.write(&bytes);
        self.obs.outcome("prepared", None);
        self.pat.insert(aid);
        self.obs.prepares.inc();
        Ok(true)
    }

    fn stage_commit(&mut self, aid: ActionId) -> RsResult<bool> {
        let bytes = encode_entry(&LogEntry::Committed { aid, prev: None })?;
        self.log.write(&bytes);
        self.obs.outcome("committed", None);
        self.pat.remove(&aid);
        self.obs.commits.inc();
        Ok(true)
    }

    fn stage_abort(&mut self, aid: ActionId) -> RsResult<bool> {
        let bytes = encode_entry(&LogEntry::Aborted { aid, prev: None })?;
        self.log.write(&bytes);
        self.obs.outcome("aborted", None);
        self.pat.remove(&aid);
        self.obs.aborts.inc();
        Ok(true)
    }

    fn stage_committing(&mut self, aid: ActionId, gids: &[GuardianId]) -> RsResult<bool> {
        let bytes = encode_entry(&LogEntry::Committing {
            aid,
            gids: gids.to_vec(),
            prev: None,
        })?;
        self.log.write(&bytes);
        self.obs.outcome("committing", None);
        self.obs.committings.inc();
        Ok(true)
    }

    fn stage_done(&mut self, aid: ActionId) -> RsResult<bool> {
        let bytes = encode_entry(&LogEntry::Done { aid, prev: None })?;
        self.log.write(&bytes);
        self.obs.outcome("done", None);
        self.obs.dones.inc();
        Ok(true)
    }

    fn force_staged(&mut self) -> RsResult<()> {
        self.log.force()?;
        Ok(())
    }

    fn recover(&mut self, heap: &mut Heap) -> RsResult<RecoveryOutcome> {
        let timer = self.obs.reg.phase("core.recover_us");
        let mut ctx = RecoverCtx::new(heap);
        // Deferred committed_ss pairs (only present if someone recovers a
        // compacted hybrid log with the simple algorithm).
        let mut deferred_cssl: Vec<(Uid, LogAddress)> = Vec::new();

        // Step 2: read the log backwards, every entry.
        for item in self.log.read_backward(None) {
            let (addr, _seq, payload) = item?;
            let entry = decode_entry(&payload)?;
            ctx.entries_examined += 1;
            match entry {
                LogEntry::Prepared { aid, .. } => {
                    ctx.on_prepared(aid);
                }
                LogEntry::Committed { aid, .. } => ctx.on_committed(aid),
                LogEntry::Aborted { aid, .. } => ctx.on_aborted(aid),
                LogEntry::Committing { aid, gids, .. } => ctx.on_committing(aid, gids),
                LogEntry::Done { aid, .. } => ctx.on_done(aid),
                LogEntry::BaseCommitted { uid, value, .. } => ctx.on_base_committed(uid, value)?,
                LogEntry::PreparedData {
                    uid, value, aid, ..
                } => ctx.on_prepared_data(uid, value, aid)?,
                LogEntry::Data {
                    uid,
                    kind,
                    value,
                    aid,
                } => {
                    ctx.data_entries_read += 1;
                    ctx.on_data(addr, uid, kind, value, aid)?;
                }
                // Hybrid-log data entries carry no uid/aid; in a pure scan
                // they can only be interpreted through the prepared entries'
                // pairs, which the simple algorithm does not use.
                LogEntry::DataH { .. } => {}
                LogEntry::CommittedSs { cssl, .. } => deferred_cssl.extend(cssl),
            }
        }

        // Checkpoint pairs are the oldest committed state; restoring them
        // after the scan preserves newest-first priority.
        for (uid, addr) in deferred_cssl {
            if ctx.ot.get(uid).map(|e| e.state) == Some(crate::tables::ObjState::Restored) {
                continue;
            }
            let (_seq, payload) = self.log.read(addr)?;
            ctx.entries_examined += 1;
            ctx.data_entries_read += 1;
            match decode_entry(&payload)? {
                LogEntry::DataH { kind, value } => {
                    ctx.restore_committed(uid, kind, value, Some(addr))?;
                }
                other => {
                    return Err(RsError::BadState(format!(
                        "cssl pair points at a {} entry",
                        other.name()
                    )))
                }
            }
        }

        // Step 3: turn uids into pointers; the stable counter was advanced
        // as objects were inserted.
        ctx.heap.resolve_uid_refs();

        let outcome = RecoveryOutcome {
            entries_examined: ctx.entries_examined,
            data_entries_read: ctx.data_entries_read,
            chain_hops: ctx.chain_hops,
            ot: ctx.ot,
            pt: ctx.pt,
            ct: ctx.ct,
        };
        self.obs.recovery_pass(&outcome);
        timer.stop();

        // Step 4: rebuild the accessibility set from the restored state.
        self.access = heap.accessible_uids();
        if heap.stable_root().is_none() {
            // A brand-new guardian that crashed before its first prepare:
            // the root is still accessible by definition.
            self.access.insert(Uid::STABLE_ROOT);
        }
        // The PAT is the set of in-doubt actions.
        self.pat = outcome.pt.prepared_actions().into_iter().collect();
        Ok(outcome)
    }

    fn begin_housekeeping(&mut self, _heap: &Heap, _mode: HousekeepingMode) -> RsResult<()> {
        Err(RsError::Unsupported(
            "housekeeping on the simple log (ch. 5 is hybrid-only)",
        ))
    }

    fn finish_housekeeping(&mut self) -> RsResult<()> {
        Err(RsError::Unsupported(
            "housekeeping on the simple log (ch. 5 is hybrid-only)",
        ))
    }

    fn simulate_crash(&mut self) -> RsResult<()> {
        self.log.reopen()?;
        self.access.clear();
        self.pat.clear();
        Ok(())
    }

    fn trim_access_set(&mut self, heap: &Heap) {
        let reachable = heap.accessible_uids();
        self.access = self.access.intersection(&reachable).copied().collect();
        self.access.insert(Uid::STABLE_ROOT);
    }

    fn dump_log(&mut self) -> RsResult<Option<Vec<(LogAddress, LogEntry)>>> {
        self.dump_entries().map(Some)
    }

    fn is_prepared(&self, aid: ActionId) -> bool {
        self.pat.contains(&aid)
    }

    fn log_stats(&self) -> LogStats {
        LogStats {
            entries: self.log.stable_count(),
            bytes: self.log.stable_bytes(),
            device: self.log.store().stats().snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_sim::{CostModel, SimClock};
    use argus_stable::MemStore;

    fn rs() -> SimpleLogRs<MemStore> {
        SimpleLogRs::create(MemStore::new(SimClock::new(), CostModel::fast())).unwrap()
    }

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    #[test]
    fn prepare_then_recover_restores_objects() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let obj = heap.alloc_atomic(Value::Int(41), Some(a));
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Seq(vec![Value::heap_ref(obj)]))
            .unwrap();
        let obj_uid = heap.uid_of(obj).unwrap();

        rs.prepare(a, &[root], &heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);

        // Crash: volatile state gone.
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.pt.get(a), Some(crate::tables::PState::Committed));
        let h = heap2.lookup(obj_uid).unwrap();
        assert_eq!(heap2.read_value(h, None).unwrap(), &Value::Int(41));
        // Root restored with the reference resolved back to a pointer.
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(
            heap2.read_value(root2, None).unwrap(),
            &Value::Seq(vec![Value::heap_ref(h)])
        );
        // AS rebuilt.
        assert!(rs.access_set().contains(&obj_uid));
    }

    #[test]
    fn unforced_prepare_is_invisible_after_crash() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(1)).unwrap();
        // Write data entries but never force (no prepare record): simulate
        // by appending a raw unforced data entry.
        rs.append_raw(
            &LogEntry::Data {
                uid: Uid::STABLE_ROOT,
                kind: ObjKind::Atomic,
                value: Value::Int(1),
                aid: a,
            },
            false,
        )
        .unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.entries_examined, 0);
        assert!(heap2.is_empty());
    }

    #[test]
    fn housekeeping_is_unsupported() {
        let mut rs = rs();
        let heap = Heap::new();
        assert!(matches!(
            rs.housekeeping(&heap, HousekeepingMode::Compaction),
            Err(RsError::Unsupported(_))
        ));
    }

    #[test]
    fn prepared_action_is_in_pat_until_resolution() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(7)).unwrap();
        rs.prepare(a, &[root], &heap).unwrap();
        assert!(rs.is_prepared(a));
        rs.commit(a).unwrap();
        assert!(!rs.is_prepared(a));
    }
}
