//! Log entry formats (Figure 3-1 for the simple log, Figure 4-1 for the
//! hybrid log) and their on-log encoding.

use crate::{RsError, RsResult};
use argus_objects::{ActionId, GuardianId, ObjKind, ObjRef, Uid, Value};
use argus_slog::{CodecError, CodecResult, Decoder, Encoder, LogAddress};

/// One log entry.
///
/// Data entries carry object versions; outcome entries record action states.
/// The hybrid log adds to every outcome entry a `prev` pointer forming the
/// backward chain of outcome entries, and moves the `(uid, log address)` map
/// fragment into the `prepared` entry (§4.2). Simple-log entries simply leave
/// `prev` as `None` and `pairs` empty, so one type serves both organizations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogEntry {
    /// Simple-log data entry: `<uid, kind, version, aid>` (Figure 3-1).
    Data {
        /// The recoverable object's uid.
        uid: Uid,
        /// Atomic or mutex.
        kind: ObjKind,
        /// The flattened object version.
        value: Value,
        /// The preparing action that wrote the entry.
        aid: ActionId,
    },
    /// Hybrid-log data entry: "data entries no longer need the action ids
    /// and object uids since the prepared outcome entries contain that
    /// information" (§4.2).
    DataH {
        /// Atomic or mutex.
        kind: ObjKind,
        /// The flattened object version.
        value: Value,
    },
    /// Redo-log data entry (the REDO-only fourth organization): like
    /// [`LogEntry::Data`] it is self-describing, but it additionally carries
    /// a per-object *backlink* — the log address of the previous committed
    /// version of the same object — so recovery can walk one object's
    /// version chain without scanning the whole log.
    DataR {
        /// The recoverable object's uid.
        uid: Uid,
        /// Atomic or mutex.
        kind: ObjKind,
        /// The flattened object version.
        value: Value,
        /// The preparing action that wrote the entry.
        aid: ActionId,
        /// Backlink to the previous version of *this object* (`None` for
        /// the first version). This is a per-object chain, distinct from
        /// the hybrid log's per-log outcome chain.
        back: Option<LogAddress>,
    },
    /// Participant outcome: the action has prepared. In the hybrid log,
    /// `pairs` is this action's fragment of the shadowing map.
    Prepared {
        /// The prepared action.
        aid: ActionId,
        /// `(uid, data-entry address)` for every object the action wrote.
        pairs: Vec<(Uid, LogAddress)>,
        /// Backward chain pointer (hybrid log only).
        prev: Option<LogAddress>,
    },
    /// Participant outcome: the action committed.
    Committed {
        /// The committed action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Participant outcome: the action aborted.
    Aborted {
        /// The aborted action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Special participant outcome for a newly accessible object's base
    /// version: "akin to writing not only the data entry, but also a
    /// prepared outcome entry followed by a committed outcome entry" (§3.2).
    /// The object is always atomic, so no kind field is needed.
    BaseCommitted {
        /// The newly accessible object.
        uid: Uid,
        /// Its flattened base version.
        value: Value,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Special participant outcome for a newly accessible object's current
    /// version written by *another*, already-prepared action (§3.3.3.2).
    PreparedData {
        /// The newly accessible object.
        uid: Uid,
        /// Its flattened current version.
        value: Value,
        /// The already-prepared action that holds the write lock.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Coordinator outcome: all participants prepared; the action is
    /// committed from this entry on.
    Committing {
        /// The committing action.
        aid: ActionId,
        /// The guardians participating in the action.
        gids: Vec<GuardianId>,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Coordinator outcome: every participant acknowledged the commit.
    Done {
        /// The finished action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Housekeeping checkpoint (ch. 5): the committed stable state list,
    /// "like a combined prepare and commit for some special action whose
    /// name does not matter".
    CommittedSs {
        /// `(uid, data-entry address)` for the whole committed stable state.
        cssl: Vec<(Uid, LogAddress)>,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
}

impl LogEntry {
    /// Whether this entry participates in the backward chain of outcome
    /// entries (everything except data entries, §4.2).
    pub fn is_outcome(&self) -> bool {
        !matches!(
            self,
            LogEntry::Data { .. } | LogEntry::DataH { .. } | LogEntry::DataR { .. }
        )
    }

    /// The chain pointer, if this is an outcome entry.
    pub fn prev(&self) -> Option<LogAddress> {
        match self {
            LogEntry::Prepared { prev, .. }
            | LogEntry::Committed { prev, .. }
            | LogEntry::Aborted { prev, .. }
            | LogEntry::BaseCommitted { prev, .. }
            | LogEntry::PreparedData { prev, .. }
            | LogEntry::Committing { prev, .. }
            | LogEntry::Done { prev, .. }
            | LogEntry::CommittedSs { prev, .. } => *prev,
            LogEntry::Data { .. } | LogEntry::DataH { .. } | LogEntry::DataR { .. } => None,
        }
    }

    /// The per-object backlink, if this is a redo data entry.
    pub fn backlink(&self) -> Option<LogAddress> {
        match self {
            LogEntry::DataR { back, .. } => *back,
            _ => None,
        }
    }

    /// Rewrites the chain pointer on an outcome entry (used by housekeeping
    /// when re-chaining entries into the new log). No-op on data entries.
    pub fn set_prev(&mut self, new_prev: Option<LogAddress>) {
        match self {
            LogEntry::Prepared { prev, .. }
            | LogEntry::Committed { prev, .. }
            | LogEntry::Aborted { prev, .. }
            | LogEntry::BaseCommitted { prev, .. }
            | LogEntry::PreparedData { prev, .. }
            | LogEntry::Committing { prev, .. }
            | LogEntry::Done { prev, .. }
            | LogEntry::CommittedSs { prev, .. } => *prev = new_prev,
            LogEntry::Data { .. } | LogEntry::DataH { .. } | LogEntry::DataR { .. } => {}
        }
    }

    /// A short tag for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            LogEntry::Data { .. } => "data",
            LogEntry::DataH { .. } => "data",
            LogEntry::DataR { .. } => "data",
            LogEntry::Prepared { .. } => "prepared",
            LogEntry::Committed { .. } => "committed",
            LogEntry::Aborted { .. } => "aborted",
            LogEntry::BaseCommitted { .. } => "base_committed",
            LogEntry::PreparedData { .. } => "prepared_data",
            LogEntry::Committing { .. } => "committing",
            LogEntry::Done { .. } => "done",
            LogEntry::CommittedSs { .. } => "committed_ss",
        }
    }
}

// ---- encoding ------------------------------------------------------------

const TAG_DATA: u8 = 1;
const TAG_DATA_H: u8 = 2;
const TAG_PREPARED: u8 = 3;
const TAG_COMMITTED: u8 = 4;
const TAG_ABORTED: u8 = 5;
const TAG_BASE_COMMITTED: u8 = 6;
const TAG_PREPARED_DATA: u8 = 7;
const TAG_COMMITTING: u8 = 8;
const TAG_DONE: u8 = 9;
const TAG_COMMITTED_SS: u8 = 10;
const TAG_DATA_R: u8 = 11;

const VTAG_UNIT: u8 = 0;
const VTAG_INT: u8 = 1;
const VTAG_BOOL: u8 = 2;
const VTAG_STR: u8 = 3;
const VTAG_BYTES: u8 = 4;
const VTAG_SEQ: u8 = 5;
const VTAG_REF: u8 = 6;

fn put_kind(enc: &mut Encoder, kind: ObjKind) {
    enc.put_u8(match kind {
        ObjKind::Atomic => 0,
        ObjKind::Mutex => 1,
    });
}

fn take_kind(dec: &mut Decoder<'_>) -> CodecResult<ObjKind> {
    match dec.take_u8()? {
        0 => Ok(ObjKind::Atomic),
        1 => Ok(ObjKind::Mutex),
        tag => Err(CodecError::BadTag {
            tag,
            context: "object kind",
        }),
    }
}

fn put_aid(enc: &mut Encoder, aid: ActionId) {
    enc.put_u32(aid.coordinator.0);
    enc.put_u64(aid.seq);
}

fn take_aid(dec: &mut Decoder<'_>) -> CodecResult<ActionId> {
    let g = dec.take_u32()?;
    let seq = dec.take_u64()?;
    Ok(ActionId::new(GuardianId(g), seq))
}

fn put_prev(enc: &mut Encoder, prev: Option<LogAddress>) {
    // Record offsets start after the superblock page, so 0 is free for None.
    enc.put_u64(prev.map(|a| a.offset()).unwrap_or(0));
}

fn take_prev(dec: &mut Decoder<'_>) -> CodecResult<Option<LogAddress>> {
    let raw = dec.take_u64()?;
    Ok(if raw == 0 {
        None
    } else {
        Some(LogAddress(raw))
    })
}

fn put_pairs(enc: &mut Encoder, pairs: &[(Uid, LogAddress)]) {
    enc.put_u32(pairs.len() as u32);
    for (uid, addr) in pairs {
        enc.put_u64(uid.0);
        enc.put_u64(addr.offset());
    }
}

fn take_pairs(dec: &mut Decoder<'_>) -> CodecResult<Vec<(Uid, LogAddress)>> {
    let n = dec.take_u32()? as usize;
    let mut pairs = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let uid = Uid(dec.take_u64()?);
        let addr = LogAddress(dec.take_u64()?);
        pairs.push((uid, addr));
    }
    Ok(pairs)
}

/// Encodes a flattened value. Volatile references are an error: only
/// flattened values may reach the log.
pub fn encode_value(enc: &mut Encoder, value: &Value) -> RsResult<()> {
    match value {
        Value::Unit => enc.put_u8(VTAG_UNIT),
        Value::Int(i) => {
            enc.put_u8(VTAG_INT);
            enc.put_i64(*i);
        }
        Value::Bool(b) => {
            enc.put_u8(VTAG_BOOL);
            enc.put_bool(*b);
        }
        Value::Str(s) => {
            enc.put_u8(VTAG_STR);
            enc.put_str(s);
        }
        Value::Bytes(b) => {
            enc.put_u8(VTAG_BYTES);
            enc.put_bytes(b);
        }
        Value::Seq(items) => {
            enc.put_u8(VTAG_SEQ);
            enc.put_u32(items.len() as u32);
            for item in items {
                encode_value(enc, item)?;
            }
        }
        Value::Ref(ObjRef::Uid(u)) => {
            enc.put_u8(VTAG_REF);
            enc.put_u64(u.0);
        }
        Value::Ref(ObjRef::Heap(_)) => {
            return Err(RsError::Internal(
                "volatile reference in a value bound for the log",
            ));
        }
    }
    Ok(())
}

/// Decodes a flattened value.
pub fn decode_value(dec: &mut Decoder<'_>) -> CodecResult<Value> {
    Ok(match dec.take_u8()? {
        VTAG_UNIT => Value::Unit,
        VTAG_INT => Value::Int(dec.take_i64()?),
        VTAG_BOOL => Value::Bool(dec.take_bool()?),
        VTAG_STR => Value::Str(dec.take_str()?.to_owned()),
        VTAG_BYTES => Value::Bytes(dec.take_bytes()?.to_vec()),
        VTAG_SEQ => {
            let n = dec.take_u32()? as usize;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                items.push(decode_value(dec)?);
            }
            Value::Seq(items)
        }
        VTAG_REF => Value::uid_ref(Uid(dec.take_u64()?)),
        tag => {
            return Err(CodecError::BadTag {
                tag,
                context: "value",
            })
        }
    })
}

// ---- borrowed encode views -----------------------------------------------

/// A borrowed view of a log entry, for encoding without building an owned
/// [`LogEntry`] first. The commit hot path encodes straight from the values
/// it already holds (the flattened version, the pending pairs, the
/// participant list) into the log's pending buffer via
/// [`argus_slog::StableLog::write_with`], so a record write allocates
/// nothing beyond amortized buffer growth.
#[derive(Debug, Clone, Copy)]
pub enum EntryRef<'a> {
    /// Simple-log data entry.
    Data {
        /// The recoverable object's uid.
        uid: Uid,
        /// Atomic or mutex.
        kind: ObjKind,
        /// The flattened object version.
        value: &'a Value,
        /// The preparing action that wrote the entry.
        aid: ActionId,
    },
    /// Hybrid-log data entry.
    DataH {
        /// Atomic or mutex.
        kind: ObjKind,
        /// The flattened object version.
        value: &'a Value,
    },
    /// Redo-log data entry with its per-object backlink.
    DataR {
        /// The recoverable object's uid.
        uid: Uid,
        /// Atomic or mutex.
        kind: ObjKind,
        /// The flattened object version.
        value: &'a Value,
        /// The preparing action that wrote the entry.
        aid: ActionId,
        /// Backlink to the previous version of this object.
        back: Option<LogAddress>,
    },
    /// Participant outcome: prepared, with the map fragment.
    Prepared {
        /// The prepared action.
        aid: ActionId,
        /// `(uid, data-entry address)` for every object the action wrote.
        pairs: &'a [(Uid, LogAddress)],
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Participant outcome: committed.
    Committed {
        /// The committed action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Participant outcome: aborted.
    Aborted {
        /// The aborted action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Newly accessible object's base version.
    BaseCommitted {
        /// The newly accessible object.
        uid: Uid,
        /// Its flattened base version.
        value: &'a Value,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Newly accessible object's current version under another prepared
    /// action's write lock.
    PreparedData {
        /// The newly accessible object.
        uid: Uid,
        /// Its flattened current version.
        value: &'a Value,
        /// The already-prepared action that holds the write lock.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Coordinator outcome: committing, with the participant list.
    Committing {
        /// The committing action.
        aid: ActionId,
        /// The guardians participating in the action.
        gids: &'a [GuardianId],
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Coordinator outcome: done.
    Done {
        /// The finished action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Housekeeping checkpoint.
    CommittedSs {
        /// `(uid, data-entry address)` for the whole committed stable state.
        cssl: &'a [(Uid, LogAddress)],
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
}

impl EntryRef<'_> {
    /// Rewrites the chain pointer on an outcome entry (no-op on data
    /// entries), mirroring [`LogEntry::set_prev`].
    pub fn set_prev(&mut self, new_prev: Option<LogAddress>) {
        match self {
            EntryRef::Prepared { prev, .. }
            | EntryRef::Committed { prev, .. }
            | EntryRef::Aborted { prev, .. }
            | EntryRef::BaseCommitted { prev, .. }
            | EntryRef::PreparedData { prev, .. }
            | EntryRef::Committing { prev, .. }
            | EntryRef::Done { prev, .. }
            | EntryRef::CommittedSs { prev, .. } => *prev = new_prev,
            EntryRef::Data { .. } | EntryRef::DataH { .. } | EntryRef::DataR { .. } => {}
        }
    }

    /// A short tag for diagnostics, mirroring [`LogEntry::name`].
    pub fn name(&self) -> &'static str {
        match self {
            EntryRef::Data { .. } | EntryRef::DataH { .. } | EntryRef::DataR { .. } => "data",
            EntryRef::Prepared { .. } => "prepared",
            EntryRef::Committed { .. } => "committed",
            EntryRef::Aborted { .. } => "aborted",
            EntryRef::BaseCommitted { .. } => "base_committed",
            EntryRef::PreparedData { .. } => "prepared_data",
            EntryRef::Committing { .. } => "committing",
            EntryRef::Done { .. } => "done",
            EntryRef::CommittedSs { .. } => "committed_ss",
        }
    }
}

impl LogEntry {
    /// A borrowed view of this entry for allocation-free encoding.
    pub fn as_entry_ref(&self) -> EntryRef<'_> {
        match self {
            LogEntry::Data {
                uid,
                kind,
                value,
                aid,
            } => EntryRef::Data {
                uid: *uid,
                kind: *kind,
                value,
                aid: *aid,
            },
            LogEntry::DataH { kind, value } => EntryRef::DataH { kind: *kind, value },
            LogEntry::DataR {
                uid,
                kind,
                value,
                aid,
                back,
            } => EntryRef::DataR {
                uid: *uid,
                kind: *kind,
                value,
                aid: *aid,
                back: *back,
            },
            LogEntry::Prepared { aid, pairs, prev } => EntryRef::Prepared {
                aid: *aid,
                pairs,
                prev: *prev,
            },
            LogEntry::Committed { aid, prev } => EntryRef::Committed {
                aid: *aid,
                prev: *prev,
            },
            LogEntry::Aborted { aid, prev } => EntryRef::Aborted {
                aid: *aid,
                prev: *prev,
            },
            LogEntry::BaseCommitted { uid, value, prev } => EntryRef::BaseCommitted {
                uid: *uid,
                value,
                prev: *prev,
            },
            LogEntry::PreparedData {
                uid,
                value,
                aid,
                prev,
            } => EntryRef::PreparedData {
                uid: *uid,
                value,
                aid: *aid,
                prev: *prev,
            },
            LogEntry::Committing { aid, gids, prev } => EntryRef::Committing {
                aid: *aid,
                gids,
                prev: *prev,
            },
            LogEntry::Done { aid, prev } => EntryRef::Done {
                aid: *aid,
                prev: *prev,
            },
            LogEntry::CommittedSs { cssl, prev } => EntryRef::CommittedSs { cssl, prev: *prev },
        }
    }
}

/// Encodes a borrowed entry view into an existing encoder (typically the
/// log's pending buffer, via [`argus_slog::StableLog::write_with`]).
pub fn encode_entry_into(enc: &mut Encoder, entry: &EntryRef<'_>) -> RsResult<()> {
    match *entry {
        EntryRef::Data {
            uid,
            kind,
            value,
            aid,
        } => {
            enc.put_u8(TAG_DATA);
            enc.put_u64(uid.0);
            put_kind(enc, kind);
            put_aid(enc, aid);
            encode_value(enc, value)?;
        }
        EntryRef::DataH { kind, value } => {
            enc.put_u8(TAG_DATA_H);
            put_kind(enc, kind);
            encode_value(enc, value)?;
        }
        EntryRef::DataR {
            uid,
            kind,
            value,
            aid,
            back,
        } => {
            enc.put_u8(TAG_DATA_R);
            enc.put_u64(uid.0);
            put_kind(enc, kind);
            put_aid(enc, aid);
            put_prev(enc, back);
            encode_value(enc, value)?;
        }
        EntryRef::Prepared { aid, pairs, prev } => {
            enc.put_u8(TAG_PREPARED);
            put_aid(enc, aid);
            put_prev(enc, prev);
            put_pairs(enc, pairs);
        }
        EntryRef::Committed { aid, prev } => {
            enc.put_u8(TAG_COMMITTED);
            put_aid(enc, aid);
            put_prev(enc, prev);
        }
        EntryRef::Aborted { aid, prev } => {
            enc.put_u8(TAG_ABORTED);
            put_aid(enc, aid);
            put_prev(enc, prev);
        }
        EntryRef::BaseCommitted { uid, value, prev } => {
            enc.put_u8(TAG_BASE_COMMITTED);
            enc.put_u64(uid.0);
            put_prev(enc, prev);
            encode_value(enc, value)?;
        }
        EntryRef::PreparedData {
            uid,
            value,
            aid,
            prev,
        } => {
            enc.put_u8(TAG_PREPARED_DATA);
            enc.put_u64(uid.0);
            put_aid(enc, aid);
            put_prev(enc, prev);
            encode_value(enc, value)?;
        }
        EntryRef::Committing { aid, gids, prev } => {
            enc.put_u8(TAG_COMMITTING);
            put_aid(enc, aid);
            put_prev(enc, prev);
            enc.put_u32(gids.len() as u32);
            for g in gids {
                enc.put_u32(g.0);
            }
        }
        EntryRef::Done { aid, prev } => {
            enc.put_u8(TAG_DONE);
            put_aid(enc, aid);
            put_prev(enc, prev);
        }
        EntryRef::CommittedSs { cssl, prev } => {
            enc.put_u8(TAG_COMMITTED_SS);
            put_prev(enc, prev);
            put_pairs(enc, cssl);
        }
    }
    Ok(())
}

/// Encodes a log entry to bytes.
pub fn encode_entry(entry: &LogEntry) -> RsResult<Vec<u8>> {
    let mut enc = Encoder::with_capacity(64);
    encode_entry_into(&mut enc, &entry.as_entry_ref())?;
    Ok(enc.finish())
}

/// Decodes a log entry from bytes.
pub fn decode_entry(payload: &[u8]) -> RsResult<LogEntry> {
    let mut dec = Decoder::new(payload);
    let entry = match dec.take_u8()? {
        TAG_DATA => {
            let uid = Uid(dec.take_u64()?);
            let kind = take_kind(&mut dec)?;
            let aid = take_aid(&mut dec)?;
            let value = decode_value(&mut dec)?;
            LogEntry::Data {
                uid,
                kind,
                value,
                aid,
            }
        }
        TAG_DATA_H => {
            let kind = take_kind(&mut dec)?;
            let value = decode_value(&mut dec)?;
            LogEntry::DataH { kind, value }
        }
        TAG_DATA_R => {
            let uid = Uid(dec.take_u64()?);
            let kind = take_kind(&mut dec)?;
            let aid = take_aid(&mut dec)?;
            let back = take_prev(&mut dec)?;
            let value = decode_value(&mut dec)?;
            LogEntry::DataR {
                uid,
                kind,
                value,
                aid,
                back,
            }
        }
        TAG_PREPARED => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            let pairs = take_pairs(&mut dec)?;
            LogEntry::Prepared { aid, pairs, prev }
        }
        TAG_COMMITTED => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            LogEntry::Committed { aid, prev }
        }
        TAG_ABORTED => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            LogEntry::Aborted { aid, prev }
        }
        TAG_BASE_COMMITTED => {
            let uid = Uid(dec.take_u64()?);
            let prev = take_prev(&mut dec)?;
            let value = decode_value(&mut dec)?;
            LogEntry::BaseCommitted { uid, value, prev }
        }
        TAG_PREPARED_DATA => {
            let uid = Uid(dec.take_u64()?);
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            let value = decode_value(&mut dec)?;
            LogEntry::PreparedData {
                uid,
                value,
                aid,
                prev,
            }
        }
        TAG_COMMITTING => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            let n = dec.take_u32()? as usize;
            let mut gids = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                gids.push(GuardianId(dec.take_u32()?));
            }
            LogEntry::Committing { aid, gids, prev }
        }
        TAG_DONE => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            LogEntry::Done { aid, prev }
        }
        TAG_COMMITTED_SS => {
            let prev = take_prev(&mut dec)?;
            let cssl = take_pairs(&mut dec)?;
            LogEntry::CommittedSs { cssl, prev }
        }
        tag => {
            return Err(CodecError::BadTag {
                tag,
                context: "log entry",
            }
            .into())
        }
    };
    if !dec.is_empty() {
        return Err(RsError::Codec(CodecError::BadTag {
            tag: 0xFF,
            context: "trailing bytes after log entry",
        }));
    }
    Ok(entry)
}

// ---- zero-copy decode views ----------------------------------------------

/// A structurally validated but not-yet-materialized flattened value: the
/// byte span of the value inside a record payload. [`decode_entry_view`]
/// bounds-checks the structure; [`RawValue::decode`] allocates the [`Value`]
/// only when recovery actually needs the version — superseded versions and
/// entries of wiped-out actions are never materialized.
#[derive(Debug, Clone, Copy)]
pub struct RawValue<'a>(&'a [u8]);

impl RawValue<'_> {
    /// Materializes the value.
    pub fn decode(&self) -> RsResult<Value> {
        let mut dec = Decoder::new(self.0);
        let value = decode_value(&mut dec)?;
        debug_assert!(dec.is_empty(), "value span was validated to be exact");
        Ok(value)
    }
}

/// A flattened value that is either already owned or still sitting in a
/// record payload. Threaded through the restore rules so a version is
/// decoded exactly when it is copied into volatile memory, never when the
/// rules discard it.
#[derive(Debug)]
pub enum LazyValue<'a> {
    /// Already materialized (in-memory paths, tests).
    Owned(Value),
    /// Still encoded in a record payload.
    Raw(RawValue<'a>),
}

impl LazyValue<'_> {
    /// Consumes the lazy value, materializing it if necessary.
    pub fn take(self) -> RsResult<Value> {
        match self {
            LazyValue::Owned(v) => Ok(v),
            LazyValue::Raw(raw) => raw.decode(),
        }
    }
}

impl From<Value> for LazyValue<'static> {
    fn from(v: Value) -> Self {
        LazyValue::Owned(v)
    }
}

impl<'a> From<RawValue<'a>> for LazyValue<'a> {
    fn from(raw: RawValue<'a>) -> Self {
        LazyValue::Raw(raw)
    }
}

/// A borrowed `(uid, log address)` pair list, iterated straight off the
/// record payload (16 bytes per pair, no `Vec`).
#[derive(Debug, Clone, Copy)]
pub struct PairsView<'a> {
    buf: &'a [u8],
}

impl<'a> PairsView<'a> {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.buf.len() / 16
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Iterates the pairs in log order.
    pub fn iter(&self) -> impl Iterator<Item = (Uid, LogAddress)> + 'a {
        self.buf.chunks_exact(16).map(|c| {
            (
                Uid(u64::from_le_bytes(c[..8].try_into().unwrap())),
                LogAddress(u64::from_le_bytes(c[8..].try_into().unwrap())),
            )
        })
    }

    /// Collects the pairs into an owned list.
    pub fn to_vec(&self) -> Vec<(Uid, LogAddress)> {
        self.iter().collect()
    }
}

/// A borrowed guardian-id list (4 bytes per id, no `Vec`).
#[derive(Debug, Clone, Copy)]
pub struct GidsView<'a> {
    buf: &'a [u8],
}

impl GidsView<'_> {
    /// Number of guardian ids.
    pub fn len(&self) -> usize {
        self.buf.len() / 4
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Collects the ids into an owned list.
    pub fn to_vec(&self) -> Vec<GuardianId> {
        self.buf
            .chunks_exact(4)
            .map(|c| GuardianId(u32::from_le_bytes(c.try_into().unwrap())))
            .collect()
    }
}

/// A zero-copy decoded view of a log entry: fixed fields are materialized,
/// values stay as validated [`RawValue`] spans, and pair / guardian lists
/// stay as slice-backed views. Recovery walks decode with this and touch the
/// heap allocator only for versions they actually restore.
#[derive(Debug, Clone, Copy)]
pub enum EntryView<'a> {
    /// Simple-log data entry.
    Data {
        /// The recoverable object's uid.
        uid: Uid,
        /// Atomic or mutex.
        kind: ObjKind,
        /// The preparing action that wrote the entry.
        aid: ActionId,
        /// The flattened object version, not yet materialized.
        value: RawValue<'a>,
    },
    /// Hybrid-log data entry.
    DataH {
        /// Atomic or mutex.
        kind: ObjKind,
        /// The flattened object version, not yet materialized.
        value: RawValue<'a>,
    },
    /// Redo-log data entry with its per-object backlink.
    DataR {
        /// The recoverable object's uid.
        uid: Uid,
        /// Atomic or mutex.
        kind: ObjKind,
        /// The preparing action that wrote the entry.
        aid: ActionId,
        /// Backlink to the previous version of this object.
        back: Option<LogAddress>,
        /// The flattened object version, not yet materialized.
        value: RawValue<'a>,
    },
    /// Participant outcome: prepared.
    Prepared {
        /// The prepared action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
        /// The action's map fragment.
        pairs: PairsView<'a>,
    },
    /// Participant outcome: committed.
    Committed {
        /// The committed action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Participant outcome: aborted.
    Aborted {
        /// The aborted action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Newly accessible object's base version.
    BaseCommitted {
        /// The newly accessible object.
        uid: Uid,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
        /// Its flattened base version, not yet materialized.
        value: RawValue<'a>,
    },
    /// Newly accessible object's current version under another prepared
    /// action's write lock.
    PreparedData {
        /// The newly accessible object.
        uid: Uid,
        /// The already-prepared action that holds the write lock.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
        /// Its flattened current version, not yet materialized.
        value: RawValue<'a>,
    },
    /// Coordinator outcome: committing.
    Committing {
        /// The committing action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
        /// The guardians participating in the action.
        gids: GidsView<'a>,
    },
    /// Coordinator outcome: done.
    Done {
        /// The finished action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Housekeeping checkpoint.
    CommittedSs {
        /// Backward chain pointer.
        prev: Option<LogAddress>,
        /// The committed stable state list.
        cssl: PairsView<'a>,
    },
}

impl EntryView<'_> {
    /// Whether this entry participates in the backward chain of outcome
    /// entries, mirroring [`LogEntry::is_outcome`].
    pub fn is_outcome(&self) -> bool {
        !matches!(
            self,
            EntryView::Data { .. } | EntryView::DataH { .. } | EntryView::DataR { .. }
        )
    }

    /// The chain pointer, if this is an outcome entry.
    pub fn prev(&self) -> Option<LogAddress> {
        match self {
            EntryView::Prepared { prev, .. }
            | EntryView::Committed { prev, .. }
            | EntryView::Aborted { prev, .. }
            | EntryView::BaseCommitted { prev, .. }
            | EntryView::PreparedData { prev, .. }
            | EntryView::Committing { prev, .. }
            | EntryView::Done { prev, .. }
            | EntryView::CommittedSs { prev, .. } => *prev,
            EntryView::Data { .. } | EntryView::DataH { .. } | EntryView::DataR { .. } => None,
        }
    }

    /// A short tag for diagnostics, mirroring [`LogEntry::name`].
    pub fn name(&self) -> &'static str {
        match self {
            EntryView::Data { .. } | EntryView::DataH { .. } | EntryView::DataR { .. } => "data",
            EntryView::Prepared { .. } => "prepared",
            EntryView::Committed { .. } => "committed",
            EntryView::Aborted { .. } => "aborted",
            EntryView::BaseCommitted { .. } => "base_committed",
            EntryView::PreparedData { .. } => "prepared_data",
            EntryView::Committing { .. } => "committing",
            EntryView::Done { .. } => "done",
            EntryView::CommittedSs { .. } => "committed_ss",
        }
    }
}

/// Walks a flattened value without materializing it, leaving the decoder
/// positioned after it. Corruption surfaces exactly as it would in
/// [`decode_value`].
fn skip_value(dec: &mut Decoder<'_>) -> CodecResult<()> {
    match dec.take_u8()? {
        VTAG_UNIT => {}
        VTAG_INT => {
            dec.take_i64()?;
        }
        VTAG_BOOL => {
            dec.take_bool()?;
        }
        VTAG_STR => {
            dec.take_str()?;
        }
        VTAG_BYTES => {
            dec.take_bytes()?;
        }
        VTAG_SEQ => {
            let n = dec.take_u32()?;
            for _ in 0..n {
                skip_value(dec)?;
            }
        }
        VTAG_REF => {
            dec.take_u64()?;
        }
        tag => {
            return Err(CodecError::BadTag {
                tag,
                context: "value",
            })
        }
    }
    Ok(())
}

/// Validates a value's structure and captures its exact byte span.
fn take_value_span<'a>(payload: &'a [u8], dec: &mut Decoder<'a>) -> CodecResult<RawValue<'a>> {
    let start = payload.len() - dec.remaining();
    skip_value(dec)?;
    let end = payload.len() - dec.remaining();
    Ok(RawValue(&payload[start..end]))
}

fn take_pairs_view<'a>(dec: &mut Decoder<'a>) -> CodecResult<PairsView<'a>> {
    let n = dec.take_u32()? as usize;
    Ok(PairsView {
        buf: dec.take_raw(n * 16)?,
    })
}

fn take_gids_view<'a>(dec: &mut Decoder<'a>) -> CodecResult<GidsView<'a>> {
    let n = dec.take_u32()? as usize;
    Ok(GidsView {
        buf: dec.take_raw(n * 4)?,
    })
}

/// Decodes a log entry as a zero-copy view. The whole payload is
/// structurally validated (including the value spans and trailing-byte
/// check), but nothing variable-length is copied or allocated.
pub fn decode_entry_view(payload: &[u8]) -> RsResult<EntryView<'_>> {
    let mut dec = Decoder::new(payload);
    let view = match dec.take_u8()? {
        TAG_DATA => {
            let uid = Uid(dec.take_u64()?);
            let kind = take_kind(&mut dec)?;
            let aid = take_aid(&mut dec)?;
            let value = take_value_span(payload, &mut dec)?;
            EntryView::Data {
                uid,
                kind,
                aid,
                value,
            }
        }
        TAG_DATA_H => {
            let kind = take_kind(&mut dec)?;
            let value = take_value_span(payload, &mut dec)?;
            EntryView::DataH { kind, value }
        }
        TAG_DATA_R => {
            let uid = Uid(dec.take_u64()?);
            let kind = take_kind(&mut dec)?;
            let aid = take_aid(&mut dec)?;
            let back = take_prev(&mut dec)?;
            let value = take_value_span(payload, &mut dec)?;
            EntryView::DataR {
                uid,
                kind,
                aid,
                back,
                value,
            }
        }
        TAG_PREPARED => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            let pairs = take_pairs_view(&mut dec)?;
            EntryView::Prepared { aid, prev, pairs }
        }
        TAG_COMMITTED => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            EntryView::Committed { aid, prev }
        }
        TAG_ABORTED => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            EntryView::Aborted { aid, prev }
        }
        TAG_BASE_COMMITTED => {
            let uid = Uid(dec.take_u64()?);
            let prev = take_prev(&mut dec)?;
            let value = take_value_span(payload, &mut dec)?;
            EntryView::BaseCommitted { uid, prev, value }
        }
        TAG_PREPARED_DATA => {
            let uid = Uid(dec.take_u64()?);
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            let value = take_value_span(payload, &mut dec)?;
            EntryView::PreparedData {
                uid,
                aid,
                prev,
                value,
            }
        }
        TAG_COMMITTING => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            let gids = take_gids_view(&mut dec)?;
            EntryView::Committing { aid, prev, gids }
        }
        TAG_DONE => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            EntryView::Done { aid, prev }
        }
        TAG_COMMITTED_SS => {
            let prev = take_prev(&mut dec)?;
            let cssl = take_pairs_view(&mut dec)?;
            EntryView::CommittedSs { prev, cssl }
        }
        tag => {
            return Err(CodecError::BadTag {
                tag,
                context: "log entry",
            }
            .into())
        }
    };
    if !dec.is_empty() {
        return Err(RsError::Codec(CodecError::BadTag {
            tag: 0xFF,
            context: "trailing bytes after log entry",
        }));
    }
    Ok(view)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(2), n)
    }

    fn roundtrip(entry: LogEntry) {
        let bytes = encode_entry(&entry).unwrap();
        assert_eq!(decode_entry(&bytes).unwrap(), entry);
    }

    #[test]
    fn all_variants_roundtrip() {
        let value = Value::Seq(vec![
            Value::Int(-3),
            Value::Str("s".into()),
            Value::Bytes(vec![0, 255]),
            Value::Bool(false),
            Value::Unit,
            Value::uid_ref(Uid(11)),
        ]);
        roundtrip(LogEntry::Data {
            uid: Uid(5),
            kind: ObjKind::Mutex,
            value: value.clone(),
            aid: aid(1),
        });
        roundtrip(LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: value.clone(),
        });
        roundtrip(LogEntry::DataR {
            uid: Uid(6),
            kind: ObjKind::Atomic,
            value: value.clone(),
            aid: aid(8),
            back: Some(LogAddress(412)),
        });
        roundtrip(LogEntry::DataR {
            uid: Uid(7),
            kind: ObjKind::Mutex,
            value: value.clone(),
            aid: aid(9),
            back: None,
        });
        roundtrip(LogEntry::Prepared {
            aid: aid(2),
            pairs: vec![(Uid(1), LogAddress(512)), (Uid(2), LogAddress(600))],
            prev: Some(LogAddress(700)),
        });
        roundtrip(LogEntry::Committed {
            aid: aid(3),
            prev: None,
        });
        roundtrip(LogEntry::Aborted {
            aid: aid(4),
            prev: Some(LogAddress(512)),
        });
        roundtrip(LogEntry::BaseCommitted {
            uid: Uid(9),
            value: value.clone(),
            prev: None,
        });
        roundtrip(LogEntry::PreparedData {
            uid: Uid(10),
            value,
            aid: aid(5),
            prev: Some(LogAddress(99)),
        });
        roundtrip(LogEntry::Committing {
            aid: aid(6),
            gids: vec![GuardianId(1), GuardianId(2)],
            prev: None,
        });
        roundtrip(LogEntry::Done {
            aid: aid(7),
            prev: Some(LogAddress(1)),
        });
        roundtrip(LogEntry::CommittedSs {
            cssl: vec![(Uid(3), LogAddress(512))],
            prev: Some(LogAddress(812)),
        });
    }

    /// Materializes a view back into an owned entry, exercising every lazy
    /// field, so the view decoder can be checked against the owned one.
    fn materialize(view: EntryView<'_>) -> LogEntry {
        match view {
            EntryView::Data {
                uid,
                kind,
                aid,
                value,
            } => LogEntry::Data {
                uid,
                kind,
                value: value.decode().unwrap(),
                aid,
            },
            EntryView::DataH { kind, value } => LogEntry::DataH {
                kind,
                value: value.decode().unwrap(),
            },
            EntryView::DataR {
                uid,
                kind,
                aid,
                back,
                value,
            } => LogEntry::DataR {
                uid,
                kind,
                value: value.decode().unwrap(),
                aid,
                back,
            },
            EntryView::Prepared { aid, prev, pairs } => LogEntry::Prepared {
                aid,
                pairs: pairs.to_vec(),
                prev,
            },
            EntryView::Committed { aid, prev } => LogEntry::Committed { aid, prev },
            EntryView::Aborted { aid, prev } => LogEntry::Aborted { aid, prev },
            EntryView::BaseCommitted { uid, prev, value } => LogEntry::BaseCommitted {
                uid,
                value: value.decode().unwrap(),
                prev,
            },
            EntryView::PreparedData {
                uid,
                aid,
                prev,
                value,
            } => LogEntry::PreparedData {
                uid,
                value: value.decode().unwrap(),
                aid,
                prev,
            },
            EntryView::Committing { aid, prev, gids } => LogEntry::Committing {
                aid,
                gids: gids.to_vec(),
                prev,
            },
            EntryView::Done { aid, prev } => LogEntry::Done { aid, prev },
            EntryView::CommittedSs { prev, cssl } => LogEntry::CommittedSs {
                cssl: cssl.to_vec(),
                prev,
            },
        }
    }

    #[test]
    fn views_roundtrip_all_variants() {
        let value = Value::Seq(vec![
            Value::Int(-3),
            Value::Str("s".into()),
            Value::Bytes(vec![0, 255]),
            Value::Bool(false),
            Value::Unit,
            Value::uid_ref(Uid(11)),
        ]);
        let entries = vec![
            LogEntry::Data {
                uid: Uid(5),
                kind: ObjKind::Mutex,
                value: value.clone(),
                aid: aid(1),
            },
            LogEntry::DataH {
                kind: ObjKind::Atomic,
                value,
            },
            LogEntry::DataR {
                uid: Uid(6),
                kind: ObjKind::Atomic,
                value: Value::Int(5),
                aid: aid(8),
                back: Some(LogAddress(412)),
            },
            LogEntry::Prepared {
                aid: aid(2),
                pairs: vec![(Uid(1), LogAddress(512)), (Uid(2), LogAddress(600))],
                prev: Some(LogAddress(700)),
            },
            LogEntry::Committed {
                aid: aid(3),
                prev: None,
            },
            LogEntry::Aborted {
                aid: aid(4),
                prev: Some(LogAddress(512)),
            },
            LogEntry::BaseCommitted {
                uid: Uid(9),
                value: Value::Int(1),
                prev: None,
            },
            LogEntry::PreparedData {
                uid: Uid(10),
                value: Value::Int(2),
                aid: aid(5),
                prev: Some(LogAddress(99)),
            },
            LogEntry::Committing {
                aid: aid(6),
                gids: vec![GuardianId(1), GuardianId(2)],
                prev: None,
            },
            LogEntry::Done {
                aid: aid(7),
                prev: Some(LogAddress(1)),
            },
            LogEntry::CommittedSs {
                cssl: vec![(Uid(3), LogAddress(512))],
                prev: Some(LogAddress(812)),
            },
        ];
        for entry in entries {
            let bytes = encode_entry(&entry).unwrap();
            let view = decode_entry_view(&bytes).unwrap();
            assert_eq!(view.is_outcome(), entry.is_outcome());
            assert_eq!(view.prev(), entry.prev());
            assert_eq!(view.name(), entry.name());
            assert_eq!(materialize(view), entry);
        }
    }

    #[test]
    fn view_rejects_trailing_garbage_and_junk_tags() {
        let mut bytes = encode_entry(&LogEntry::Done {
            aid: aid(1),
            prev: None,
        })
        .unwrap();
        bytes.push(0);
        assert!(decode_entry_view(&bytes).is_err());
        assert!(decode_entry_view(&[99]).is_err());
        assert!(decode_entry_view(&[]).is_err());
    }

    #[test]
    fn view_validates_value_structure_without_decoding() {
        let bytes = encode_entry(&LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Str("hello".into()),
        })
        .unwrap();
        // Truncate inside the value: the view decode itself must fail.
        assert!(decode_entry_view(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn lazy_value_decodes_on_take() {
        let owned: LazyValue<'_> = Value::Int(7).into();
        assert_eq!(owned.take().unwrap(), Value::Int(7));
        let bytes = encode_entry(&LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Seq(vec![Value::Int(1), Value::Bool(true)]),
        })
        .unwrap();
        match decode_entry_view(&bytes).unwrap() {
            EntryView::DataH { value, .. } => {
                let lazy: LazyValue<'_> = value.into();
                assert_eq!(
                    lazy.take().unwrap(),
                    Value::Seq(vec![Value::Int(1), Value::Bool(true)])
                );
            }
            other => panic!("expected DataH, got {}", other.name()),
        }
    }

    #[test]
    fn encode_entry_into_matches_encode_entry() {
        let entry = LogEntry::Prepared {
            aid: aid(2),
            pairs: vec![(Uid(1), LogAddress(512))],
            prev: Some(LogAddress(700)),
        };
        let mut enc = Encoder::new();
        enc.put_u8(0xAB); // pre-existing bytes stay untouched
        encode_entry_into(&mut enc, &entry.as_entry_ref()).unwrap();
        let buf = enc.finish();
        assert_eq!(buf[0], 0xAB);
        assert_eq!(&buf[1..], encode_entry(&entry).unwrap().as_slice());
    }

    #[test]
    fn volatile_refs_are_rejected() {
        let entry = LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::heap_ref(argus_objects::HeapId(0)),
        };
        assert!(matches!(encode_entry(&entry), Err(RsError::Internal(_))));
    }

    #[test]
    fn junk_tags_are_rejected() {
        assert!(decode_entry(&[99]).is_err());
        assert!(decode_entry(&[]).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_entry(&LogEntry::Done {
            aid: aid(1),
            prev: None,
        })
        .unwrap();
        bytes.push(0);
        assert!(decode_entry(&bytes).is_err());
    }

    #[test]
    fn outcome_classification() {
        assert!(!LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Unit
        }
        .is_outcome());
        assert!(LogEntry::Done {
            aid: aid(1),
            prev: None
        }
        .is_outcome());
        assert!(LogEntry::BaseCommitted {
            uid: Uid(1),
            value: Value::Unit,
            prev: None
        }
        .is_outcome());
    }

    #[test]
    fn redo_data_backlink_is_not_a_chain_pointer() {
        let e = LogEntry::DataR {
            uid: Uid(1),
            kind: ObjKind::Atomic,
            value: Value::Int(1),
            aid: aid(1),
            back: Some(LogAddress(77)),
        };
        assert!(!e.is_outcome());
        assert_eq!(e.prev(), None, "the backlink is a per-object chain");
        assert_eq!(e.backlink(), Some(LogAddress(77)));
        let mut e2 = e.clone();
        e2.set_prev(Some(LogAddress(9)));
        assert_eq!(e2, e, "set_prev must not touch the backlink");
    }

    #[test]
    fn set_prev_rechains_outcome_entries() {
        let mut e = LogEntry::Committed {
            aid: aid(1),
            prev: None,
        };
        e.set_prev(Some(LogAddress(42)));
        assert_eq!(e.prev(), Some(LogAddress(42)));
        let mut d = LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Unit,
        };
        d.set_prev(Some(LogAddress(42)));
        assert_eq!(d.prev(), None);
    }
}
