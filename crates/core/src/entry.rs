//! Log entry formats (Figure 3-1 for the simple log, Figure 4-1 for the
//! hybrid log) and their on-log encoding.

use crate::{RsError, RsResult};
use argus_objects::{ActionId, GuardianId, ObjKind, ObjRef, Uid, Value};
use argus_slog::{CodecError, CodecResult, Decoder, Encoder, LogAddress};

/// One log entry.
///
/// Data entries carry object versions; outcome entries record action states.
/// The hybrid log adds to every outcome entry a `prev` pointer forming the
/// backward chain of outcome entries, and moves the `(uid, log address)` map
/// fragment into the `prepared` entry (§4.2). Simple-log entries simply leave
/// `prev` as `None` and `pairs` empty, so one type serves both organizations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogEntry {
    /// Simple-log data entry: `<uid, kind, version, aid>` (Figure 3-1).
    Data {
        /// The recoverable object's uid.
        uid: Uid,
        /// Atomic or mutex.
        kind: ObjKind,
        /// The flattened object version.
        value: Value,
        /// The preparing action that wrote the entry.
        aid: ActionId,
    },
    /// Hybrid-log data entry: "data entries no longer need the action ids
    /// and object uids since the prepared outcome entries contain that
    /// information" (§4.2).
    DataH {
        /// Atomic or mutex.
        kind: ObjKind,
        /// The flattened object version.
        value: Value,
    },
    /// Participant outcome: the action has prepared. In the hybrid log,
    /// `pairs` is this action's fragment of the shadowing map.
    Prepared {
        /// The prepared action.
        aid: ActionId,
        /// `(uid, data-entry address)` for every object the action wrote.
        pairs: Vec<(Uid, LogAddress)>,
        /// Backward chain pointer (hybrid log only).
        prev: Option<LogAddress>,
    },
    /// Participant outcome: the action committed.
    Committed {
        /// The committed action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Participant outcome: the action aborted.
    Aborted {
        /// The aborted action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Special participant outcome for a newly accessible object's base
    /// version: "akin to writing not only the data entry, but also a
    /// prepared outcome entry followed by a committed outcome entry" (§3.2).
    /// The object is always atomic, so no kind field is needed.
    BaseCommitted {
        /// The newly accessible object.
        uid: Uid,
        /// Its flattened base version.
        value: Value,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Special participant outcome for a newly accessible object's current
    /// version written by *another*, already-prepared action (§3.3.3.2).
    PreparedData {
        /// The newly accessible object.
        uid: Uid,
        /// Its flattened current version.
        value: Value,
        /// The already-prepared action that holds the write lock.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Coordinator outcome: all participants prepared; the action is
    /// committed from this entry on.
    Committing {
        /// The committing action.
        aid: ActionId,
        /// The guardians participating in the action.
        gids: Vec<GuardianId>,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Coordinator outcome: every participant acknowledged the commit.
    Done {
        /// The finished action.
        aid: ActionId,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
    /// Housekeeping checkpoint (ch. 5): the committed stable state list,
    /// "like a combined prepare and commit for some special action whose
    /// name does not matter".
    CommittedSs {
        /// `(uid, data-entry address)` for the whole committed stable state.
        cssl: Vec<(Uid, LogAddress)>,
        /// Backward chain pointer.
        prev: Option<LogAddress>,
    },
}

impl LogEntry {
    /// Whether this entry participates in the backward chain of outcome
    /// entries (everything except data entries, §4.2).
    pub fn is_outcome(&self) -> bool {
        !matches!(self, LogEntry::Data { .. } | LogEntry::DataH { .. })
    }

    /// The chain pointer, if this is an outcome entry.
    pub fn prev(&self) -> Option<LogAddress> {
        match self {
            LogEntry::Prepared { prev, .. }
            | LogEntry::Committed { prev, .. }
            | LogEntry::Aborted { prev, .. }
            | LogEntry::BaseCommitted { prev, .. }
            | LogEntry::PreparedData { prev, .. }
            | LogEntry::Committing { prev, .. }
            | LogEntry::Done { prev, .. }
            | LogEntry::CommittedSs { prev, .. } => *prev,
            LogEntry::Data { .. } | LogEntry::DataH { .. } => None,
        }
    }

    /// Rewrites the chain pointer on an outcome entry (used by housekeeping
    /// when re-chaining entries into the new log). No-op on data entries.
    pub fn set_prev(&mut self, new_prev: Option<LogAddress>) {
        match self {
            LogEntry::Prepared { prev, .. }
            | LogEntry::Committed { prev, .. }
            | LogEntry::Aborted { prev, .. }
            | LogEntry::BaseCommitted { prev, .. }
            | LogEntry::PreparedData { prev, .. }
            | LogEntry::Committing { prev, .. }
            | LogEntry::Done { prev, .. }
            | LogEntry::CommittedSs { prev, .. } => *prev = new_prev,
            LogEntry::Data { .. } | LogEntry::DataH { .. } => {}
        }
    }

    /// A short tag for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            LogEntry::Data { .. } => "data",
            LogEntry::DataH { .. } => "data",
            LogEntry::Prepared { .. } => "prepared",
            LogEntry::Committed { .. } => "committed",
            LogEntry::Aborted { .. } => "aborted",
            LogEntry::BaseCommitted { .. } => "base_committed",
            LogEntry::PreparedData { .. } => "prepared_data",
            LogEntry::Committing { .. } => "committing",
            LogEntry::Done { .. } => "done",
            LogEntry::CommittedSs { .. } => "committed_ss",
        }
    }
}

// ---- encoding ------------------------------------------------------------

const TAG_DATA: u8 = 1;
const TAG_DATA_H: u8 = 2;
const TAG_PREPARED: u8 = 3;
const TAG_COMMITTED: u8 = 4;
const TAG_ABORTED: u8 = 5;
const TAG_BASE_COMMITTED: u8 = 6;
const TAG_PREPARED_DATA: u8 = 7;
const TAG_COMMITTING: u8 = 8;
const TAG_DONE: u8 = 9;
const TAG_COMMITTED_SS: u8 = 10;

const VTAG_UNIT: u8 = 0;
const VTAG_INT: u8 = 1;
const VTAG_BOOL: u8 = 2;
const VTAG_STR: u8 = 3;
const VTAG_BYTES: u8 = 4;
const VTAG_SEQ: u8 = 5;
const VTAG_REF: u8 = 6;

fn put_kind(enc: &mut Encoder, kind: ObjKind) {
    enc.put_u8(match kind {
        ObjKind::Atomic => 0,
        ObjKind::Mutex => 1,
    });
}

fn take_kind(dec: &mut Decoder<'_>) -> CodecResult<ObjKind> {
    match dec.take_u8()? {
        0 => Ok(ObjKind::Atomic),
        1 => Ok(ObjKind::Mutex),
        tag => Err(CodecError::BadTag {
            tag,
            context: "object kind",
        }),
    }
}

fn put_aid(enc: &mut Encoder, aid: ActionId) {
    enc.put_u32(aid.coordinator.0);
    enc.put_u64(aid.seq);
}

fn take_aid(dec: &mut Decoder<'_>) -> CodecResult<ActionId> {
    let g = dec.take_u32()?;
    let seq = dec.take_u64()?;
    Ok(ActionId::new(GuardianId(g), seq))
}

fn put_prev(enc: &mut Encoder, prev: Option<LogAddress>) {
    // Record offsets start after the superblock page, so 0 is free for None.
    enc.put_u64(prev.map(|a| a.offset()).unwrap_or(0));
}

fn take_prev(dec: &mut Decoder<'_>) -> CodecResult<Option<LogAddress>> {
    let raw = dec.take_u64()?;
    Ok(if raw == 0 {
        None
    } else {
        Some(LogAddress(raw))
    })
}

fn put_pairs(enc: &mut Encoder, pairs: &[(Uid, LogAddress)]) {
    enc.put_u32(pairs.len() as u32);
    for (uid, addr) in pairs {
        enc.put_u64(uid.0);
        enc.put_u64(addr.offset());
    }
}

fn take_pairs(dec: &mut Decoder<'_>) -> CodecResult<Vec<(Uid, LogAddress)>> {
    let n = dec.take_u32()? as usize;
    let mut pairs = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let uid = Uid(dec.take_u64()?);
        let addr = LogAddress(dec.take_u64()?);
        pairs.push((uid, addr));
    }
    Ok(pairs)
}

/// Encodes a flattened value. Volatile references are an error: only
/// flattened values may reach the log.
pub fn encode_value(enc: &mut Encoder, value: &Value) -> RsResult<()> {
    match value {
        Value::Unit => enc.put_u8(VTAG_UNIT),
        Value::Int(i) => {
            enc.put_u8(VTAG_INT);
            enc.put_i64(*i);
        }
        Value::Bool(b) => {
            enc.put_u8(VTAG_BOOL);
            enc.put_bool(*b);
        }
        Value::Str(s) => {
            enc.put_u8(VTAG_STR);
            enc.put_str(s);
        }
        Value::Bytes(b) => {
            enc.put_u8(VTAG_BYTES);
            enc.put_bytes(b);
        }
        Value::Seq(items) => {
            enc.put_u8(VTAG_SEQ);
            enc.put_u32(items.len() as u32);
            for item in items {
                encode_value(enc, item)?;
            }
        }
        Value::Ref(ObjRef::Uid(u)) => {
            enc.put_u8(VTAG_REF);
            enc.put_u64(u.0);
        }
        Value::Ref(ObjRef::Heap(_)) => {
            return Err(RsError::Internal(
                "volatile reference in a value bound for the log",
            ));
        }
    }
    Ok(())
}

/// Decodes a flattened value.
pub fn decode_value(dec: &mut Decoder<'_>) -> CodecResult<Value> {
    Ok(match dec.take_u8()? {
        VTAG_UNIT => Value::Unit,
        VTAG_INT => Value::Int(dec.take_i64()?),
        VTAG_BOOL => Value::Bool(dec.take_bool()?),
        VTAG_STR => Value::Str(dec.take_str()?.to_owned()),
        VTAG_BYTES => Value::Bytes(dec.take_bytes()?.to_vec()),
        VTAG_SEQ => {
            let n = dec.take_u32()? as usize;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                items.push(decode_value(dec)?);
            }
            Value::Seq(items)
        }
        VTAG_REF => Value::uid_ref(Uid(dec.take_u64()?)),
        tag => {
            return Err(CodecError::BadTag {
                tag,
                context: "value",
            })
        }
    })
}

/// Encodes a log entry to bytes.
pub fn encode_entry(entry: &LogEntry) -> RsResult<Vec<u8>> {
    let mut enc = Encoder::with_capacity(64);
    match entry {
        LogEntry::Data {
            uid,
            kind,
            value,
            aid,
        } => {
            enc.put_u8(TAG_DATA);
            enc.put_u64(uid.0);
            put_kind(&mut enc, *kind);
            put_aid(&mut enc, *aid);
            encode_value(&mut enc, value)?;
        }
        LogEntry::DataH { kind, value } => {
            enc.put_u8(TAG_DATA_H);
            put_kind(&mut enc, *kind);
            encode_value(&mut enc, value)?;
        }
        LogEntry::Prepared { aid, pairs, prev } => {
            enc.put_u8(TAG_PREPARED);
            put_aid(&mut enc, *aid);
            put_prev(&mut enc, *prev);
            put_pairs(&mut enc, pairs);
        }
        LogEntry::Committed { aid, prev } => {
            enc.put_u8(TAG_COMMITTED);
            put_aid(&mut enc, *aid);
            put_prev(&mut enc, *prev);
        }
        LogEntry::Aborted { aid, prev } => {
            enc.put_u8(TAG_ABORTED);
            put_aid(&mut enc, *aid);
            put_prev(&mut enc, *prev);
        }
        LogEntry::BaseCommitted { uid, value, prev } => {
            enc.put_u8(TAG_BASE_COMMITTED);
            enc.put_u64(uid.0);
            put_prev(&mut enc, *prev);
            encode_value(&mut enc, value)?;
        }
        LogEntry::PreparedData {
            uid,
            value,
            aid,
            prev,
        } => {
            enc.put_u8(TAG_PREPARED_DATA);
            enc.put_u64(uid.0);
            put_aid(&mut enc, *aid);
            put_prev(&mut enc, *prev);
            encode_value(&mut enc, value)?;
        }
        LogEntry::Committing { aid, gids, prev } => {
            enc.put_u8(TAG_COMMITTING);
            put_aid(&mut enc, *aid);
            put_prev(&mut enc, *prev);
            enc.put_u32(gids.len() as u32);
            for g in gids {
                enc.put_u32(g.0);
            }
        }
        LogEntry::Done { aid, prev } => {
            enc.put_u8(TAG_DONE);
            put_aid(&mut enc, *aid);
            put_prev(&mut enc, *prev);
        }
        LogEntry::CommittedSs { cssl, prev } => {
            enc.put_u8(TAG_COMMITTED_SS);
            put_prev(&mut enc, *prev);
            put_pairs(&mut enc, cssl);
        }
    }
    Ok(enc.finish())
}

/// Decodes a log entry from bytes.
pub fn decode_entry(payload: &[u8]) -> RsResult<LogEntry> {
    let mut dec = Decoder::new(payload);
    let entry = match dec.take_u8()? {
        TAG_DATA => {
            let uid = Uid(dec.take_u64()?);
            let kind = take_kind(&mut dec)?;
            let aid = take_aid(&mut dec)?;
            let value = decode_value(&mut dec)?;
            LogEntry::Data {
                uid,
                kind,
                value,
                aid,
            }
        }
        TAG_DATA_H => {
            let kind = take_kind(&mut dec)?;
            let value = decode_value(&mut dec)?;
            LogEntry::DataH { kind, value }
        }
        TAG_PREPARED => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            let pairs = take_pairs(&mut dec)?;
            LogEntry::Prepared { aid, pairs, prev }
        }
        TAG_COMMITTED => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            LogEntry::Committed { aid, prev }
        }
        TAG_ABORTED => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            LogEntry::Aborted { aid, prev }
        }
        TAG_BASE_COMMITTED => {
            let uid = Uid(dec.take_u64()?);
            let prev = take_prev(&mut dec)?;
            let value = decode_value(&mut dec)?;
            LogEntry::BaseCommitted { uid, value, prev }
        }
        TAG_PREPARED_DATA => {
            let uid = Uid(dec.take_u64()?);
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            let value = decode_value(&mut dec)?;
            LogEntry::PreparedData {
                uid,
                value,
                aid,
                prev,
            }
        }
        TAG_COMMITTING => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            let n = dec.take_u32()? as usize;
            let mut gids = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                gids.push(GuardianId(dec.take_u32()?));
            }
            LogEntry::Committing { aid, gids, prev }
        }
        TAG_DONE => {
            let aid = take_aid(&mut dec)?;
            let prev = take_prev(&mut dec)?;
            LogEntry::Done { aid, prev }
        }
        TAG_COMMITTED_SS => {
            let prev = take_prev(&mut dec)?;
            let cssl = take_pairs(&mut dec)?;
            LogEntry::CommittedSs { cssl, prev }
        }
        tag => {
            return Err(CodecError::BadTag {
                tag,
                context: "log entry",
            }
            .into())
        }
    };
    if !dec.is_empty() {
        return Err(RsError::Codec(CodecError::BadTag {
            tag: 0xFF,
            context: "trailing bytes after log entry",
        }));
    }
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(2), n)
    }

    fn roundtrip(entry: LogEntry) {
        let bytes = encode_entry(&entry).unwrap();
        assert_eq!(decode_entry(&bytes).unwrap(), entry);
    }

    #[test]
    fn all_variants_roundtrip() {
        let value = Value::Seq(vec![
            Value::Int(-3),
            Value::Str("s".into()),
            Value::Bytes(vec![0, 255]),
            Value::Bool(false),
            Value::Unit,
            Value::uid_ref(Uid(11)),
        ]);
        roundtrip(LogEntry::Data {
            uid: Uid(5),
            kind: ObjKind::Mutex,
            value: value.clone(),
            aid: aid(1),
        });
        roundtrip(LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: value.clone(),
        });
        roundtrip(LogEntry::Prepared {
            aid: aid(2),
            pairs: vec![(Uid(1), LogAddress(512)), (Uid(2), LogAddress(600))],
            prev: Some(LogAddress(700)),
        });
        roundtrip(LogEntry::Committed {
            aid: aid(3),
            prev: None,
        });
        roundtrip(LogEntry::Aborted {
            aid: aid(4),
            prev: Some(LogAddress(512)),
        });
        roundtrip(LogEntry::BaseCommitted {
            uid: Uid(9),
            value: value.clone(),
            prev: None,
        });
        roundtrip(LogEntry::PreparedData {
            uid: Uid(10),
            value,
            aid: aid(5),
            prev: Some(LogAddress(99)),
        });
        roundtrip(LogEntry::Committing {
            aid: aid(6),
            gids: vec![GuardianId(1), GuardianId(2)],
            prev: None,
        });
        roundtrip(LogEntry::Done {
            aid: aid(7),
            prev: Some(LogAddress(1)),
        });
        roundtrip(LogEntry::CommittedSs {
            cssl: vec![(Uid(3), LogAddress(512))],
            prev: Some(LogAddress(812)),
        });
    }

    #[test]
    fn volatile_refs_are_rejected() {
        let entry = LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::heap_ref(argus_objects::HeapId(0)),
        };
        assert!(matches!(encode_entry(&entry), Err(RsError::Internal(_))));
    }

    #[test]
    fn junk_tags_are_rejected() {
        assert!(decode_entry(&[99]).is_err());
        assert!(decode_entry(&[]).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_entry(&LogEntry::Done {
            aid: aid(1),
            prev: None,
        })
        .unwrap();
        bytes.push(0);
        assert!(decode_entry(&bytes).is_err());
    }

    #[test]
    fn outcome_classification() {
        assert!(!LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Unit
        }
        .is_outcome());
        assert!(LogEntry::Done {
            aid: aid(1),
            prev: None
        }
        .is_outcome());
        assert!(LogEntry::BaseCommitted {
            uid: Uid(1),
            value: Value::Unit,
            prev: None
        }
        .is_outcome());
    }

    #[test]
    fn set_prev_rechains_outcome_entries() {
        let mut e = LogEntry::Committed {
            aid: aid(1),
            prev: None,
        };
        e.set_prev(Some(LogAddress(42)));
        assert_eq!(e.prev(), Some(LogAddress(42)));
        let mut d = LogEntry::DataH {
            kind: ObjKind::Atomic,
            value: Value::Unit,
        };
        d.set_prev(Some(LogAddress(42)));
        assert_eq!(d.prev(), None);
    }
}
