//! Housekeeping (ch. 5): log compaction and the stable-state snapshot.
//!
//! Both techniques build a *new* log that reflects the guardian's current
//! stable state and then supplant the old log in one atomic step. They run
//! in two stages around the housekeeping marker:
//!
//! * **stage one** digests everything before the marker — compaction by
//!   re-reading the old log like a recovery (§5.1.1), snapshot by copying
//!   volatile memory (§5.2) — ending with the `committed_ss` checkpoint
//!   entry;
//! * **stage two** copies the outcome entries recorded in the OEL (guardian
//!   activity that continued during stage one) onto the new log, then
//!   switches.
//!
//! `begin_housekeeping` runs stage one; ordinary recovery-system operations
//! may then continue (they append to the old log and are recorded in the
//! OEL); `finish_housekeeping` runs stage two.

use crate::api::{HousekeepingMode, StoreProvider};
use crate::entry::{decode_entry, encode_entry, LogEntry};
use crate::hybrid::{HybridLogRs, PendingPair};
use crate::tables::{CState, CoordinatorTable, ObjState, PState, ParticipantTable};
use crate::{MutexTable, RsError, RsResult};
use argus_objects::{flatten_value, ActionId, GuardianId, Heap, ObjKind, ObjectBody, Uid, Value};
use argus_slog::{LogAddress, StableLog};
use argus_stable::PageStore;
use std::collections::{HashMap, HashSet, VecDeque};

/// Stage-one object bookkeeping: like the recovery OT but without volatile
/// addresses (§5.1.1), plus the object kind so already-digested atomic
/// objects can be skipped without re-reading their data entries.
#[derive(Debug, Clone, Copy)]
struct HkObj {
    state: ObjState,
    kind: ObjKind,
    /// For mutex objects: the *old-log* address of the version copied, used
    /// for the recency comparisons of §5.1.1/§5.2.
    mutex_old_addr: Option<LogAddress>,
}

/// The state of an open housekeeping pass.
#[derive(Debug)]
pub(crate) struct HkState<S: PageStore> {
    new_log: StableLog<S>,
    mode: HousekeepingMode,
    /// The committed stable state list: `(uid, new-log data address)`.
    cssl: Vec<(Uid, LogAddress)>,
    /// Chain head in the new log.
    new_last: Option<LogAddress>,
    /// The mutex table being rebuilt with new-log addresses.
    new_mt: MutexTable,
    /// Snapshot only: the accessibility set rebuilt by the traversal.
    new_access: Option<HashSet<Uid>>,
    ot: HashMap<Uid, HkObj>,
    /// Stable entries on the old log when the pass started (for the
    /// compaction metrics).
    old_entries_at_begin: u64,
}

impl<S: PageStore> HkState<S> {
    fn append_data(&mut self, kind: ObjKind, value: Value) -> RsResult<LogAddress> {
        Ok(self
            .new_log
            .write(&encode_entry(&LogEntry::DataH { kind, value })?))
    }

    fn append_outcome(&mut self, mut entry: LogEntry) -> RsResult<LogAddress> {
        entry.set_prev(self.new_last);
        let addr = self.new_log.write(&encode_entry(&entry)?);
        self.new_last = Some(addr);
        Ok(addr)
    }

    /// Copies one committed atomic version into the new log and the CSSL,
    /// respecting the OT state.
    fn copy_committed_atomic(&mut self, uid: Uid, value: Value) -> RsResult<()> {
        match self.ot.get(&uid).map(|o| o.state) {
            Some(ObjState::Restored) => Ok(()),
            state => {
                self.ot.insert(
                    uid,
                    HkObj {
                        state: ObjState::Restored,
                        kind: ObjKind::Atomic,
                        mutex_old_addr: None,
                    },
                );
                let addr = self.append_data(ObjKind::Atomic, value)?;
                self.cssl.push((uid, addr));
                let _ = state;
                Ok(())
            }
        }
    }

    /// Copies a mutex version if `old_addr` names the most recent version
    /// seen so far (old-log address comparison). Returns the new address if
    /// copied.
    fn copy_mutex_if_latest(
        &mut self,
        uid: Uid,
        value: Value,
        old_addr: LogAddress,
    ) -> RsResult<Option<LogAddress>> {
        if let Some(existing) = self.ot.get(&uid) {
            if existing.mutex_old_addr.is_some_and(|a| a >= old_addr) {
                return Ok(None);
            }
        }
        let addr = self.append_data(ObjKind::Mutex, value)?;
        self.ot.insert(
            uid,
            HkObj {
                state: ObjState::Restored,
                kind: ObjKind::Mutex,
                mutex_old_addr: Some(old_addr),
            },
        );
        self.new_mt.insert(uid, addr);
        // Replace any older CSSL pair for this mutex.
        self.cssl.retain(|(u, _)| *u != uid);
        self.cssl.push((uid, addr));
        Ok(Some(addr))
    }
}

impl<P: StoreProvider> HybridLogRs<P> {
    pub(crate) fn begin_housekeeping_impl(
        &mut self,
        heap: &Heap,
        mode: HousekeepingMode,
    ) -> RsResult<()> {
        if self.hk.is_some() {
            return Err(RsError::BadState("housekeeping already in progress".into()));
        }
        let _timer = self.obs.reg.phase("core.hk.begin_us");
        // Flush buffered entries so the marker covers a readable prefix.
        self.log.force()?;
        let marker = self.last_outcome;

        let mut hk = HkState {
            new_log: StableLog::create(self.provider.new_store())?,
            mode,
            cssl: Vec::new(),
            new_last: None,
            new_mt: MutexTable::new(),
            new_access: None,
            ot: HashMap::new(),
            old_entries_at_begin: self.log.stable_count(),
        };

        match mode {
            HousekeepingMode::Compaction => self.compact_stage_one(&mut hk, marker)?,
            HousekeepingMode::Snapshot => self.snapshot_stage_one(&mut hk, heap)?,
        }

        // The checkpoint entry: "like a combined prepare and commit for some
        // special action whose name does not matter" (§5.1.1).
        let cssl = hk.cssl.clone();
        hk.append_outcome(LogEntry::CommittedSs { cssl, prev: None })?;

        self.hk = Some(hk);
        self.oel = Some(Vec::new());
        Ok(())
    }

    /// Stage one of compaction (§5.1.1): read the old log backwards from the
    /// marker exactly like a recovery, but write surviving entries to the
    /// new log instead of building objects in volatile memory.
    fn compact_stage_one(
        &mut self,
        hk: &mut HkState<P::Store>,
        marker: Option<LogAddress>,
    ) -> RsResult<()> {
        let mut pt = ParticipantTable::new();
        let mut ct = CoordinatorTable::new();

        let mut cursor = marker;
        while let Some(addr) = cursor {
            let (_seq, payload) = self.log.read(addr)?;
            let entry = decode_entry(&payload)?;
            cursor = entry.prev();
            match entry {
                LogEntry::Committed { aid, .. } => {
                    pt.enter(aid, PState::Committed);
                }
                LogEntry::Aborted { aid, .. } => {
                    pt.enter(aid, PState::Aborted);
                }
                LogEntry::Done { aid, .. } => ct.enter(aid, CState::Done),
                LogEntry::Committing { aid, gids, .. } => {
                    if ct.get(aid) != Some(&CState::Done) {
                        ct.enter(aid, CState::Committing(gids.clone()));
                        hk.append_outcome(LogEntry::Committing {
                            aid,
                            gids,
                            prev: None,
                        })?;
                    }
                }
                LogEntry::BaseCommitted { uid, value, .. } => {
                    hk.copy_committed_atomic(uid, value)?;
                }
                LogEntry::PreparedData {
                    uid, value, aid, ..
                } => match pt.get(aid) {
                    Some(PState::Aborted) => {}
                    Some(PState::Committed) => hk.copy_committed_atomic(uid, value)?,
                    Some(PState::Prepared) | None => {
                        pt.enter(aid, PState::Prepared);
                        hk.ot.entry(uid).or_insert(HkObj {
                            state: ObjState::Prepared,
                            kind: ObjKind::Atomic,
                            mutex_old_addr: None,
                        });
                        hk.append_outcome(LogEntry::PreparedData {
                            uid,
                            value,
                            aid,
                            prev: None,
                        })?;
                    }
                },
                LogEntry::Prepared { aid, pairs, .. } => {
                    let st = pt.enter(aid, PState::Prepared);
                    match st {
                        PState::Aborted => {
                            for (uid, daddr) in pairs {
                                // Atomic versions die with the abort; mutex
                                // versions obey the recency rule.
                                if hk.ot.get(&uid).map(|o| o.kind) == Some(ObjKind::Atomic) {
                                    continue;
                                }
                                let (kind, value) = self.read_data(daddr)?;
                                if kind == ObjKind::Mutex {
                                    hk.copy_mutex_if_latest(uid, value, daddr)?;
                                }
                            }
                        }
                        PState::Committed => {
                            for (uid, daddr) in pairs {
                                if let Some(obj) = hk.ot.get(&uid) {
                                    if obj.kind == ObjKind::Atomic
                                        && obj.state == ObjState::Restored
                                    {
                                        continue;
                                    }
                                    if obj.kind == ObjKind::Mutex
                                        && obj.mutex_old_addr.is_some_and(|a| a >= daddr)
                                    {
                                        continue;
                                    }
                                }
                                let (kind, value) = self.read_data(daddr)?;
                                match kind {
                                    ObjKind::Atomic => hk.copy_committed_atomic(uid, value)?,
                                    ObjKind::Mutex => {
                                        hk.copy_mutex_if_latest(uid, value, daddr)?;
                                    }
                                }
                            }
                        }
                        PState::Prepared => {
                            // Outcome unknown: the action stays prepared on
                            // the new log.
                            let mut new_pairs = Vec::new();
                            for (uid, daddr) in pairs {
                                let (kind, value) = self.read_data(daddr)?;
                                match kind {
                                    ObjKind::Atomic => {
                                        hk.ot.entry(uid).or_insert(HkObj {
                                            state: ObjState::Prepared,
                                            kind: ObjKind::Atomic,
                                            mutex_old_addr: None,
                                        });
                                        let na = hk.append_data(ObjKind::Atomic, value)?;
                                        new_pairs.push((uid, na));
                                    }
                                    ObjKind::Mutex => {
                                        // Prepared mutex state is the state
                                        // regardless of outcome: CSSL (§5.1.1).
                                        hk.copy_mutex_if_latest(uid, value, daddr)?;
                                    }
                                }
                            }
                            // Deviation from §5.1.1, which drops the entry
                            // when the new prepare list is empty: an
                            // in-doubt action must survive compaction even
                            // if all of its writes were mutexes, or its
                            // participant would forget it prepared. See
                            // DESIGN.md.
                            hk.append_outcome(LogEntry::Prepared {
                                aid,
                                pairs: new_pairs,
                                prev: None,
                            })?;
                        }
                    }
                }
                LogEntry::CommittedSs { cssl, .. } => {
                    // An earlier checkpoint being re-compacted.
                    for (uid, daddr) in cssl {
                        if hk.ot.get(&uid).map(|o| o.state) == Some(ObjState::Restored) {
                            continue;
                        }
                        let (kind, value) = self.read_data(daddr)?;
                        match kind {
                            ObjKind::Atomic => hk.copy_committed_atomic(uid, value)?,
                            ObjKind::Mutex => {
                                hk.copy_mutex_if_latest(uid, value, daddr)?;
                            }
                        }
                    }
                }
                LogEntry::Data { .. } | LogEntry::DataH { .. } | LogEntry::DataR { .. } => {
                    return Err(RsError::BadState("data entry on the outcome chain".into()))
                }
            }
        }
        Ok(())
    }

    /// Stage one of the snapshot (§5.2): traverse the recoverable objects
    /// reachable from the stable variables and copy the stable state —
    /// atomic bases from volatile memory, mutex versions from the *old log*
    /// via the MT (volatile mutex state may be newer than the last prepared
    /// state, which is what must be recovered).
    fn snapshot_stage_one(&mut self, hk: &mut HkState<P::Store>, heap: &Heap) -> RsResult<()> {
        let mut new_access: HashSet<Uid> = HashSet::new();
        let Some(root) = heap.stable_root() else {
            hk.new_access = Some(new_access);
            return Ok(());
        };

        let mut queue = VecDeque::from([root]);
        new_access.insert(Uid::STABLE_ROOT);
        while let Some(h) = queue.pop_front() {
            let slot = heap.get(h)?;
            let uid = slot.uid;
            let enqueue = |value: &Value, queue: &mut VecDeque<_>, seen: &mut HashSet<Uid>| {
                value.for_each_ref(&mut |r| {
                    let target = match r {
                        argus_objects::ObjRef::Heap(hh) => Some(*hh),
                        argus_objects::ObjRef::Uid(u) => heap.lookup(*u),
                    };
                    if let Some(hh) = target {
                        if let Ok(s) = heap.get(hh) {
                            if seen.insert(s.uid) {
                                queue.push_back(hh);
                            }
                        }
                    }
                });
            };
            match &slot.body {
                ObjectBody::Atomic(obj) => {
                    let base = flatten_value(heap, &obj.base)?;
                    let addr = hk.append_data(ObjKind::Atomic, base.value)?;
                    hk.cssl.push((uid, addr));
                    hk.ot.insert(
                        uid,
                        HkObj {
                            state: ObjState::Restored,
                            kind: ObjKind::Atomic,
                            mutex_old_addr: None,
                        },
                    );
                    if let Some(writer) = obj.writer {
                        if self.pat.contains(&writer) {
                            let cur = obj
                                .current
                                .as_ref()
                                .ok_or(RsError::Internal("write lock without a current version"))?;
                            let cur = flatten_value(heap, cur)?;
                            hk.append_outcome(LogEntry::PreparedData {
                                uid,
                                value: cur.value,
                                aid: writer,
                                prev: None,
                            })?;
                        }
                    }
                    enqueue(&obj.base, &mut queue, &mut new_access);
                    if let Some(cur) = &obj.current {
                        enqueue(cur, &mut queue, &mut new_access);
                    }
                }
                ObjectBody::Mutex(obj) => {
                    if let Some(&old_addr) = self.mt.get(&uid) {
                        let (_kind, value) = self.read_data(old_addr)?;
                        hk.copy_mutex_if_latest(uid, value, old_addr)?;
                    }
                    // Not in the MT: newly accessible to a still-preparing
                    // action; its state reaches the new log via stage two or
                    // a post-switch prepare (§5.2).
                    enqueue(&obj.value, &mut queue, &mut new_access);
                }
            }
        }

        // Same deviation from the thesis as compaction (§5.1.1): every
        // in-doubt action must leave a prepared entry on the new log, even
        // if none of its writes were reachable atomic objects — otherwise a
        // participant that snapshots while prepared forgets its PrepareOk
        // vote across a crash, and a late outcome forces an aborted or
        // committed record with no prepared entry below it (lint I4). The
        // prepared *data* is already covered: atomic current versions were
        // copied above, mutex prepared versions travel via the MT.
        let mut in_doubt: Vec<ActionId> = self.pat.iter().copied().collect();
        in_doubt.sort_unstable();
        for aid in in_doubt {
            hk.append_outcome(LogEntry::Prepared {
                aid,
                pairs: Vec::new(),
                prev: None,
            })?;
        }

        // Likewise for this guardian's coordinator side: an action past the
        // commit point but not yet `done` must keep its committing record,
        // or a crash after the snapshot forgets phase two and in-doubt
        // participants are never told the verdict (and a late `done` lands
        // with no committing entry below it — lint I6).
        let mut committing: Vec<(ActionId, Vec<GuardianId>)> = self
            .cat
            .iter()
            .map(|(aid, gids)| (*aid, gids.clone()))
            .collect();
        committing.sort_by_key(|a| a.0);
        for (aid, gids) in committing {
            hk.append_outcome(LogEntry::Committing {
                aid,
                gids,
                prev: None,
            })?;
        }

        hk.new_access = Some(new_access);
        Ok(())
    }

    pub(crate) fn finish_housekeeping_impl(&mut self) -> RsResult<()> {
        let _timer = self.obs.reg.phase("core.hk.finish_us");
        let mut hk = self
            .hk
            .take()
            .ok_or_else(|| RsError::BadState("no housekeeping in progress".into()))?;
        let oel = self.oel.take().unwrap_or_default();

        // Make post-marker buffered entries (early-prepared data) readable.
        self.log.force()?;

        // Data entries written by actions that have not yet prepared are not
        // reachable from any outcome entry; restart their writing on the new
        // log (§5.1.1, last paragraph).
        let pending = std::mem::take(&mut self.pending);
        let mut new_pending: HashMap<_, Vec<PendingPair>> = HashMap::new();
        for (aid, pairs) in pending {
            let mut rewritten = Vec::with_capacity(pairs.len());
            for pair in pairs {
                let (kind, value) = self.read_data(pair.addr)?;
                let addr = hk.append_data(kind, value)?;
                rewritten.push(PendingPair {
                    uid: pair.uid,
                    addr,
                    kind,
                });
            }
            new_pending.insert(aid, rewritten);
        }

        // Stage two: copy the outcome entries written since the marker.
        for addr in oel {
            let (_seq, payload) = self.log.read(addr)?;
            match decode_entry(&payload)? {
                LogEntry::Prepared { aid, pairs, .. } => {
                    let mut new_pairs = Vec::new();
                    for (uid, daddr) in pairs {
                        let (kind, value) = self.read_data(daddr)?;
                        match kind {
                            ObjKind::Atomic => {
                                let na = hk.append_data(ObjKind::Atomic, value)?;
                                new_pairs.push((uid, na));
                            }
                            ObjKind::Mutex => {
                                // Stage-two mutex copies go to the prepare
                                // list, not the CSSL (§5.1.1 stage two).
                                if let Some(obj) = hk.ot.get(&uid) {
                                    if obj.mutex_old_addr.is_some_and(|a| a >= daddr) {
                                        continue;
                                    }
                                }
                                let na = hk.append_data(ObjKind::Mutex, value)?;
                                new_pairs.push((uid, na));
                                hk.ot.insert(
                                    uid,
                                    HkObj {
                                        state: ObjState::Restored,
                                        kind: ObjKind::Mutex,
                                        mutex_old_addr: Some(daddr),
                                    },
                                );
                                hk.new_mt.insert(uid, na);
                            }
                        }
                    }
                    hk.append_outcome(LogEntry::Prepared {
                        aid,
                        pairs: new_pairs,
                        prev: None,
                    })?;
                }
                entry if entry.is_outcome() => {
                    hk.append_outcome(entry)?;
                }
                _ => return Err(RsError::BadState("data entry recorded in the OEL".into())),
            }
        }

        hk.new_log.force()?;

        let old_entries = self.log.stable_count();
        let new_entries = hk.new_log.stable_count();
        let new_bytes = hk.new_log.stable_bytes();
        match hk.mode {
            HousekeepingMode::Compaction => self.obs.reg.event(argus_obs::Event::CompactionPass {
                entries_in: hk.old_entries_at_begin,
                entries_out: new_entries,
            }),
            HousekeepingMode::Snapshot => self.obs.reg.event(argus_obs::Event::SnapshotTaken {
                entries: new_entries,
                bytes: new_bytes,
            }),
        }
        let reclaimed = old_entries.saturating_sub(new_entries);
        self.obs.hk_passes.inc();
        self.obs.hk_reclaimed.add(reclaimed);
        self.obs.reg.event(argus_obs::Event::HousekeepingDone {
            mode: match hk.mode {
                HousekeepingMode::Compaction => "compaction",
                HousekeepingMode::Snapshot => "snapshot",
            },
            entries_reclaimed: reclaimed,
        });

        // "In one atomic step, the new log supplants the old log."
        self.log = hk.new_log;
        self.provider.store_switched();
        self.last_outcome = hk.new_last;
        self.mt = hk.new_mt;
        self.pending = new_pending;
        if hk.mode == HousekeepingMode::Snapshot {
            if let Some(new_access) = hk.new_access {
                self.access = self.access.intersection(&new_access).copied().collect();
                self.access.insert(Uid::STABLE_ROOT);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::providers::MemProvider;
    use crate::api::RecoverySystem;
    use crate::tables::PState;
    use argus_objects::{ActionId, GuardianId};

    fn rs() -> HybridLogRs<MemProvider> {
        HybridLogRs::create(MemProvider::fast()).unwrap()
    }

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    /// Runs `n` committed root updates and returns the heap.
    fn history(rs: &mut HybridLogRs<MemProvider>, n: u64) -> Heap {
        let mut heap = Heap::with_stable_root();
        for i in 0..n {
            let a = aid(i + 1);
            let root = heap.stable_root().unwrap();
            heap.acquire_write(root, a).unwrap();
            heap.write_value(root, a, |v| *v = Value::Int(i as i64))
                .unwrap();
            rs.prepare(a, &[root], &heap).unwrap();
            rs.commit(a).unwrap();
            heap.commit_action(a);
        }
        heap
    }

    fn recovered_root(rs: &mut HybridLogRs<MemProvider>) -> (Heap, Value) {
        rs.simulate_crash().unwrap();
        let mut heap = Heap::new();
        rs.recover(&mut heap).unwrap();
        let root = heap.stable_root().unwrap();
        let value = heap.read_value(root, None).unwrap().clone();
        (heap, value)
    }

    #[test]
    fn compaction_shrinks_the_log_and_preserves_state() {
        let mut rs = rs();
        let heap = history(&mut rs, 50);
        let before = rs.log().stable_count();
        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        let after = rs.log().stable_count();
        assert!(after < before / 5, "before={before} after={after}");
        let (_, value) = recovered_root(&mut rs);
        assert_eq!(value, Value::Int(49));
    }

    #[test]
    fn snapshot_shrinks_the_log_and_preserves_state() {
        let mut rs = rs();
        let heap = history(&mut rs, 50);
        let before = rs.log().stable_count();
        rs.housekeeping(&heap, HousekeepingMode::Snapshot).unwrap();
        assert!(rs.log().stable_count() < before / 5);
        let (_, value) = recovered_root(&mut rs);
        assert_eq!(value, Value::Int(49));
    }

    #[test]
    fn in_doubt_actions_survive_compaction() {
        let mut rs = rs();
        let mut heap = history(&mut rs, 3);
        let b = aid(100);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, b).unwrap();
        heap.write_value(root, b, |v| *v = Value::Int(777)).unwrap();
        rs.prepare(b, &[root], &heap).unwrap();

        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.pt.get(b), Some(PState::Prepared));
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(2));
        assert_eq!(heap2.read_value(root2, Some(b)).unwrap(), &Value::Int(777));
    }

    #[test]
    fn activity_between_stages_reaches_the_new_log() {
        let mut rs = rs();
        let mut heap = history(&mut rs, 5);
        rs.begin_housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();

        // Guardian keeps working while "the compaction process" runs.
        let c = aid(200);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, c).unwrap();
        heap.write_value(root, c, |v| *v = Value::Int(1234))
            .unwrap();
        rs.prepare(c, &[root], &heap).unwrap();
        rs.commit(c).unwrap();
        heap.commit_action(c);

        rs.finish_housekeeping().unwrap();
        let (_, value) = recovered_root(&mut rs);
        assert_eq!(value, Value::Int(1234));
    }

    #[test]
    fn double_begin_is_rejected() {
        let mut rs = rs();
        let heap = history(&mut rs, 1);
        rs.begin_housekeeping(&heap, HousekeepingMode::Snapshot)
            .unwrap();
        assert!(matches!(
            rs.begin_housekeeping(&heap, HousekeepingMode::Snapshot),
            Err(RsError::BadState(_))
        ));
        rs.finish_housekeeping().unwrap();
        assert!(matches!(
            rs.finish_housekeeping(),
            Err(RsError::BadState(_))
        ));
    }

    #[test]
    fn snapshot_copies_mutex_state_from_the_log_not_volatile_memory() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let m = heap.alloc_mutex(Value::Int(1));
        let m_uid = heap.uid_of(m).unwrap();
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::heap_ref(m))
            .unwrap();
        rs.prepare(a, &[root], &heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);

        // A still-unprepared action mutates the mutex in volatile memory.
        let b = aid(2);
        heap.seize(m, b).unwrap();
        heap.mutate_mutex(m, b, |v| *v = Value::Int(999)).unwrap();

        rs.housekeeping(&heap, HousekeepingMode::Snapshot).unwrap();
        let (heap2, _) = recovered_root(&mut rs);
        let m2 = heap2.lookup(m_uid).unwrap();
        // The snapshot must have copied the last *prepared* state (1), not
        // the volatile in-progress state (999).
        assert_eq!(heap2.read_value(m2, None).unwrap(), &Value::Int(1));
    }

    #[test]
    fn repeated_housekeeping_recompacts_its_own_checkpoint() {
        let mut rs = rs();
        let heap = history(&mut rs, 10);
        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        let (_, value) = recovered_root(&mut rs);
        assert_eq!(value, Value::Int(9));
    }

    #[test]
    fn early_prepared_pending_data_survives_the_switch() {
        let mut rs = rs();
        let mut heap = history(&mut rs, 3);
        // Early-prepare an update, then housekeep before the prepare.
        let d = aid(300);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, d).unwrap();
        heap.write_value(root, d, |v| *v = Value::Int(31)).unwrap();
        let leftover = rs.write_entry(d, &[root], &heap).unwrap();
        assert!(leftover.is_empty());

        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();

        // The prepare finds its early-prepared data already rewritten.
        rs.prepare(d, &[], &heap).unwrap();
        rs.commit(d).unwrap();
        heap.commit_action(d);
        let (_, value) = recovered_root(&mut rs);
        assert_eq!(value, Value::Int(31));
    }
}
