//! The writing algorithm (§3.3.3.3), shared by the simple and hybrid logs.
//!
//! The two organizations differ only in what a "data entry" looks like and
//! whether the special outcome entries join the backward chain, so the MOS /
//! accessibility-set / NAOS machinery is written once against the
//! [`EntrySink`] trait and each recovery system supplies its own sink.

use crate::{RsError, RsResult};
use argus_objects::{flatten_value, ActionId, Heap, HeapId, ObjKind, ObjectBody, Uid, Value};
use std::collections::{HashSet, VecDeque};

/// Receives the entries the writing algorithm produces, in order.
pub trait EntrySink {
    /// An ordinary data entry for an accessible object's relevant version.
    fn data(&mut self, uid: Uid, kind: ObjKind, value: Value, aid: ActionId) -> RsResult<()>;

    /// A `base_committed` special outcome entry for a newly accessible
    /// atomic object's base version.
    fn base_committed(&mut self, uid: Uid, value: Value) -> RsResult<()>;

    /// A `prepared_data` special outcome entry: the current version of a
    /// newly accessible atomic object write-locked by an already-prepared
    /// *other* action.
    fn prepared_data(&mut self, uid: Uid, value: Value, aid: ActionId) -> RsResult<()>;
}

/// Runs the §3.3.3.3 algorithm for one `prepare` or `write_entry` call.
///
/// * `aid` — the preparing action.
/// * `mos` — the Modified Objects Set for `aid`.
/// * `access` — the guardian's accessibility set (AS); newly accessible
///   objects are added to it as they are written.
/// * `pat` — the prepared-actions table (PAT), consulted for newly
///   accessible objects write-locked by other actions.
///
/// Returns MOS′: the objects of `mos` that were *not* written because they
/// are (still) inaccessible — the early-prepare contract of §4.4.
pub fn process_mos(
    aid: ActionId,
    mos: &[HeapId],
    heap: &Heap,
    access: &mut HashSet<Uid>,
    pat: &HashSet<ActionId>,
    sink: &mut impl EntrySink,
) -> RsResult<Vec<HeapId>> {
    let mut naos: VecDeque<HeapId> = VecDeque::new();
    let mut queued: HashSet<Uid> = HashSet::new();

    let enqueue_refs = |referenced: &[HeapId],
                        heap: &Heap,
                        access: &HashSet<Uid>,
                        queued: &mut HashSet<Uid>,
                        naos: &mut VecDeque<HeapId>|
     -> RsResult<()> {
        for &h in referenced {
            let uid = heap.uid_of(h)?;
            if !access.contains(&uid) && queued.insert(uid) {
                naos.push_back(h);
            }
        }
        Ok(())
    };

    // Step 3: process every object in the MOS.
    let mut seen_mos: HashSet<Uid> = HashSet::new();
    for &h in mos {
        let slot = heap.get(h)?;
        if !seen_mos.insert(slot.uid) {
            continue;
        }
        if !access.contains(&slot.uid) {
            // Step 3c: ignore for now; if it becomes newly accessible it
            // will be written through the NAOS below, otherwise it is
            // returned in MOS′.
            continue;
        }
        // Step 3b: copy the relevant version as a data entry.
        match &slot.body {
            ObjectBody::Atomic(obj) => {
                let out = flatten_value(heap, obj.version_for(Some(aid)))?;
                enqueue_refs(&out.referenced, heap, access, &mut queued, &mut naos)?;
                sink.data(slot.uid, ObjKind::Atomic, out.value, aid)?;
            }
            ObjectBody::Mutex(obj) => {
                let out = flatten_value(heap, &obj.value)?;
                enqueue_refs(&out.referenced, heap, access, &mut queued, &mut naos)?;
                sink.data(slot.uid, ObjKind::Mutex, out.value, aid)?;
            }
        }
    }

    // Step 4: drain the NAOS, which may grow as versions are copied.
    while let Some(h) = naos.pop_front() {
        let slot = heap.get(h)?;
        let uid = slot.uid;
        if access.contains(&uid) {
            continue;
        }
        match &slot.body {
            ObjectBody::Mutex(obj) => {
                // A newly accessible mutex object "is no problem": one data
                // entry with its current version suffices (§3.3.3.2).
                let out = flatten_value(heap, &obj.value)?;
                enqueue_refs(&out.referenced, heap, access, &mut queued, &mut naos)?;
                sink.data(uid, ObjKind::Mutex, out.value, aid)?;
            }
            ObjectBody::Atomic(obj) => {
                let base = flatten_value(heap, &obj.base)?;
                enqueue_refs(&base.referenced, heap, access, &mut queued, &mut naos)?;
                match obj.writer {
                    Some(w) if w == aid => {
                        // Step 4a, write-locked by the preparing action:
                        // base_committed for the base, data entry for the
                        // current version.
                        let cur = obj
                            .current
                            .as_ref()
                            .ok_or(RsError::Internal("write lock without a current version"))?;
                        let cur = flatten_value(heap, cur)?;
                        enqueue_refs(&cur.referenced, heap, access, &mut queued, &mut naos)?;
                        sink.base_committed(uid, base.value)?;
                        sink.data(uid, ObjKind::Atomic, cur.value, aid)?;
                    }
                    Some(other) if pat.contains(&other) => {
                        // Write-locked by another action that has already
                        // prepared: base_committed (needed if it aborts) and
                        // prepared_data (needed if it commits).
                        let cur = obj
                            .current
                            .as_ref()
                            .ok_or(RsError::Internal("write lock without a current version"))?;
                        let cur = flatten_value(heap, cur)?;
                        enqueue_refs(&cur.referenced, heap, access, &mut queued, &mut naos)?;
                        sink.base_committed(uid, base.value)?;
                        sink.prepared_data(uid, cur.value, other)?;
                    }
                    _ => {
                        // Read-locked (e.g. freshly created), unlocked, or
                        // write-locked by an unprepared action: the base
                        // version alone is what must survive.
                        sink.base_committed(uid, base.value)?;
                    }
                }
            }
        }
        access.insert(uid);
    }

    // MOS′: whatever never became accessible.
    let mut leftover = Vec::new();
    let mut seen_leftover = HashSet::new();
    for &h in mos {
        let uid = heap.uid_of(h)?;
        if !access.contains(&uid) && seen_leftover.insert(uid) {
            leftover.push(h);
        }
    }
    Ok(leftover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_objects::GuardianId;

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    /// Records emitted entries for inspection.
    #[derive(Default)]
    struct VecSink(Vec<String>);

    impl EntrySink for VecSink {
        fn data(&mut self, uid: Uid, kind: ObjKind, _v: Value, aid: ActionId) -> RsResult<()> {
            self.0.push(format!("data {uid} {kind} {aid}"));
            Ok(())
        }

        fn base_committed(&mut self, uid: Uid, _v: Value) -> RsResult<()> {
            self.0.push(format!("bc {uid}"));
            Ok(())
        }

        fn prepared_data(&mut self, uid: Uid, _v: Value, aid: ActionId) -> RsResult<()> {
            self.0.push(format!("pd {uid} {aid}"));
            Ok(())
        }
    }

    /// Reproduces the worked example of §3.3.3.2 (Figure 3-6): stable
    /// variable X → O1 → O2; T1 write-locks O2 and points it at a new O3.
    #[test]
    fn figure_3_6_newly_accessible_object() {
        let mut heap = Heap::new();
        let o3 = heap.alloc_atomic(Value::Int(3), Some(aid(1)));
        let o2 = heap.alloc_atomic(Value::Unit, None);
        let uid2 = heap.uid_of(o2).unwrap();
        let uid3 = heap.uid_of(o3).unwrap();
        heap.acquire_write(o2, aid(1)).unwrap();
        heap.write_value(o2, aid(1), |v| *v = Value::heap_ref(o3))
            .unwrap();

        let mut access: HashSet<Uid> = [uid2].into_iter().collect();
        let pat = HashSet::new();
        let mut sink = VecSink::default();
        let leftover = process_mos(aid(1), &[o2], &heap, &mut access, &pat, &mut sink).unwrap();

        assert!(leftover.is_empty());
        assert_eq!(
            sink.0,
            vec![format!("data {uid2} atomic T0.1"), format!("bc {uid3}")]
        );
        // Step 7: the AS now contains O2 and O3.
        assert!(access.contains(&uid2) && access.contains(&uid3));
    }

    #[test]
    fn naos_object_write_locked_by_preparer_gets_both_versions() {
        let mut heap = Heap::new();
        let o3 = heap.alloc_atomic(Value::Int(0), Some(aid(1)));
        heap.acquire_write(o3, aid(1)).unwrap();
        heap.write_value(o3, aid(1), |v| *v = Value::Int(9))
            .unwrap();
        let o2 = heap.alloc_atomic(Value::Unit, None);
        heap.acquire_write(o2, aid(1)).unwrap();
        heap.write_value(o2, aid(1), |v| *v = Value::heap_ref(o3))
            .unwrap();
        let uid2 = heap.uid_of(o2).unwrap();
        let uid3 = heap.uid_of(o3).unwrap();

        let mut access: HashSet<Uid> = [uid2].into_iter().collect();
        let mut sink = VecSink::default();
        process_mos(
            aid(1),
            &[o2],
            &heap,
            &mut access,
            &HashSet::new(),
            &mut sink,
        )
        .unwrap();
        assert_eq!(
            sink.0,
            vec![
                format!("data {uid2} atomic T0.1"),
                format!("bc {uid3}"),
                format!("data {uid3} atomic T0.1"),
            ]
        );
    }

    #[test]
    fn naos_object_locked_by_prepared_other_action_gets_prepared_data() {
        // Action B prepared while holding a write lock on X; action A then
        // makes X newly accessible. Both base and current versions must be
        // written: bc + pd (§3.3.3.2).
        let a = aid(1);
        let b = aid(2);
        let mut heap = Heap::new();
        let x = heap.alloc_atomic(Value::Int(1), None);
        heap.acquire_write(x, b).unwrap();
        heap.write_value(x, b, |v| *v = Value::Int(2)).unwrap();
        let root = heap.alloc_atomic(Value::Unit, None);
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::heap_ref(x))
            .unwrap();
        let uid_x = heap.uid_of(x).unwrap();
        let uid_root = heap.uid_of(root).unwrap();

        let mut access: HashSet<Uid> = [uid_root].into_iter().collect();
        let pat: HashSet<ActionId> = [b].into_iter().collect();
        let mut sink = VecSink::default();
        process_mos(a, &[root], &heap, &mut access, &pat, &mut sink).unwrap();
        assert_eq!(
            sink.0,
            vec![
                format!("data {uid_root} atomic T0.1"),
                format!("bc {uid_x}"),
                format!("pd {uid_x} T0.2"),
            ]
        );
    }

    #[test]
    fn unprepared_other_writer_gets_base_only() {
        let a = aid(1);
        let b = aid(2);
        let mut heap = Heap::new();
        let x = heap.alloc_atomic(Value::Int(1), None);
        heap.acquire_write(x, b).unwrap();
        let root = heap.alloc_atomic(Value::Unit, None);
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::heap_ref(x))
            .unwrap();
        let uid_x = heap.uid_of(x).unwrap();
        let uid_root = heap.uid_of(root).unwrap();

        let mut access: HashSet<Uid> = [uid_root].into_iter().collect();
        let mut sink = VecSink::default();
        process_mos(a, &[root], &heap, &mut access, &HashSet::new(), &mut sink).unwrap();
        assert_eq!(
            sink.0,
            vec![
                format!("data {uid_root} atomic T0.1"),
                format!("bc {uid_x}")
            ]
        );
    }

    #[test]
    fn inaccessible_mos_objects_are_returned_as_mos_prime() {
        let mut heap = Heap::new();
        let orphan = heap.alloc_atomic(Value::Int(1), None);
        heap.acquire_write(orphan, aid(1)).unwrap();
        let mut access = HashSet::new();
        let mut sink = VecSink::default();
        let leftover = process_mos(
            aid(1),
            &[orphan],
            &heap,
            &mut access,
            &HashSet::new(),
            &mut sink,
        )
        .unwrap();
        assert_eq!(leftover, vec![orphan]);
        assert!(sink.0.is_empty());
    }

    #[test]
    fn newly_accessible_mutex_gets_one_data_entry() {
        let a = aid(1);
        let mut heap = Heap::new();
        let m = heap.alloc_mutex(Value::Int(7));
        let root = heap.alloc_atomic(Value::Unit, None);
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::heap_ref(m))
            .unwrap();
        let uid_m = heap.uid_of(m).unwrap();
        let uid_root = heap.uid_of(root).unwrap();

        let mut access: HashSet<Uid> = [uid_root].into_iter().collect();
        let mut sink = VecSink::default();
        process_mos(a, &[root], &heap, &mut access, &HashSet::new(), &mut sink).unwrap();
        assert_eq!(
            sink.0,
            vec![
                format!("data {uid_root} atomic T0.1"),
                format!("data {uid_m} mutex T0.1"),
            ]
        );
    }

    #[test]
    fn naos_cascades_through_chains_of_new_objects() {
        // root -> n1 -> n2 -> n3, all newly accessible.
        let a = aid(1);
        let mut heap = Heap::new();
        let n3 = heap.alloc_atomic(Value::Int(3), Some(a));
        let n2 = heap.alloc_atomic(Value::heap_ref(n3), Some(a));
        let n1 = heap.alloc_atomic(Value::heap_ref(n2), Some(a));
        let root = heap.alloc_atomic(Value::Unit, None);
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::heap_ref(n1))
            .unwrap();
        let uid_root = heap.uid_of(root).unwrap();

        let mut access: HashSet<Uid> = [uid_root].into_iter().collect();
        let mut sink = VecSink::default();
        process_mos(a, &[root], &heap, &mut access, &HashSet::new(), &mut sink).unwrap();
        // One data entry for root plus one bc per new object.
        assert_eq!(sink.0.len(), 4);
        assert_eq!(access.len(), 4);
    }

    #[test]
    fn duplicate_mos_entries_write_once() {
        let a = aid(1);
        let mut heap = Heap::new();
        let x = heap.alloc_atomic(Value::Int(0), None);
        heap.acquire_write(x, a).unwrap();
        let uid = heap.uid_of(x).unwrap();
        let mut access: HashSet<Uid> = [uid].into_iter().collect();
        let mut sink = VecSink::default();
        process_mos(
            a,
            &[x, x, x],
            &heap,
            &mut access,
            &HashSet::new(),
            &mut sink,
        )
        .unwrap();
        assert_eq!(sink.0.len(), 1);
    }
}
