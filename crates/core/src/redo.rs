//! The REDO-only recovery system (the fourth organization).
//!
//! Sauer & Härder's design space, forty years after the thesis: every data
//! entry is a *redo* record carrying the full flattened version plus a
//! per-object **backlink** — the log address of the object's previous
//! committed version — so one object's history is a chain that can be walked
//! without scanning the whole log. There is no undo data: uncommitted
//! versions never supplant committed chain heads, so recovery only ever
//! replays forward state.
//!
//! Three recovery modes ([`RecoveryMode`]):
//!
//! * **Full** — the §3.4.4-style single backward pass, for head-to-head
//!   comparison with the thesis's organizations.
//! * **Parallel(n)** — a bounded *tail scan* rebuilds the OT/PT/CT tables
//!   (stopping at the newest `committed_ss` checkpoint's low-water mark),
//!   then the surviving chain heads are partitioned across `n` deterministic
//!   simulated workers that replay the object chains independently. Device
//!   time is attributed per worker ([`RedoRecoveryProfile`]) so experiments
//!   can report the parallel makespan.
//! * **OnDemand** — the tail scan only. `recover` returns with the tables,
//!   the stable root, and every in-doubt object restored; everything else
//!   stays on the log and is materialized lazily by
//!   [`RecoverySystem::demand_restore`] on first touch.
//!
//! The volatile bookkeeping beyond the thesis's AS/PAT:
//!
//! * `heads` — newest *committed* version address per object. Backlinks are
//!   stamped from it at write time, so a chain hop always lands on committed
//!   (or §2.4.2-restorable mutex) state.
//! * `pending` — addresses written by still-in-doubt actions, promoted into
//!   `heads` when the action commits.
//! * `active_floor` — the first log address each in-doubt action wrote. The
//!   minimum over floors (and unfinished coordinators) is the checkpoint's
//!   low-water mark: a tail scan that reads down to it has seen every record
//!   that is not summarized by the checkpoint's chain-head map.
//!
//! Housekeeping is **chain truncation**: the compaction analogue rebuilds
//! the log with exactly one committed record per live object (each chain
//! truncated to its head), rewrites the backlinks of copied tail records to
//! their new-log addresses, and seals the new log with a fresh checkpoint.

use crate::api::{HousekeepingMode, LogStats, RecoveryMode, RecoverySystem, StoreProvider};
use crate::entry::{
    decode_entry, decode_entry_view, encode_entry, encode_entry_into, EntryRef, EntryView, LogEntry,
};
use crate::metrics::CoreObs;
use crate::restore::RecoverCtx;
use crate::tables::{ObjState, PState, RecoveryOutcome};
use crate::writer::{process_mos, EntrySink};
use crate::{RsError, RsResult};
use argus_objects::{
    ActionId, AtomicObject, GuardianId, Heap, HeapId, MutexObject, ObjKind, ObjectBody, Uid, Value,
};
use argus_slog::{LogAddress, StableLog};
use argus_stable::PageStore;
use std::collections::{HashMap, HashSet};

/// Checkpoint cadence: a `committed_ss` chain-head map is appended after
/// this many commits, bounding the tail a non-full recovery must scan.
const DEFAULT_MAP_INTERVAL: u64 = 64;

/// How the last [`RecoverySystem::recover`] call spent device time, split
/// into the scan phase and the (parallel) replay phase — the raw material of
/// the E20 "instant restart" experiment.
#[derive(Debug, Clone)]
pub struct RedoRecoveryProfile {
    /// The mode the pass ran in.
    pub mode: RecoveryMode,
    /// Device busy time of the (full or tail) scan, µs.
    pub scan_device_us: u64,
    /// Device busy time attributed to each replay worker, µs. Workers run
    /// sequentially under the simulated clock for determinism; the parallel
    /// makespan is `scan + max(worker)`.
    pub worker_device_us: Vec<u64>,
}

impl RedoRecoveryProfile {
    /// The modeled restart time had the workers truly run in parallel:
    /// scan plus the slowest worker.
    pub fn parallel_makespan_us(&self) -> u64 {
        self.scan_device_us + self.worker_device_us.iter().copied().max().unwrap_or(0)
    }
}

/// Emits redo-log entries: data entries carry the per-object backlink and
/// the chain bookkeeping is threaded through the sink.
struct RedoSink<'a, S: PageStore> {
    log: &'a mut StableLog<S>,
    obs: &'a CoreObs,
    aid: ActionId,
    heads: &'a mut HashMap<Uid, LogAddress>,
    pending: &'a mut HashMap<ActionId, Vec<(Uid, LogAddress)>>,
    floor: &'a mut HashMap<ActionId, LogAddress>,
}

impl<S: PageStore> RedoSink<'_, S> {
    fn append(&mut self, entry: EntryRef<'_>) -> RsResult<(LogAddress, u64)> {
        let mut len = 0;
        let addr = self.log.write_with(|enc| {
            let start = enc.len();
            encode_entry_into(enc, &entry)?;
            len = (enc.len() - start) as u64;
            Ok::<_, RsError>(())
        })?;
        Ok((addr, len))
    }
}

impl<S: PageStore> EntrySink for RedoSink<'_, S> {
    fn data(&mut self, uid: Uid, kind: ObjKind, value: Value, aid: ActionId) -> RsResult<()> {
        let back = self.heads.get(&uid).copied();
        let (addr, len) = self.append(EntryRef::DataR {
            uid,
            kind,
            value: &value,
            aid,
            back,
        })?;
        self.floor.entry(self.aid).or_insert(addr);
        match kind {
            // A mutex version is restorable state the moment it is logged
            // (§2.4.2): it becomes the chain head immediately.
            ObjKind::Mutex => {
                self.heads.insert(uid, addr);
            }
            // An atomic version is only committed state once its action
            // commits: park it until the verdict.
            ObjKind::Atomic => self.pending.entry(aid).or_default().push((uid, addr)),
        }
        self.obs.data_entry(len);
        Ok(())
    }

    fn base_committed(&mut self, uid: Uid, value: Value) -> RsResult<()> {
        let (addr, len) = self.append(EntryRef::BaseCommitted {
            uid,
            value: &value,
            prev: None,
        })?;
        self.floor.entry(self.aid).or_insert(addr);
        // A base is committed no matter how the preparing action ends.
        self.heads.insert(uid, addr);
        self.obs.entry_written("base_committed", len);
        Ok(())
    }

    fn prepared_data(&mut self, uid: Uid, value: Value, aid: ActionId) -> RsResult<()> {
        let (addr, len) = self.append(EntryRef::PreparedData {
            uid,
            value: &value,
            aid,
            prev: None,
        })?;
        self.floor.entry(self.aid).or_insert(addr);
        // The *other* prepared action's version: becomes the chain head if
        // that action commits.
        self.pending.entry(aid).or_default().push((uid, addr));
        self.obs.entry_written("prepared_data", len);
        Ok(())
    }
}

/// Scan-time bookkeeping beyond what [`RecoverCtx`] tracks: chain heads,
/// pending promotions, floors, and the tail-scan stop mark.
#[derive(Debug, Default)]
struct ScanState {
    /// Newest valid committed (or mutex-restorable) version address per
    /// object — the rebuilt `heads` map. First insertion wins: the backward
    /// scan meets the newest version first.
    heads: HashMap<Uid, LogAddress>,
    /// In-doubt atomic objects restored with a prepared current version but
    /// no base yet, plus the backlink their prepared record carried.
    needs_base: Vec<(Uid, Option<LogAddress>)>,
    /// Rebuilt `pending` map (in-doubt actions' version addresses).
    pending: HashMap<ActionId, Vec<(Uid, LogAddress)>>,
    /// Oldest record address seen per action (overwritten as the scan walks
    /// down, so the last write is the oldest record).
    floor: HashMap<ActionId, LogAddress>,
    /// Newest `committing` entry address per coordinator action.
    committing: HashMap<ActionId, LogAddress>,
    /// Checkpoint pairs deferred to the end of a *full* scan, simple-style.
    deferred_cssl: Vec<(Uid, LogAddress)>,
    /// Tail-scan stop mark: entries below it are summarized by the newest
    /// checkpoint and are not read.
    stop: Option<LogAddress>,
}

/// In-progress chain-truncation state (between `begin_housekeeping` and
/// `finish_housekeeping`). The new-log bookkeeping mirrors the live maps so
/// they can be installed wholesale at the switch.
#[derive(Debug)]
struct RedoHk<S: PageStore> {
    new_log: StableLog<S>,
    /// Forced-entry count of the old log at begin: entries with `seq >=
    /// marker` are copied (with rewritten backlinks) by stage two.
    marker: u64,
    old_entries_at_begin: u64,
    heads: HashMap<Uid, LogAddress>,
    pending: HashMap<ActionId, Vec<(Uid, LogAddress)>>,
    floor: HashMap<ActionId, LogAddress>,
    committing: HashMap<ActionId, LogAddress>,
}

/// The REDO-only recovery system: backlinked redo records, checkpointed
/// chain-head maps, and full / parallel / on-demand recovery.
#[derive(Debug)]
pub struct RedoRs<P: StoreProvider> {
    provider: P,
    log: StableLog<P::Store>,
    /// The accessibility set (AS, §3.3.3.2), plus lazily pending objects.
    access: HashSet<Uid>,
    /// The prepared-actions table (PAT, §3.3.3.2).
    pat: HashSet<ActionId>,
    /// Newest committed version address per object (chain heads).
    heads: HashMap<Uid, LogAddress>,
    /// Version addresses written by in-doubt actions, promoted into `heads`
    /// at commit, dropped at abort.
    pending: HashMap<ActionId, Vec<(Uid, LogAddress)>>,
    /// First record address of each in-doubt action (low-water inputs).
    active_floor: HashMap<ActionId, LogAddress>,
    /// `committing` entry address of each unfinished coordinator.
    committing_at: HashMap<ActionId, LogAddress>,
    /// Commits since the last checkpoint.
    commits_since_ckpt: u64,
    /// Checkpoint cadence (commits per `committed_ss`).
    map_interval: u64,
    /// How the next `recover` rebuilds state.
    mode: RecoveryMode,
    /// Objects awaiting lazy restoration: uid → chain-head address.
    lazy: HashMap<Uid, LogAddress>,
    /// Device-time attribution of the last recovery pass.
    profile: Option<RedoRecoveryProfile>,
    /// In-progress housekeeping state.
    hk: Option<RedoHk<P::Store>>,
    /// Cached metric handles.
    obs: CoreObs,
}

impl<P: StoreProvider> RedoRs<P> {
    /// Creates a recovery system over a freshly formatted log. The stable
    /// root is accessible by definition.
    pub fn create(mut provider: P) -> RsResult<Self> {
        let log = StableLog::create(provider.new_store())?;
        Ok(Self {
            provider,
            log,
            access: [Uid::STABLE_ROOT].into_iter().collect(),
            pat: HashSet::new(),
            heads: HashMap::new(),
            pending: HashMap::new(),
            active_floor: HashMap::new(),
            committing_at: HashMap::new(),
            commits_since_ckpt: 0,
            map_interval: DEFAULT_MAP_INTERVAL,
            mode: RecoveryMode::Full,
            lazy: HashMap::new(),
            profile: None,
            hk: None,
            obs: CoreObs::resolve(),
        })
    }

    /// Opens a recovery system over an existing log (post-crash). Call
    /// [`RecoverySystem::recover`] before anything else.
    pub fn open(provider: P, store: P::Store) -> RsResult<Self> {
        Ok(Self {
            provider,
            log: StableLog::open(store)?,
            access: HashSet::new(),
            pat: HashSet::new(),
            heads: HashMap::new(),
            pending: HashMap::new(),
            active_floor: HashMap::new(),
            committing_at: HashMap::new(),
            commits_since_ckpt: 0,
            map_interval: DEFAULT_MAP_INTERVAL,
            mode: RecoveryMode::Full,
            lazy: HashMap::new(),
            profile: None,
            hk: None,
            obs: CoreObs::resolve(),
        })
    }

    /// Appends a raw entry — tests use this to fabricate exact logs.
    pub fn append_raw(&mut self, entry: &LogEntry, force: bool) -> RsResult<LogAddress> {
        let bytes = encode_entry(entry)?;
        let addr = self.log.write(&bytes);
        if force {
            self.log.force()?;
        }
        Ok(addr)
    }

    /// The accessibility set (read-only, for tests and experiments).
    pub fn access_set(&self) -> &HashSet<Uid> {
        &self.access
    }

    /// Overrides the checkpoint cadence (commits per `committed_ss`).
    pub fn set_map_interval(&mut self, commits: u64) {
        self.map_interval = commits.max(1);
    }

    /// Device-time attribution of the last recovery pass (E20).
    pub fn last_recovery_profile(&self) -> Option<&RedoRecoveryProfile> {
        self.profile.as_ref()
    }

    /// Decodes every forced entry, oldest first.
    pub fn dump_entries(&mut self) -> RsResult<Vec<(LogAddress, LogEntry)>> {
        let mut entries = Vec::new();
        for item in self.log.read_backward(None) {
            let (addr, _seq, payload) = item.map_err(RsError::Log)?;
            entries.push((addr, payload));
        }
        let mut decoded = Vec::with_capacity(entries.len());
        for (addr, payload) in entries.into_iter().rev() {
            decoded.push((addr, decode_entry(&payload)?));
        }
        Ok(decoded)
    }

    /// Direct access to the underlying log (experiments).
    pub fn log(&self) -> &StableLog<P::Store> {
        &self.log
    }

    /// The low-water mark: the oldest record any in-doubt action or
    /// unfinished coordinator still depends on. A checkpoint whose `prev` is
    /// this address summarizes everything below it.
    fn low_water(&self) -> Option<LogAddress> {
        self.active_floor
            .values()
            .chain(self.committing_at.values())
            .min()
            .copied()
    }

    /// Appends the `committed_ss` chain-head map with the low-water `prev`.
    fn write_checkpoint(&mut self) -> RsResult<()> {
        let mut cssl: Vec<(Uid, LogAddress)> = self.heads.iter().map(|(u, a)| (*u, *a)).collect();
        cssl.sort();
        let prev = self.low_water();
        let mut len = 0;
        self.log.write_with(|enc| {
            let start = enc.len();
            encode_entry_into(enc, &EntryRef::CommittedSs { cssl: &cssl, prev })?;
            len = (enc.len() - start) as u64;
            Ok::<_, RsError>(())
        })?;
        self.obs.entry_written("committed_ss", len);
        Ok(())
    }

    /// The backward scan shared by all recovery modes and housekeeping
    /// stage one. `eager` materializes every surviving version through `ctx`
    /// (full recovery); otherwise only in-doubt versions are materialized
    /// and the scan stops at the newest checkpoint's low-water mark.
    fn scan(
        log: &mut StableLog<P::Store>,
        ctx: &mut RecoverCtx<'_>,
        st: &mut ScanState,
        eager: bool,
    ) -> RsResult<()> {
        for item in log.read_backward(None) {
            let (addr, _seq, payload) = item?;
            if let Some(stop) = st.stop {
                if addr < stop {
                    break;
                }
            }
            let entry = decode_entry_view(&payload)?;
            ctx.entries_examined += 1;
            match entry {
                EntryView::Prepared { aid, .. } => {
                    ctx.on_prepared(aid);
                    st.floor.insert(aid, addr);
                }
                EntryView::Committed { aid, .. } => ctx.on_committed(aid),
                EntryView::Aborted { aid, .. } => ctx.on_aborted(aid),
                EntryView::Committing { aid, gids, .. } => {
                    ctx.on_committing(aid, gids.to_vec());
                    st.committing.entry(aid).or_insert(addr);
                }
                EntryView::Done { aid, .. } => ctx.on_done(aid),
                EntryView::BaseCommitted { uid, value, .. } => {
                    st.heads.entry(uid).or_insert(addr);
                    if eager {
                        ctx.on_base_committed(uid, value.into())?;
                    }
                }
                EntryView::PreparedData {
                    uid, aid, value, ..
                } => {
                    st.floor.insert(aid, addr);
                    let state = ctx.pt.get(aid);
                    if eager {
                        ctx.on_prepared_data(uid, value.into(), aid)?;
                    } else {
                        match state {
                            Some(PState::Prepared) | None => {
                                ctx.on_prepared_data(uid, value.into(), aid)?;
                                st.needs_base.push((uid, None));
                            }
                            Some(PState::Committed) | Some(PState::Aborted) => {}
                        }
                    }
                    // The version is the chain head if its writer committed;
                    // its address is promotable if the writer is in doubt.
                    match ctx.pt.get(aid) {
                        Some(PState::Committed) => {
                            st.heads.entry(uid).or_insert(addr);
                        }
                        Some(PState::Prepared) => {
                            st.pending.entry(aid).or_default().push((uid, addr))
                        }
                        _ => {}
                    }
                }
                e @ (EntryView::DataR { .. } | EntryView::Data { .. }) => {
                    // A plain simple-log data entry is a redo record with no
                    // backlink; tolerated for mixed-provenance logs.
                    let (uid, kind, aid, back, value) = match e {
                        EntryView::DataR {
                            uid,
                            kind,
                            aid,
                            back,
                            value,
                        } => (uid, kind, aid, back, value),
                        EntryView::Data {
                            uid,
                            kind,
                            aid,
                            value,
                        } => (uid, kind, aid, None, value),
                        _ => unreachable!(),
                    };
                    st.floor.insert(aid, addr);
                    let state = ctx.pt.get(aid);
                    let head_ok = matches!(state, Some(PState::Committed))
                        || (kind == ObjKind::Mutex && state.is_some());
                    if head_ok {
                        st.heads.entry(uid).or_insert(addr);
                    }
                    if state == Some(PState::Prepared) {
                        st.pending.entry(aid).or_default().push((uid, addr));
                    }
                    if eager {
                        ctx.data_entries_read += 1;
                        ctx.on_data(addr, uid, kind, value.into(), aid)?;
                    } else if state == Some(PState::Prepared) {
                        // In-doubt versions are restored eagerly: the action
                        // resumes holding its locks the moment recovery
                        // returns, whatever the mode.
                        ctx.data_entries_read += 1;
                        ctx.restore_prepared(uid, kind, value.into(), aid, Some(addr))?;
                        if kind == ObjKind::Atomic {
                            st.needs_base.push((uid, back));
                        }
                    }
                }
                EntryView::DataH { .. } => {}
                EntryView::CommittedSs { cssl, prev } => {
                    // Chain heads for objects untouched above this point.
                    // Within one log generation the newest map is a superset
                    // of older ones, so `or_insert` keeps newest-first
                    // priority even across multiple checkpoints.
                    for (uid, pair_addr) in cssl.iter() {
                        st.heads.entry(uid).or_insert(pair_addr);
                    }
                    if eager {
                        st.deferred_cssl.extend(cssl.iter());
                    } else if st.stop.is_none() {
                        // The newest checkpoint bounds the tail: nothing
                        // below its low-water mark is needed.
                        st.stop = Some(prev.unwrap_or(addr));
                    }
                }
            }
        }

        if eager {
            // Checkpoint pairs are the oldest committed state; restoring
            // them after the scan preserves newest-first priority.
            let deferred = std::mem::take(&mut st.deferred_cssl);
            let mut scratch = Vec::new();
            for (uid, addr) in deferred {
                if ctx.ot.get(uid).map(|e| e.state) == Some(ObjState::Restored) {
                    continue;
                }
                log.read_into(addr, &mut scratch)?;
                ctx.entries_examined += 1;
                ctx.data_entries_read += 1;
                Self::restore_record(ctx, uid, addr, &scratch, true)?;
            }
        }
        Ok(())
    }

    /// Restores the committed version held in the record at `addr` (already
    /// read into `payload`). With `trusted`, the address came from a chain
    /// head or checkpoint pair and is restored unconditionally; otherwise
    /// the participant table gates it. Returns whether the record was
    /// restorable.
    fn restore_record(
        ctx: &mut RecoverCtx<'_>,
        uid: Uid,
        addr: LogAddress,
        payload: &[u8],
        trusted: bool,
    ) -> RsResult<bool> {
        match decode_entry_view(payload)? {
            EntryView::DataR {
                uid: u,
                kind,
                aid,
                value,
                ..
            }
            | EntryView::Data {
                uid: u,
                kind,
                aid,
                value,
            } => {
                if u != uid {
                    return Err(RsError::BadState(format!(
                        "redo chain for {uid} reached a record for {u}"
                    )));
                }
                // Defensive even when trusted: an atomic version written by
                // an action the tail knows aborted (or still in doubt) must
                // not become the committed base.
                let skip = kind == ObjKind::Atomic
                    && matches!(
                        ctx.pt.get(aid),
                        Some(PState::Aborted) | Some(PState::Prepared)
                    );
                let skip = skip || (!trusted && ctx.pt.get(aid).is_none());
                if skip {
                    return Ok(false);
                }
                ctx.restore_committed(uid, kind, value.into(), Some(addr))?;
                Ok(true)
            }
            EntryView::BaseCommitted { uid: u, value, .. } => {
                if u != uid {
                    return Err(RsError::BadState(format!(
                        "redo chain for {uid} reached a record for {u}"
                    )));
                }
                ctx.restore_committed(uid, ObjKind::Atomic, value.into(), Some(addr))?;
                Ok(true)
            }
            EntryView::PreparedData {
                uid: u, aid, value, ..
            } => {
                if u != uid {
                    return Err(RsError::BadState(format!(
                        "redo chain for {uid} reached a record for {u}"
                    )));
                }
                if !trusted && ctx.pt.get(aid) != Some(PState::Committed) {
                    return Ok(false);
                }
                ctx.restore_committed(uid, ObjKind::Atomic, value.into(), Some(addr))?;
                Ok(true)
            }
            other => Err(RsError::BadState(format!(
                "redo chain for {uid} hit a {} entry",
                other.name()
            ))),
        }
    }

    /// Walks `uid`'s chain from `start` until a restorable committed version
    /// is found and materializes it. Returns the address restored from.
    fn restore_chain(
        log: &mut StableLog<P::Store>,
        ctx: &mut RecoverCtx<'_>,
        uid: Uid,
        start: Option<LogAddress>,
    ) -> RsResult<Option<LogAddress>> {
        let mut cur = start;
        let mut scratch = Vec::new();
        let mut first = true;
        while let Some(addr) = cur {
            log.read_into(addr, &mut scratch)?;
            ctx.entries_examined += 1;
            ctx.data_entries_read += 1;
            // The first hop is a trusted chain head or write-time backlink;
            // both always point at restorable state. Deeper hops only arise
            // from degraded chains and stay PT-gated.
            if Self::restore_record(ctx, uid, addr, &scratch, first)? {
                return Ok(Some(addr));
            }
            first = false;
            ctx.chain_hops += 1;
            cur = match decode_entry_view(&scratch)? {
                EntryView::DataR { back, .. } => back,
                _ => None,
            };
        }
        Ok(None)
    }

    /// Writes `entry` to the housekeeping new log, rewriting a redo record's
    /// backlink to its new-log chain head and replaying the live-map
    /// bookkeeping so the maps can be installed at the switch.
    fn append_tracked(hk: &mut RedoHk<P::Store>, mut entry: LogEntry) -> RsResult<LogAddress> {
        if let LogEntry::DataR { uid, back, .. } = &mut entry {
            *back = hk.heads.get(uid).copied();
        }
        let bytes = encode_entry(&entry)?;
        let addr = hk.new_log.write(&bytes);
        match &entry {
            LogEntry::DataR { uid, kind, aid, .. } => {
                hk.floor.entry(*aid).or_insert(addr);
                match kind {
                    ObjKind::Mutex => {
                        hk.heads.insert(*uid, addr);
                    }
                    ObjKind::Atomic => hk.pending.entry(*aid).or_default().push((*uid, addr)),
                }
            }
            LogEntry::BaseCommitted { uid, .. } => {
                hk.heads.insert(*uid, addr);
            }
            LogEntry::PreparedData { uid, aid, .. } => {
                hk.floor.entry(*aid).or_insert(addr);
                hk.pending.entry(*aid).or_default().push((*uid, addr));
            }
            LogEntry::Prepared { aid, .. } => {
                hk.floor.entry(*aid).or_insert(addr);
            }
            LogEntry::Committed { aid, .. } => {
                if let Some(pairs) = hk.pending.remove(aid) {
                    for (uid, a) in pairs {
                        let e = hk.heads.entry(uid).or_insert(a);
                        if *e < a {
                            *e = a;
                        }
                    }
                }
                hk.floor.remove(aid);
            }
            LogEntry::Aborted { aid, .. } => {
                hk.pending.remove(aid);
                hk.floor.remove(aid);
            }
            LogEntry::Committing { aid, .. } => {
                hk.committing.insert(*aid, addr);
            }
            LogEntry::Done { aid, .. } => {
                hk.committing.remove(aid);
            }
            LogEntry::Data { .. } | LogEntry::DataH { .. } | LogEntry::CommittedSs { .. } => {}
        }
        Ok(addr)
    }
}

impl<P: StoreProvider> RecoverySystem for RedoRs<P> {
    fn prepare(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<()> {
        self.stage_prepare(aid, mos, heap)?;
        self.force_staged()
    }

    fn write_entry(
        &mut self,
        _aid: ActionId,
        mos: &[HeapId],
        _heap: &Heap,
    ) -> RsResult<Vec<HeapId>> {
        // Early prepare is a hybrid-log refinement (§4.4); the redo log
        // writes the whole MOS at prepare time like the simple log.
        Ok(mos.to_vec())
    }

    fn commit(&mut self, aid: ActionId) -> RsResult<()> {
        self.stage_commit(aid)?;
        self.force_staged()
    }

    fn abort(&mut self, aid: ActionId) -> RsResult<()> {
        self.stage_abort(aid)?;
        self.force_staged()
    }

    fn committing(&mut self, aid: ActionId, gids: &[GuardianId]) -> RsResult<()> {
        self.stage_committing(aid, gids)?;
        self.force_staged()
    }

    fn done(&mut self, aid: ActionId) -> RsResult<()> {
        self.stage_done(aid)?;
        self.force_staged()
    }

    fn set_recovery_mode(&mut self, mode: RecoveryMode) -> bool {
        self.mode = mode;
        true
    }

    fn demand_restore(&mut self, uid: Uid, heap: &mut Heap) -> RsResult<bool> {
        let Some(&addr) = self.lazy.get(&uid) else {
            return Ok(false);
        };
        if heap.lookup(uid).is_some() {
            self.lazy.remove(&uid);
            return Ok(false);
        }
        // The lazy map only holds validated chain heads, so one read
        // materializes the newest committed version.
        let (_seq, payload) = self.log.read(addr)?;
        let body = match decode_entry_view(&payload)? {
            EntryView::DataR { kind, value, .. } | EntryView::Data { kind, value, .. } => {
                match kind {
                    ObjKind::Atomic => ObjectBody::Atomic(AtomicObject::new(value.decode()?)),
                    ObjKind::Mutex => ObjectBody::Mutex(MutexObject::new(value.decode()?)),
                }
            }
            EntryView::BaseCommitted { value, .. } | EntryView::PreparedData { value, .. } => {
                ObjectBody::Atomic(AtomicObject::new(value.decode()?))
            }
            other => {
                return Err(RsError::BadState(format!(
                    "lazy chain head for {uid} is a {} entry",
                    other.name()
                )))
            }
        };
        heap.insert_with_uid(uid, body)?;
        heap.resolve_uid_refs();
        self.lazy.remove(&uid);
        self.obs.lazy_restores.inc();
        Ok(true)
    }

    fn lazy_pending(&self) -> u64 {
        self.lazy.len() as u64
    }

    fn recovery_makespan_us(&self) -> Option<u64> {
        self.profile.as_ref().map(|p| p.parallel_makespan_us())
    }

    fn stage_prepare(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<bool> {
        let _timer = self.obs.reg.phase("core.prepare_us");
        {
            let mut sink = RedoSink {
                log: &mut self.log,
                obs: &self.obs,
                aid,
                heads: &mut self.heads,
                pending: &mut self.pending,
                floor: &mut self.active_floor,
            };
            process_mos(aid, mos, heap, &mut self.access, &self.pat, &mut sink)?;
        }
        let addr = self.log.write_with(|enc| {
            encode_entry_into(
                enc,
                &EntryRef::Prepared {
                    aid,
                    pairs: &[],
                    prev: None,
                },
            )
        })?;
        // An action with an empty MOS still needs a floor: its prepared
        // entry is the oldest record the tail scan must reach.
        self.active_floor.entry(aid).or_insert(addr);
        self.obs.outcome("prepared", None);
        self.pat.insert(aid);
        self.obs.prepares.inc();
        Ok(true)
    }

    fn stage_commit(&mut self, aid: ActionId) -> RsResult<bool> {
        self.log
            .write_with(|enc| encode_entry_into(enc, &EntryRef::Committed { aid, prev: None }))?;
        self.obs.outcome("committed", None);
        self.pat.remove(&aid);
        // Promote the action's versions to chain heads.
        if let Some(pairs) = self.pending.remove(&aid) {
            for (uid, addr) in pairs {
                let e = self.heads.entry(uid).or_insert(addr);
                if *e < addr {
                    *e = addr;
                }
            }
        }
        self.active_floor.remove(&aid);
        self.obs.commits.inc();
        self.commits_since_ckpt += 1;
        if self.commits_since_ckpt >= self.map_interval && !self.heads.is_empty() {
            self.write_checkpoint()?;
            self.commits_since_ckpt = 0;
        }
        Ok(true)
    }

    fn stage_abort(&mut self, aid: ActionId) -> RsResult<bool> {
        self.log
            .write_with(|enc| encode_entry_into(enc, &EntryRef::Aborted { aid, prev: None }))?;
        self.obs.outcome("aborted", None);
        self.pat.remove(&aid);
        self.pending.remove(&aid);
        self.active_floor.remove(&aid);
        self.obs.aborts.inc();
        Ok(true)
    }

    fn stage_committing(&mut self, aid: ActionId, gids: &[GuardianId]) -> RsResult<bool> {
        let addr = self.log.write_with(|enc| {
            encode_entry_into(
                enc,
                &EntryRef::Committing {
                    aid,
                    gids,
                    prev: None,
                },
            )
        })?;
        self.committing_at.insert(aid, addr);
        self.obs.outcome("committing", None);
        self.obs.committings.inc();
        Ok(true)
    }

    fn stage_done(&mut self, aid: ActionId) -> RsResult<bool> {
        self.log
            .write_with(|enc| encode_entry_into(enc, &EntryRef::Done { aid, prev: None }))?;
        self.committing_at.remove(&aid);
        self.obs.outcome("done", None);
        self.obs.dones.inc();
        Ok(true)
    }

    fn force_staged(&mut self) -> RsResult<()> {
        self.log.force()?;
        Ok(())
    }

    fn recover(&mut self, heap: &mut Heap) -> RsResult<RecoveryOutcome> {
        let timer = self.obs.reg.phase("core.recover_us");
        let mode = self.mode;
        self.lazy.clear();
        let eager = mode == RecoveryMode::Full;

        let scan_before = self.log.store().stats().snapshot();
        let mut ctx = RecoverCtx::new(heap);
        let mut st = ScanState::default();
        Self::scan(&mut self.log, &mut ctx, &mut st, eager)?;

        if !eager {
            // In-doubt atomic objects need their committed base *now*: the
            // resumed action's lock holders (and a possible abort) depend on
            // it. The chain head (or the prepared record's backlink) is one
            // hop away.
            let needs = std::mem::take(&mut st.needs_base);
            for (uid, back) in needs {
                if ctx.ot.get(uid).map(|e| e.state) != Some(ObjState::Prepared) {
                    continue;
                }
                let start = st.heads.get(&uid).copied().or(back);
                if let Some(addr) = Self::restore_chain(&mut self.log, &mut ctx, uid, start)? {
                    st.heads.entry(uid).or_insert(addr);
                }
            }
        }
        let scan_us = self
            .log
            .store()
            .stats()
            .snapshot()
            .since(&scan_before)
            .busy_us;

        let mut worker_us = Vec::new();
        match mode {
            RecoveryMode::Full => {}
            RecoveryMode::Parallel(n) => {
                let n = n.max(1) as usize;
                let mut remaining: Vec<(Uid, LogAddress)> = st
                    .heads
                    .iter()
                    .filter(|(uid, _)| ctx.ot.get(**uid).is_none())
                    .map(|(u, a)| (*u, *a))
                    .collect();
                remaining.sort();
                let mut buckets: Vec<Vec<(Uid, LogAddress)>> = vec![Vec::new(); n];
                for (i, item) in remaining.into_iter().enumerate() {
                    buckets[i % n].push(item);
                }
                for bucket in buckets {
                    let before = self.log.store().stats().snapshot();
                    for (uid, addr) in bucket {
                        Self::restore_chain(&mut self.log, &mut ctx, uid, Some(addr))?;
                    }
                    let after = self.log.store().stats().snapshot();
                    worker_us.push(after.since(&before).busy_us);
                }
            }
            RecoveryMode::OnDemand => {
                // The stable root is the entry point of everything: restore
                // it eagerly so the guardian can serve immediately.
                if let Some(&addr) = st.heads.get(&Uid::STABLE_ROOT) {
                    if ctx.ot.get(Uid::STABLE_ROOT).is_none() {
                        Self::restore_chain(&mut self.log, &mut ctx, Uid::STABLE_ROOT, Some(addr))?;
                    }
                }
                self.lazy = st
                    .heads
                    .iter()
                    .filter(|(uid, _)| ctx.ot.get(**uid).is_none())
                    .map(|(u, a)| (*u, *a))
                    .collect();
            }
        }

        ctx.heap.resolve_uid_refs();
        // Objects still on the log occupy uid space: the allocator must not
        // reuse their uids for new objects, or their chains would corrupt.
        if let Some(max_lazy) = self.lazy.keys().max() {
            let next = ctx.heap.next_uid().max(max_lazy.0 + 1);
            ctx.heap.set_next_uid(next);
        }

        let outcome = RecoveryOutcome {
            entries_examined: ctx.entries_examined,
            data_entries_read: ctx.data_entries_read,
            chain_hops: ctx.chain_hops,
            ot: ctx.ot,
            pt: ctx.pt,
            ct: ctx.ct,
        };
        self.obs.recovery_pass(&outcome);
        timer.stop();

        self.access = heap.accessible_uids();
        for uid in self.lazy.keys() {
            self.access.insert(*uid);
        }
        if heap.stable_root().is_none() {
            self.access.insert(Uid::STABLE_ROOT);
        }
        self.pat = outcome.pt.prepared_actions().into_iter().collect();

        // Install the rebuilt chain bookkeeping.
        self.heads = st.heads;
        self.pending = st.pending;
        self.active_floor = st
            .floor
            .into_iter()
            .filter(|(aid, _)| outcome.pt.get(*aid) == Some(PState::Prepared))
            .collect();
        let committing: HashSet<ActionId> = outcome
            .ct
            .committing_actions()
            .iter()
            .map(|(a, _)| *a)
            .collect();
        self.committing_at = st
            .committing
            .into_iter()
            .filter(|(aid, _)| committing.contains(aid))
            .collect();
        self.commits_since_ckpt = 0;
        self.profile = Some(RedoRecoveryProfile {
            mode,
            scan_device_us: scan_us,
            worker_device_us: worker_us,
        });
        Ok(outcome)
    }

    fn begin_housekeeping(&mut self, _heap: &Heap, mode: HousekeepingMode) -> RsResult<()> {
        if mode != HousekeepingMode::Compaction {
            return Err(RsError::Unsupported(
                "snapshot housekeeping on the redo log (chain truncation is its compaction)",
            ));
        }
        if self.hk.is_some() {
            return Err(RsError::BadState("housekeeping already in progress".into()));
        }
        let _timer = self.obs.reg.phase("core.hk.begin_us");
        // Flush buffered entries so the marker covers a readable prefix.
        self.log.force()?;
        let marker = self.log.stable_count();

        // Stage one: digest everything exactly like a full recovery, into a
        // scratch heap. resolve_uid_refs is deliberately skipped so the
        // restored values keep their uid-reference encoding and can be
        // re-logged verbatim.
        let mut scratch = Heap::new();
        let mut ctx = RecoverCtx::new(&mut scratch);
        let mut st = ScanState::default();
        Self::scan(&mut self.log, &mut ctx, &mut st, true)?;

        let mut hk = RedoHk {
            new_log: StableLog::create(self.provider.new_store())?,
            marker,
            old_entries_at_begin: marker,
            heads: HashMap::new(),
            pending: HashMap::new(),
            floor: HashMap::new(),
            committing: HashMap::new(),
        };

        // Chain truncation: one committed record per live object, emitted
        // deterministically (tables are hash maps, so sort everything).
        let mut uids: Vec<Uid> = ctx.ot.iter().map(|(u, _)| *u).collect();
        uids.sort();

        let mut prepared_versions: Vec<(ActionId, Uid, Value)> = Vec::new();
        let mut mutex_values: Vec<(Uid, Value)> = Vec::new();
        for uid in &uids {
            let entry = ctx.ot.get(*uid).expect("uid came from the OT");
            match &ctx.heap.get(entry.heap)?.body {
                ObjectBody::Atomic(obj) => {
                    if entry.state == ObjState::Restored {
                        Self::append_tracked(
                            &mut hk,
                            LogEntry::BaseCommitted {
                                uid: *uid,
                                value: obj.base.clone(),
                                prev: None,
                            },
                        )?;
                    }
                    if let (Some(writer), Some(cur)) = (obj.writer, &obj.current) {
                        prepared_versions.push((writer, *uid, cur.clone()));
                    }
                }
                ObjectBody::Mutex(obj) => mutex_values.push((*uid, obj.value.clone())),
            }
        }

        // Mutex values truncate as the data entries of a synthetic committed
        // action (§5.1.1) — their chains restart at length one.
        if !mutex_values.is_empty() {
            let hk_aid = ActionId::new(GuardianId(u32::MAX), marker);
            Self::append_tracked(
                &mut hk,
                LogEntry::Prepared {
                    aid: hk_aid,
                    pairs: Vec::new(),
                    prev: None,
                },
            )?;
            for (uid, value) in mutex_values {
                Self::append_tracked(
                    &mut hk,
                    LogEntry::DataR {
                        uid,
                        kind: ObjKind::Mutex,
                        value,
                        aid: hk_aid,
                        back: None,
                    },
                )?;
            }
            Self::append_tracked(
                &mut hk,
                LogEntry::Committed {
                    aid: hk_aid,
                    prev: None,
                },
            )?;
        }

        // In-doubt actions survive truncation: prepared versions plus a bare
        // `prepared` entry each, then unfinished coordinators.
        prepared_versions.sort_by_key(|v| (v.0, v.1));
        for (aid, uid, value) in prepared_versions {
            if ctx.pt.get(aid) != Some(PState::Prepared) {
                continue;
            }
            Self::append_tracked(
                &mut hk,
                LogEntry::PreparedData {
                    uid,
                    value,
                    aid,
                    prev: None,
                },
            )?;
        }
        for aid in ctx.pt.prepared_actions() {
            Self::append_tracked(
                &mut hk,
                LogEntry::Prepared {
                    aid,
                    pairs: Vec::new(),
                    prev: None,
                },
            )?;
        }
        for (aid, gids) in ctx.ct.committing_actions() {
            Self::append_tracked(
                &mut hk,
                LogEntry::Committing {
                    aid,
                    gids,
                    prev: None,
                },
            )?;
        }

        self.hk = Some(hk);
        Ok(())
    }

    fn finish_housekeeping(&mut self) -> RsResult<()> {
        let _timer = self.obs.reg.phase("core.hk.finish_us");
        let mut hk = self
            .hk
            .take()
            .ok_or_else(|| RsError::BadState("no housekeeping in progress".into()))?;

        // Publish post-marker buffered entries so stage two can read them.
        self.log.force()?;

        // Stage two: copy everything written since the marker, rewriting
        // each redo record's backlink to its new-log chain head. Old
        // checkpoints are dropped — their maps point into the old log.
        let mut tail = Vec::new();
        for item in self.log.read_backward(None) {
            let (_addr, seq, payload) = item?;
            if seq < hk.marker {
                break;
            }
            tail.push(payload);
        }
        for payload in tail.into_iter().rev() {
            let entry = decode_entry(&payload)?;
            if matches!(entry, LogEntry::CommittedSs { .. }) {
                continue;
            }
            Self::append_tracked(&mut hk, entry)?;
        }

        // Seal the new log with a fresh checkpoint over the new addresses.
        let mut cssl: Vec<(Uid, LogAddress)> = hk.heads.iter().map(|(u, a)| (*u, *a)).collect();
        cssl.sort();
        let prev = hk
            .floor
            .values()
            .chain(hk.committing.values())
            .min()
            .copied();
        let bytes = encode_entry(&LogEntry::CommittedSs { cssl, prev })?;
        hk.new_log.write(&bytes);
        hk.new_log.force()?;

        let new_entries = hk.new_log.stable_count();
        let reclaimed = self.log.stable_count().saturating_sub(new_entries);
        self.obs.reg.event(argus_obs::Event::CompactionPass {
            entries_in: hk.old_entries_at_begin,
            entries_out: new_entries,
        });
        self.obs.hk_passes.inc();
        self.obs.hk_reclaimed.add(reclaimed);
        self.obs.reg.event(argus_obs::Event::HousekeepingDone {
            mode: "compaction",
            entries_reclaimed: reclaimed,
        });

        // "In one atomic step, the new log supplants the old log" — and the
        // chain bookkeeping switches to the new addresses with it.
        self.log = hk.new_log;
        self.provider.store_switched();
        self.heads = hk.heads;
        self.pending = hk.pending;
        self.active_floor = hk.floor;
        self.committing_at = hk.committing;
        self.commits_since_ckpt = 0;
        // Lazily pending objects re-home to their truncated chain heads.
        let old_lazy = std::mem::take(&mut self.lazy);
        for (uid, _) in old_lazy {
            if let Some(&addr) = self.heads.get(&uid) {
                self.lazy.insert(uid, addr);
            }
        }
        Ok(())
    }

    fn simulate_crash(&mut self) -> RsResult<()> {
        self.log.reopen()?;
        self.access.clear();
        self.pat.clear();
        self.heads.clear();
        self.pending.clear();
        self.active_floor.clear();
        self.committing_at.clear();
        self.lazy.clear();
        self.commits_since_ckpt = 0;
        self.profile = None;
        // An in-progress housekeeping pass dies with the node: the old log
        // is still the active one (the switch is the last step of finish).
        self.hk = None;
        Ok(())
    }

    fn discard(&mut self, aid: ActionId) {
        self.pending.remove(&aid);
        self.active_floor.remove(&aid);
    }

    fn trim_access_set(&mut self, heap: &Heap) {
        let reachable = heap.accessible_uids();
        self.access = self.access.intersection(&reachable).copied().collect();
        // Lazily pending objects are reachable state that simply is not
        // resident yet; they must not be forgotten.
        for uid in self.lazy.keys() {
            self.access.insert(*uid);
        }
        self.access.insert(Uid::STABLE_ROOT);
    }

    fn dump_log(&mut self) -> RsResult<Option<Vec<(LogAddress, LogEntry)>>> {
        self.dump_entries().map(Some)
    }

    fn is_prepared(&self, aid: ActionId) -> bool {
        self.pat.contains(&aid)
    }

    fn log_stats(&self) -> LogStats {
        LogStats {
            entries: self.log.stable_count(),
            bytes: self.log.stable_bytes(),
            device: self.log.store().stats().snapshot(),
        }
    }

    fn decay_page(&mut self, pno: argus_stable::PageNo) -> bool {
        self.log.store_mut().decay_page(pno)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::providers::MemProvider;

    fn rs() -> RedoRs<MemProvider> {
        RedoRs::create(MemProvider::fast()).unwrap()
    }

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    fn commit_root_update(
        rs: &mut RedoRs<MemProvider>,
        heap: &mut Heap,
        a: ActionId,
        value: Value,
    ) {
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = value).unwrap();
        rs.prepare(a, &[root], heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);
    }

    /// Commits `n` child objects hung off the root, one action each.
    fn commit_children(rs: &mut RedoRs<MemProvider>, heap: &mut Heap, n: u64) -> Vec<Uid> {
        let mut uids = Vec::new();
        let mut refs = Vec::new();
        for i in 0..n {
            let a = aid(100 + i);
            let obj = heap.alloc_atomic(Value::Int(1000 + i as i64), Some(a));
            uids.push(heap.uid_of(obj).unwrap());
            refs.push(Value::heap_ref(obj));
            let root = heap.stable_root().unwrap();
            heap.acquire_write(root, a).unwrap();
            let snapshot = Value::Seq(refs.clone());
            heap.write_value(root, a, |v| *v = snapshot).unwrap();
            rs.prepare(a, &[root], heap).unwrap();
            rs.commit(a).unwrap();
            heap.commit_action(a);
        }
        uids
    }

    #[test]
    fn prepare_then_recover_restores_objects() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let obj = heap.alloc_atomic(Value::Int(41), Some(a));
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Seq(vec![Value::heap_ref(obj)]))
            .unwrap();
        let obj_uid = heap.uid_of(obj).unwrap();

        rs.prepare(a, &[root], &heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.pt.get(a), Some(PState::Committed));
        let h = heap2.lookup(obj_uid).unwrap();
        assert_eq!(heap2.read_value(h, None).unwrap(), &Value::Int(41));
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(
            heap2.read_value(root2, None).unwrap(),
            &Value::Seq(vec![Value::heap_ref(h)])
        );
        assert!(rs.access_set().contains(&obj_uid));
    }

    #[test]
    fn unforced_prepare_is_invisible_after_crash() {
        let mut rs = rs();
        let a = aid(1);
        rs.append_raw(
            &LogEntry::DataR {
                uid: Uid::STABLE_ROOT,
                kind: ObjKind::Atomic,
                value: Value::Int(1),
                aid: a,
                back: None,
            },
            false,
        )
        .unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.entries_examined, 0);
        assert!(heap2.is_empty());
    }

    #[test]
    fn snapshot_housekeeping_is_unsupported() {
        let mut rs = rs();
        let heap = Heap::new();
        assert!(matches!(
            rs.housekeeping(&heap, HousekeepingMode::Snapshot),
            Err(RsError::Unsupported(_))
        ));
    }

    #[test]
    fn backlinks_chain_versions_of_one_object() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..3 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        let entries = rs.dump_entries().unwrap();
        let data: Vec<(LogAddress, Option<LogAddress>)> = entries
            .iter()
            .filter_map(|(addr, e)| match e {
                LogEntry::DataR { uid, back, .. } if *uid == Uid::STABLE_ROOT => {
                    Some((*addr, *back))
                }
                _ => None,
            })
            .collect();
        assert_eq!(data.len(), 3);
        assert_eq!(data[0].1, None, "first version starts the chain");
        assert_eq!(data[1].1, Some(data[0].0));
        assert_eq!(data[2].1, Some(data[1].0));
    }

    #[test]
    fn checkpoint_bounds_the_tail_scan() {
        let mut rs = rs();
        rs.set_map_interval(8);
        let mut heap = Heap::with_stable_root();
        for i in 0..50 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        let full_entries = rs.log().stable_count();
        rs.simulate_crash().unwrap();
        assert!(rs.set_recovery_mode(RecoveryMode::OnDemand));
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert!(
            out.entries_examined < full_entries / 4,
            "tail scan must be bounded: examined {} of {}",
            out.entries_examined,
            full_entries
        );
        // The root (the only object) was restored eagerly.
        assert_eq!(rs.lazy_pending(), 0);
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(49));
    }

    #[test]
    fn on_demand_defers_and_restores_on_touch() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let uids = commit_children(&mut rs, &mut heap, 5);

        rs.simulate_crash().unwrap();
        assert!(rs.set_recovery_mode(RecoveryMode::OnDemand));
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        assert_eq!(rs.lazy_pending(), 5, "children stay on the log");
        assert!(heap2.stable_root().is_some(), "root restored eagerly");
        for uid in &uids {
            assert!(heap2.lookup(*uid).is_none());
        }

        // First touch materializes; second is a no-op.
        for (i, uid) in uids.iter().enumerate() {
            assert!(rs.demand_restore(*uid, &mut heap2).unwrap());
            let h = heap2.lookup(*uid).unwrap();
            assert_eq!(
                heap2.read_value(h, None).unwrap(),
                &Value::Int(1000 + i as i64)
            );
            assert!(!rs.demand_restore(*uid, &mut heap2).unwrap());
        }
        assert_eq!(rs.lazy_pending(), 0);
        // All references resolved back to pointers.
        let root2 = heap2.stable_root().unwrap();
        let expect: Vec<Value> = uids
            .iter()
            .map(|u| Value::heap_ref(heap2.lookup(*u).unwrap()))
            .collect();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Seq(expect));
    }

    #[test]
    fn parallel_replay_matches_full_recovery() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let uids = commit_children(&mut rs, &mut heap, 8);

        rs.simulate_crash().unwrap();
        assert!(rs.set_recovery_mode(RecoveryMode::Parallel(4)));
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        assert_eq!(rs.lazy_pending(), 0);
        for (i, uid) in uids.iter().enumerate() {
            let h = heap2.lookup(*uid).unwrap();
            assert_eq!(
                heap2.read_value(h, None).unwrap(),
                &Value::Int(1000 + i as i64)
            );
        }
        let profile = rs.last_recovery_profile().unwrap();
        assert_eq!(profile.mode, RecoveryMode::Parallel(4));
        assert_eq!(profile.worker_device_us.len(), 4);
        assert!(profile.worker_device_us.iter().any(|&us| us > 0));
        assert!(profile.parallel_makespan_us() >= profile.scan_device_us);
    }

    #[test]
    fn on_demand_keeps_uid_counter_ahead_of_lazy_objects() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let uids = commit_children(&mut rs, &mut heap, 4);

        rs.simulate_crash().unwrap();
        rs.set_recovery_mode(RecoveryMode::OnDemand);
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let max_lazy = uids.iter().map(|u| u.0).max().unwrap();
        assert!(heap2.next_uid() > max_lazy, "fresh uids must not collide");
        let fresh = heap2.alloc_atomic(Value::Int(7), None);
        let fresh_uid = heap2.uid_of(fresh).unwrap();
        assert!(!uids.contains(&fresh_uid));
    }

    #[test]
    fn on_demand_restores_in_doubt_eagerly_with_committed_base() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..3 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        let b = aid(1000);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, b).unwrap();
        heap.write_value(root, b, |v| *v = Value::from("in-doubt"))
            .unwrap();
        rs.prepare(b, &[root], &heap).unwrap();

        rs.simulate_crash().unwrap();
        rs.set_recovery_mode(RecoveryMode::OnDemand);
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        assert!(rs.is_prepared(b));
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(
            heap2.read_value(root2, None).unwrap(),
            &Value::Int(2),
            "committed base restored via the backlink"
        );
        assert_eq!(
            heap2.read_value(root2, Some(b)).unwrap(),
            &Value::from("in-doubt"),
            "prepared version restored under its lock"
        );

        // The in-doubt action resolves: its version must become the chain
        // head, visible to a checkpointed tail-only recovery.
        rs.set_map_interval(1);
        rs.commit(b).unwrap();
        heap2.commit_action(b);
        rs.simulate_crash().unwrap();
        let mut heap3 = Heap::new();
        let out = rs.recover(&mut heap3).unwrap();
        assert!(out.entries_examined <= 2, "ckpt right at the top");
        let root3 = heap3.stable_root().unwrap();
        assert_eq!(
            heap3.read_value(root3, None).unwrap(),
            &Value::from("in-doubt")
        );
    }

    #[test]
    fn compaction_shrinks_the_log_and_preserves_state() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..50 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        let before = rs.log().stable_count();
        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        let after = rs.log().stable_count();
        assert!(after < before / 5, "before={before} after={after}");

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(49));
    }

    #[test]
    fn in_doubt_actions_survive_compaction() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..3 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        let b = aid(100);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, b).unwrap();
        heap.write_value(root, b, |v| *v = Value::Int(777)).unwrap();
        rs.prepare(b, &[root], &heap).unwrap();

        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.pt.get(b), Some(PState::Prepared));
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(2));
        assert_eq!(heap2.read_value(root2, Some(b)).unwrap(), &Value::Int(777));
    }

    #[test]
    fn activity_between_stages_reaches_the_new_log() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..5 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        rs.begin_housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();

        let c = aid(200);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, c).unwrap();
        heap.write_value(root, c, |v| *v = Value::Int(1234))
            .unwrap();
        rs.prepare(c, &[root], &heap).unwrap();
        rs.commit(c).unwrap();
        heap.commit_action(c);

        rs.finish_housekeeping().unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(1234));
    }

    #[test]
    fn mutex_state_survives_compaction() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let m = heap.alloc_mutex(Value::Int(1));
        let m_uid = heap.uid_of(m).unwrap();
        commit_root_update(&mut rs, &mut heap, a, Value::heap_ref(m));

        // A prepared-then-aborted action's mutex version must survive
        // compaction as committed state (§2.4.2).
        let b = aid(2);
        heap.seize(m, b).unwrap();
        heap.mutate_mutex(m, b, |v| *v = Value::Int(42)).unwrap();
        heap.release(m, b).unwrap();
        rs.prepare(b, &[m], &heap).unwrap();
        rs.abort(b).unwrap();
        heap.abort_action(b);

        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let m2 = heap2.lookup(m_uid).unwrap();
        assert_eq!(heap2.read_value(m2, None).unwrap(), &Value::Int(42));
    }

    #[test]
    fn repeated_compaction_recompacts_its_own_digest() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..10 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        rs.housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(9));
    }

    #[test]
    fn crash_before_finish_keeps_the_old_log() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..4 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        rs.begin_housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(3));
        assert!(matches!(
            rs.finish_housekeeping(),
            Err(RsError::BadState(_))
        ));
    }

    #[test]
    fn compaction_rewrites_backlinks_into_the_new_log() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        for i in 0..6 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        rs.begin_housekeeping(&heap, HousekeepingMode::Compaction)
            .unwrap();
        // Post-marker activity whose backlink pointed into the old log.
        let c = aid(50);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, c).unwrap();
        heap.write_value(root, c, |v| *v = Value::Int(99)).unwrap();
        rs.prepare(c, &[root], &heap).unwrap();
        rs.commit(c).unwrap();
        heap.commit_action(c);
        rs.finish_housekeeping().unwrap();

        // Every backlink in the compacted log must resolve, within the new
        // log, to an earlier record of the same object.
        let entries = rs.dump_entries().unwrap();
        let by_addr: HashMap<LogAddress, &LogEntry> =
            entries.iter().map(|(a, e)| (*a, e)).collect();
        let mut checked = 0;
        for (addr, entry) in &entries {
            if let LogEntry::DataR {
                uid, back: Some(b), ..
            } = entry
            {
                assert!(b < addr, "backlink must point strictly below");
                match by_addr.get(b) {
                    Some(LogEntry::DataR { uid: u2, .. }) => assert_eq!(u2, uid),
                    Some(LogEntry::BaseCommitted { uid: u2, .. }) => assert_eq!(u2, uid),
                    Some(LogEntry::PreparedData { uid: u2, .. }) => assert_eq!(u2, uid),
                    other => panic!("backlink hit {other:?}"),
                }
                checked += 1;
            }
        }
        assert!(checked > 0, "the post-compaction commit chains on");
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(99));
    }

    #[test]
    fn compaction_remaps_lazy_chain_heads() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let uids = commit_children(&mut rs, &mut heap, 4);

        rs.simulate_crash().unwrap();
        rs.set_recovery_mode(RecoveryMode::OnDemand);
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        assert_eq!(rs.lazy_pending(), 4);

        // Housekeeping switches logs while objects are still lazy: their
        // chain heads must re-home to the new log.
        rs.housekeeping(&heap2, HousekeepingMode::Compaction)
            .unwrap();
        assert_eq!(rs.lazy_pending(), 4);
        for (i, uid) in uids.iter().enumerate() {
            assert!(rs.demand_restore(*uid, &mut heap2).unwrap());
            let h = heap2.lookup(*uid).unwrap();
            assert_eq!(
                heap2.read_value(h, None).unwrap(),
                &Value::Int(1000 + i as i64)
            );
        }
    }

    #[test]
    fn prepared_action_is_in_pat_until_resolution() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::Int(7)).unwrap();
        rs.prepare(a, &[root], &heap).unwrap();
        assert!(rs.is_prepared(a));
        rs.commit(a).unwrap();
        assert!(!rs.is_prepared(a));
    }

    #[test]
    fn full_recovery_after_tail_recovery_round_trips() {
        // OnDemand recover, new commits on demanded objects, crash, full
        // recover: the rebuilt heads must have produced valid backlinks.
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let uids = commit_children(&mut rs, &mut heap, 3);

        rs.simulate_crash().unwrap();
        rs.set_recovery_mode(RecoveryMode::OnDemand);
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        assert!(rs.demand_restore(uids[1], &mut heap2).unwrap());
        let h = heap2.lookup(uids[1]).unwrap();
        let c = aid(500);
        heap2.acquire_write(h, c).unwrap();
        heap2.write_value(h, c, |v| *v = Value::Int(-5)).unwrap();
        rs.prepare(c, &[h], &heap2).unwrap();
        rs.commit(c).unwrap();
        heap2.commit_action(c);

        rs.set_recovery_mode(RecoveryMode::Full);
        rs.simulate_crash().unwrap();
        let mut heap3 = Heap::new();
        rs.recover(&mut heap3).unwrap();
        let h3 = heap3.lookup(uids[1]).unwrap();
        assert_eq!(heap3.read_value(h3, None).unwrap(), &Value::Int(-5));
        let h0 = heap3.lookup(uids[0]).unwrap();
        assert_eq!(heap3.read_value(h0, None).unwrap(), &Value::Int(1000));
    }
}
