//! Cached metric handles for the recovery systems.
//!
//! Resolved once per recovery-system construction against the ambient
//! [`argus_obs`] registry ([`argus_obs::current`]), so the hot paths touch
//! only pre-looked-up atomic handles — no name lookups per log write.

use crate::tables::RecoveryOutcome;
use argus_obs::{Counter, Event, Registry};

/// One recovery system's metric handles.
#[derive(Debug, Clone)]
pub(crate) struct CoreObs {
    pub prepares: Counter,
    pub early_prepares: Counter,
    pub commits: Counter,
    pub aborts: Counter,
    pub committings: Counter,
    pub dones: Counter,
    pub recoveries: Counter,
    pub entries_examined: Counter,
    pub data_entries_read: Counter,
    pub chain_hops: Counter,
    pub data_entries: Counter,
    pub data_bytes: Counter,
    pub hk_passes: Counter,
    pub hk_reclaimed: Counter,
    pub lazy_restores: Counter,
    pub reg: Registry,
}

impl CoreObs {
    pub fn resolve() -> Self {
        let reg = argus_obs::current();
        Self {
            prepares: reg.counter("core.prepares"),
            early_prepares: reg.counter("core.early_prepares"),
            commits: reg.counter("core.commits"),
            aborts: reg.counter("core.aborts"),
            committings: reg.counter("core.committings"),
            dones: reg.counter("core.dones"),
            recoveries: reg.counter("core.recoveries"),
            entries_examined: reg.counter("core.recover.entries_examined"),
            data_entries_read: reg.counter("core.recover.data_entries_read"),
            chain_hops: reg.counter("core.recover.chain_hops"),
            data_entries: reg.counter("core.entries.data"),
            data_bytes: reg.counter("core.entries.data_bytes"),
            hk_passes: reg.counter("core.hk.passes"),
            hk_reclaimed: reg.counter("core.hk.entries_reclaimed"),
            lazy_restores: reg.counter("core.recover.lazy_restores"),
            reg,
        }
    }

    /// Records one log entry appended (any kind).
    pub fn entry_written(&self, kind: &'static str, bytes: u64) {
        self.reg.event(Event::EntryWritten { kind, bytes });
    }

    /// Records one data entry appended.
    pub fn data_entry(&self, bytes: u64) {
        self.data_entries.inc();
        self.data_bytes.add(bytes);
        self.entry_written("data", bytes);
    }

    /// Records one outcome entry chained (hybrid) or written (simple).
    pub fn outcome(&self, kind: &'static str, prev: Option<u64>) {
        self.reg.event(Event::OutcomeChained { kind, prev });
    }

    /// Records one finished recovery pass: the counters the thesis's E2/E3
    /// experiments compare across schemes, plus a summary event.
    pub fn recovery_pass(&self, out: &RecoveryOutcome) {
        self.recoveries.inc();
        self.entries_examined.add(out.entries_examined);
        self.data_entries_read.add(out.data_entries_read);
        self.chain_hops.add(out.chain_hops);
        self.reg.event(Event::RecoveryPass {
            entries_examined: out.entries_examined,
            data_entries_read: out.data_entries_read,
            chain_hops: out.chain_hops,
            pt_size: out.pt.len() as u64,
            ot_size: out.ot.len() as u64,
            ct_size: out.ct.len() as u64,
        });
    }
}
