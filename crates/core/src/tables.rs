//! The recovery system's tables: OT, PT, CT, MT (§3.4.1, §4.4, §5.2).

use argus_objects::{ActionId, GuardianId, HeapId, Uid};
use argus_slog::LogAddress;
use std::collections::HashMap;

/// The state of an object in the object table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObjState {
    /// The version copied so far was written by a prepared (in-doubt)
    /// action; "the latest committed version of this object must be copied
    /// to volatile memory as well" (scenario 1, step 2).
    Prepared,
    /// The object is fully restored.
    #[default]
    Restored,
}

/// One object-table entry: object state plus the volatile-memory address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OtEntry {
    /// Restoration state.
    pub state: ObjState,
    /// Where the object was reconstructed in volatile memory.
    pub heap: HeapId,
    /// For mutex objects, the log address of the data entry whose version
    /// was copied — the recency tiebreak of §4.4: a version at a smaller
    /// address is older and must be ignored.
    pub mutex_addr: Option<LogAddress>,
}

/// The object table (OT): object uid → state + vm address.
#[derive(Debug, Clone, Default)]
pub struct ObjectTable {
    map: HashMap<Uid, OtEntry>,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an object.
    pub fn get(&self, uid: Uid) -> Option<&OtEntry> {
        self.map.get(&uid)
    }

    /// Looks up an object mutably.
    pub fn get_mut(&mut self, uid: Uid) -> Option<&mut OtEntry> {
        self.map.get_mut(&uid)
    }

    /// Inserts or replaces an entry.
    pub fn insert(&mut self, uid: Uid, entry: OtEntry) {
        self.map.insert(uid, entry);
    }

    /// Number of objects recorded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(uid, entry)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Uid, &OtEntry)> {
        self.map.iter()
    }

    /// The largest uid recorded; recovery resets the stable counter past it.
    pub fn max_uid(&self) -> Option<Uid> {
        self.map.keys().max().copied()
    }
}

/// A participant's view of an action's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PState {
    /// Prepared and awaiting the verdict (in doubt).
    Prepared,
    /// Told to commit.
    Committed,
    /// Told to abort.
    Aborted,
}

/// The participant action table (PT): action id → participant state.
///
/// Populated newest-entry-first during the backward scan, so the *first*
/// insertion for an action id wins — that is the action's final state.
#[derive(Debug, Clone, Default)]
pub struct ParticipantTable {
    map: HashMap<ActionId, PState>,
}

impl ParticipantTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an action's state.
    pub fn get(&self, aid: ActionId) -> Option<PState> {
        self.map.get(&aid).copied()
    }

    /// Records `state` for `aid` unless a (newer) state is already known.
    /// Returns the state now in force.
    pub fn enter(&mut self, aid: ActionId, state: PState) -> PState {
        *self.map.entry(aid).or_insert(state)
    }

    /// Number of actions recorded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(aid, state)`.
    pub fn iter(&self) -> impl Iterator<Item = (&ActionId, &PState)> {
        self.map.iter()
    }

    /// The actions whose final state is prepared — these are in doubt and
    /// must query their coordinators after recovery.
    pub fn prepared_actions(&self) -> Vec<ActionId> {
        let mut v: Vec<ActionId> = self
            .map
            .iter()
            .filter(|(_, s)| **s == PState::Prepared)
            .map(|(a, _)| *a)
            .collect();
        v.sort();
        v
    }
}

/// A coordinator's view of an action's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CState {
    /// The committing record is on the log; phase two is (re)startable.
    /// Carries the guardian ids of all participants.
    Committing(Vec<GuardianId>),
    /// Two-phase commit finished.
    Done,
}

/// The coordinator action table (CT): action id → coordinator state.
#[derive(Debug, Clone, Default)]
pub struct CoordinatorTable {
    map: HashMap<ActionId, CState>,
}

impl CoordinatorTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an action's state.
    pub fn get(&self, aid: ActionId) -> Option<&CState> {
        self.map.get(&aid)
    }

    /// Records `state` for `aid` unless a (newer) state is already known.
    pub fn enter(&mut self, aid: ActionId, state: CState) {
        self.map.entry(aid).or_insert(state);
    }

    /// Number of actions recorded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(aid, state)`.
    pub fn iter(&self) -> impl Iterator<Item = (&ActionId, &CState)> {
        self.map.iter()
    }

    /// Actions still in the committing state — the coordinators that must be
    /// restarted to finish phase two.
    pub fn committing_actions(&self) -> Vec<(ActionId, Vec<GuardianId>)> {
        let mut v: Vec<(ActionId, Vec<GuardianId>)> = self
            .map
            .iter()
            .filter_map(|(a, s)| match s {
                CState::Committing(gids) => Some((*a, gids.clone())),
                CState::Done => None,
            })
            .collect();
        v.sort_by_key(|(a, _)| *a);
        v
    }
}

/// The mutex table (MT, §5.2): mutex uid → log address of the data entry
/// holding its latest *prepared* version. Maintained during normal operation
/// so the snapshot can copy mutex state from the log rather than from
/// volatile memory.
pub type MutexTable = HashMap<Uid, LogAddress>;

/// Everything `recover` hands back to the Argus system so participants and
/// coordinators can resume (§3.4.1 step 5), plus instrumentation counters
/// for the recovery experiments.
#[derive(Debug, Default, Clone)]
pub struct RecoveryOutcome {
    /// The object table.
    pub ot: ObjectTable,
    /// The participant action table.
    pub pt: ParticipantTable,
    /// The coordinator action table.
    pub ct: CoordinatorTable,
    /// Log entries examined (outcome entries processed plus data entries
    /// actually read) — the quantity experiment E3 compares across schemes.
    pub entries_examined: u64,
    /// Data entries whose payloads were read and copied.
    pub data_entries_read: u64,
    /// Backward outcome-chain hops followed (hybrid log only; zero for the
    /// simple log's flat scan and the shadow scheme).
    pub chain_hops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    #[test]
    fn pt_first_insertion_wins() {
        let mut pt = ParticipantTable::new();
        assert_eq!(pt.enter(aid(1), PState::Committed), PState::Committed);
        // The (older) prepared entry scanned later must not demote it.
        assert_eq!(pt.enter(aid(1), PState::Prepared), PState::Committed);
        assert_eq!(pt.get(aid(1)), Some(PState::Committed));
    }

    #[test]
    fn pt_lists_in_doubt_actions() {
        let mut pt = ParticipantTable::new();
        pt.enter(aid(3), PState::Prepared);
        pt.enter(aid(1), PState::Aborted);
        pt.enter(aid(2), PState::Prepared);
        assert_eq!(pt.prepared_actions(), vec![aid(2), aid(3)]);
    }

    #[test]
    fn ct_done_shadows_committing() {
        let mut ct = CoordinatorTable::new();
        ct.enter(aid(1), CState::Done);
        ct.enter(aid(1), CState::Committing(vec![GuardianId(1)]));
        assert_eq!(ct.get(aid(1)), Some(&CState::Done));
        assert!(ct.committing_actions().is_empty());
    }

    #[test]
    fn ct_reports_unfinished_coordinators() {
        let mut ct = CoordinatorTable::new();
        ct.enter(
            aid(1),
            CState::Committing(vec![GuardianId(1), GuardianId(2)]),
        );
        assert_eq!(
            ct.committing_actions(),
            vec![(aid(1), vec![GuardianId(1), GuardianId(2)])]
        );
    }

    #[test]
    fn ot_tracks_max_uid() {
        let mut ot = ObjectTable::new();
        assert_eq!(ot.max_uid(), None);
        ot.insert(
            Uid(4),
            OtEntry {
                state: ObjState::Restored,
                heap: HeapId(0),
                mutex_addr: None,
            },
        );
        ot.insert(
            Uid(9),
            OtEntry {
                state: ObjState::Prepared,
                heap: HeapId(1),
                mutex_addr: None,
            },
        );
        assert_eq!(ot.max_uid(), Some(Uid(9)));
        assert_eq!(ot.len(), 2);
    }
}
