//! The recovery-system interface (§2.3).

use crate::{LogEntry, RecoveryOutcome, RsResult};
use argus_objects::{ActionId, GuardianId, Heap, HeapId, Uid};
use argus_sim::StatsSnapshot;
use argus_slog::LogAddress;
use argus_stable::PageStore;

/// Which housekeeping technique to run (ch. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HousekeepingMode {
    /// Rebuild the stable state by reading the old log backwards (§5.1).
    Compaction,
    /// Rebuild the stable state by copying volatile memory (§5.2).
    Snapshot,
}

/// How [`RecoverySystem::recover`] rebuilds volatile state after a crash.
///
/// The thesis's organizations all recover with one full scan; the REDO-only
/// fourth organization (Sauer & Härder's design space) also offers parallel
/// replay over per-object chains and on-demand restoration. Organizations
/// that only support the full scan reject the others via
/// [`RecoverySystem::set_recovery_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// One full backward scan restoring everything before returning.
    Full,
    /// Bounded tail scan for the tables, then every object chain replayed
    /// across this many deterministic simulated workers.
    Parallel(u32),
    /// Bounded tail scan only: `recover` returns with the tables and the
    /// in-doubt objects restored; everything else is restored lazily via
    /// [`RecoverySystem::demand_restore`] on first touch.
    OnDemand,
}

/// Aggregate log/device statistics for experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogStats {
    /// Forced entries on the active log.
    pub entries: u64,
    /// Bytes of forced log content.
    pub bytes: u64,
    /// Cumulative device counters of the active log's store.
    pub device: StatsSnapshot,
}

/// The recovery system of one guardian: "the interface between the Argus
/// system and stable storage" (§2.3).
///
/// The operations mirror the thesis's list one-for-one; `write_entry` is the
/// early-prepare addition of §4.4, and housekeeping is split into
/// `begin`/`finish` so tests and experiments can interleave guardian activity
/// with an in-progress housekeeping pass, as the thesis's two-stage
/// algorithms require. Operations are called sequentially (§2.3).
pub trait RecoverySystem {
    /// `prepare(aid, MOS)`: writes every accessible object in the MOS to the
    /// log, then forces the `prepared` outcome entry (§3.3.3.3).
    fn prepare(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<()>;

    /// `write_entry(aid, MOS)`: early prepare (§4.4). Writes the accessible
    /// objects to the log ahead of the prepare message and returns MOS′ —
    /// the objects *not* written because they were inaccessible, which
    /// becomes the caller's new MOS.
    fn write_entry(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<Vec<HeapId>>;

    /// `commit(aid)`: forces the `committed` participant outcome entry.
    fn commit(&mut self, aid: ActionId) -> RsResult<()>;

    /// `abort(aid)`: forces the `aborted` participant outcome entry.
    fn abort(&mut self, aid: ActionId) -> RsResult<()>;

    /// `committing(aid, gids)`: forces the coordinator's `committing` entry;
    /// the action is committed once this returns (§2.2.1).
    fn committing(&mut self, aid: ActionId, gids: &[GuardianId]) -> RsResult<()>;

    /// `done(aid)`: forces the coordinator's `done` entry; two-phase commit
    /// is complete.
    fn done(&mut self, aid: ActionId) -> RsResult<()>;

    /// `recovery`: rebuilds the guardian's stable state in `heap` from the
    /// log and returns the OT/PT/CT tables (§3.4, §4.3).
    fn recover(&mut self, heap: &mut Heap) -> RsResult<RecoveryOutcome>;

    /// Selects how the *next* `recover` call rebuilds state. Returns `true`
    /// if the organization supports `mode`; the default supports only the
    /// full scan (every thesis organization).
    fn set_recovery_mode(&mut self, mode: RecoveryMode) -> bool {
        mode == RecoveryMode::Full
    }

    /// The heap-miss path of on-demand recovery: if `uid` is awaiting lazy
    /// restoration, walk its log chain, materialize it into `heap`, and
    /// return `true`. Organizations without on-demand recovery have no
    /// pending objects and return `false`.
    fn demand_restore(&mut self, uid: Uid, heap: &mut Heap) -> RsResult<bool> {
        let _ = (uid, heap);
        Ok(false)
    }

    /// Number of objects still awaiting lazy restoration after an on-demand
    /// recovery (0 for full-scan organizations).
    fn lazy_pending(&self) -> u64 {
        0
    }

    /// The modeled restart makespan of the last `recover` call for
    /// organizations that track one (the REDO organization's scan +
    /// slowest-worker figure); `None` for the full-scan organizations,
    /// whose restart time is simply the device time the scan took.
    fn recovery_makespan_us(&self) -> Option<u64> {
        None
    }

    // --- Group commit (staged forces) ---------------------------------
    //
    // Each `stage_*` operation does everything its forcing counterpart does
    // *except* the device force: the entry is buffered (with its final log
    // address assigned) and all volatile bookkeeping happens immediately.
    // `Ok(true)` means the entry is staged and the caller owns the deferred
    // force: it must call `force_staged` before acting on the operation's
    // durability (replying in two-phase commit). `Ok(false)` means the
    // operation is already durable — the defaults force eagerly, so
    // organizations without a shared log (the shadowing baseline) need no
    // changes and simply never batch.
    //
    // Because one guardian's operations share a single log and a force
    // publishes *every* buffered entry atomically (superblock publication),
    // a batch is all-or-nothing: a crash mid-force hides the whole batch,
    // never a prefix that would violate the log invariants.

    /// Stages `prepare` without the force. See the group-commit notes above.
    fn stage_prepare(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<bool> {
        self.prepare(aid, mos, heap)?;
        Ok(false)
    }

    /// Stages `commit` without the force.
    fn stage_commit(&mut self, aid: ActionId) -> RsResult<bool> {
        self.commit(aid)?;
        Ok(false)
    }

    /// Stages `abort` without the force.
    fn stage_abort(&mut self, aid: ActionId) -> RsResult<bool> {
        self.abort(aid)?;
        Ok(false)
    }

    /// Stages `committing` without the force.
    fn stage_committing(&mut self, aid: ActionId, gids: &[GuardianId]) -> RsResult<bool> {
        self.committing(aid, gids)?;
        Ok(false)
    }

    /// Stages `done` without the force.
    fn stage_done(&mut self, aid: ActionId) -> RsResult<bool> {
        self.done(aid)?;
        Ok(false)
    }

    /// Forces every staged entry to stable storage — the one shared device
    /// force the staged operations above are waiting on.
    fn force_staged(&mut self) -> RsResult<()> {
        Ok(())
    }

    /// Starts housekeeping: sets the housekeeping marker and runs stage one
    /// (ch. 5). Normal operations may continue before `finish_housekeeping`.
    fn begin_housekeeping(&mut self, heap: &Heap, mode: HousekeepingMode) -> RsResult<()>;

    /// Finishes housekeeping: copies post-marker activity to the new log and
    /// atomically switches to it.
    fn finish_housekeeping(&mut self) -> RsResult<()>;

    /// Convenience: `begin_housekeeping` immediately followed by
    /// `finish_housekeeping`.
    fn housekeeping(&mut self, heap: &Heap, mode: HousekeepingMode) -> RsResult<()> {
        self.begin_housekeeping(heap, mode)?;
        self.finish_housekeeping()
    }

    /// Simulates the volatile half of a node crash *inside the recovery
    /// system*: discards buffered log writes, internal tables (AS, PAT, MT),
    /// and any in-progress housekeeping, then re-reads the log superblock
    /// from the surviving media. The caller discards the heap and calls
    /// [`RecoverySystem::recover`] next.
    fn simulate_crash(&mut self) -> RsResult<()>;

    /// Discards an action that aborted *locally*, before entering two-phase
    /// commit: nothing is written to the log (the action "was aborted
    /// locally" and is simply unknown afterwards, §2.2.2), but any
    /// early-prepare bookkeeping for it is dropped so its orphaned data
    /// entries are not carried across housekeeping forever.
    fn discard(&mut self, aid: ActionId) {
        let _ = aid;
    }

    /// Trims the accessibility set (§3.3.3.2): objects that became
    /// unreachable from the stable variables accumulate in the AS over
    /// time; this rebuilds it by traversing the stable state and
    /// *intersecting* with the old set (newly-accessible objects discovered
    /// mid-traversal must stay out, so a plain replacement would be wrong).
    fn trim_access_set(&mut self, heap: &Heap);

    /// Every forced, decoded log entry, oldest first — so external auditors
    /// (the `argus-check` linter) can inspect the log without knowing the
    /// organization. Organizations that keep no log (the shadowing baseline)
    /// return `Ok(None)`.
    fn dump_log(&mut self) -> RsResult<Option<Vec<(LogAddress, LogEntry)>>> {
        Ok(None)
    }

    /// Whether the participant has `aid` in its prepared-actions table.
    fn is_prepared(&self, aid: ActionId) -> bool;

    /// Current log and device statistics.
    fn log_stats(&self) -> LogStats;

    /// Fault-injection hook: spontaneously decays one media copy of page
    /// `pno` on the active store ([`PageStore::decay_page`]), returning
    /// `true` if the media model decay. The crash sweeper composes this with
    /// a crash at the frontier page so recovery has to run its read-path
    /// repair — whose writes are themselves sweepable crash points.
    fn decay_page(&mut self, pno: argus_stable::PageNo) -> bool {
        let _ = pno;
        false
    }
}

/// A source of fresh page stores, used by housekeeping to materialize the
/// new log that will supplant the old one.
pub trait StoreProvider {
    /// The store type produced.
    type Store: PageStore;

    /// Creates a fresh, empty store.
    fn new_store(&mut self) -> Self::Store;

    /// Called after the most recently created store has atomically
    /// supplanted the previous one (housekeeping's final step, ch. 5).
    /// Providers whose stores have out-of-band names persist the active
    /// generation here — e.g. [`providers::FileProvider`] rewrites its
    /// stable [`argus_slog::LogRoot`].
    fn store_switched(&mut self) {}
}

/// Providers for the common store types.
pub mod providers {
    use super::StoreProvider;
    use argus_sim::{CostModel, SimClock};
    use argus_stable::{CacheConfig, FaultPlan, MemStore, MirroredDisk, PageCache};

    /// Produces in-memory stores sharing one clock/model/fault plan.
    #[derive(Debug, Clone)]
    pub struct MemProvider {
        /// Shared simulated clock.
        pub clock: SimClock,
        /// Device cost profile.
        pub model: CostModel,
        /// Optional shared fault plan (node-crash injection).
        pub plan: Option<FaultPlan>,
    }

    impl MemProvider {
        /// A provider with a fresh clock, the fast cost profile, and no
        /// fault injection — the default for unit tests.
        pub fn fast() -> Self {
            Self {
                clock: SimClock::new(),
                model: CostModel::fast(),
                plan: None,
            }
        }

        /// A provider with the realistic default cost profile.
        pub fn realistic(clock: SimClock) -> Self {
            Self {
                clock,
                model: CostModel::default(),
                plan: None,
            }
        }

        /// Attaches a fault plan to all stores this provider creates.
        pub fn with_plan(mut self, plan: FaultPlan) -> Self {
            self.plan = Some(plan);
            self
        }
    }

    impl StoreProvider for MemProvider {
        type Store = MemStore;

        fn new_store(&mut self) -> MemStore {
            match &self.plan {
                Some(plan) => {
                    MemStore::with_fault_plan(plan.clone(), self.clock.clone(), self.model.clone())
                }
                None => MemStore::new(self.clock.clone(), self.model.clone()),
            }
        }
    }

    /// Produces file-backed stores in a directory, one numbered file per
    /// store — lets the hybrid log (and its housekeeping, which allocates a
    /// fresh store per new log) run on a real filesystem. A stable
    /// [`argus_slog::LogRoot`] in the same directory names the active
    /// generation, so a new process can find the current log after any
    /// number of housekeeping switches.
    #[derive(Debug)]
    pub struct FileProvider {
        /// Directory the store files live in.
        pub dir: std::path::PathBuf,
        /// Shared simulated clock (still used for cost accounting).
        pub clock: SimClock,
        /// Device cost profile.
        pub model: CostModel,
        /// Durability mode applied to every store file (fsync vs. O_DSYNC).
        pub mode: argus_stable::DurabilityMode,
        counter: u64,
        root: argus_slog::LogRoot<argus_stable::FileStore>,
    }

    impl FileProvider {
        /// Creates a provider over `dir` (created if absent) in the default
        /// [`argus_stable::DurabilityMode::Fsync`].
        pub fn new(dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
            Self::with_mode(dir, argus_stable::DurabilityMode::default())
        }

        /// Creates a provider over `dir` (created if absent). The root file
        /// is created pointing at generation 0 if it does not exist yet.
        pub fn with_mode(
            dir: impl Into<std::path::PathBuf>,
            mode: argus_stable::DurabilityMode,
        ) -> std::io::Result<Self> {
            let dir = dir.into();
            std::fs::create_dir_all(&dir)?;
            let clock = SimClock::new();
            let model = CostModel::fast();
            let root_path = dir.join("root.argus");
            let existed = root_path.exists();
            let store = argus_stable::FileStore::open(&root_path, clock.clone(), model.clone())
                .map_err(std::io::Error::other)?;
            let root = if existed {
                argus_slog::LogRoot::open(store).map_err(std::io::Error::other)?
            } else {
                argus_slog::LogRoot::create(store, 0).map_err(std::io::Error::other)?
            };
            let mut provider = Self {
                dir,
                clock,
                model,
                mode,
                counter: 0,
                root,
            };
            // Resume the counter past any existing generations.
            while provider.store_path(provider.counter).exists() {
                provider.counter += 1;
            }
            Ok(provider)
        }

        /// Shares a world's clock and cost model for device accounting.
        pub fn with_device(mut self, clock: SimClock, model: CostModel) -> Self {
            self.clock = clock;
            self.model = model;
            self
        }

        /// The generation the stable root currently points at.
        pub fn active_generation(&mut self) -> std::io::Result<u64> {
            self.root.active().map_err(std::io::Error::other)
        }

        /// The path of the `n`-th store file.
        pub fn store_path(&self, n: u64) -> std::path::PathBuf {
            self.dir.join(format!("log-{n:04}.argus"))
        }

        /// Opens the existing store file `n` (for reopening after a real
        /// process restart).
        pub fn open_store(
            &self,
            n: u64,
        ) -> Result<argus_stable::FileStore, argus_stable::StorageError> {
            argus_stable::FileStore::open_with(
                &self.store_path(n),
                self.clock.clone(),
                self.model.clone(),
                self.mode,
            )
        }

        /// Highest store number created so far.
        pub fn stores_created(&self) -> u64 {
            self.counter
        }
    }

    impl StoreProvider for FileProvider {
        type Store = argus_stable::FileStore;

        fn new_store(&mut self) -> argus_stable::FileStore {
            let path = self.store_path(self.counter);
            self.counter += 1;
            let _ = std::fs::remove_file(&path);
            argus_stable::FileStore::open_with(
                &path,
                self.clock.clone(),
                self.model.clone(),
                self.mode,
            )
            .expect("create store file")
        }

        fn store_switched(&mut self) {
            // "In one atomic step, the new log supplants the old log":
            // the root file is that step on a real filesystem.
            self.root
                .switch(self.counter.saturating_sub(1))
                .expect("switch log root");
        }
    }

    /// Wraps any provider so every store it produces reads through a
    /// [`PageCache`]. Housekeeping allocates a fresh store for the new log,
    /// so each generation gets its own (cold) cache, and the cache config
    /// travels with the provider across switches.
    #[derive(Debug, Clone)]
    pub struct CachedProvider<P> {
        /// The provider producing the underlying media stores.
        pub inner: P,
        /// Cache configuration applied to every produced store.
        pub cfg: CacheConfig,
    }

    impl<P> CachedProvider<P> {
        /// Wraps `inner`, caching every store it produces per `cfg`.
        pub fn new(inner: P, cfg: CacheConfig) -> Self {
            Self { inner, cfg }
        }
    }

    impl<P: StoreProvider> StoreProvider for CachedProvider<P> {
        type Store = PageCache<P::Store>;

        fn new_store(&mut self) -> Self::Store {
            PageCache::new(self.inner.new_store(), self.cfg)
        }

        fn store_switched(&mut self) {
            self.inner.store_switched();
        }
    }

    /// Produces Lampson–Sturgis mirrored disks sharing one clock/model/plan.
    #[derive(Debug, Clone)]
    pub struct MirrorProvider {
        /// Shared simulated clock.
        pub clock: SimClock,
        /// Device cost profile.
        pub model: CostModel,
        /// Shared fault plan.
        pub plan: FaultPlan,
    }

    impl StoreProvider for MirrorProvider {
        type Store = MirroredDisk;

        fn new_store(&mut self) -> MirroredDisk {
            MirroredDisk::new(self.plan.clone(), self.clock.clone(), self.model.clone())
        }
    }
}
