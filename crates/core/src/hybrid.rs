//! The hybrid-log recovery system (ch. 4): the thesis's contribution.
//!
//! The shadowing map is distributed over the `prepared` outcome entries as
//! `(uid, log address)` pairs, and every outcome entry carries a pointer to
//! the previous outcome entry, forming a backward chain. Recovery walks the
//! chain and reads data entries *only when a version actually needs to be
//! copied* — that selectivity is why hybrid recovery examines far fewer
//! entries than the simple log (experiments E2/E3).

use crate::api::{HousekeepingMode, LogStats, RecoverySystem, StoreProvider};
use crate::entry::{
    decode_entry, decode_entry_view, encode_entry, encode_entry_into, EntryRef, EntryView, LogEntry,
};
use crate::housekeeping::HkState;
use crate::metrics::CoreObs;
use crate::restore::RecoverCtx;
use crate::tables::{MutexTable, ObjState, PState, RecoveryOutcome};
use crate::writer::{process_mos, EntrySink};
use crate::{RsError, RsResult};
use argus_objects::{ActionId, GuardianId, Heap, HeapId, ObjKind, Uid, Value};
use argus_slog::{LogAddress, StableLog};
use argus_stable::PageStore;
use std::collections::{HashMap, HashSet};

/// One `(uid, data-entry address)` pair plus the object kind, tracked per
/// action between its data-entry writes and its prepare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingPair {
    pub uid: Uid,
    pub addr: LogAddress,
    pub kind: ObjKind,
}

/// Emits hybrid-log entries: anonymous data entries whose addresses are
/// collected into the preparing action's map fragment, and chained special
/// outcome entries (Figure 4-1).
struct HybridSink<'a, S: argus_stable::PageStore> {
    log: &'a mut StableLog<S>,
    pairs: &'a mut Vec<PendingPair>,
    last_outcome: &'a mut Option<LogAddress>,
    oel: &'a mut Option<Vec<LogAddress>>,
    obs: &'a CoreObs,
}

impl<S: argus_stable::PageStore> HybridSink<'_, S> {
    fn chain(&mut self, mut entry: EntryRef<'_>) -> RsResult<LogAddress> {
        let prev = self.last_outcome.map(|a| a.0);
        entry.set_prev(*self.last_outcome);
        let addr = self.log.write_with(|enc| encode_entry_into(enc, &entry))?;
        self.obs.outcome(entry.name(), prev);
        *self.last_outcome = Some(addr);
        if let Some(oel) = self.oel {
            oel.push(addr);
        }
        Ok(addr)
    }
}

impl<S: argus_stable::PageStore> EntrySink for HybridSink<'_, S> {
    fn data(&mut self, uid: Uid, kind: ObjKind, value: Value, _aid: ActionId) -> RsResult<()> {
        let mut len = 0;
        let addr = self.log.write_with(|enc| {
            let start = enc.len();
            encode_entry_into(
                enc,
                &EntryRef::DataH {
                    kind,
                    value: &value,
                },
            )?;
            len = (enc.len() - start) as u64;
            Ok::<_, RsError>(())
        })?;
        self.obs.data_entry(len);
        self.pairs.push(PendingPair { uid, addr, kind });
        Ok(())
    }

    fn base_committed(&mut self, uid: Uid, value: Value) -> RsResult<()> {
        self.chain(EntryRef::BaseCommitted {
            uid,
            value: &value,
            prev: None,
        })?;
        Ok(())
    }

    fn prepared_data(&mut self, uid: Uid, value: Value, aid: ActionId) -> RsResult<()> {
        self.chain(EntryRef::PreparedData {
            uid,
            value: &value,
            aid,
            prev: None,
        })?;
        Ok(())
    }
}

/// The recovery system over a hybrid log.
///
/// Owns the active [`StableLog`], the accessibility set, the PAT, the mutex
/// table (MT, §5.2), the per-action early-prepare bookkeeping, and — while a
/// housekeeping pass is open — the outcome entries list (OEL) and the new
/// log under construction.
///
/// # Examples
///
/// ```
/// use argus_core::{providers::MemProvider, HybridLogRs, RecoverySystem};
/// use argus_objects::{ActionId, GuardianId, Heap, Value};
///
/// let mut rs = HybridLogRs::create(MemProvider::fast())?;
/// let mut heap = Heap::with_stable_root();
///
/// // One committed action modifying the stable root.
/// let aid = ActionId::new(GuardianId(0), 1);
/// let root = heap.stable_root().unwrap();
/// heap.acquire_write(root, aid)?;
/// heap.write_value(root, aid, |v| *v = Value::Int(7))?;
/// rs.prepare(aid, &[root], &heap)?;
/// rs.commit(aid)?;
/// heap.commit_action(aid);
///
/// // Crash: volatile state vanishes; recovery rebuilds it from the log.
/// rs.simulate_crash()?;
/// let mut recovered = Heap::new();
/// rs.recover(&mut recovered)?;
/// let root = recovered.stable_root().unwrap();
/// assert_eq!(recovered.read_value(root, None)?, &Value::Int(7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct HybridLogRs<P: StoreProvider> {
    pub(crate) provider: P,
    pub(crate) log: StableLog<P::Store>,
    /// The accessibility set (AS).
    pub(crate) access: HashSet<Uid>,
    /// The prepared-actions table (PAT).
    pub(crate) pat: HashSet<ActionId>,
    /// The committing-actions table (CAT): coordinators past the commit
    /// point whose `done` is not yet logged. Volatile twin of the
    /// recovery CT, kept so a snapshot can re-emit `committing` entries —
    /// the snapshot reads no log, and phase-two state lives nowhere in
    /// the heap.
    pub(crate) cat: HashMap<ActionId, Vec<GuardianId>>,
    /// Address of the most recent outcome entry: the chain head.
    pub(crate) last_outcome: Option<LogAddress>,
    /// Early-prepared data entries per action, not yet covered by a
    /// `prepared` entry.
    pub(crate) pending: HashMap<ActionId, Vec<PendingPair>>,
    /// The mutex table: mutex uid → address of its latest prepared version.
    pub(crate) mt: MutexTable,
    /// The outcome entries list, recorded while housekeeping is open.
    pub(crate) oel: Option<Vec<LogAddress>>,
    /// In-progress housekeeping state.
    pub(crate) hk: Option<HkState<P::Store>>,
    /// Cached metric handles.
    pub(crate) obs: CoreObs,
}

impl<P: StoreProvider> HybridLogRs<P> {
    /// Creates a recovery system over a freshly formatted log.
    pub fn create(mut provider: P) -> RsResult<Self> {
        let log = StableLog::create(provider.new_store())?;
        Ok(Self {
            provider,
            log,
            access: [Uid::STABLE_ROOT].into_iter().collect(),
            pat: HashSet::new(),
            cat: HashMap::new(),
            last_outcome: None,
            pending: HashMap::new(),
            mt: MutexTable::new(),
            oel: None,
            hk: None,
            obs: CoreObs::resolve(),
        })
    }

    /// Opens a recovery system over an existing log (post-crash). Call
    /// [`RecoverySystem::recover`] before anything else.
    pub fn open(provider: P, store: P::Store) -> RsResult<Self> {
        Ok(Self {
            provider,
            log: StableLog::open(store)?,
            access: HashSet::new(),
            pat: HashSet::new(),
            cat: HashMap::new(),
            last_outcome: None,
            pending: HashMap::new(),
            mt: MutexTable::new(),
            oel: None,
            hk: None,
            obs: CoreObs::resolve(),
        })
    }

    /// Appends a raw entry, optionally forcing — scenario tests use this to
    /// fabricate the exact logs of the thesis's figures. The entry is *not*
    /// auto-chained; the caller controls `prev` fields completely.
    pub fn append_raw(&mut self, entry: &LogEntry, force: bool) -> RsResult<LogAddress> {
        let addr = self.log.write(&encode_entry(entry)?);
        if force {
            self.log.force()?;
        }
        if entry.is_outcome() {
            self.last_outcome = Some(addr);
        }
        Ok(addr)
    }

    /// The accessibility set (read-only, for tests and experiments).
    pub fn access_set(&self) -> &HashSet<Uid> {
        &self.access
    }

    /// Decodes every forced entry, oldest first — scenario tests use this to
    /// check the exact log contents against the thesis's figures.
    pub fn dump_entries(&mut self) -> RsResult<Vec<(LogAddress, LogEntry)>> {
        let mut entries = Vec::new();
        for item in self.log.read_backward(None) {
            let (addr, _seq, payload) = item.map_err(RsError::Log)?;
            entries.push((addr, payload));
        }
        let mut decoded = Vec::with_capacity(entries.len());
        for (addr, payload) in entries.into_iter().rev() {
            decoded.push((addr, decode_entry(&payload)?));
        }
        Ok(decoded)
    }

    /// The mutex table (read-only, for tests).
    pub fn mutex_table(&self) -> &MutexTable {
        &self.mt
    }

    /// Direct access to the underlying log (experiments).
    pub fn log(&self) -> &StableLog<P::Store> {
        &self.log
    }

    /// Appends a chained outcome entry, updating the chain head and the OEL.
    pub(crate) fn append_outcome(
        &mut self,
        mut entry: EntryRef<'_>,
        force: bool,
    ) -> RsResult<LogAddress> {
        let prev = self.last_outcome.map(|a| a.0);
        entry.set_prev(self.last_outcome);
        let addr = self.log.write_with(|enc| encode_entry_into(enc, &entry))?;
        // Chain invariant I2: prev pointers strictly decrease, so the
        // recovery walk always terminates.
        debug_assert!(
            prev.is_none_or(|p| p < addr.0),
            "outcome chain must strictly decrease: prev {prev:?} vs new {}",
            addr.0
        );
        self.obs.outcome(entry.name(), prev);
        if force {
            self.log.force()?;
        }
        self.last_outcome = Some(addr);
        if let Some(oel) = &mut self.oel {
            oel.push(addr);
        }
        Ok(addr)
    }

    /// Merges freshly written pairs into an action's pending set, keeping
    /// only the newest data entry per object.
    fn merge_pairs(into: &mut Vec<PendingPair>, new: Vec<PendingPair>) {
        for pair in new {
            match into.iter_mut().find(|p| p.uid == pair.uid) {
                Some(existing) => *existing = pair,
                None => into.push(pair),
            }
        }
    }

    /// Reads a data entry (either format) at `addr`.
    pub(crate) fn read_data(&mut self, addr: LogAddress) -> RsResult<(ObjKind, Value)> {
        let (_seq, payload) = self.log.read(addr)?;
        match decode_entry(&payload)? {
            LogEntry::DataH { kind, value } => Ok((kind, value)),
            LogEntry::Data { kind, value, .. } => Ok((kind, value)),
            other => Err(RsError::BadState(format!(
                "expected a data entry at {addr}, found {}",
                other.name()
            ))),
        }
    }

    /// The kind of the already-restored object `uid`, if any.
    fn resident_kind(ctx: &RecoverCtx<'_>, uid: Uid) -> RsResult<Option<ObjKind>> {
        match ctx.ot.get(uid) {
            Some(e) => Ok(Some(ctx.heap.get(e.heap)?.body.kind())),
            None => Ok(None),
        }
    }

    /// Processes one `(uid, address)` pair of a `prepared` entry under the
    /// action's effective state, reading the data entry only when a copy is
    /// actually required (§4.3.3).
    fn process_pair(
        &mut self,
        ctx: &mut RecoverCtx<'_>,
        st: PState,
        aid: ActionId,
        uid: Uid,
        daddr: LogAddress,
    ) -> RsResult<()> {
        let resident = ctx.ot.get(uid).copied();
        match st {
            PState::Committed => match resident {
                Some(entry) => match Self::resident_kind(ctx, uid)?.expect("entry implies kind") {
                    ObjKind::Atomic => {
                        // A resident base restored from a checkpoint below
                        // this action's commit point is stale; this pair
                        // holds the real committed state (checkpoint
                        // ordering fix, see DESIGN.md).
                        if entry.state == ObjState::Prepared || ctx.stale_committed_base(uid, aid) {
                            let (kind, value) = self.read_data_counted(ctx, daddr)?;
                            ctx.restore_committed_by(aid, uid, kind, value.into(), Some(daddr))?;
                        }
                    }
                    ObjKind::Mutex => {
                        if entry.mutex_addr.is_some_and(|old| daddr > old) {
                            let (kind, value) = self.read_data_counted(ctx, daddr)?;
                            ctx.restore_committed(uid, kind, value.into(), Some(daddr))?;
                        }
                    }
                },
                None => {
                    let (kind, value) = self.read_data_counted(ctx, daddr)?;
                    ctx.restore_committed(uid, kind, value.into(), Some(daddr))?;
                }
            },
            PState::Prepared => match resident {
                Some(entry) => match Self::resident_kind(ctx, uid)?.expect("entry implies kind") {
                    ObjKind::Atomic => {
                        // Post-compaction ordering: attach the prepared
                        // current version if the restored object has none.
                        let needs_current = match &ctx.heap.get(entry.heap)?.body {
                            argus_objects::ObjectBody::Atomic(obj) => obj.writer.is_none(),
                            _ => false,
                        };
                        if needs_current {
                            let (kind, value) = self.read_data_counted(ctx, daddr)?;
                            ctx.restore_prepared(uid, kind, value.into(), aid, Some(daddr))?;
                        }
                    }
                    ObjKind::Mutex => {
                        if entry.mutex_addr.is_some_and(|old| daddr > old) {
                            let (kind, value) = self.read_data_counted(ctx, daddr)?;
                            ctx.restore_prepared(uid, kind, value.into(), aid, Some(daddr))?;
                        }
                    }
                },
                None => {
                    let (kind, value) = self.read_data_counted(ctx, daddr)?;
                    ctx.restore_prepared(uid, kind, value.into(), aid, Some(daddr))?;
                }
            },
            PState::Aborted => match resident {
                Some(entry) => {
                    if Self::resident_kind(ctx, uid)? == Some(ObjKind::Mutex)
                        && entry.mutex_addr.is_some_and(|old| daddr > old)
                    {
                        let (kind, value) = self.read_data_counted(ctx, daddr)?;
                        ctx.restore_committed(uid, kind, value.into(), Some(daddr))?;
                    }
                }
                None => {
                    // The kind is only in the data entry; mutex versions of
                    // an aborted-but-prepared action must still be restored.
                    let (kind, value) = self.read_data_counted(ctx, daddr)?;
                    if kind == ObjKind::Mutex {
                        ctx.restore_committed(uid, kind, value.into(), Some(daddr))?;
                    }
                }
            },
        }
        Ok(())
    }

    fn read_data_counted(
        &mut self,
        ctx: &mut RecoverCtx<'_>,
        addr: LogAddress,
    ) -> RsResult<(ObjKind, Value)> {
        ctx.entries_examined += 1;
        ctx.data_entries_read += 1;
        self.obs
            .reg
            .event(argus_obs::Event::RecoveryDataRead { addr: addr.0 });
        self.read_data(addr)
    }

    /// Finds the head of the outcome-entry chain: the newest forced record
    /// that is an outcome entry. Normally that is simply the top of the log;
    /// after an ill-timed crash the top may be a flushed data entry, in
    /// which case the scan steps back over data entries.
    fn find_chain_head(&mut self, ctx: &mut RecoverCtx<'_>) -> RsResult<Option<LogAddress>> {
        let mut cursor = self.log.get_top();
        let mut scratch = Vec::new();
        while let Some(addr) = cursor {
            self.log.read_into(addr, &mut scratch)?;
            ctx.entries_examined += 1;
            if decode_entry_view(&scratch)?.is_outcome() {
                return Ok(Some(addr));
            }
            // Step over the data entry.
            let mut iter = self.log.read_backward(Some(addr));
            iter.next(); // the data entry itself
            cursor = match iter.next() {
                Some(item) => Some(item?.0),
                None => None,
            };
        }
        Ok(None)
    }
}

impl<P: StoreProvider> RecoverySystem for HybridLogRs<P> {
    fn prepare(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<()> {
        self.stage_prepare(aid, mos, heap)?;
        self.force_staged()
    }

    fn write_entry(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<Vec<HeapId>> {
        let mut fresh = Vec::new();
        let leftover = {
            let mut sink = HybridSink {
                log: &mut self.log,
                pairs: &mut fresh,
                last_outcome: &mut self.last_outcome,
                oel: &mut self.oel,
                obs: &self.obs,
            };
            process_mos(aid, mos, heap, &mut self.access, &self.pat, &mut sink)?
        };
        Self::merge_pairs(self.pending.entry(aid).or_default(), fresh);
        // This is "free time in the guardian" (§4.4): push the buffered
        // entries to the device now so the eventual prepare only has to
        // force the prepared outcome entry.
        self.log.flush()?;
        self.obs.early_prepares.inc();
        Ok(leftover)
    }

    fn commit(&mut self, aid: ActionId) -> RsResult<()> {
        self.stage_commit(aid)?;
        self.force_staged()
    }

    fn abort(&mut self, aid: ActionId) -> RsResult<()> {
        self.stage_abort(aid)?;
        self.force_staged()
    }

    fn committing(&mut self, aid: ActionId, gids: &[GuardianId]) -> RsResult<()> {
        self.stage_committing(aid, gids)?;
        self.force_staged()
    }

    fn done(&mut self, aid: ActionId) -> RsResult<()> {
        self.stage_done(aid)?;
        self.force_staged()
    }

    // Staged variants for group commit: the outcome entry is chained and
    // buffered (its address is final) and all volatile bookkeeping happens
    // now, but the device force waits for `force_staged`. One force then
    // publishes every staged entry atomically, so the chain can never be
    // durable with a hole in it.

    fn stage_prepare(&mut self, aid: ActionId, mos: &[HeapId], heap: &Heap) -> RsResult<bool> {
        let _timer = self.obs.reg.phase("core.prepare_us");
        let mut fresh = Vec::new();
        {
            let mut sink = HybridSink {
                log: &mut self.log,
                pairs: &mut fresh,
                last_outcome: &mut self.last_outcome,
                oel: &mut self.oel,
                obs: &self.obs,
            };
            process_mos(aid, mos, heap, &mut self.access, &self.pat, &mut sink)?;
        }
        let mut all = self.pending.remove(&aid).unwrap_or_default();
        Self::merge_pairs(&mut all, fresh);
        let pairs: Vec<(Uid, LogAddress)> = all.iter().map(|p| (p.uid, p.addr)).collect();
        self.append_outcome(
            EntryRef::Prepared {
                aid,
                pairs: &pairs,
                prev: None,
            },
            false,
        )?;
        // The action is prepared: record the latest prepared mutex versions
        // in the MT (§5.2).
        for pair in &all {
            if pair.kind == ObjKind::Mutex {
                self.mt.insert(pair.uid, pair.addr);
            }
        }
        self.pat.insert(aid);
        self.obs.prepares.inc();
        Ok(true)
    }

    fn stage_commit(&mut self, aid: ActionId) -> RsResult<bool> {
        self.append_outcome(EntryRef::Committed { aid, prev: None }, false)?;
        self.pat.remove(&aid);
        self.pending.remove(&aid);
        self.obs.commits.inc();
        Ok(true)
    }

    fn stage_abort(&mut self, aid: ActionId) -> RsResult<bool> {
        self.append_outcome(EntryRef::Aborted { aid, prev: None }, false)?;
        self.pat.remove(&aid);
        self.pending.remove(&aid);
        self.obs.aborts.inc();
        Ok(true)
    }

    fn stage_committing(&mut self, aid: ActionId, gids: &[GuardianId]) -> RsResult<bool> {
        self.append_outcome(
            EntryRef::Committing {
                aid,
                gids,
                prev: None,
            },
            false,
        )?;
        self.cat.insert(aid, gids.to_vec());
        self.obs.committings.inc();
        Ok(true)
    }

    fn stage_done(&mut self, aid: ActionId) -> RsResult<bool> {
        self.append_outcome(EntryRef::Done { aid, prev: None }, false)?;
        self.cat.remove(&aid);
        self.obs.dones.inc();
        Ok(true)
    }

    fn force_staged(&mut self) -> RsResult<()> {
        self.log.force()?;
        Ok(())
    }

    fn recover(&mut self, heap: &mut Heap) -> RsResult<RecoveryOutcome> {
        let timer = self.obs.reg.phase("core.recover_us");
        let mut ctx = RecoverCtx::new(heap);
        let head = self.find_chain_head(&mut ctx)?;

        let mut cursor = head;
        let mut scratch = Vec::new();
        while let Some(addr) = cursor {
            self.log.read_into(addr, &mut scratch)?;
            ctx.entries_examined += 1;
            ctx.chain_hops += 1;
            self.obs
                .reg
                .event(argus_obs::Event::ChainHop { addr: addr.0 });
            let entry = decode_entry_view(&scratch)?;
            cursor = entry.prev();
            // A corrupt prev pointer that does not strictly decrease would
            // loop the walk forever (invariant I2); fail recovery instead.
            if let Some(p) = cursor {
                if p >= addr {
                    return Err(RsError::BadState(format!(
                        "outcome chain does not decrease: {addr} points back to {p}"
                    )));
                }
            }
            match entry {
                EntryView::Prepared { aid, pairs, .. } => {
                    let st = ctx.on_prepared(aid);
                    for (uid, daddr) in pairs.iter() {
                        self.process_pair(&mut ctx, st, aid, uid, daddr)?;
                    }
                }
                EntryView::Committed { aid, .. } => ctx.on_committed(aid),
                EntryView::Aborted { aid, .. } => ctx.on_aborted(aid),
                EntryView::Committing { aid, gids, .. } => ctx.on_committing(aid, gids.to_vec()),
                EntryView::Done { aid, .. } => ctx.on_done(aid),
                EntryView::BaseCommitted { uid, value, .. } => {
                    ctx.on_base_committed(uid, value.into())?
                }
                EntryView::PreparedData {
                    uid, value, aid, ..
                } => ctx.on_prepared_data(uid, value.into(), aid)?,
                EntryView::CommittedSs { cssl, .. } => {
                    for (uid, daddr) in cssl.iter() {
                        match ctx.ot.get(uid).copied() {
                            Some(entry) => {
                                if entry.state == ObjState::Prepared {
                                    let (kind, value) = self.read_data_counted(&mut ctx, daddr)?;
                                    ctx.restore_committed(uid, kind, value.into(), Some(daddr))?;
                                }
                            }
                            None => {
                                let (kind, value) = self.read_data_counted(&mut ctx, daddr)?;
                                ctx.restore_committed(uid, kind, value.into(), Some(daddr))?;
                            }
                        }
                    }
                }
                EntryView::Data { .. } | EntryView::DataH { .. } | EntryView::DataR { .. } => {
                    return Err(RsError::BadState("data entry on the outcome chain".into()))
                }
            }
        }

        ctx.heap.resolve_uid_refs();

        let outcome = RecoveryOutcome {
            entries_examined: ctx.entries_examined,
            data_entries_read: ctx.data_entries_read,
            chain_hops: ctx.chain_hops,
            ot: ctx.ot,
            pt: ctx.pt,
            ct: ctx.ct,
        };
        self.obs.recovery_pass(&outcome);
        timer.stop();

        // Rebuild the volatile tables.
        self.access = heap.accessible_uids();
        if heap.stable_root().is_none() {
            self.access.insert(Uid::STABLE_ROOT);
        }
        self.pat = outcome.pt.prepared_actions().into_iter().collect();
        self.cat = outcome.ct.committing_actions().into_iter().collect();
        self.mt = outcome
            .ot
            .iter()
            .filter_map(|(uid, e)| e.mutex_addr.map(|a| (*uid, a)))
            .collect();
        self.last_outcome = head;
        self.pending.clear();
        Ok(outcome)
    }

    fn begin_housekeeping(&mut self, heap: &Heap, mode: HousekeepingMode) -> RsResult<()> {
        self.begin_housekeeping_impl(heap, mode)
    }

    fn finish_housekeeping(&mut self) -> RsResult<()> {
        self.finish_housekeeping_impl()
    }

    fn simulate_crash(&mut self) -> RsResult<()> {
        self.log.reopen()?;
        self.access.clear();
        self.pat.clear();
        self.cat.clear();
        self.mt.clear();
        self.last_outcome = None;
        self.pending.clear();
        self.oel = None;
        self.hk = None;
        Ok(())
    }

    fn discard(&mut self, aid: ActionId) {
        self.pending.remove(&aid);
    }

    fn trim_access_set(&mut self, heap: &Heap) {
        let reachable = heap.accessible_uids();
        self.access = self.access.intersection(&reachable).copied().collect();
        self.access.insert(Uid::STABLE_ROOT);
    }

    fn dump_log(&mut self) -> RsResult<Option<Vec<(LogAddress, LogEntry)>>> {
        self.dump_entries().map(Some)
    }

    fn is_prepared(&self, aid: ActionId) -> bool {
        self.pat.contains(&aid)
    }

    fn log_stats(&self) -> LogStats {
        LogStats {
            entries: self.log.stable_count(),
            bytes: self.log.stable_bytes(),
            device: self.log.store().stats().snapshot(),
        }
    }

    fn decay_page(&mut self, pno: argus_stable::PageNo) -> bool {
        self.log.store_mut().decay_page(pno)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::providers::MemProvider;
    use crate::tables::PState;

    fn rs() -> HybridLogRs<MemProvider> {
        HybridLogRs::create(MemProvider::fast()).unwrap()
    }

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    fn commit_root_update(
        rs: &mut HybridLogRs<MemProvider>,
        heap: &mut Heap,
        a: ActionId,
        value: Value,
    ) {
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = value).unwrap();
        rs.prepare(a, &[root], heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);
    }

    #[test]
    fn committed_state_survives_crash() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let obj = heap.alloc_atomic(Value::Int(10), Some(a));
        let obj_uid = heap.uid_of(obj).unwrap();
        commit_root_update(
            &mut rs,
            &mut heap,
            a,
            Value::Seq(vec![Value::heap_ref(obj)]),
        );

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.pt.get(a), Some(PState::Committed));
        let h = heap2.lookup(obj_uid).unwrap();
        assert_eq!(heap2.read_value(h, None).unwrap(), &Value::Int(10));
        // The reference in the root was resolved back to a pointer.
        let root = heap2.stable_root().unwrap();
        assert_eq!(
            heap2.read_value(root, None).unwrap(),
            &Value::Seq(vec![Value::heap_ref(h)])
        );
    }

    #[test]
    fn prepared_in_doubt_action_is_restored_with_lock() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        commit_root_update(&mut rs, &mut heap, a, Value::Int(1));

        // A second action modifies the root and prepares, then the node
        // crashes before the verdict.
        let b = aid(2);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, b).unwrap();
        heap.write_value(root, b, |v| *v = Value::Int(2)).unwrap();
        rs.prepare(b, &[root], &heap).unwrap();

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.pt.get(b), Some(PState::Prepared));
        assert!(rs.is_prepared(b));
        let root2 = heap2.stable_root().unwrap();
        // Base = committed value; current = prepared value under b's lock.
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(1));
        assert_eq!(heap2.read_value(root2, Some(b)).unwrap(), &Value::Int(2));
    }

    #[test]
    fn aborted_actions_leave_no_atomic_trace() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        commit_root_update(&mut rs, &mut heap, a, Value::Int(1));
        let b = aid(2);
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, b).unwrap();
        heap.write_value(root, b, |v| *v = Value::Int(99)).unwrap();
        rs.prepare(b, &[root], &heap).unwrap();
        rs.abort(b).unwrap();
        heap.abort_action(b);

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.pt.get(b), Some(PState::Aborted));
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(1));
    }

    #[test]
    fn early_prepare_returns_inaccessible_leftovers() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        // An object not reachable from the root yet.
        let orphan = heap.alloc_atomic(Value::Int(5), Some(a));
        heap.acquire_write(orphan, a).unwrap();
        let leftover = rs.write_entry(a, &[orphan], &heap).unwrap();
        assert_eq!(leftover, vec![orphan]);

        // Now the root is modified to reach it; early-prepare the root.
        let root = heap.stable_root().unwrap();
        heap.acquire_write(root, a).unwrap();
        heap.write_value(root, a, |v| *v = Value::heap_ref(orphan))
            .unwrap();
        let leftover = rs.write_entry(a, &[root, orphan], &heap).unwrap();
        assert!(leftover.is_empty());

        // Prepare with an empty MOS: everything was early-prepared.
        rs.prepare(a, &[], &heap).unwrap();
        rs.commit(a).unwrap();
        heap.commit_action(a);

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let root2 = heap2.stable_root().unwrap();
        let orphan_h = heap2.lookup(heap.uid_of(orphan).unwrap()).unwrap();
        assert_eq!(
            heap2.read_value(root2, None).unwrap(),
            &Value::heap_ref(orphan_h)
        );
        assert_eq!(heap2.read_value(orphan_h, None).unwrap(), &Value::Int(5));
    }

    #[test]
    fn recovery_skips_data_entries_of_restored_objects() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        // Many committed updates to the same object: recovery must read the
        // newest data entry once, not one per update.
        for i in 0..20 {
            commit_root_update(&mut rs, &mut heap, aid(i + 1), Value::Int(i as i64));
        }
        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        let out = rs.recover(&mut heap2).unwrap();
        assert_eq!(out.data_entries_read, 1);
        let root2 = heap2.stable_root().unwrap();
        assert_eq!(heap2.read_value(root2, None).unwrap(), &Value::Int(19));
    }

    #[test]
    fn mutex_of_prepared_then_aborted_action_is_restored() {
        // Scenario 2 semantics on the hybrid log.
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let m = heap.alloc_mutex(Value::Int(1));
        let m_uid = heap.uid_of(m).unwrap();
        commit_root_update(&mut rs, &mut heap, a, Value::heap_ref(m));

        let b = aid(2);
        heap.seize(m, b).unwrap();
        heap.mutate_mutex(m, b, |v| *v = Value::Int(42)).unwrap();
        heap.release(m, b).unwrap();
        rs.prepare(b, &[m], &heap).unwrap();
        rs.abort(b).unwrap();
        heap.abort_action(b);

        rs.simulate_crash().unwrap();
        let mut heap2 = Heap::new();
        rs.recover(&mut heap2).unwrap();
        let m2 = heap2.lookup(m_uid).unwrap();
        // The new mutex state survives even though b aborted (§2.4.2).
        assert_eq!(heap2.read_value(m2, None).unwrap(), &Value::Int(42));
    }

    #[test]
    fn mutex_table_tracks_latest_prepared_versions() {
        let mut rs = rs();
        let mut heap = Heap::with_stable_root();
        let a = aid(1);
        let m = heap.alloc_mutex(Value::Int(1));
        let m_uid = heap.uid_of(m).unwrap();
        commit_root_update(&mut rs, &mut heap, a, Value::heap_ref(m));
        let first = *rs.mutex_table().get(&m_uid).unwrap();

        let b = aid(2);
        heap.seize(m, b).unwrap();
        heap.mutate_mutex(m, b, |v| *v = Value::Int(2)).unwrap();
        heap.release(m, b).unwrap();
        rs.prepare(b, &[m], &heap).unwrap();
        let second = *rs.mutex_table().get(&m_uid).unwrap();
        assert!(second > first);
    }
}
