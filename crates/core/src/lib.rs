//! The recovery system: reliable object storage to support atomic actions.
//!
//! This crate is the paper's primary contribution — Brian Oki's *hybrid log*
//! organization of stable storage and its algorithms (MIT/LCS, 1983):
//!
//! * **Writing** (ch. 3): when a top-level action prepares, the accessible
//!   objects of its Modified Objects Set are flattened and written as data
//!   entries, newly accessible objects are discovered through the
//!   accessibility set and written with `base_committed` / `prepared_data`
//!   special entries, and a forced `prepared` outcome entry seals the
//!   prepare.
//! * **The hybrid log** (ch. 4): the shadowing map is distributed across the
//!   `prepared` entries as `(uid, log address)` pairs and outcome entries
//!   form a backward chain, so recovery touches only the outcome entries and
//!   the data entries it actually needs. *Early prepare* (§4.4) writes data
//!   entries ahead of the prepare message.
//! * **Recovery** (§3.4, §4.3): a backward scan (simple log) or chain walk
//!   (hybrid log) rebuilds volatile memory and the OT/PT/CT tables.
//! * **Housekeeping** (ch. 5): log compaction and the stable-state snapshot
//!   bound recovery time by rebuilding a short log around a `committed_ss`
//!   checkpoint.
//!
//! Two interchangeable [`RecoverySystem`] implementations are provided —
//! [`SimpleLogRs`] (ch. 3) and [`HybridLogRs`] (ch. 4/5) — plus a shadowing
//! baseline in the `argus-shadow` crate, so the thesis's comparative claims
//! can be measured head-to-head.

mod api;
mod entry;
mod error;
mod housekeeping;
mod hybrid;
mod metrics;
mod redo;
mod restore;
mod simple;
mod tables;
mod writer;

pub use api::{providers, HousekeepingMode, LogStats, RecoveryMode, RecoverySystem, StoreProvider};
pub use entry::{
    decode_entry, decode_entry_view, decode_value, encode_entry, encode_entry_into, encode_value,
    EntryRef, EntryView, GidsView, LazyValue, LogEntry, PairsView, RawValue,
};
pub use error::{RsError, RsResult};
pub use hybrid::HybridLogRs;
pub use redo::{RedoRecoveryProfile, RedoRs};
pub use simple::SimpleLogRs;
pub use tables::{
    CState, CoordinatorTable, MutexTable, ObjState, ObjectTable, OtEntry, PState, ParticipantTable,
    RecoveryOutcome,
};

/// The shared writing algorithm (§3.3.3.3), exposed so alternative storage
/// organizations can reuse the MOS / accessibility-set / NAOS machinery —
/// the shadowing baseline plugs its own sink into it.
pub mod writer_sink {
    pub use crate::writer::{process_mos as process, EntrySink as Sink};
}
