//! Recovery-system errors.

use argus_objects::HeapError;
use argus_slog::{CodecError, LogError};
use std::fmt;

/// Errors surfaced by the recovery system.
#[derive(Debug)]
pub enum RsError {
    /// Propagated log/storage error (including the simulated crash).
    Log(LogError),
    /// Propagated volatile-memory error.
    Heap(HeapError),
    /// A log entry failed to decode.
    Codec(CodecError),
    /// The operation is not supported by this organization (e.g.
    /// housekeeping on the simple log, which ch. 5 defines only for the
    /// hybrid log).
    Unsupported(&'static str),
    /// The recovery system was driven through an illegal state transition.
    BadState(String),
    /// An internal invariant was violated (a bug, surfaced as an error
    /// rather than a panic).
    Internal(&'static str),
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::Log(e) => write!(f, "log: {e}"),
            RsError::Heap(e) => write!(f, "heap: {e}"),
            RsError::Codec(e) => write!(f, "entry codec: {e}"),
            RsError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            RsError::BadState(what) => write!(f, "bad state: {what}"),
            RsError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for RsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RsError::Log(e) => Some(e),
            RsError::Heap(e) => Some(e),
            RsError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LogError> for RsError {
    fn from(e: LogError) -> Self {
        RsError::Log(e)
    }
}

impl From<HeapError> for RsError {
    fn from(e: HeapError) -> Self {
        RsError::Heap(e)
    }
}

impl From<CodecError> for RsError {
    fn from(e: CodecError) -> Self {
        RsError::Codec(e)
    }
}

impl RsError {
    /// Whether this error is the simulated node crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, RsError::Log(e) if e.is_crash())
    }
}

/// Result alias for recovery-system operations.
pub type RsResult<T> = Result<T, RsError>;

#[cfg(test)]
mod tests {
    use super::*;
    use argus_stable::StorageError;

    #[test]
    fn crash_detection_threads_through() {
        let e: RsError = LogError::Storage(StorageError::Crashed).into();
        assert!(e.is_crash());
        assert!(!RsError::Unsupported("x").is_crash());
    }

    #[test]
    fn displays_mention_the_layer() {
        assert!(RsError::Unsupported("housekeeping")
            .to_string()
            .contains("unsupported"));
        let e: RsError = HeapError::NoSuchUid(argus_objects::Uid(3)).into();
        assert!(e.to_string().starts_with("heap:"));
    }
}
