//! Shared recovery machinery: applying log entries to volatile memory.
//!
//! Both recovery algorithms (§3.4.4 simple, §4.3.3 hybrid) funnel through
//! [`RecoverCtx`]: the simple scan feeds it every record, the hybrid walk
//! feeds it outcome entries and lazily-read data entries. The restore rules
//! and the OT/PT/CT bookkeeping are identical between the two.

use crate::entry::LazyValue;
use crate::tables::{
    CState, CoordinatorTable, ObjState, ObjectTable, OtEntry, PState, ParticipantTable,
};
use crate::{RsError, RsResult};
use argus_objects::{ActionId, AtomicObject, Heap, MutexObject, ObjKind, ObjectBody, Uid, Value};
use argus_slog::LogAddress;
use std::collections::HashMap;

/// Mutable recovery state threaded through one recovery pass.
#[derive(Debug)]
pub(crate) struct RecoverCtx<'h> {
    pub heap: &'h mut Heap,
    pub ot: ObjectTable,
    pub pt: ParticipantTable,
    pub ct: CoordinatorTable,
    pub entries_examined: u64,
    pub data_entries_read: u64,
    pub chain_hops: u64,
    /// The walk position (`entries_examined`) of each action's *oldest*
    /// `committed` entry seen so far — its true commit point. Entries at
    /// larger positions were logged before the commit.
    committed_seen: HashMap<ActionId, u64>,
    /// The walk position of the restore that produced each atomic uid's
    /// resident committed base. Compared against `committed_seen` to detect
    /// a base restored from a checkpoint older than a later commit (the
    /// checkpoint ordering fix; see DESIGN.md).
    committed_restore_seq: HashMap<Uid, u64>,
}

impl<'h> RecoverCtx<'h> {
    pub fn new(heap: &'h mut Heap) -> Self {
        Self {
            heap,
            ot: ObjectTable::new(),
            pt: ParticipantTable::new(),
            ct: CoordinatorTable::new(),
            entries_examined: 0,
            data_entries_read: 0,
            chain_hops: 0,
            committed_seen: HashMap::new(),
            committed_restore_seq: HashMap::new(),
        }
    }

    // ---- outcome-entry bookkeeping ---------------------------------------

    /// `prepared` outcome entry: "If aid ∈ PT then ignore the entry [else]
    /// insert <aid, prepared>" (§3.4.4 2.a). Returns the state in force.
    pub fn on_prepared(&mut self, aid: ActionId) -> PState {
        self.pt.enter(aid, PState::Prepared)
    }

    /// `committed` outcome entry (2.b).
    pub fn on_committed(&mut self, aid: ActionId) {
        self.pt.enter(aid, PState::Committed);
        // Keep updating past duplicates: the *oldest* committed record is
        // the commit point, and everything below it predates the commit.
        self.committed_seen.insert(aid, self.entries_examined);
    }

    /// `aborted` outcome entry (2.c).
    pub fn on_aborted(&mut self, aid: ActionId) {
        self.pt.enter(aid, PState::Aborted);
    }

    /// `committing` outcome entry (2.f).
    pub fn on_committing(&mut self, aid: ActionId, gids: Vec<argus_objects::GuardianId>) {
        self.ct.enter(aid, CState::Committing(gids));
    }

    /// `done` outcome entry (2.g).
    pub fn on_done(&mut self, aid: ActionId) {
        self.ct.enter(aid, CState::Done);
    }

    // ---- version restoration ---------------------------------------------

    /// Restores a *committed* version of `uid` (from a data entry of a
    /// committed action, a `base_committed` entry, or the CSSL). For atomic
    /// objects this is the base version; for mutex objects the current
    /// version subject to the §4.4 recency rule. Returns whether a copy was
    /// made.
    pub fn restore_committed(
        &mut self,
        uid: Uid,
        kind: ObjKind,
        value: LazyValue<'_>,
        addr: Option<LogAddress>,
    ) -> RsResult<bool> {
        if let Some(entry) = self.ot.get(uid).copied() {
            match kind {
                ObjKind::Atomic => match entry.state {
                    ObjState::Prepared => {
                        // The object's current (prepared) version is already
                        // in place; this is "the latest committed version"
                        // that becomes its base (scenario 1, step 7).
                        let value = value.take()?;
                        let slot = self.heap.get_mut(entry.heap)?;
                        match &mut slot.body {
                            ObjectBody::Atomic(obj) => obj.base = value,
                            ObjectBody::Mutex(_) => {
                                return Err(RsError::Internal("kind changed between entries"))
                            }
                        }
                        if let Some(e) = self.ot.get_mut(uid) {
                            e.state = ObjState::Restored;
                        }
                        self.committed_restore_seq
                            .insert(uid, self.entries_examined);
                        Ok(true)
                    }
                    ObjState::Restored => Ok(false),
                },
                ObjKind::Mutex => self.maybe_replace_mutex(uid, entry, value, addr),
            }
        } else {
            let value = value.take()?;
            let body = match kind {
                ObjKind::Atomic => ObjectBody::Atomic(AtomicObject::new(value)),
                ObjKind::Mutex => ObjectBody::Mutex(MutexObject::new(value)),
            };
            let heap_id = self.heap.insert_with_uid(uid, body)?;
            self.ot.insert(
                uid,
                OtEntry {
                    state: ObjState::Restored,
                    heap: heap_id,
                    mutex_addr: if kind == ObjKind::Mutex { addr } else { None },
                },
            );
            if kind == ObjKind::Atomic {
                self.committed_restore_seq
                    .insert(uid, self.entries_examined);
            }
            Ok(true)
        }
    }

    /// True when `uid`'s resident committed base was restored from an entry
    /// *below* (older than) `aid`'s commit point. A housekeeping checkpoint
    /// writes its base while `aid` is still in doubt; if `aid`'s `committed`
    /// entry lands above the checkpoint, the base on the chain head side is
    /// stale and `aid`'s prepared version is the real committed state. See
    /// DESIGN.md ("checkpoint ordering fix").
    pub fn stale_committed_base(&self, uid: Uid, aid: ActionId) -> bool {
        matches!(self.ot.get(uid), Some(e) if e.state == ObjState::Restored)
            && match (
                self.committed_restore_seq.get(&uid),
                self.committed_seen.get(&aid),
            ) {
                (Some(&restored), Some(&committed)) => restored > committed,
                _ => false,
            }
    }

    /// [`Self::restore_committed`] for a version attributed to the
    /// *committed* action `aid`: additionally overwrites a base restored
    /// from an entry older than `aid`'s commit point (the checkpoint
    /// ordering fix).
    pub fn restore_committed_by(
        &mut self,
        aid: ActionId,
        uid: Uid,
        kind: ObjKind,
        value: LazyValue<'_>,
        addr: Option<LogAddress>,
    ) -> RsResult<bool> {
        if kind == ObjKind::Atomic && self.stale_committed_base(uid, aid) {
            let entry = self.ot.get(uid).copied().expect("stale base is resident");
            let value = value.take()?;
            let slot = self.heap.get_mut(entry.heap)?;
            match &mut slot.body {
                ObjectBody::Atomic(obj) => obj.base = value,
                ObjectBody::Mutex(_) => {
                    return Err(RsError::Internal("kind changed between entries"))
                }
            }
            // The overwriting version is the state as of the commit point,
            // so a second copy of it compares as not-stale and is skipped.
            let commit_point = self.committed_seen[&aid];
            self.committed_restore_seq.insert(uid, commit_point);
            return Ok(true);
        }
        self.restore_committed(uid, kind, value, addr)
    }

    /// Restores a *prepared* version of `uid` written by the in-doubt action
    /// `aid`: the current version, with `aid` granted the write lock
    /// (scenario 1, step 2). For mutex objects the version is simply the
    /// current version (recency-checked).
    pub fn restore_prepared(
        &mut self,
        uid: Uid,
        kind: ObjKind,
        value: LazyValue<'_>,
        aid: ActionId,
        addr: Option<LogAddress>,
    ) -> RsResult<bool> {
        if let Some(entry) = self.ot.get(uid).copied() {
            match kind {
                ObjKind::Atomic => {
                    // Ordinarily unreachable in an uncompacted log (the
                    // write lock excludes later writers), but after
                    // housekeeping the committed_ss entry sits at the chain
                    // head and restores the base *first*; attach the
                    // prepared current version to it. See DESIGN.md
                    // ("compaction ordering fix").
                    let needs_current = matches!(
                        &self.heap.get(entry.heap)?.body,
                        ObjectBody::Atomic(obj) if obj.writer.is_none()
                    );
                    if !needs_current {
                        return Ok(false);
                    }
                    let value = value.take()?;
                    let slot = self.heap.get_mut(entry.heap)?;
                    match &mut slot.body {
                        ObjectBody::Atomic(obj) if obj.writer.is_none() => {
                            obj.current = Some(value);
                            obj.writer = Some(aid);
                            Ok(true)
                        }
                        _ => Ok(false),
                    }
                }
                ObjKind::Mutex => self.maybe_replace_mutex(uid, entry, value, addr),
            }
        } else {
            match kind {
                ObjKind::Atomic => {
                    // Base unknown yet; an earlier committed entry will fill
                    // it (object state: prepared).
                    let obj = AtomicObject {
                        base: Value::Unit,
                        current: Some(value.take()?),
                        writer: Some(aid),
                        readers: Default::default(),
                    };
                    let heap_id = self.heap.insert_with_uid(uid, ObjectBody::Atomic(obj))?;
                    self.ot.insert(
                        uid,
                        OtEntry {
                            state: ObjState::Prepared,
                            heap: heap_id,
                            mutex_addr: None,
                        },
                    );
                }
                ObjKind::Mutex => {
                    let heap_id = self
                        .heap
                        .insert_with_uid(uid, ObjectBody::Mutex(MutexObject::new(value.take()?)))?;
                    self.ot.insert(
                        uid,
                        OtEntry {
                            state: ObjState::Restored,
                            heap: heap_id,
                            mutex_addr: addr,
                        },
                    );
                }
            }
            Ok(true)
        }
    }

    /// The §4.4 recency rule: replace the resident mutex version only if the
    /// incoming data entry sits at a *larger* log address.
    fn maybe_replace_mutex(
        &mut self,
        uid: Uid,
        entry: OtEntry,
        value: LazyValue<'_>,
        addr: Option<LogAddress>,
    ) -> RsResult<bool> {
        let newer = match (addr, entry.mutex_addr) {
            (Some(new), Some(old)) => new > old,
            // Without addresses to compare, backward-scan order rules: the
            // version already copied is the later one.
            _ => false,
        };
        if !newer {
            return Ok(false);
        }
        let value = value.take()?;
        let slot = self.heap.get_mut(entry.heap)?;
        match &mut slot.body {
            ObjectBody::Mutex(obj) => obj.value = value,
            ObjectBody::Atomic(_) => return Err(RsError::Internal("kind changed between entries")),
        }
        if let Some(e) = self.ot.get_mut(uid) {
            e.mutex_addr = addr;
        }
        Ok(true)
    }

    /// Applies a *data entry* under the participant state of its action
    /// (§3.4.4 2.h). `addr` is the data entry's own log address.
    pub fn on_data(
        &mut self,
        addr: LogAddress,
        uid: Uid,
        kind: ObjKind,
        value: LazyValue<'_>,
        aid: ActionId,
    ) -> RsResult<()> {
        match self.pt.get(aid) {
            Some(PState::Committed) => {
                self.restore_committed_by(aid, uid, kind, value, Some(addr))?;
            }
            Some(PState::Prepared) => {
                self.restore_prepared(uid, kind, value, aid, Some(addr))?;
            }
            // Atomic versions of aborted actions are discarded; mutex
            // versions written by an action that *prepared* must still be
            // restored (§2.4.2, scenario 2).
            Some(PState::Aborted) if kind == ObjKind::Mutex => {
                self.restore_committed(uid, kind, value, Some(addr))?;
            }
            Some(PState::Aborted) => {}
            None => {
                // No outcome entry at all: the action was wiped out by the
                // crash before preparing; all its modifications are
                // discarded (§1.2.1).
            }
        }
        Ok(())
    }

    /// Applies a `base_committed` outcome entry (§3.4.4 2.d).
    pub fn on_base_committed(&mut self, uid: Uid, value: LazyValue<'_>) -> RsResult<()> {
        self.restore_committed(uid, ObjKind::Atomic, value, None)?;
        Ok(())
    }

    /// Applies a `prepared_data` outcome entry (§3.4.4 2.e).
    pub fn on_prepared_data(
        &mut self,
        uid: Uid,
        value: LazyValue<'_>,
        aid: ActionId,
    ) -> RsResult<()> {
        match self.pt.get(aid) {
            Some(PState::Aborted) => {}
            Some(PState::Committed) => {
                self.restore_committed_by(aid, uid, ObjKind::Atomic, value, None)?;
            }
            Some(PState::Prepared) => {
                self.restore_prepared(uid, ObjKind::Atomic, value, aid, None)?;
            }
            None => {
                // "The action must have prepared (the real prepared outcome
                // entry appears earlier in the log)" — enter it as prepared.
                self.pt.enter(aid, PState::Prepared);
                self.restore_prepared(uid, ObjKind::Atomic, value, aid, None)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_objects::GuardianId;

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(0), n)
    }

    #[test]
    fn committed_then_earlier_base_is_ignored() {
        let mut heap = Heap::new();
        let mut ctx = RecoverCtx::new(&mut heap);
        ctx.on_committed(aid(1));
        // Newest version first.
        assert!(ctx
            .restore_committed(
                Uid(1),
                ObjKind::Atomic,
                Value::Int(2).into(),
                Some(LogAddress(900))
            )
            .unwrap());
        // Older committed version: ignored.
        assert!(!ctx
            .restore_committed(
                Uid(1),
                ObjKind::Atomic,
                Value::Int(1).into(),
                Some(LogAddress(600))
            )
            .unwrap());
        let h = ctx.ot.get(Uid(1)).unwrap().heap;
        assert_eq!(ctx.heap.read_value(h, None).unwrap(), &Value::Int(2));
    }

    #[test]
    fn prepared_version_gets_write_lock_then_base_fills() {
        let mut heap = Heap::new();
        let mut ctx = RecoverCtx::new(&mut heap);
        ctx.on_prepared(aid(2));
        ctx.restore_prepared(Uid(1), ObjKind::Atomic, Value::Int(9).into(), aid(2), None)
            .unwrap();
        assert_eq!(ctx.ot.get(Uid(1)).unwrap().state, ObjState::Prepared);
        // Earlier committed version becomes the base.
        ctx.restore_committed(Uid(1), ObjKind::Atomic, Value::Int(5).into(), None)
            .unwrap();
        assert_eq!(ctx.ot.get(Uid(1)).unwrap().state, ObjState::Restored);
        let h = ctx.ot.get(Uid(1)).unwrap().heap;
        let slot = ctx.heap.get(h).unwrap();
        match &slot.body {
            ObjectBody::Atomic(obj) => {
                assert_eq!(obj.base, Value::Int(5));
                assert_eq!(obj.current, Some(Value::Int(9)));
                assert_eq!(obj.writer, Some(aid(2)));
            }
            _ => panic!("expected atomic"),
        }
    }

    #[test]
    fn mutex_recency_rule_uses_addresses() {
        let mut heap = Heap::new();
        let mut ctx = RecoverCtx::new(&mut heap);
        ctx.on_committed(aid(1));
        // A mid-log version arrives first (e.g. via a hybrid pair)...
        ctx.restore_committed(
            Uid(7),
            ObjKind::Mutex,
            Value::Int(1).into(),
            Some(LogAddress(700)),
        )
        .unwrap();
        // ...then a later one: replaced.
        assert!(ctx
            .restore_committed(
                Uid(7),
                ObjKind::Mutex,
                Value::Int(2).into(),
                Some(LogAddress(800))
            )
            .unwrap());
        // An earlier one: ignored.
        assert!(!ctx
            .restore_committed(
                Uid(7),
                ObjKind::Mutex,
                Value::Int(0).into(),
                Some(LogAddress(600))
            )
            .unwrap());
        let h = ctx.ot.get(Uid(7)).unwrap().heap;
        assert_eq!(ctx.heap.read_value(h, None).unwrap(), &Value::Int(2));
    }

    #[test]
    fn data_entries_of_unknown_actions_are_discarded() {
        let mut heap = Heap::new();
        let mut ctx = RecoverCtx::new(&mut heap);
        ctx.on_data(
            LogAddress(512),
            Uid(1),
            ObjKind::Atomic,
            Value::Int(1).into(),
            aid(9),
        )
        .unwrap();
        ctx.on_data(
            LogAddress(600),
            Uid(2),
            ObjKind::Mutex,
            Value::Int(1).into(),
            aid(9),
        )
        .unwrap();
        assert!(ctx.ot.is_empty());
        assert!(ctx.heap.is_empty());
    }

    #[test]
    fn aborted_action_keeps_mutex_but_not_atomic_versions() {
        let mut heap = Heap::new();
        let mut ctx = RecoverCtx::new(&mut heap);
        ctx.on_aborted(aid(3));
        ctx.on_data(
            LogAddress(512),
            Uid(1),
            ObjKind::Atomic,
            Value::Int(8).into(),
            aid(3),
        )
        .unwrap();
        ctx.on_data(
            LogAddress(600),
            Uid(2),
            ObjKind::Mutex,
            Value::Int(8).into(),
            aid(3),
        )
        .unwrap();
        assert!(ctx.ot.get(Uid(1)).is_none());
        assert!(ctx.ot.get(Uid(2)).is_some());
    }

    #[test]
    fn prepared_data_for_unknown_action_enters_pt() {
        let mut heap = Heap::new();
        let mut ctx = RecoverCtx::new(&mut heap);
        ctx.on_prepared_data(Uid(4), Value::Int(1).into(), aid(5))
            .unwrap();
        assert_eq!(ctx.pt.get(aid(5)), Some(PState::Prepared));
        assert_eq!(ctx.ot.get(Uid(4)).unwrap().state, ObjState::Prepared);
    }

    #[test]
    fn checkpoint_ordering_fix_overwrites_stale_base_of_committed_action() {
        // Backward walk of a log whose housekeeping ran while aid(4) was in
        // doubt and whose commit landed above the checkpoint: `committed`
        // first, then the checkpoint's (pre-commit) base, then the
        // prepared_data below it. The prepared version is aid(4)'s
        // committed state and must win over the stale base.
        let mut heap = Heap::new();
        let mut ctx = RecoverCtx::new(&mut heap);
        ctx.entries_examined = 1;
        ctx.on_committed(aid(4));
        ctx.entries_examined = 2;
        ctx.restore_committed(
            Uid(1),
            ObjKind::Atomic,
            Value::Int(5).into(),
            Some(LogAddress(512)),
        )
        .unwrap();
        ctx.entries_examined = 3;
        ctx.on_prepared_data(Uid(1), Value::Int(9).into(), aid(4))
            .unwrap();
        let h = ctx.ot.get(Uid(1)).unwrap().heap;
        assert_eq!(ctx.heap.read_value(h, None).unwrap(), &Value::Int(9));
        // Idempotent: a duplicate copy of the same version is not "newer".
        assert!(!ctx.stale_committed_base(Uid(1), aid(4)));
    }

    #[test]
    fn committed_version_above_the_commit_point_still_wins() {
        // A later action's version restored *above* aid(4)'s `committed`
        // entry already includes (or supersedes) aid(4)'s write; the
        // prepared_data below must not clobber it.
        let mut heap = Heap::new();
        let mut ctx = RecoverCtx::new(&mut heap);
        ctx.entries_examined = 1;
        ctx.on_committed(aid(8));
        ctx.restore_committed_by(aid(8), Uid(1), ObjKind::Atomic, Value::Int(7).into(), None)
            .unwrap();
        ctx.entries_examined = 2;
        ctx.on_committed(aid(4));
        ctx.entries_examined = 3;
        ctx.on_prepared_data(Uid(1), Value::Int(9).into(), aid(4))
            .unwrap();
        let h = ctx.ot.get(Uid(1)).unwrap().heap;
        assert_eq!(ctx.heap.read_value(h, None).unwrap(), &Value::Int(7));
    }

    #[test]
    fn compaction_ordering_fix_attaches_current_to_restored_base() {
        // committed_ss restored the base first; the in-doubt prepared
        // version must still attach with its write lock.
        let mut heap = Heap::new();
        let mut ctx = RecoverCtx::new(&mut heap);
        ctx.restore_committed(Uid(1), ObjKind::Atomic, Value::Int(5).into(), None)
            .unwrap();
        ctx.on_prepared(aid(2));
        assert!(ctx
            .restore_prepared(Uid(1), ObjKind::Atomic, Value::Int(9).into(), aid(2), None)
            .unwrap());
        let h = ctx.ot.get(Uid(1)).unwrap().heap;
        match &ctx.heap.get(h).unwrap().body {
            ObjectBody::Atomic(obj) => {
                assert_eq!(obj.base, Value::Int(5));
                assert_eq!(obj.current, Some(Value::Int(9)));
                assert_eq!(obj.writer, Some(aid(2)));
            }
            _ => panic!("expected atomic"),
        }
    }
}
