//! On-log records of the shadowing organization.

use argus_core::{decode_value, encode_value, RsError, RsResult};
use argus_objects::{ActionId, GuardianId, ObjKind, Uid, Value};
use argus_slog::{CodecError, CodecResult, Decoder, Encoder, LogAddress};

const TAG_VERSION: u8 = 1;
const TAG_INTENT: u8 = 2;
const TAG_RESOLVED: u8 = 3;
const TAG_MAP: u8 = 4;
const TAG_COMMITTING: u8 = 5;
const TAG_DONE: u8 = 6;

/// The body of a prepared action's intent: the pointers that will be folded
/// into the map when the verdict arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntentBody {
    /// The prepared action.
    pub aid: ActionId,
    /// Current versions written by the action: folded on commit. Mutex
    /// versions are folded even on abort (§2.4.2 semantics).
    pub cur: Vec<(Uid, ObjKind, LogAddress)>,
    /// Base versions of newly accessible objects: folded on either verdict.
    pub base: Vec<(Uid, LogAddress)>,
    /// Current versions belonging to *another*, already-prepared action
    /// (the `prepared_data` case): folded iff that action commits.
    pub pd: Vec<(Uid, LogAddress, ActionId)>,
}

impl IntentBody {
    /// An empty intent for `aid`.
    pub fn new(aid: ActionId) -> Self {
        Self {
            aid,
            cur: Vec::new(),
            base: Vec::new(),
            pd: Vec::new(),
        }
    }
}

/// One record in the shadow log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShadowRecord {
    /// An object version in version storage.
    Version {
        /// The object.
        uid: Uid,
        /// Atomic or mutex.
        kind: ObjKind,
        /// The flattened version.
        value: Value,
    },
    /// A prepared action's intent (the "entry in the log" of §1.2.1).
    Intent(IntentBody),
    /// The participant learned the verdict for `aid`.
    Resolved {
        /// The action.
        aid: ActionId,
        /// `true` = committed, `false` = aborted.
        committed: bool,
    },
    /// A complete map: the committed state, plus every still-unresolved
    /// intent and coordinator entry (so recovery needs only the newest map
    /// and anything after it).
    Map {
        /// `(uid, kind, version address)` for every live object.
        entries: Vec<(Uid, ObjKind, LogAddress)>,
        /// In-doubt intents at the time the map was written.
        intents: Vec<IntentBody>,
        /// Unfinished coordinator actions.
        coords: Vec<(ActionId, Vec<GuardianId>)>,
    },
    /// Coordinator: all participants prepared.
    Committing {
        /// The action.
        aid: ActionId,
        /// The participants.
        gids: Vec<GuardianId>,
    },
    /// Coordinator: two-phase commit finished.
    Done {
        /// The action.
        aid: ActionId,
    },
}

fn put_aid(enc: &mut Encoder, aid: ActionId) {
    enc.put_u32(aid.coordinator.0);
    enc.put_u64(aid.seq);
}

fn take_aid(dec: &mut Decoder<'_>) -> CodecResult<ActionId> {
    let g = dec.take_u32()?;
    let seq = dec.take_u64()?;
    Ok(ActionId::new(GuardianId(g), seq))
}

fn put_kind(enc: &mut Encoder, kind: ObjKind) {
    enc.put_u8(match kind {
        ObjKind::Atomic => 0,
        ObjKind::Mutex => 1,
    });
}

fn take_kind(dec: &mut Decoder<'_>) -> CodecResult<ObjKind> {
    match dec.take_u8()? {
        0 => Ok(ObjKind::Atomic),
        1 => Ok(ObjKind::Mutex),
        tag => Err(CodecError::BadTag {
            tag,
            context: "shadow object kind",
        }),
    }
}

fn put_intent(enc: &mut Encoder, intent: &IntentBody) {
    put_aid(enc, intent.aid);
    enc.put_u32(intent.cur.len() as u32);
    for (uid, kind, addr) in &intent.cur {
        enc.put_u64(uid.0);
        put_kind(enc, *kind);
        enc.put_u64(addr.offset());
    }
    enc.put_u32(intent.base.len() as u32);
    for (uid, addr) in &intent.base {
        enc.put_u64(uid.0);
        enc.put_u64(addr.offset());
    }
    enc.put_u32(intent.pd.len() as u32);
    for (uid, addr, aid) in &intent.pd {
        enc.put_u64(uid.0);
        enc.put_u64(addr.offset());
        put_aid(enc, *aid);
    }
}

fn take_intent(dec: &mut Decoder<'_>) -> CodecResult<IntentBody> {
    let aid = take_aid(dec)?;
    let n = dec.take_u32()? as usize;
    let mut cur = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let uid = Uid(dec.take_u64()?);
        let kind = take_kind(dec)?;
        let addr = LogAddress(dec.take_u64()?);
        cur.push((uid, kind, addr));
    }
    let n = dec.take_u32()? as usize;
    let mut base = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let uid = Uid(dec.take_u64()?);
        let addr = LogAddress(dec.take_u64()?);
        base.push((uid, addr));
    }
    let n = dec.take_u32()? as usize;
    let mut pd = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let uid = Uid(dec.take_u64()?);
        let addr = LogAddress(dec.take_u64()?);
        let aid = take_aid(dec)?;
        pd.push((uid, addr, aid));
    }
    Ok(IntentBody { aid, cur, base, pd })
}

/// Encodes a shadow record.
pub fn encode_record(record: &ShadowRecord) -> RsResult<Vec<u8>> {
    let mut enc = Encoder::with_capacity(64);
    match record {
        ShadowRecord::Version { uid, kind, value } => {
            enc.put_u8(TAG_VERSION);
            enc.put_u64(uid.0);
            put_kind(&mut enc, *kind);
            encode_value(&mut enc, value)?;
        }
        ShadowRecord::Intent(body) => {
            enc.put_u8(TAG_INTENT);
            put_intent(&mut enc, body);
        }
        ShadowRecord::Resolved { aid, committed } => {
            enc.put_u8(TAG_RESOLVED);
            put_aid(&mut enc, *aid);
            enc.put_bool(*committed);
        }
        ShadowRecord::Map {
            entries,
            intents,
            coords,
        } => {
            enc.put_u8(TAG_MAP);
            enc.put_u32(entries.len() as u32);
            for (uid, kind, addr) in entries {
                enc.put_u64(uid.0);
                put_kind(&mut enc, *kind);
                enc.put_u64(addr.offset());
            }
            enc.put_u32(intents.len() as u32);
            for intent in intents {
                put_intent(&mut enc, intent);
            }
            enc.put_u32(coords.len() as u32);
            for (aid, gids) in coords {
                put_aid(&mut enc, *aid);
                enc.put_u32(gids.len() as u32);
                for g in gids {
                    enc.put_u32(g.0);
                }
            }
        }
        ShadowRecord::Committing { aid, gids } => {
            enc.put_u8(TAG_COMMITTING);
            put_aid(&mut enc, *aid);
            enc.put_u32(gids.len() as u32);
            for g in gids {
                enc.put_u32(g.0);
            }
        }
        ShadowRecord::Done { aid } => {
            enc.put_u8(TAG_DONE);
            put_aid(&mut enc, *aid);
        }
    }
    Ok(enc.finish())
}

/// Decodes a shadow record.
pub fn decode_record(payload: &[u8]) -> RsResult<ShadowRecord> {
    let mut dec = Decoder::new(payload);
    let record = match dec.take_u8()? {
        TAG_VERSION => {
            let uid = Uid(dec.take_u64()?);
            let kind = take_kind(&mut dec)?;
            let value = decode_value(&mut dec)?;
            ShadowRecord::Version { uid, kind, value }
        }
        TAG_INTENT => ShadowRecord::Intent(take_intent(&mut dec)?),
        TAG_RESOLVED => {
            let aid = take_aid(&mut dec)?;
            let committed = dec.take_bool()?;
            ShadowRecord::Resolved { aid, committed }
        }
        TAG_MAP => {
            let n = dec.take_u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let uid = Uid(dec.take_u64()?);
                let kind = take_kind(&mut dec)?;
                let addr = LogAddress(dec.take_u64()?);
                entries.push((uid, kind, addr));
            }
            let n = dec.take_u32()? as usize;
            let mut intents = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                intents.push(take_intent(&mut dec)?);
            }
            let n = dec.take_u32()? as usize;
            let mut coords = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let aid = take_aid(&mut dec)?;
                let g = dec.take_u32()? as usize;
                let mut gids = Vec::with_capacity(g.min(4096));
                for _ in 0..g {
                    gids.push(GuardianId(dec.take_u32()?));
                }
                coords.push((aid, gids));
            }
            ShadowRecord::Map {
                entries,
                intents,
                coords,
            }
        }
        TAG_COMMITTING => {
            let aid = take_aid(&mut dec)?;
            let n = dec.take_u32()? as usize;
            let mut gids = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                gids.push(GuardianId(dec.take_u32()?));
            }
            ShadowRecord::Committing { aid, gids }
        }
        TAG_DONE => ShadowRecord::Done {
            aid: take_aid(&mut dec)?,
        },
        tag => {
            return Err(RsError::Codec(CodecError::BadTag {
                tag,
                context: "shadow record",
            }))
        }
    };
    if !dec.is_empty() {
        return Err(RsError::Codec(CodecError::BadTag {
            tag: 0xFF,
            context: "trailing bytes after shadow record",
        }));
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(n: u64) -> ActionId {
        ActionId::new(GuardianId(1), n)
    }

    fn roundtrip(record: ShadowRecord) {
        let bytes = encode_record(&record).unwrap();
        assert_eq!(decode_record(&bytes).unwrap(), record);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(ShadowRecord::Version {
            uid: Uid(3),
            kind: ObjKind::Mutex,
            value: Value::Seq(vec![Value::Int(1), Value::uid_ref(Uid(2))]),
        });
        roundtrip(ShadowRecord::Intent(IntentBody {
            aid: aid(1),
            cur: vec![(Uid(1), ObjKind::Atomic, LogAddress(512))],
            base: vec![(Uid(2), LogAddress(600))],
            pd: vec![(Uid(3), LogAddress(700), aid(2))],
        }));
        roundtrip(ShadowRecord::Resolved {
            aid: aid(1),
            committed: true,
        });
        roundtrip(ShadowRecord::Map {
            entries: vec![(Uid(1), ObjKind::Atomic, LogAddress(512))],
            intents: vec![IntentBody::new(aid(9))],
            coords: vec![(aid(4), vec![GuardianId(1), GuardianId(7)])],
        });
        roundtrip(ShadowRecord::Committing {
            aid: aid(5),
            gids: vec![GuardianId(2)],
        });
        roundtrip(ShadowRecord::Done { aid: aid(6) });
    }

    #[test]
    fn junk_is_rejected() {
        assert!(decode_record(&[0x77]).is_err());
        let mut bytes = encode_record(&ShadowRecord::Done { aid: aid(1) }).unwrap();
        bytes.push(1);
        assert!(decode_record(&bytes).is_err());
    }
}
