//! The shadowing baseline (§1.2.1 of the thesis).
//!
//! Storage is organized as *version storage* (an append-only area holding
//! object versions) plus a **map** associating every object uid with the
//! location of its current committed version. Committing an action writes a
//! brand-new map and installs it atomically; aborting discards the new
//! versions and leaves the map untouched. Because the data is distributed, a
//! small log of in-process actions (intents) rides along, exactly as the
//! thesis describes: "If the data an action manipulates is distributed, then
//! a map alone is not enough for shadowing to work properly. A log is also
//! required."
//!
//! The cost profile is the point of this crate: **commit rewrites the whole
//! map** (cost proportional to the number of live objects — experiment E7),
//! while **recovery reads one map plus the live versions** (no history scan
//! — experiment E2). It implements the same
//! [`argus_core::RecoverySystem`] trait as the simple and hybrid logs, so
//! the three organizations are interchangeable under the guardian substrate
//! and directly comparable in the benchmarks.

mod record;
mod rs;

pub use record::{decode_record, encode_record, IntentBody, ShadowRecord};
pub use rs::ShadowRs;
